//! Cores suite: deterministic inter-pipeline compute sharing end to end.
//!
//! The three acceptance properties of the gimbal-cores scheduler:
//!
//! 1. **Steal-off is invisible.** With `steal: None` (the default), the
//!    refactored engine — pipelines polled through the core scheduler
//!    instead of owning their cores outright — collects no cores stats,
//!    journals nothing under the `cores` component, emits no cores
//!    telemetry, and double runs agree bit for bit, for all four schemes.
//! 2. **Steal-on is deterministic.** With stealing enabled on a skewed
//!    tenant mix, double runs agree on submissions, stats, trace, and
//!    journal digests while actually stealing — for all four schemes.
//! 3. **Stealing pays.** On a skewed mix that lands both hot pipelines on
//!    one home core, K cores with stealing beat K-core shared-nothing
//!    throughput — the XBOF claim the bench gate pins at ≥10%.

use gimbal_repro::cores::StealConfig;
use gimbal_repro::sim::SimDuration;
use gimbal_repro::telemetry::{Component, TraceConfig};
use gimbal_repro::testbed::{Precondition, RunResult, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_repro::workload::FioSpec;

const CAP: u64 = 512 * 1024 * 1024 / 4096;

const SCHEMES: [Scheme; 4] = [
    Scheme::Reflex,
    Scheme::Parda,
    Scheme::FlashFq,
    Scheme::Gimbal,
];

/// Skewed placement: eight SSDs over two cores (homes alternate 0,1,...)
/// with the only active workers on the even SSDs — all four homed on core 0
/// — so core 1 idles unless the scheduler steals poll quanta for it.
fn skewed(scheme: Scheme, steal: Option<StealConfig>, seed: u64) -> RunResult {
    let cfg = TestbedConfig {
        scheme,
        precondition: Precondition::Clean,
        num_ssds: 8,
        cores: 2,
        duration: SimDuration::from_millis(400),
        warmup: SimDuration::from_millis(100),
        seed,
        record_submissions: true,
        sanitize: true,
        trace: Some(TraceConfig { capacity: 1 << 20 }),
        steal,
        ..TestbedConfig::default()
    };
    let specs = (0..4)
        .map(|i| {
            WorkerSpec::new(
                format!("hot{}", 2 * i),
                FioSpec::paper_default(1.0, 4096, 0, CAP),
            )
            .on_ssd(2 * i)
        })
        .collect();
    Testbed::new(cfg, specs).run()
}

fn total_mbps(r: &RunResult) -> f64 {
    r.workers.iter().map(|w| w.bandwidth_mbps()).sum()
}

#[test]
fn steal_off_is_invisible_for_every_engine() {
    for scheme in SCHEMES {
        let a = skewed(scheme, None, 7);
        let b = skewed(scheme, None, 7);
        assert!(
            a.cores.is_none(),
            "{}: steal-off run collected cores stats",
            scheme.name()
        );
        let journal = a.access_journal.as_ref().expect("sanitize was on");
        assert!(
            journal.entries().iter().all(|e| e.component != "cores"),
            "{}: steal-off run journaled a cores decision",
            scheme.name()
        );
        let trace = a.trace.as_ref().expect("trace was on");
        assert!(
            trace
                .events
                .iter()
                .all(|e| e.component() != Component::Cores),
            "{}: steal-off run emitted cores telemetry",
            scheme.name()
        );
        assert_eq!(a.submissions, b.submissions, "{}", scheme.name());
        assert_eq!(a.stats_digest(), b.stats_digest(), "{}", scheme.name());
        assert_eq!(a.trace_digest(), b.trace_digest(), "{}", scheme.name());
        assert_eq!(a.access_digest(), b.access_digest(), "{}", scheme.name());
    }
}

#[test]
fn steal_on_double_run_is_deterministic_for_every_engine() {
    for scheme in SCHEMES {
        let a = skewed(scheme, Some(StealConfig::default()), 7);
        let b = skewed(scheme, Some(StealConfig::default()), 7);
        let stats = a.cores.as_ref().expect("cores stats present");
        assert!(
            stats.steals > 0,
            "{}: skewed mix never stole ({stats:?})",
            scheme.name()
        );
        let journal = a.access_journal.as_ref().expect("sanitize was on");
        assert!(
            journal.entries().iter().any(|e| e.component == "cores"),
            "{}: stealing run journaled no cores decision",
            scheme.name()
        );
        assert_eq!(a.submissions, b.submissions, "{}", scheme.name());
        assert_eq!(a.stats_digest(), b.stats_digest(), "{}", scheme.name());
        assert_eq!(a.trace_digest(), b.trace_digest(), "{}", scheme.name());
        assert_eq!(a.access_digest(), b.access_digest(), "{}", scheme.name());
        let c = skewed(scheme, Some(StealConfig::default()), 8);
        assert_ne!(
            a.stats_digest(),
            c.stats_digest(),
            "{}: different seeds produced identical steal-on digests",
            scheme.name()
        );
    }
}

/// The XBOF claim at test scale: two 4 KiB read streams whose pipelines
/// share home core 0 leave core 1 idle under shared-nothing; stealing puts
/// it to work, and aggregate throughput must rise materially. The committed
/// bench artifact (`BENCH_cores.json`) pins the full curve; this test pins
/// the sign and a conservative margin so a scheduler regression fails fast.
#[test]
fn stealing_beats_shared_nothing_on_a_skewed_mix() {
    let pinned = skewed(Scheme::Gimbal, None, 7);
    let stealing = skewed(Scheme::Gimbal, Some(StealConfig::default()), 7);
    let (base, stolen) = (total_mbps(&pinned), total_mbps(&stealing));
    assert!(
        stolen > base * 1.10,
        "stealing {stolen:.0} MB/s must beat shared-nothing {base:.0} MB/s by ≥10%"
    );
    let stats = stealing.cores.as_ref().expect("cores stats present");
    assert!(stats.steals > 0, "no steals recorded: {stats:?}");
    assert!(
        stats.stolen_busy_ns > 0,
        "steals happened but no busy time moved: {stats:?}"
    );
}
