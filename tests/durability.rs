//! Durability e2e suite: the write-back cache under scripted crashes.
//!
//! The tentpole contract has two halves and this suite closes both end to
//! end:
//!
//! * **Crash consistency** — a KV workload (YCSB A over `gimbal-lsm-kv`)
//!   runs over the write-back NIC-DRAM tier while the script kills a
//!   backend, cuts NIC power, or both. Every acked-but-unflushed write must
//!   surface as a dirty-tagged `StagedWriteLoss`, and the crash-consistency
//!   oracle replays each backend's durability journal against a shadow
//!   model to prove the loss set is *exact*: no silent loss, no phantom
//!   loss, WAL-tagged lines flushed in log order.
//! * **The latency win** — the reason write-back exists: on a skewed write
//!   workload, acks at DRAM cost beat write-through's flash-latency acks.
//!
//! Everything here is deterministic: the same seed reproduces the same
//! crash, the same loss set, and the same journals, byte for byte.

use gimbal_repro::fabric::RetryConfig;
use gimbal_repro::sim::{FaultPlan, SimDuration, SimTime};
use gimbal_repro::testbed::{
    check_kv_run, check_run, AdmissionPolicy, CacheConfig, FaultConfig, KvTestbed, KvTestbedConfig,
    Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec, WritePolicy, LOSS_EVENT_CMD,
};
use gimbal_repro::workload::{AccessPattern, FioSpec, YcsbMix};

const CAP: u64 = 512 * 1024 * 1024 / 4096;

fn wb_cache_cfg(mb: u64) -> CacheConfig {
    CacheConfig {
        policy: AdmissionPolicy::Always,
        write_policy: WritePolicy::Back,
        ..CacheConfig::for_mb(mb)
    }
}

fn kv_cfg() -> KvTestbedConfig {
    KvTestbedConfig {
        scheme: Scheme::Gimbal,
        mix: YcsbMix::A,
        instances: 3,
        num_nodes: 1,
        ssds_per_node: 2,
        records_per_instance: 8_000,
        duration: SimDuration::from_millis(900),
        warmup: SimDuration::from_millis(300),
        cache: Some(wb_cache_cfg(32)),
        ..KvTestbedConfig::default()
    }
}

/// The KV deployment survives three scripted crash plans — NIC power loss,
/// permanent backend death, and both — with the oracle confirming exact
/// loss accounting on every backend, and the whole failure path replaying
/// bit-identically at the same seed.
#[test]
fn kv_write_back_survives_scripted_crashes_with_exact_loss_accounting() {
    type Plan = (&'static str, Option<u64>, Option<(u32, u64)>);
    let plans: [Plan; 3] = [
        ("power-loss", Some(600), None),
        ("backend-death", None, Some((0, 650))),
        ("power-loss+death", Some(500), Some((1, 700))),
    ];
    for (name, power_ms, death) in plans {
        let run = || {
            let mut c = kv_cfg();
            c.power_loss_at = power_ms.map(SimDuration::from_millis);
            c.fail_backend_at = death.map(|(b, at)| (b, SimDuration::from_millis(at)));
            KvTestbed::new(c).run()
        };
        let a = run();
        let ops: u64 = a.instances.iter().map(|i| i.ops).sum();
        assert!(ops > 200, "{name}: KV made no progress through the crash");
        assert!(
            !a.write_back.is_empty(),
            "{name}: write-back enabled but no stats collected"
        );
        let acked: u64 = a.write_back.iter().map(|w| w.acked).sum();
        let flushed: u64 = a.write_back.iter().map(|w| w.flushed_lines).sum();
        assert!(acked > 0, "{name}: no write ever acked from DRAM");
        assert!(flushed > 0, "{name}: the flusher never drained a line");
        if power_ms.is_some() {
            for (i, wb) in a.write_back.iter().enumerate() {
                assert_eq!(
                    wb.power_losses, 1,
                    "{name}: backend {i} missed the power loss: {wb:?}"
                );
            }
        }
        let lost: u64 = a.write_back.iter().map(|w| w.lost_lines).sum();
        assert!(
            lost > 0,
            "{name}: a crash mid-write-burst must strand dirty lines: {:?}",
            a.write_back
        );
        let surfaced: u64 = a
            .cache_losses
            .iter()
            .filter(|l| l.dirty)
            .map(|l| u64::from(l.lines_lost))
            .sum();
        assert_eq!(
            surfaced, lost,
            "{name}: surfaced dirty-loss records disagree with the counters"
        );
        for l in a.cache_losses.iter().filter(|l| l.dirty) {
            assert_eq!(l.cmd, LOSS_EVENT_CMD, "{name}: wrong sentinel cmd");
        }
        // The oracle: replay every backend's journal against the shadow
        // dirty set; assert no silent loss, no phantom loss, WAL order.
        check_kv_run(&a);
        let b = run();
        assert_eq!(a.write_back, b.write_back, "{name}: counters diverged");
        assert_eq!(a.journals, b.journals, "{name}: journals diverged");
        assert_eq!(a.cache_losses, b.cache_losses, "{name}: losses diverged");
        let ops_b: u64 = b.instances.iter().map(|i| i.ops).sum();
        assert_eq!(ops, ops_b, "{name}: op counts diverged");
    }
}

/// Fourth fault plan, fio engine this time: `FaultPlan::power_loss_at` cuts
/// NIC power mid-run under a write-heavy mixed workload. The command
/// conservation audit and the oracle must both stay green, and write-back
/// off (same plan, write-through) must see no staged-write losses at all.
#[test]
fn fio_power_loss_mid_run_keeps_oracle_green() {
    let run = |write: WritePolicy| {
        let n = 6u64;
        let per = CAP / n;
        let workers: Vec<WorkerSpec> = (0..n)
            .map(|i| {
                let ratio = if i < 2 { 1.0 } else { 0.0 };
                let mut spec = FioSpec::paper_default(ratio, 4096, i * per, per);
                spec.write_pattern = AccessPattern::Zipfian;
                WorkerSpec::new(if i < 2 { "read" } else { "write" }, spec)
            })
            .collect();
        let cfg = TestbedConfig {
            scheme: Scheme::Gimbal,
            precondition: Precondition::Fragmented,
            duration: SimDuration::from_millis(400),
            warmup: SimDuration::from_millis(100),
            seed: 29,
            record_submissions: true,
            faults: Some(FaultConfig {
                plan: FaultPlan {
                    power_loss_at: Some(SimTime::ZERO + SimDuration::from_millis(250)),
                    ..FaultPlan::default()
                },
                retry: RetryConfig::default(),
            }),
            cache: Some(CacheConfig {
                write_policy: write,
                ..wb_cache_cfg(16)
            }),
            ..TestbedConfig::default()
        };
        Testbed::new(cfg, workers).run()
    };
    let back = run(WritePolicy::Back);
    assert!(back.faults.conservation_holds(), "{:?}", back.faults);
    for wb in &back.write_back {
        assert_eq!(wb.power_losses, 1, "power loss missed a pipeline: {wb:?}");
        assert!(wb.conservation_holds(), "{wb:?}");
    }
    check_run(&back);
    let again = run(WritePolicy::Back);
    assert_eq!(back.journals, again.journals, "crash replay diverged");
    assert_eq!(back.stats_digest(), again.stats_digest());
    // Write-back off: the same power loss clears the (clean) cache but has
    // no staged writes to lose — no loss records, no journal.
    let through = run(WritePolicy::Through);
    assert!(through.faults.conservation_holds());
    assert!(through.write_back.is_empty() && through.journals.is_empty());
    assert!(
        through.cache_losses.iter().all(|l| !l.dirty),
        "write-through surfaced dirty-tagged losses: {:?}",
        through.cache_losses
    );
}

/// The payoff: on a Zipfian 4 KiB write workload, write-back acks at DRAM
/// cost and beats write-through's mean write latency. This is the
/// `--bench-json` latency-win datapoint, asserted.
#[test]
fn write_back_beats_write_through_on_skewed_writes() {
    let run = |write: WritePolicy| {
        let n = 6u64;
        let per = CAP / n;
        let workers: Vec<WorkerSpec> = (0..n)
            .map(|i| {
                let ratio = if i < 2 { 1.0 } else { 0.0 };
                let mut spec = FioSpec::paper_default(ratio, 4096, i * per, per);
                spec.write_pattern = AccessPattern::Zipfian;
                spec.read_pattern = AccessPattern::Zipfian;
                WorkerSpec::new(if i < 2 { "read" } else { "write" }, spec)
            })
            .collect();
        let cfg = TestbedConfig {
            scheme: Scheme::Gimbal,
            precondition: Precondition::Fragmented,
            duration: SimDuration::from_millis(400),
            warmup: SimDuration::from_millis(100),
            seed: 7,
            cache: Some(CacheConfig {
                write_policy: write,
                ..wb_cache_cfg(16)
            }),
            ..TestbedConfig::default()
        };
        Testbed::new(cfg, workers).run()
    };
    let through = run(WritePolicy::Through);
    let back = run(WritePolicy::Back);
    check_run(&back);
    let [_, wt] = through.group_latency(|_| true);
    let [_, wb] = back.group_latency(|_| true);
    assert!(wt.count > 0 && wb.count > 0, "no write latency recorded");
    let acked: u64 = back.write_back.iter().map(|w| w.acked).sum();
    assert!(acked > 0, "write-back never engaged on the skewed bench");
    assert!(
        wb.mean_us() < wt.mean_us(),
        "write-back mean write latency ({:.1} µs) must beat write-through \
         ({:.1} µs)",
        wb.mean_us(),
        wt.mean_us()
    );
}
