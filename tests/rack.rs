//! Rack suite: multi-node fault domains end to end.
//!
//! The four acceptance properties of the rack testbed:
//!
//! 1. **Node death is survivable.** A 3-node, replication-2 rack where one
//!    node dies mid-run loses zero acknowledged IOs: every affected IO is
//!    either rerouted to the surviving replica or ends in a typed error —
//!    never a panic, never silence. Both conservation ledgers (physical
//!    per-command and logical per-IO) balance, for all four schemes.
//! 2. **GC-aware routing earns its keep.** Under a correlated node-scoped
//!    GC storm, steering reads away from the storming node beats the
//!    GC-blind chooser on both mean and p99 read latency.
//! 3. **Failure handling is deterministic.** Same seed, same plan →
//!    bit-identical stats, trace, and state-access journal digests, for
//!    all four schemes, faults and all.
//! 4. **Inert plans are invisible.** A fault plan whose every target is
//!    absent from the rack runs bit-identically to no plan at all.

use gimbal_repro::cores::StealConfig;
use gimbal_repro::fabric::RetryConfig;
use gimbal_repro::rack::{RackConfig, RackTestbed};
use gimbal_repro::sim::{FaultPlan, FaultWindow, SimDuration, SimTime};
use gimbal_repro::telemetry::TraceConfig;
use gimbal_repro::testbed::{FaultConfig, Scheme};

const SCHEMES: [Scheme; 4] = [
    Scheme::Reflex,
    Scheme::Parda,
    Scheme::FlashFq,
    Scheme::Gimbal,
];

fn ms(v: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(v)
}

/// 3 nodes × 2 SSDs, replication on — the canonical rack.
fn rack_cfg(scheme: Scheme) -> RackConfig {
    RackConfig {
        scheme,
        duration: SimDuration::from_millis(60),
        warmup: SimDuration::from_millis(10),
        ..RackConfig::default()
    }
}

/// Node 1 dies at t=20ms; aggressive timers so the ladder runs its full
/// course inside the 60ms window.
fn node_death_faults() -> FaultConfig {
    FaultConfig {
        plan: FaultPlan::default().with_node_death(1, ms(20)),
        retry: RetryConfig {
            base_timeout: SimDuration::from_millis(1),
            max_timeout: SimDuration::from_millis(8),
            max_retries: 5,
            suspect_after: 2,
        },
    }
}

#[test]
fn node_death_loses_no_acknowledged_io() {
    for scheme in SCHEMES {
        let res = RackTestbed::new(RackConfig {
            faults: Some(node_death_faults()),
            ..rack_cfg(scheme)
        })
        .run();

        // Both ledgers balance: no acknowledged IO lost, none double-served.
        assert!(
            res.conservation_audit_holds(),
            "{scheme:?}: physical {:?} rack {:?}",
            res.physical,
            res.rack
        );
        // The rack kept serving after the death.
        let ops: u64 = res.clients.iter().map(|c| c.ops).sum();
        assert!(ops > 100, "{scheme:?}: rack stalled at {ops} ops");
        // The escalation ladder actually ran: timeouts fired, the node was
        // suspected, and reads moved to the surviving replica.
        assert!(res.physical.timed_out > 0, "{scheme:?}: no timeouts");
        assert!(
            res.rack.nodes_suspected >= 1,
            "{scheme:?}: dead node never suspected"
        );
        assert!(res.rack.reroutes > 0, "{scheme:?}: no reroutes");
        // The dead node swallowed capsules at the ToR rather than anything
        // panicking or hanging.
        assert!(
            res.rack.tor_cmd_drops > 0,
            "{scheme:?}: dead node dropped nothing"
        );
        // Replication-2 with one dead node must still reach every span:
        // reads reroute, writes degrade — typed read errors are possible
        // only transiently (a span whose live copy errs), not the norm.
        assert!(
            res.rack.acked_ok + res.rack.acked_degraded > res.rack.failed_typed * 10,
            "{scheme:?}: failures dominate ({:?})",
            res.rack
        );
        // Post-death writes land degraded (the dead replica can't ack).
        assert!(
            res.rack.acked_degraded > 0,
            "{scheme:?}: no degraded write acks after node death"
        );
    }
}

#[test]
fn all_replicas_dead_yields_typed_errors_not_panics() {
    // Kill two of three nodes early. Spans whose both replicas died can
    // only end in typed errors; the rack must keep running and balancing.
    let res = RackTestbed::new(RackConfig {
        faults: Some(FaultConfig {
            plan: FaultPlan::default()
                .with_node_death(1, ms(5))
                .with_node_death(2, ms(5)),
            ..node_death_faults()
        }),
        ..rack_cfg(Scheme::Gimbal)
    })
    .run();
    assert!(res.conservation_audit_holds(), "{:?}", res.rack);
    assert!(
        res.rack.failed_typed > 0,
        "some spans lost both replicas and must surface typed errors"
    );
    // Node-0 spans keep serving.
    let ops: u64 = res.clients.iter().map(|c| c.ops).sum();
    assert!(ops > 0, "survivor node went silent");
}

#[test]
fn gc_aware_routing_beats_blind_under_correlated_storm() {
    // Node 0 storms for most of the measured window. Long base timeout and
    // a single retry so the escalation ladder can't rescue the blind
    // chooser — the A/B isolates the routing decision itself.
    let storm = FaultConfig {
        plan: FaultPlan::default().with_node_gc_storm(0, FaultWindow::new(ms(15), ms(45))),
        retry: RetryConfig {
            base_timeout: SimDuration::from_millis(50),
            max_timeout: SimDuration::from_millis(50),
            max_retries: 1,
            suspect_after: 1,
        },
    };
    let run = |aware: bool| {
        RackTestbed::new(RackConfig {
            gc_aware_routing: aware,
            read_ratio: 1.0,
            faults: Some(storm.clone()),
            ..rack_cfg(Scheme::Gimbal)
        })
        .run()
    };
    let aware = run(true);
    let blind = run(false);
    assert!(aware.conservation_audit_holds());
    assert!(blind.conservation_audit_holds());
    assert!(
        aware.mean_read_latency_us() < blind.mean_read_latency_us(),
        "GC-aware mean {:.1}µs must beat blind {:.1}µs",
        aware.mean_read_latency_us(),
        blind.mean_read_latency_us()
    );
    assert!(
        aware.p99_read_latency_us() < blind.p99_read_latency_us(),
        "GC-aware p99 {:.1}µs must beat blind {:.1}µs",
        aware.p99_read_latency_us(),
        blind.p99_read_latency_us()
    );
}

#[test]
fn faulted_rack_runs_are_bit_identical() {
    // Node death + a partition window + a degraded link, all at once; the
    // double run must agree on stats, trace, and journal digests.
    let faults = FaultConfig {
        plan: FaultPlan::default()
            .with_node_death(1, ms(20))
            .with_node_partition(2, FaultWindow::new(ms(10), ms(14)))
            .with_node_degrade(
                0,
                FaultWindow::new(ms(30), ms(40)),
                SimDuration::from_micros(50),
            ),
        ..node_death_faults()
    };
    for scheme in SCHEMES {
        let mk = || {
            RackTestbed::new(RackConfig {
                faults: Some(faults.clone()),
                trace: Some(TraceConfig { capacity: 1 << 18 }),
                sanitize: true,
                ..rack_cfg(scheme)
            })
            .run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.stats_digest(), b.stats_digest(), "{scheme:?}: stats");
        assert_eq!(a.trace_digest(), b.trace_digest(), "{scheme:?}: trace");
        assert_eq!(a.access_digest(), b.access_digest(), "{scheme:?}: journal");
        assert!(a.conservation_audit_holds(), "{scheme:?}");
    }
}

#[test]
fn partition_heals_and_rack_recovers() {
    // A 6ms partition: capsules to/from node 1 vanish during the window,
    // timeouts reroute reads, and after healing the node serves again.
    let res = RackTestbed::new(RackConfig {
        faults: Some(FaultConfig {
            plan: FaultPlan::default().with_node_partition(1, FaultWindow::new(ms(20), ms(26))),
            ..node_death_faults()
        }),
        trace: Some(TraceConfig { capacity: 1 << 18 }),
        ..rack_cfg(Scheme::Gimbal)
    })
    .run();
    assert!(res.conservation_audit_holds());
    assert!(
        res.rack.tor_cmd_drops + res.rack.tor_cpl_drops > 0,
        "partition swallowed nothing"
    );
    // The partitioned node's SSDs served IO before and after the window.
    let node1_ops: u64 = (2..4)
        .map(|b| res.ssd_stats[b].reads + res.ssd_stats[b].writes)
        .sum();
    assert!(node1_ops > 0, "node 1 never served");
    // No permanent damage: the healed rack keeps full-redundancy acks
    // dominant.
    assert!(res.rack.acked_ok > res.rack.failed_typed);
}

#[test]
fn degraded_link_slows_but_loses_nothing() {
    let clean = RackTestbed::new(rack_cfg(Scheme::Gimbal)).run();
    let degraded = RackTestbed::new(RackConfig {
        faults: Some(FaultConfig {
            plan: FaultPlan::default().with_node_degrade(
                0,
                FaultWindow::new(ms(10), ms(60)),
                SimDuration::from_micros(200),
            ),
            retry: RetryConfig::default(),
        }),
        ..rack_cfg(Scheme::Gimbal)
    })
    .run();
    assert!(degraded.conservation_audit_holds());
    assert!(
        degraded.rack.link_degraded_crossings > 0,
        "no crossing paid the penalty"
    );
    assert_eq!(
        degraded.rack.failed_typed, 0,
        "degradation must not fail IO"
    );
    assert!(
        degraded.mean_read_latency_us() > clean.mean_read_latency_us(),
        "a 200µs/crossing penalty must show up in mean read latency"
    );
}

/// Fleet-width smoke, parameterized over the node count: a sanitized
/// double run at `nodes` JBOF nodes (work stealing on, so the per-node
/// core schedulers are exercised at scale) must agree bit for bit and
/// finish in bounded wall-clock time. A scheduling blow-up — an event
/// storm, a steal/rebalance loop — shows up here as minutes, not seconds.
fn fleet_width_double_run(nodes: u32) {
    let cfg = RackConfig {
        nodes,
        ssds_per_node: 2,
        clients: 8,
        duration: SimDuration::from_millis(20),
        warmup: SimDuration::from_millis(5),
        sanitize: true,
        steal: Some(StealConfig::default()),
        ..RackConfig::default()
    };
    let started = std::time::Instant::now();
    let a = RackTestbed::new(cfg.clone()).run();
    let b = RackTestbed::new(cfg).run();
    assert!(a.conservation_audit_holds(), "{nodes} nodes: {:?}", a.rack);
    assert_eq!(a.stats_digest(), b.stats_digest(), "{nodes} nodes: stats");
    assert_eq!(
        a.access_digest(),
        b.access_digest(),
        "{nodes} nodes: journal"
    );
    let ops: u64 = a.clients.iter().map(|c| c.ops).sum();
    assert!(ops > 0, "{nodes}-node rack made no progress");
    assert!(
        started.elapsed().as_secs() < 120,
        "{nodes}-node double run took {:?}",
        started.elapsed()
    );
}

#[test]
fn rack_at_24_nodes_is_bit_identical_and_bounded() {
    fleet_width_double_run(24);
}

#[test]
fn absent_target_plan_matches_no_plan_bit_for_bit() {
    let base = RackConfig {
        sanitize: true,
        trace: Some(TraceConfig { capacity: 1 << 18 }),
        ..rack_cfg(Scheme::Gimbal)
    };
    let clean = RackTestbed::new(base.clone()).run();
    let inert = RackTestbed::new(RackConfig {
        faults: Some(FaultConfig {
            plan: FaultPlan::default()
                .with_node_death(11, ms(1))
                .with_node_partition(12, FaultWindow::new(ms(0), ms(60))),
            retry: RetryConfig::default(),
        }),
        ..base
    })
    .run();
    assert_eq!(clean.stats_digest(), inert.stats_digest());
    assert_eq!(clean.trace_digest(), inert.trace_digest());
    assert_eq!(clean.access_digest(), inert.access_digest());
    assert_eq!(inert.physical.timed_out, 0, "inert plan armed timers");
}
