//! Scale determinism suite: the batched wheel hot path at 1,000 tenants.
//!
//! The tentpole perf work (hierarchical timer wheel, batched capsule
//! submission, arena-recycled IO state) is only allowed to exist because it
//! is invisible to every digest. This suite proves that at scale: for all
//! four schemes, a 1k-tenant run driven through the batched hot path is
//! bit-identical across a double run — stats, trace, and state-access
//! journal digests — inside a bounded wall-clock budget.
//!
//! Sizing follows `tests/rack.rs::fleet_width_double_run`: the full
//! 1k-tenant / million-IO point runs in release only (`cargo test
//! --release --test scale`); debug builds run a scaled-down shape of the
//! same test so `cargo test` stays fast.

use gimbal_repro::sim::SimDuration;
use gimbal_repro::telemetry::TraceConfig;
use gimbal_repro::testbed::{RunResult, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_repro::workload::FioSpec;

const CAP_BLOCKS: u64 = 512 * 1024 * 1024 / 4096;

/// The jbofsim `--scale` tenant population: 4 KiB closed-loop readers over
/// disjoint LBA regions, round-robin across the SSDs.
fn scale_workers(tenants: u32, ssds: u32) -> Vec<WorkerSpec> {
    let per_region = (CAP_BLOCKS / u64::from(tenants).max(1)).max(1);
    (0..tenants)
        .map(|i| {
            let fio = FioSpec::paper_default(
                1.0,
                4096,
                u64::from(i) * per_region % CAP_BLOCKS,
                per_region,
            );
            WorkerSpec::new("scale", fio).on_ssd(i % ssds)
        })
        .collect()
}

fn run(scheme: Scheme, tenants: u32, ssds: u32, ms: u64, sanitize: bool) -> RunResult {
    let cfg = TestbedConfig {
        scheme,
        num_ssds: ssds,
        cores: ssds,
        duration: SimDuration::from_millis(ms),
        warmup: SimDuration::from_millis(ms / 4),
        batch: 32,
        sanitize,
        trace: (!sanitize).then(TraceConfig::default),
        ..TestbedConfig::default()
    };
    Testbed::new(cfg, scale_workers(tenants, ssds)).run()
}

const SCHEMES: [Scheme; 4] = [
    Scheme::Gimbal,
    Scheme::Reflex,
    Scheme::Parda,
    Scheme::FlashFq,
];

/// 1k-tenant double run, all four schemes, batch-32 wheel hot path:
/// stats + trace digests bit-identical, and in release the Gimbal point
/// alone covers over a million device IOs. A sanitized (journaled) double
/// run at a shorter duration — journals record every engine decision, so
/// the full point would hold gigabytes — pins the state-access journal
/// digest too. The whole suite must finish inside the wall budget.
#[test]
fn thousand_tenant_double_run_is_bit_identical() {
    let (tenants, ssds, full_ms, journal_ms) = if cfg!(debug_assertions) {
        (100, 4, 30, 20)
    } else {
        (1000, 8, 700, 100)
    };
    let started = std::time::Instant::now();
    for scheme in SCHEMES {
        let a = run(scheme, tenants, ssds, full_ms, false);
        let b = run(scheme, tenants, ssds, full_ms, false);
        assert_eq!(
            a.stats_digest(),
            b.stats_digest(),
            "{scheme:?}: stats diverged at {tenants} tenants"
        );
        assert_eq!(
            a.trace_digest(),
            b.trace_digest(),
            "{scheme:?}: trace diverged at {tenants} tenants"
        );
        assert_eq!(
            a.events_processed, b.events_processed,
            "{scheme:?}: event count diverged"
        );
        let ios: u64 = a.ssd_stats.iter().map(|s| s.reads + s.writes).sum();
        if !cfg!(debug_assertions) && scheme == Scheme::Gimbal {
            assert!(
                ios >= 1_000_000,
                "Gimbal scale point did only {ios} device IOs"
            );
        }
        assert!(ios > 0, "{scheme:?}: no progress at scale");

        let ja = run(scheme, tenants, ssds, journal_ms, true);
        let jb = run(scheme, tenants, ssds, journal_ms, true);
        assert_eq!(
            ja.stats_digest(),
            jb.stats_digest(),
            "{scheme:?}: sanitized stats diverged"
        );
        let da = ja.access_digest().expect("sanitizer was enabled");
        let db = jb.access_digest().expect("sanitizer was enabled");
        assert_eq!(da, db, "{scheme:?}: state-access journal diverged");
    }
    assert!(
        started.elapsed().as_secs() < 120,
        "scale double runs took {:?}",
        started.elapsed()
    );
}

/// The batch knob at scale is still inert at 1: a batch-1 run and a
/// default-config run are the same simulation, digest for digest, so the
/// scale mode's batching default cannot leak into unbatched experiments.
#[test]
fn batch_one_at_scale_matches_default_config() {
    let (tenants, ssds, ms) = if cfg!(debug_assertions) {
        (50, 2, 20)
    } else {
        (200, 4, 60)
    };
    let mk = |batch: u32| {
        let cfg = TestbedConfig {
            num_ssds: ssds,
            cores: ssds,
            duration: SimDuration::from_millis(ms),
            warmup: SimDuration::from_millis(ms / 4),
            batch,
            sanitize: true,
            ..TestbedConfig::default()
        };
        Testbed::new(cfg, scale_workers(tenants, ssds)).run()
    };
    let batched = mk(1);
    let default = mk(TestbedConfig::default().batch);
    assert_eq!(batched.stats_digest(), default.stats_digest());
    assert_eq!(batched.access_digest(), default.access_digest());
}
