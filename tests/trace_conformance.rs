//! Trace conformance: the telemetry stream is not just reproducible, it is
//! *semantically correct* — the events describe a run that obeys the
//! algorithms of the paper.
//!
//! Invariants checked here, all from the exported event stream (never by
//! poking at private fields):
//!
//! * **Algorithm 1 state machine** — congestion transitions form a
//!   continuous per-(SSD, IO-type) chain, every threshold/EWMA snapshot
//!   re-validates the branch that produced it, and a smooth latency ramp
//!   only ever moves between adjacent states (plus the one documented
//!   rank-2 jump, Overloaded → CongestionAvoidance on recovery: while
//!   Overloaded the threshold is pinned at `Thresh_max`, so the Congested
//!   band `[Thresh, Thresh_max)` is empty and recovery skips it).
//! * **Rate monotonicity** — the target rate never increases on a
//!   completion observed in the Congested state.
//! * **Algorithm 4 overflow** — tokens move bucket-to-bucket only when the
//!   source bucket sat at full capacity, i.e. its IO type was idle.
//! * **Algorithm 3 credit halving** — every `CreditHalved` event records
//!   `after == max(before / 2, 1)`.
//! * **Exporter round-trip** — the Chrome trace-event JSON parses with an
//!   in-test recursive-descent JSON parser and maps back onto the recorded
//!   events one-to-one.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::OnceLock;

use gimbal_repro::fabric::{IoType, RetryConfig, SsdId};
use gimbal_repro::gimbal::{Params, RateController, WriteCostEstimator};
use gimbal_repro::sim::{FaultPlan, FaultWindow, SimDuration, SimTime, SsdFaultSpec};
use gimbal_repro::telemetry::export::chrome_trace;
use gimbal_repro::telemetry::{
    CongState, Event, EventKind, RecordedTrace, TraceConfig, TraceHandle, Tracer,
};
use gimbal_repro::testbed::{
    AdmissionPolicy, CacheConfig, FaultConfig, Precondition, RunResult, Scheme, Testbed,
    TestbedConfig, WorkerSpec,
};
use gimbal_repro::workload::FioSpec;

const CAP: u64 = 512 * 1024 * 1024 / 4096;
const EPS: f64 = 1e-6;

fn ms(v: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(v)
}

fn mixed_workers(readers: u32, writers: u32) -> Vec<WorkerSpec> {
    let n = readers + writers;
    let per = CAP / u64::from(n);
    (0..n)
        .map(|i| {
            let ratio = if i < readers { 1.0 } else { 0.0 };
            let label = if i < readers { "read" } else { "write" };
            WorkerSpec::new(
                label,
                FioSpec::paper_default(ratio, 4096, u64::from(i) * per, per),
            )
        })
        .collect()
}

/// One traced Gimbal run shared by the testbed-level tests. The plan mixes
/// capsule loss (fabric events, retries) with a 100 ms GC storm (SSD stall
/// events; the storm outlasts the ~62 ms retry budget, so timeouts — and
/// therefore credit halvings — are guaranteed).
fn traced_run() -> &'static RunResult {
    static RUN: OnceLock<RunResult> = OnceLock::new();
    RUN.get_or_init(|| {
        let cfg = TestbedConfig {
            scheme: Scheme::Gimbal,
            precondition: Precondition::Fragmented,
            duration: SimDuration::from_millis(400),
            warmup: SimDuration::from_millis(100),
            seed: 17,
            faults: Some(FaultConfig {
                plan: FaultPlan {
                    cmd_loss_prob: 0.02,
                    cpl_loss_prob: 0.02,
                    burst_windows: vec![FaultWindow::new(ms(120), ms(130))],
                    ssd: vec![SsdFaultSpec {
                        stall_windows: vec![FaultWindow::new(ms(180), ms(280))],
                        ..SsdFaultSpec::default()
                    }],
                    nodes: vec![],
                    power_loss_at: None,
                },
                retry: RetryConfig::default(),
            }),
            // A small cache tier so the Cache component shows up in the
            // combined stream (misses and fills record even when the
            // uniform pattern rarely re-reads a line).
            cache: Some(CacheConfig {
                policy: AdmissionPolicy::Always,
                ..CacheConfig::for_mb(16)
            }),
            trace: Some(TraceConfig { capacity: 1 << 21 }),
            ..TestbedConfig::default()
        };
        Testbed::new(cfg, mixed_workers(3, 3)).run()
    })
}

fn run_trace() -> &'static RecordedTrace {
    let trace = traced_run().trace.as_ref().expect("trace enabled");
    assert_eq!(trace.dropped_oldest, 0, "ring too small for conformance");
    trace
}

/// Re-validate one transition's snapshot against Algorithm 1's branch
/// arithmetic. `from` is the previous state; the EWMA/threshold values were
/// sampled inside the update that produced the transition.
fn check_transition_snapshot(e: &Event, p: &Params) {
    let tmin = p.thresh_min.as_nanos() as f64;
    let tmax = p.thresh_max.as_nanos() as f64;
    let EventKind::CongestionTransition {
        to,
        ewma_ns,
        thresh_before_ns,
        thresh_after_ns,
        ..
    } = e.kind
    else {
        panic!("not a transition: {e:?}");
    };
    assert!(
        (tmin - EPS..=tmax + EPS).contains(&thresh_after_ns),
        "threshold left [min, max]: {e:?}"
    );
    match to {
        CongState::Overloaded => {
            assert!(ewma_ns >= tmax - EPS, "overloaded below Thresh_max: {e:?}");
            assert!(
                (thresh_after_ns - tmax).abs() < EPS,
                "overload must pin the threshold at Thresh_max: {e:?}"
            );
        }
        CongState::Congested => {
            assert!(
                ewma_ns >= thresh_before_ns - EPS && ewma_ns < tmax + EPS,
                "congested outside [Thresh, Thresh_max): {e:?}"
            );
            let expect = (thresh_before_ns + tmax) / 2.0;
            assert!(
                (thresh_after_ns - expect.max(tmin)).abs() < EPS,
                "congestion must spring the threshold to the midpoint: {e:?}"
            );
        }
        CongState::CongestionAvoidance => {
            assert!(
                ewma_ns >= tmin - EPS && ewma_ns < thresh_before_ns + EPS,
                "CA outside [Thresh_min, Thresh): {e:?}"
            );
            let expect = (thresh_before_ns - p.alpha_t * (thresh_before_ns - ewma_ns)).max(tmin);
            assert!(
                (thresh_after_ns - expect).abs() < EPS,
                "CA must decay the threshold toward the EWMA: {e:?}"
            );
        }
        CongState::Underutilized => {
            assert!(
                ewma_ns < tmin + EPS,
                "underutilized above Thresh_min: {e:?}"
            );
            let expect = (thresh_before_ns - p.alpha_t * (thresh_before_ns - ewma_ns)).max(tmin);
            assert!(
                (thresh_after_ns - expect).abs() < EPS,
                "decay must also run while underutilized: {e:?}"
            );
        }
    }
}

/// The per-(SSD, IO-type) congestion streams from the real testbed run are
/// continuous (`prev.to == next.from`, starting from Underutilized) and
/// every snapshot re-validates Algorithm 1's branch that produced it.
#[test]
fn congestion_streams_are_continuous_and_snapshots_conform() {
    let trace = run_trace();
    let p = Params::default();
    let view = trace.view();
    let transitions = view.named("congestion_transition");
    assert!(!transitions.is_empty(), "no congestion activity recorded");
    for ssd in 0..1u32 {
        for io in [IoType::Read, IoType::Write] {
            let stream = transitions.filter(|e| {
                e.ssd == SsdId(ssd)
                    && matches!(e.kind, EventKind::CongestionTransition { io: i, .. } if i == io)
            });
            if let Some(first) = stream.first() {
                let EventKind::CongestionTransition { from, .. } = first.kind else {
                    unreachable!()
                };
                assert_eq!(
                    from,
                    CongState::Underutilized,
                    "controllers start Underutilized: {first:?}"
                );
            }
            if let Some((a, b)) = stream.first_violation(|prev, next| {
                let EventKind::CongestionTransition { to, .. } = prev.kind else {
                    return false;
                };
                let EventKind::CongestionTransition { from, .. } = next.kind else {
                    return false;
                };
                to == from
            }) {
                panic!("congestion stream tore between {a:?} and {b:?}");
            }
            for e in stream.iter() {
                check_transition_snapshot(e, &p);
            }
        }
    }
}

/// Drive a `RateController` directly with a smooth latency ramp (up through
/// every band, then back down) and assert every transition is in the
/// adjacency set of Algorithm 1: one rung at a time, plus the documented
/// Overloaded → CongestionAvoidance recovery jump.
#[test]
fn smooth_latency_ramp_moves_between_adjacent_states_only() {
    let tracer = Rc::new(RefCell::new(Tracer::new(TraceConfig::default())));
    let mut c = RateController::new(Params::default());
    c.attach_trace(TraceHandle::attached(&tracer), SsdId(0));
    let mut t_us = 0u64;
    let mut feed = |c: &mut RateController, lat_us: u64| {
        t_us += 100;
        c.on_completion(
            SimTime::from_micros(t_us),
            IoType::Read,
            4096,
            SimDuration::from_micros(lat_us),
        );
    };
    // Up: 300 µs → 1800 µs in 5 µs steps (through CA, Congested, into
    // Overloaded), then back down to 80 µs (recovery into Underutilized).
    for lat in (300..=1800).step_by(5) {
        feed(&mut c, lat);
    }
    for lat in (80..=1800).rev().step_by(5) {
        feed(&mut c, lat);
    }
    let trace = tracer.borrow_mut().finish();
    let view = trace.view();
    let transitions = view.named("congestion_transition");
    use CongState::{
        Congested as C, CongestionAvoidance as Ca, Overloaded as O, Underutilized as U,
    };
    const ALLOWED: [(CongState, CongState); 6] =
        [(U, Ca), (Ca, U), (Ca, C), (C, Ca), (C, O), (O, Ca)];
    let mut seen = [false; 4];
    for e in transitions.iter() {
        let EventKind::CongestionTransition { from, to, .. } = e.kind else {
            unreachable!()
        };
        seen[from.rank() as usize] = true;
        seen[to.rank() as usize] = true;
        assert!(
            ALLOWED.contains(&(from, to)),
            "non-adjacent transition under a smooth ramp: {e:?}"
        );
    }
    assert_eq!(
        seen, [true; 4],
        "the ramp must visit all four congestion states"
    );
    // The same trace exercises rate monotonicity under congestion, with a
    // guaranteed non-empty sample.
    let congested_updates = view.filter(|e| {
        matches!(
            e.kind,
            EventKind::RateUpdate {
                state: CongState::Congested,
                ..
            }
        )
    });
    assert!(!congested_updates.is_empty(), "ramp never got Congested");
    for e in congested_updates.iter() {
        let EventKind::RateUpdate {
            old_bps, new_bps, ..
        } = e.kind
        else {
            unreachable!()
        };
        assert!(
            new_bps <= old_bps + EPS,
            "rate increased while Congested: {e:?}"
        );
    }
}

/// In the full testbed run, no completion observed in the Congested state
/// ever raises the target rate.
#[test]
fn rate_never_increases_while_congested() {
    let view = run_trace().view();
    for e in view.named("rate_update").iter() {
        let EventKind::RateUpdate {
            state,
            old_bps,
            new_bps,
            ..
        } = e.kind
        else {
            unreachable!()
        };
        if state == CongState::Congested {
            assert!(
                new_bps <= old_bps + EPS,
                "rate increased while Congested: {e:?}"
            );
        }
    }
}

/// Algorithm 4: a bucket only spills to its sibling when it filled to
/// capacity — the recorded source-bucket level must sit at `bucket_bytes`,
/// proving the donating IO type was idle.
#[test]
fn overflow_tokens_only_flow_when_the_source_bucket_is_full() {
    let view = run_trace().view();
    let transfers = view.named("overflow_transfer");
    assert!(
        !transfers.is_empty(),
        "a 3r/3w mix must idle one bucket at some point"
    );
    let cap = Params::default().bucket_bytes as f64;
    for e in transfers.iter() {
        let EventKind::OverflowTransfer {
            amount, src_tokens, ..
        } = e.kind
        else {
            unreachable!()
        };
        assert!(amount > 0.0, "empty transfer recorded: {e:?}");
        assert!(
            (src_tokens - cap).abs() < EPS,
            "overflow from a non-full bucket (src {src_tokens}, cap {cap}): {e:?}"
        );
    }
}

/// Algorithm 3: every credit halving in the trace shrank the window to
/// exactly `max(before / 2, 1)`. The GC storm outlasts the retry budget, so
/// timeouts (and halvings) are guaranteed to appear.
#[test]
fn credit_grants_halve_after_a_timeout() {
    let res = traced_run();
    let view = run_trace().view();
    assert!(res.faults.timed_out > 0, "storm produced no timeouts");
    let halvings = view.named("credit_halved");
    assert!(!halvings.is_empty(), "timeouts recorded but no halvings");
    for e in halvings.iter() {
        let EventKind::CreditHalved { before, after } = e.kind else {
            unreachable!()
        };
        assert_eq!(after, (before / 2).max(1), "halving must be exact: {e:?}");
        assert!(e.tenant.is_some(), "halving must be tenant-attributed");
    }
    // Grants flow the other way on surviving completions.
    assert!(
        !view.named("credit_granted").is_empty(),
        "no piggybacked credit grants recorded"
    );
}

/// Every component of the event taxonomy shows up in the combined run, and
/// the per-component metric counters agree exactly with the event stream
/// (nothing was recorded without being counted, or vice versa).
#[test]
fn all_components_appear_and_reconcile_with_metric_counters() {
    use gimbal_repro::telemetry::Component;
    let trace = run_trace();
    let view = trace.view();
    for comp in Component::ALL {
        let in_stream = view.component(comp).len() as u64;
        if comp == Component::Rack {
            // Rack events only exist in multi-node runs; a single-node
            // testbed emitting one would be a routing bug.
            assert_eq!(in_stream, 0, "rack event in a single-node run");
            continue;
        }
        if comp == Component::Broker {
            // Broker events only exist in broker-armed runs; the shared run
            // keeps the broker off, so one here would be a routing bug. A
            // dedicated armed run covers the component below.
            assert_eq!(in_stream, 0, "broker event in a broker-off run");
            continue;
        }
        if comp == Component::Cores {
            // Cores events only exist when work stealing is armed; the
            // shared run keeps steal off, so one here would break the
            // scheduler's inertness guarantee. A dedicated steal-armed run
            // covers the component below.
            assert_eq!(in_stream, 0, "cores event in a steal-off run");
            continue;
        }
        assert!(in_stream > 0, "no {comp} events in a faulted Gimbal run");
        assert_eq!(
            trace.metrics.counter(comp.name()),
            in_stream,
            "metric counter diverged from the stream for {comp}"
        );
    }
}

/// Broker counterpart of the taxonomy check: a broker-armed run emits
/// Broker-component events (borrows, settlements) and the metric counter
/// reconciles exactly with the stream.
#[test]
fn broker_component_appears_and_reconciles_when_armed() {
    use gimbal_repro::telemetry::Component;
    use gimbal_repro::testbed::BrokerConfig;
    let per = CAP / 3;
    let mut workers = vec![WorkerSpec::new(
        "heavy",
        FioSpec::paper_default(1.0, 128 * 1024, 0, per),
    )];
    for i in 0..2u64 {
        let mut fio = FioSpec::paper_default(1.0, 4096, (i + 1) * per, per);
        fio.queue_depth = 1;
        fio.rate_limit = Some(1024.0 * 1024.0);
        workers.push(WorkerSpec::new("idle", fio));
    }
    let cfg = TestbedConfig {
        scheme: Scheme::Gimbal,
        precondition: Precondition::Clean,
        duration: SimDuration::from_millis(200),
        warmup: SimDuration::from_millis(50),
        broker: Some(BrokerConfig {
            capacity_bps: 64 * 1024 * 1024,
            burst_bytes: 256 * 1024,
            epoch: SimDuration::from_millis(5),
            ..BrokerConfig::default()
        }),
        trace: Some(TraceConfig { capacity: 1 << 20 }),
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, workers).run();
    let trace = res.trace.as_ref().expect("trace enabled");
    assert_eq!(trace.dropped_oldest, 0, "ring too small for conformance");
    let in_stream = trace.view().component(Component::Broker).len() as u64;
    assert!(in_stream > 0, "no Broker events in a broker-armed run");
    assert_eq!(
        trace.metrics.counter(Component::Broker.name()),
        in_stream,
        "broker metric counter diverged from the stream"
    );
}

/// Cores counterpart of the taxonomy check: a steal-armed run on a skewed
/// placement emits Cores-component events (quanta stolen, homes rebalanced)
/// and the metric counter reconciles exactly with the stream.
#[test]
fn cores_component_appears_and_reconciles_when_armed() {
    use gimbal_repro::cores::StealConfig;
    use gimbal_repro::telemetry::Component;
    let per = CAP / 2;
    // Both workers on SSD 0: its pipeline saturates home core 0 while
    // core 1 idles, so stealing is guaranteed to fire.
    let workers: Vec<WorkerSpec> = (0..2u64)
        .map(|i| WorkerSpec::new("hot", FioSpec::paper_default(1.0, 4096, i * per, per)).on_ssd(0))
        .collect();
    let cfg = TestbedConfig {
        scheme: Scheme::Gimbal,
        precondition: Precondition::Clean,
        num_ssds: 2,
        cores: 2,
        duration: SimDuration::from_millis(200),
        warmup: SimDuration::from_millis(50),
        steal: Some(StealConfig::default()),
        trace: Some(TraceConfig { capacity: 1 << 20 }),
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, workers).run();
    let trace = res.trace.as_ref().expect("trace enabled");
    assert_eq!(trace.dropped_oldest, 0, "ring too small for conformance");
    let in_stream = trace.view().component(Component::Cores).len() as u64;
    assert!(in_stream > 0, "no Cores events in a steal-armed run");
    assert_eq!(
        trace.metrics.counter(Component::Cores.name()),
        in_stream,
        "cores metric counter diverged from the stream"
    );
}

/// Satellite: the `below_min` fast-recovery edge of the write-cost ADMI
/// loop, observed purely through the public event stream. Buffered writes
/// decay the cost by δ per period down to parity; the moment the write EWMA
/// leaves the buffered band the cost converges to worst-case in midpoint
/// jumps.
#[test]
fn write_cost_steps_expose_the_below_min_recovery_edge() {
    let p = Params::default();
    let tracer = Rc::new(RefCell::new(Tracer::new(TraceConfig::default())));
    let handle = TraceHandle::attached(&tracer);
    let mut rate = RateController::new(p);
    let mut wc = WriteCostEstimator::new(&p);
    rate.attach_trace(handle.clone(), SsdId(0));
    wc.attach_trace(handle, SsdId(0));
    let mut t_ms = 0u64;
    let mut feed = |rate: &mut RateController, wc: &mut WriteCostEstimator, lat_us: u64| {
        t_ms += 1;
        let now = SimTime::from_millis(t_ms);
        rate.on_completion(now, IoType::Write, 4096, SimDuration::from_micros(lat_us));
        // The policy's wiring: the write monitor's below_min feeds the ADMI
        // step (§3.4).
        wc.on_write_completion(now, rate.monitor(IoType::Write).below_min());
    };
    // 20 periods of buffer-absorbed writes (60 µs), then 8 periods of
    // buffer-exceeded writes (900 µs).
    for _ in 0..200 {
        feed(&mut rate, &mut wc, 60);
    }
    for _ in 0..80 {
        feed(&mut rate, &mut wc, 900);
    }
    let trace = tracer.borrow_mut().finish();
    let view = trace.view();
    let steps = view.named("write_cost_step");
    assert!(steps.len() >= 20, "one step per elapsed period");
    let mut saw_floor = false;
    let mut saw_recovery = false;
    let mut last_cost = p.write_cost_worst;
    for e in steps.iter() {
        let EventKind::WriteCostStep {
            old_cost,
            new_cost,
            below_min,
        } = e.kind
        else {
            unreachable!()
        };
        assert!(
            (old_cost - last_cost).abs() < EPS,
            "cost stream tore: {e:?}"
        );
        let expect = if below_min {
            (old_cost - p.delta).max(1.0)
        } else {
            (old_cost + p.write_cost_worst) / 2.0
        };
        assert!((new_cost - expect).abs() < EPS, "ADMI step wrong: {e:?}");
        saw_floor |= below_min && (new_cost - 1.0).abs() < EPS;
        saw_recovery |= !below_min;
        last_cost = new_cost;
    }
    assert!(saw_floor, "buffered writes never reached cost parity (1.0)");
    assert!(saw_recovery, "latency rise never flipped below_min off");
    assert!(
        last_cost > 8.0,
        "recovery must converge near worst-case: {last_cost}"
    );
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON round-trip, via a minimal in-test JSON parser.
// ---------------------------------------------------------------------------

#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) {
        self.skip_ws();
        assert_eq!(
            self.bytes.get(self.pos),
            Some(&b),
            "expected {:?} at byte {}",
            b as char,
            self.pos
        );
        self.pos += 1;
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        self.bytes[self.pos]
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Json {
        self.skip_ws();
        assert_eq!(
            &self.bytes[self.pos..self.pos + word.len()],
            word.as_bytes()
        );
        self.pos += word.len();
        v
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            let b = self.bytes[self.pos];
            self.pos += 1;
            match b {
                b'"' => return out,
                b'\\' => {
                    let esc = self.bytes[self.pos];
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .expect("utf8 escape");
                            let code = u32::from_str_radix(hex, 16).expect("hex escape");
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => panic!("unknown escape \\{}", other as char),
                    }
                }
                b => out.push(b as char),
            }
        }
    }

    fn number(&mut self) -> Json {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        Json::Num(text.parse().unwrap_or_else(|_| panic!("bad number {text}")))
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut out = Vec::new();
        if self.peek() == b']' {
            self.pos += 1;
            return Json::Arr(out);
        }
        loop {
            out.push(self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Json::Arr(out);
                }
                other => panic!("expected , or ] got {:?}", other as char),
            }
        }
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut out = Vec::new();
        if self.peek() == b'}' {
            self.pos += 1;
            return Json::Obj(out);
        }
        loop {
            let key = self.string();
            self.eat(b':');
            out.push((key, self.value()));
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Json::Obj(out);
                }
                other => panic!("expected , or }} got {:?}", other as char),
            }
        }
    }
}

fn parse_json(s: &str) -> Json {
    let mut p = Parser::new(s);
    let v = p.value();
    p.skip_ws();
    assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON value");
    v
}

/// The Chrome trace-event export parses as JSON and maps back onto the
/// recorded events one-to-one: same order, same timestamps, same pid/tid
/// attribution, sequence numbers intact.
#[test]
fn chrome_trace_round_trips_a_json_parse() {
    // A small, fully deterministic trace: the smooth-ramp controller drive.
    let tracer = Rc::new(RefCell::new(Tracer::new(TraceConfig::default())));
    let mut c = RateController::new(Params::default());
    c.attach_trace(TraceHandle::attached(&tracer), SsdId(3));
    for (i, lat) in (300..=1800).step_by(25).enumerate() {
        c.on_completion(
            SimTime::from_micros(100 * (i as u64 + 1)),
            IoType::Read,
            4096,
            SimDuration::from_micros(lat),
        );
        c.update_buckets(SimTime::from_micros(100 * (i as u64 + 1) + 50), 3.0);
    }
    let trace = tracer.borrow_mut().finish();
    assert!(!trace.events.is_empty());

    let doc = parse_json(&chrome_trace(&trace));
    let entries = match doc.get("traceEvents") {
        Some(Json::Arr(entries)) => entries,
        other => panic!("traceEvents array missing: {other:?}"),
    };
    let (meta, events): (Vec<&Json>, Vec<&Json>) = entries
        .iter()
        .partition(|e| e.get("ph").and_then(Json::as_str) == Some("M"));
    assert_eq!(meta.len(), 1, "one process_name entry for the single SSD");
    assert_eq!(
        meta[0]
            .get("args")
            .and_then(|a| a.get("name"))
            .and_then(Json::as_str),
        Some("ssd3")
    );
    assert_eq!(events.len(), trace.events.len(), "one entry per event");
    for (entry, recorded) in events.iter().zip(&trace.events) {
        let ph = entry.get("ph").and_then(Json::as_str).expect("ph");
        match recorded.kind {
            EventKind::RateUpdate { .. } | EventKind::BucketRefill { .. } => {
                assert_eq!(ph, "C", "counter events export as ph C: {entry:?}")
            }
            _ => assert_eq!(ph, "i", "instant events export as ph i: {entry:?}"),
        }
        assert_eq!(
            entry.get("pid").and_then(Json::as_num),
            Some(recorded.ssd.index() as f64),
            "pid is the SSD"
        );
        let ts = entry.get("ts").and_then(Json::as_num).expect("ts");
        let want_us = recorded.at.as_nanos() as f64 / 1000.0;
        assert!((ts - want_us).abs() < EPS, "ts {ts} != {want_us}");
        assert_eq!(
            entry
                .get("args")
                .and_then(|a| a.get("seq"))
                .and_then(Json::as_num),
            Some(recorded.seq as f64),
            "sequence number survives the round trip"
        );
        let cat = entry.get("cat").and_then(Json::as_str).expect("cat");
        assert_eq!(cat, recorded.component().name());
    }
}

/// Satellite: the four rack-level event kinds reconcile *exactly* against
/// the rack conservation-audit counters — every suspicion, reroute, node
/// death, and degraded-link crossing in the counters has its event in the
/// stream, and nothing was traced that the audit did not count.
#[test]
fn rack_events_reconcile_with_rack_audit_counters() {
    use gimbal_repro::rack::{RackConfig, RackTestbed};
    use gimbal_repro::telemetry::Component;

    let res = RackTestbed::new(RackConfig {
        faults: Some(FaultConfig {
            plan: FaultPlan::default()
                .with_node_death(1, ms(20))
                .with_node_degrade(
                    0,
                    FaultWindow::new(ms(30), ms(40)),
                    SimDuration::from_micros(50),
                ),
            retry: RetryConfig {
                base_timeout: SimDuration::from_millis(1),
                max_timeout: SimDuration::from_millis(8),
                max_retries: 5,
                suspect_after: 2,
            },
        }),
        trace: Some(TraceConfig { capacity: 1 << 20 }),
        duration: SimDuration::from_millis(60),
        warmup: SimDuration::from_millis(10),
        ..RackConfig::default()
    })
    .run();

    assert!(res.conservation_audit_holds());
    let trace = res.trace.as_ref().expect("tracing on");
    assert_eq!(
        trace.dropped_oldest, 0,
        "ring overflowed — counts below would be undercounts"
    );

    let count = |pred: &dyn Fn(&EventKind) -> bool| {
        trace.view().iter().filter(|e| pred(&e.kind)).count() as u64
    };
    assert_eq!(
        count(&|k| matches!(k, EventKind::NodeSuspected { .. })),
        res.rack.nodes_suspected,
        "suspicion events vs counter"
    );
    assert_eq!(
        count(&|k| matches!(k, EventKind::Rerouted { .. })),
        res.rack.reroutes,
        "reroute events vs counter"
    );
    assert_eq!(
        count(&|k| matches!(k, EventKind::NodeDead { .. })),
        1,
        "exactly one node died"
    );
    assert_eq!(
        count(&|k| matches!(k, EventKind::LinkDegraded { .. })),
        res.rack.link_degraded_crossings,
        "degraded-crossing events vs counter"
    );
    // Every rack event carries a node that exists in the rack, and the
    // stream reconciles with the component metric counter.
    let rack_events = trace.view().component(Component::Rack).len() as u64;
    assert!(rack_events > 0, "faulted rack run emitted no rack events");
    assert_eq!(trace.metrics.counter(Component::Rack.name()), rack_events);
    for e in trace.view().component(Component::Rack).iter() {
        let node = match e.kind {
            EventKind::NodeSuspected { node }
            | EventKind::NodeDead { node }
            | EventKind::LinkDegraded { node } => node,
            EventKind::Rerouted { to_node, .. } => to_node,
            _ => unreachable!("non-rack event under Component::Rack"),
        };
        assert!(node < 3, "event names node {node} outside the rack");
    }
}

// ---------------------------------------------------------------------------
// Batched-submission conformance (hot-path tentpole): coalescing same-tick
// command arrivals into one pipeline quantum must preserve per-IO
// Algorithm 1 accounting — congestion EWMA updates, DRR rounds, credit
// returns — *exactly*, for every batch size.
// ---------------------------------------------------------------------------

/// Fault-free mix for the batching tests (batching deliberately disengages
/// under fault plans, where replay dedup can turn an arrival into a resend
/// mid-batch). Six tenants on one SSD give the fabric plenty of same-tick
/// arrival collisions to coalesce.
fn batched_cfg(batch: u32, sanitize: bool) -> TestbedConfig {
    TestbedConfig {
        scheme: Scheme::Gimbal,
        precondition: Precondition::Fragmented,
        duration: SimDuration::from_millis(300),
        warmup: SimDuration::from_millis(75),
        seed: 23,
        batch,
        sanitize,
        trace: (!sanitize).then_some(TraceConfig { capacity: 1 << 21 }),
        ..TestbedConfig::default()
    }
}

/// Batch-of-1 is the unbatched engine, bit for bit: same stats digest, same
/// state-access journal — entry count included, so not a single pump or
/// scheduler decision moved.
#[test]
fn batch_of_one_is_bit_identical_to_unbatched() {
    let unbatched = Testbed::new(batched_cfg(1, true), mixed_workers(4, 2)).run();
    let default_cfg = TestbedConfig {
        batch: TestbedConfig::default().batch,
        ..batched_cfg(1, true)
    };
    let dflt = Testbed::new(default_cfg, mixed_workers(4, 2)).run();
    assert_eq!(unbatched.stats_digest(), dflt.stats_digest());
    assert_eq!(unbatched.access_digest(), dflt.access_digest());
    let ja = unbatched.access_journal.as_ref().expect("sanitized");
    let jb = dflt.access_journal.as_ref().expect("sanitized");
    assert_eq!(ja.len(), jb.len(), "journal shape changed at batch 1");
}

/// Stats and trace digests are stable across batch sizes: every per-IO
/// observation — congestion EWMA samples, rate updates, credit events,
/// device latencies — lands in the same order with the same values whether
/// the quantum held one command or thirty-two.
#[test]
fn batched_digests_are_stable_across_batch_sizes() {
    let base = Testbed::new(batched_cfg(1, false), mixed_workers(4, 2)).run();
    let base_trace = base.trace_digest().expect("trace enabled");
    for batch in [2u32, 8, 32] {
        let res = Testbed::new(batched_cfg(batch, false), mixed_workers(4, 2)).run();
        assert_eq!(
            res.stats_digest(),
            base.stats_digest(),
            "stats digest moved at batch {batch}"
        );
        assert_eq!(
            res.trace_digest().expect("trace enabled"),
            base_trace,
            "trace digest moved at batch {batch}"
        );
    }
}

/// The coalescing is real, not vacuous: a sanitized batch-32 run journals
/// strictly fewer pump quanta than batch-1 (each coalesced command skips an
/// intermediate scheduler decision + pump), while the stats stay identical.
#[test]
fn batching_coalesces_quanta_without_moving_stats() {
    let one = Testbed::new(batched_cfg(1, true), mixed_workers(4, 2)).run();
    let many = Testbed::new(batched_cfg(32, true), mixed_workers(4, 2)).run();
    assert_eq!(one.stats_digest(), many.stats_digest());
    let j1 = one.access_journal.as_ref().expect("sanitized").len();
    let j32 = many.access_journal.as_ref().expect("sanitized").len();
    assert!(
        j32 < j1,
        "batch-32 never coalesced a quantum (journal {j32} vs {j1} entries)"
    );
}

/// Algorithm 1 still holds *inside* a batched run: re-validate every
/// congestion-transition snapshot from a batch-32 trace with the same
/// branch arithmetic the unbatched conformance tests use, and re-check
/// credit-halving exactness and Congested-state rate monotonicity on the
/// batched stream.
#[test]
fn batched_run_still_conforms_to_algorithm_one() {
    let res = Testbed::new(batched_cfg(32, false), mixed_workers(4, 2)).run();
    let trace = res.trace.as_ref().expect("trace enabled");
    assert_eq!(trace.dropped_oldest, 0, "ring too small for conformance");
    let p = Params::default();
    let view = trace.view();
    let transitions = view.named("congestion_transition");
    assert!(
        !transitions.is_empty(),
        "no congestion activity at batch 32"
    );
    for e in transitions.iter() {
        check_transition_snapshot(e, &p);
    }
    for e in view.named("rate_update").iter() {
        let EventKind::RateUpdate {
            state,
            old_bps,
            new_bps,
            ..
        } = e.kind
        else {
            unreachable!()
        };
        if state == CongState::Congested {
            assert!(
                new_bps <= old_bps + EPS,
                "rate increased while Congested in a batched run: {e:?}"
            );
        }
    }
}
