//! Double-run determinism: the end-to-end proof behind the lint policy.
//!
//! The whole point of eradicating unordered maps and ambient time from the
//! simulation crates is that one seed pins down an entire run. This suite
//! runs each scheduling engine twice with an identical config and seed and
//! asserts that the two runs produced the *same submission trace* (every
//! command, in order, with time/tenant/opcode/lba/len) and the same stats
//! digest. It would have failed, flakily, before the `DetMap` migration:
//! per-process `HashMap` ordering leaked into tenant scheduling order.

use gimbal_repro::sim::SimDuration;
use gimbal_repro::testbed::{Precondition, RunResult, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_repro::workload::FioSpec;

const CAP: u64 = 512 * 1024 * 1024 / 4096;

fn mixed_workers(readers: u32, writers: u32) -> Vec<WorkerSpec> {
    let n = readers + writers;
    let per = CAP / u64::from(n);
    (0..n)
        .map(|i| {
            let ratio = if i < readers { 1.0 } else { 0.0 };
            let label = if i < readers { "read" } else { "write" };
            WorkerSpec::new(
                label,
                FioSpec::paper_default(ratio, 4096, u64::from(i) * per, per),
            )
        })
        .collect()
}

fn run_once(scheme: Scheme, seed: u64) -> RunResult {
    let cfg = TestbedConfig {
        scheme,
        precondition: Precondition::Fragmented,
        duration: SimDuration::from_millis(400),
        warmup: SimDuration::from_millis(100),
        seed,
        record_submissions: true,
        ..TestbedConfig::default()
    };
    Testbed::new(cfg, mixed_workers(3, 3)).run()
}

/// Same seed twice ⇒ byte-identical submission trace and stats digest, for
/// Gimbal and all three baselines.
#[test]
fn same_seed_reproduces_trace_and_stats_for_every_engine() {
    for scheme in [
        Scheme::Gimbal,
        Scheme::Reflex,
        Scheme::Parda,
        Scheme::FlashFq,
    ] {
        let a = run_once(scheme, 7);
        let b = run_once(scheme, 7);
        assert!(
            !a.submissions.is_empty(),
            "{}: no submissions recorded",
            scheme.name()
        );
        assert_eq!(
            a.submissions,
            b.submissions,
            "{}: submission traces diverged between identical runs",
            scheme.name()
        );
        assert_eq!(
            a.submission_digest(),
            b.submission_digest(),
            "{}: trace digests diverged",
            scheme.name()
        );
        assert_eq!(
            a.stats_digest(),
            b.stats_digest(),
            "{}: stats digests diverged between identical runs",
            scheme.name()
        );
    }
}

/// Different seeds must actually change the run (guards against the digest
/// being insensitive or the seed being ignored).
#[test]
fn different_seed_changes_the_trace() {
    let a = run_once(Scheme::Gimbal, 7);
    let b = run_once(Scheme::Gimbal, 8);
    assert_ne!(
        a.submission_digest(),
        b.submission_digest(),
        "different seeds produced identical submission traces"
    );
}

/// The trace itself is well-formed: command ids are unique and monotone,
/// and timestamps never decrease (submissions are recorded in issue order).
#[test]
fn submission_trace_is_ordered_and_unique() {
    let res = run_once(Scheme::Gimbal, 21);
    let mut last_cmd = None;
    let mut last_t = 0u64;
    for s in &res.submissions {
        if let Some(prev) = last_cmd {
            assert!(s.cmd > prev, "command ids must be strictly increasing");
        }
        assert!(s.at_ns >= last_t, "submission times must be monotone");
        last_cmd = Some(s.cmd);
        last_t = s.at_ns;
    }
}
