//! Double-run determinism: the end-to-end proof behind the lint policy.
//!
//! The whole point of eradicating unordered maps and ambient time from the
//! simulation crates is that one seed pins down an entire run. This suite
//! runs each scheduling engine twice with an identical config and seed and
//! asserts that the two runs produced the *same submission trace* (every
//! command, in order, with time/tenant/opcode/lba/len) and the same stats
//! digest. It would have failed, flakily, before the `DetMap` migration:
//! per-process `HashMap` ordering leaked into tenant scheduling order.

use gimbal_repro::sim::SimDuration;
use gimbal_repro::telemetry::TraceConfig;
use gimbal_repro::testbed::{
    check_run, AdmissionPolicy, CacheConfig, Precondition, RunResult, Scheme, Testbed,
    TestbedConfig, WorkerSpec, WritePolicy,
};
use gimbal_repro::workload::{AccessPattern, FioSpec};

const CAP: u64 = 512 * 1024 * 1024 / 4096;

fn mixed_workers(readers: u32, writers: u32) -> Vec<WorkerSpec> {
    let n = readers + writers;
    let per = CAP / u64::from(n);
    (0..n)
        .map(|i| {
            let ratio = if i < readers { 1.0 } else { 0.0 };
            let label = if i < readers { "read" } else { "write" };
            WorkerSpec::new(
                label,
                FioSpec::paper_default(ratio, 4096, u64::from(i) * per, per),
            )
        })
        .collect()
}

fn run_once(scheme: Scheme, seed: u64) -> RunResult {
    run_cfg(scheme, seed, None)
}

fn run_cfg(scheme: Scheme, seed: u64, trace: Option<TraceConfig>) -> RunResult {
    run_cache_cfg(scheme, seed, trace, None)
}

fn run_cache_cfg(
    scheme: Scheme,
    seed: u64,
    trace: Option<TraceConfig>,
    cache: Option<CacheConfig>,
) -> RunResult {
    let cfg = TestbedConfig {
        scheme,
        precondition: Precondition::Fragmented,
        duration: SimDuration::from_millis(400),
        warmup: SimDuration::from_millis(100),
        seed,
        record_submissions: true,
        trace,
        cache,
        ..TestbedConfig::default()
    };
    Testbed::new(cfg, mixed_workers(3, 3)).run()
}

/// Same seed twice ⇒ byte-identical submission trace and stats digest, for
/// Gimbal and all three baselines.
#[test]
fn same_seed_reproduces_trace_and_stats_for_every_engine() {
    for scheme in [
        Scheme::Gimbal,
        Scheme::Reflex,
        Scheme::Parda,
        Scheme::FlashFq,
    ] {
        let a = run_once(scheme, 7);
        let b = run_once(scheme, 7);
        assert!(
            !a.submissions.is_empty(),
            "{}: no submissions recorded",
            scheme.name()
        );
        assert_eq!(
            a.submissions,
            b.submissions,
            "{}: submission traces diverged between identical runs",
            scheme.name()
        );
        assert_eq!(
            a.submission_digest(),
            b.submission_digest(),
            "{}: trace digests diverged",
            scheme.name()
        );
        assert_eq!(
            a.stats_digest(),
            b.stats_digest(),
            "{}: stats digests diverged between identical runs",
            scheme.name()
        );
    }
}

/// Telemetry satellite: with tracing *enabled*, the recorded event stream is
/// itself deterministic — two runs at the same seed produce identical trace
/// digests (sequence numbers, timestamps, payloads and all), for every
/// engine. Different seeds must produce different traces.
#[test]
fn trace_digest_is_reproducible_per_seed_for_every_engine() {
    let trace = Some(TraceConfig { capacity: 1 << 20 });
    for scheme in [
        Scheme::Gimbal,
        Scheme::Reflex,
        Scheme::Parda,
        Scheme::FlashFq,
    ] {
        let a = run_cfg(scheme, 7, trace.clone());
        let b = run_cfg(scheme, 7, trace.clone());
        let ta = a.trace.as_ref().expect("trace enabled");
        let tb = b.trace.as_ref().expect("trace enabled");
        assert!(
            !ta.events.is_empty(),
            "{}: tracing enabled but no events recorded",
            scheme.name()
        );
        assert_eq!(
            ta.total_recorded,
            tb.total_recorded,
            "{}: event counts diverged",
            scheme.name()
        );
        assert_eq!(
            a.trace_digest(),
            b.trace_digest(),
            "{}: trace digests diverged between identical runs",
            scheme.name()
        );
        let c = run_cfg(scheme, 8, trace.clone());
        assert_ne!(
            a.trace_digest(),
            c.trace_digest(),
            "{}: different seeds produced identical traces",
            scheme.name()
        );
    }
}

/// Telemetry satellite, the other half of the bargain: *enabling* tracing
/// must not perturb the simulation. A traced run and an untraced run at the
/// same seed submit the same commands and compute the same stats — the
/// recorder observes the schedule, it never participates in it.
#[test]
fn tracing_is_an_observer_not_a_participant() {
    for scheme in [
        Scheme::Gimbal,
        Scheme::Reflex,
        Scheme::Parda,
        Scheme::FlashFq,
    ] {
        let plain = run_cfg(scheme, 7, None);
        let traced = run_cfg(scheme, 7, Some(TraceConfig { capacity: 1 << 20 }));
        assert!(plain.trace.is_none());
        assert_eq!(
            plain.submissions,
            traced.submissions,
            "{}: tracing changed the submission schedule",
            scheme.name()
        );
        assert_eq!(
            plain.submission_digest(),
            traced.submission_digest(),
            "{}: tracing changed the submission digest",
            scheme.name()
        );
        assert_eq!(
            plain.stats_digest(),
            traced.stats_digest(),
            "{}: tracing changed the stats digest",
            scheme.name()
        );
    }
}

/// Cache satellite, the bit-identity half: with the cache disabled — either
/// `None` or a zero-capacity config — every engine's run is byte-identical
/// to one on a build without cache support: same submissions, same stats
/// digest, same telemetry digest. The zero-capacity leg proves the pipeline
/// filters disabled configs out before constructing any cache state.
#[test]
fn cache_off_is_bit_identical_for_every_engine() {
    let trace = Some(TraceConfig { capacity: 1 << 20 });
    let zero = CacheConfig {
        capacity_bytes: 0,
        ..CacheConfig::default()
    };
    for scheme in [
        Scheme::Gimbal,
        Scheme::Reflex,
        Scheme::Parda,
        Scheme::FlashFq,
    ] {
        let none = run_cache_cfg(scheme, 7, trace.clone(), None);
        let zeroed = run_cache_cfg(scheme, 7, trace.clone(), Some(zero.clone()));
        assert!(
            zeroed.cache.is_empty(),
            "{}: zero-capacity config constructed a cache",
            scheme.name()
        );
        assert_eq!(
            none.submissions,
            zeroed.submissions,
            "{}: disabled cache changed the submission schedule",
            scheme.name()
        );
        assert_eq!(
            none.submission_digest(),
            zeroed.submission_digest(),
            "{}: disabled cache changed the submission digest",
            scheme.name()
        );
        assert_eq!(
            none.stats_digest(),
            zeroed.stats_digest(),
            "{}: disabled cache changed the stats digest",
            scheme.name()
        );
        assert_eq!(
            none.trace_digest(),
            zeroed.trace_digest(),
            "{}: disabled cache changed the telemetry digest",
            scheme.name()
        );
    }
}

/// Cache satellite, the determinism half: with the cache *enabled* on a
/// skewed read workload, two runs at the same seed agree on everything —
/// submissions, stats digest (which now folds the full cache state), and
/// the per-SSD hit/miss counters themselves.
#[test]
fn cache_on_double_run_is_deterministic() {
    let cache = Some(CacheConfig {
        policy: AdmissionPolicy::Always,
        ..CacheConfig::for_mb(16)
    });
    let run = |seed: u64| {
        let mut workers = mixed_workers(3, 3);
        for w in &mut workers {
            if w.fio.read_ratio > 0.5 {
                w.fio.read_pattern = AccessPattern::Zipfian;
            }
        }
        let cfg = TestbedConfig {
            scheme: Scheme::Gimbal,
            precondition: Precondition::Fragmented,
            duration: SimDuration::from_millis(400),
            warmup: SimDuration::from_millis(100),
            seed,
            record_submissions: true,
            cache: cache.clone(),
            ..TestbedConfig::default()
        };
        Testbed::new(cfg, workers).run()
    };
    let a = run(7);
    let b = run(7);
    assert!(!a.cache.is_empty(), "cache enabled but no stats collected");
    let hits: u64 = a.cache.iter().map(|c| c.hits).sum();
    assert!(hits > 0, "Zipf readers through a 16 MiB cache never hit");
    assert_eq!(a.cache, b.cache, "cache counters diverged between runs");
    assert_eq!(a.submissions, b.submissions);
    assert_eq!(a.stats_digest(), b.stats_digest());
    let c = run(8);
    assert_ne!(
        a.stats_digest(),
        c.stats_digest(),
        "different seeds produced identical cache-on stats digests"
    );
}

/// Write-back satellite, the determinism half: with `WritePolicy::Back`
/// enabled, two runs at the same seed agree on everything — submissions,
/// the stats digest (which now folds the write-back counters and the full
/// durability journal), and the flush/ack counters themselves — for Gimbal
/// and all three baselines. A different seed must change the digest.
#[test]
fn write_back_double_run_is_deterministic_for_every_engine() {
    let cache = Some(CacheConfig {
        policy: AdmissionPolicy::Always,
        write_policy: WritePolicy::Back,
        ..CacheConfig::for_mb(16)
    });
    for scheme in [
        Scheme::Gimbal,
        Scheme::Reflex,
        Scheme::Parda,
        Scheme::FlashFq,
    ] {
        let a = run_cache_cfg(scheme, 7, None, cache.clone());
        let b = run_cache_cfg(scheme, 7, None, cache.clone());
        assert!(
            !a.write_back.is_empty(),
            "{}: write-back enabled but no stats collected",
            scheme.name()
        );
        let acked: u64 = a.write_back.iter().map(|w| w.acked).sum();
        let flushed: u64 = a.write_back.iter().map(|w| w.flushed_lines).sum();
        assert!(acked > 0, "{}: no writes acked from DRAM", scheme.name());
        assert!(
            flushed > 0,
            "{}: flusher never drained a line",
            scheme.name()
        );
        check_run(&a);
        assert_eq!(
            a.write_back,
            b.write_back,
            "{}: write-back counters diverged between identical runs",
            scheme.name()
        );
        assert_eq!(
            a.journals,
            b.journals,
            "{}: durability journals diverged between identical runs",
            scheme.name()
        );
        assert_eq!(a.submissions, b.submissions, "{}", scheme.name());
        assert_eq!(a.stats_digest(), b.stats_digest(), "{}", scheme.name());
        let c = run_cache_cfg(scheme, 8, None, cache.clone());
        assert_ne!(
            a.stats_digest(),
            c.stats_digest(),
            "{}: different seeds produced identical write-back digests",
            scheme.name()
        );
    }
}

/// Write-back satellite, the bit-identity half: with write-back *off*
/// (`WritePolicy::Through`, the default) a run is byte-identical to one on
/// a config that never heard of write-back — the flusher knobs
/// (`dirty_high_percent`, `flush_max_age`, `flush_batch`) must be inert, no
/// write-back stats or journals may be collected, and the stats digest
/// matches the plain write-through digest exactly, for every engine.
#[test]
fn write_back_off_is_bit_identical_for_every_engine() {
    let plain = Some(CacheConfig {
        policy: AdmissionPolicy::Always,
        ..CacheConfig::for_mb(16)
    });
    // Same cache, write-back explicitly off, flusher knobs set to junk
    // values: none of it may leak into a write-through run.
    let knobs = Some(CacheConfig {
        policy: AdmissionPolicy::Always,
        write_policy: WritePolicy::Through,
        dirty_high_percent: 3,
        flush_max_age: SimDuration::from_millis(123),
        flush_batch: 17,
        ..CacheConfig::for_mb(16)
    });
    for scheme in [
        Scheme::Gimbal,
        Scheme::Reflex,
        Scheme::Parda,
        Scheme::FlashFq,
    ] {
        let a = run_cache_cfg(scheme, 7, None, plain.clone());
        let b = run_cache_cfg(scheme, 7, None, knobs.clone());
        assert!(
            a.write_back.is_empty() && b.write_back.is_empty(),
            "{}: write-through run collected write-back stats",
            scheme.name()
        );
        assert!(
            a.journals.is_empty() && b.journals.is_empty(),
            "{}: write-through run recorded a durability journal",
            scheme.name()
        );
        assert_eq!(
            a.submissions,
            b.submissions,
            "{}: inert flusher knobs changed the submission schedule",
            scheme.name()
        );
        assert_eq!(
            a.stats_digest(),
            b.stats_digest(),
            "{}: inert flusher knobs changed the stats digest",
            scheme.name()
        );
    }
}

/// Different seeds must actually change the run (guards against the digest
/// being insensitive or the seed being ignored).
#[test]
fn different_seed_changes_the_trace() {
    let a = run_once(Scheme::Gimbal, 7);
    let b = run_once(Scheme::Gimbal, 8);
    assert_ne!(
        a.submission_digest(),
        b.submission_digest(),
        "different seeds produced identical submission traces"
    );
}

/// The trace itself is well-formed: command ids are unique and monotone,
/// and timestamps never decrease (submissions are recorded in issue order).
#[test]
fn submission_trace_is_ordered_and_unique() {
    let res = run_once(Scheme::Gimbal, 21);
    let mut last_cmd = None;
    let mut last_t = 0u64;
    for s in &res.submissions {
        if let Some(prev) = last_cmd {
            assert!(s.cmd > prev, "command ids must be strictly increasing");
        }
        assert!(s.at_ns >= last_t, "submission times must be monotone");
        last_cmd = Some(s.cmd);
        last_t = s.at_ns;
    }
}
