//! Divergence-sanitizer suite: the state-access journal must itself be
//! deterministic, and turning it on must not perturb the simulation.
//!
//! The sanitizer ([`TestbedConfig::sanitize`]) journals every engine
//! decision as a `(tick, component, key, op)` tuple. This suite double-runs
//! all four scheduling engines with the journal enabled and asserts (a) the
//! runs stay bit-identical — stats digest, submission trace, *and* journal
//! digest — and (b) a sanitized run produces exactly the same simulation as
//! an unsanitized one, so the flag can be flipped on any failing seed
//! without changing what it reproduces.

use gimbal_repro::sim::{first_divergence, SimDuration};
use gimbal_repro::testbed::{Precondition, RunResult, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_repro::workload::FioSpec;

const CAP: u64 = 512 * 1024 * 1024 / 4096;

const SCHEMES: [Scheme; 4] = [
    Scheme::Gimbal,
    Scheme::Reflex,
    Scheme::Parda,
    Scheme::FlashFq,
];

fn run(scheme: Scheme, seed: u64, sanitize: bool) -> RunResult {
    let n = 4u64;
    let per = CAP / n;
    let workers: Vec<WorkerSpec> = (0..n)
        .map(|i| {
            let ratio = if i < 2 { 1.0 } else { 0.0 };
            WorkerSpec::new(
                if i < 2 { "read" } else { "write" },
                FioSpec::paper_default(ratio, 4096, i * per, per),
            )
        })
        .collect();
    let cfg = TestbedConfig {
        scheme,
        precondition: Precondition::Fragmented,
        duration: SimDuration::from_millis(300),
        warmup: SimDuration::from_millis(100),
        seed,
        record_submissions: true,
        sanitize,
        ..TestbedConfig::default()
    };
    Testbed::new(cfg, workers).run()
}

/// Double runs of every engine with the sanitizer on: bit-identical stats,
/// submissions, and access-journal digests, and no first divergence.
#[test]
fn sanitized_double_runs_are_bit_identical_for_every_engine() {
    for scheme in SCHEMES {
        let a = run(scheme, 11, true);
        let b = run(scheme, 11, true);
        let ja = a.access_journal.as_ref().expect("sanitize was on");
        let jb = b.access_journal.as_ref().expect("sanitize was on");
        assert!(
            !ja.is_empty(),
            "{}: sanitizer on but journal empty",
            scheme.name()
        );
        assert_eq!(
            a.access_digest(),
            b.access_digest(),
            "{}: access-journal digests diverged",
            scheme.name()
        );
        assert_eq!(
            first_divergence(ja, jb),
            None,
            "{}: comparator found divergence in identical runs",
            scheme.name()
        );
        assert_eq!(
            a.submissions,
            b.submissions,
            "{}: submission traces diverged",
            scheme.name()
        );
        assert_eq!(
            a.stats_digest(),
            b.stats_digest(),
            "{}: stats digests diverged",
            scheme.name()
        );
    }
}

/// Flag-gating: the sanitizer observes, it must not perturb. A sanitized
/// run and an unsanitized run at the same seed produce the same simulation.
#[test]
fn sanitizer_off_and_on_produce_identical_simulations() {
    for scheme in SCHEMES {
        let off = run(scheme, 23, false);
        let on = run(scheme, 23, true);
        assert!(
            off.access_journal.is_none(),
            "{}: journal recorded with sanitize off",
            scheme.name()
        );
        assert!(
            on.access_journal.is_some(),
            "{}: no journal with sanitize on",
            scheme.name()
        );
        assert_eq!(
            off.submissions,
            on.submissions,
            "{}: sanitizer changed the submission trace",
            scheme.name()
        );
        assert_eq!(
            off.stats_digest(),
            on.stats_digest(),
            "{}: sanitizer changed the stats digest",
            scheme.name()
        );
    }
}

/// Different seeds must yield different journals — the digest is a real
/// fingerprint of the decision sequence, not a constant.
#[test]
fn different_seeds_produce_different_journals() {
    let a = run(Scheme::Gimbal, 11, true);
    let b = run(Scheme::Gimbal, 12, true);
    assert_ne!(
        a.access_digest(),
        b.access_digest(),
        "seeds 11 and 12 produced identical access journals"
    );
    let r = first_divergence(
        a.access_journal.as_ref().unwrap(),
        b.access_journal.as_ref().unwrap(),
    )
    .expect("different seeds must diverge");
    assert!(r.tick > 0);
}
