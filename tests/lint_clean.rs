//! Tier-1 gate: the workspace must be free of determinism-lint errors.
//!
//! This is the wiring the determinism policy hangs on — `cargo test` fails
//! if anyone reintroduces a `HashMap`, a wall-clock read, or a float
//! equality into a simulation crate without a reasoned waiver. Run
//! `cargo run -p gimbal-lint` for the same report from the command line.

use std::path::Path;

use gimbal_lint::{format_human, run_workspace, Severity};

#[test]
fn workspace_has_no_determinism_lint_errors() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = run_workspace(root).expect("lint scan must be able to read the workspace");

    assert!(
        report.files_scanned > 30,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );

    let errors: Vec<String> = report.errors().map(format_human).collect();
    assert!(
        errors.is_empty(),
        "determinism lint found {} error(s):\n{}",
        errors.len(),
        errors.join("\n")
    );
}

#[test]
fn lint_reports_warnings_without_failing() {
    // D4 (unwrap in hot paths), D5 (panics in lib code) and D6 (telemetry
    // record-path allocation) are advisory: make sure warnings are surfaced
    // through the API but never escalate to errors.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = run_workspace(root).expect("lint scan must be able to read the workspace");
    for w in report.warnings() {
        assert_eq!(w.severity, Severity::Warning);
        assert!(
            matches!(w.rule.code(), "D4" | "D5" | "D6"),
            "unexpected advisory rule: {}",
            format_human(w)
        );
    }
}

#[test]
fn lint_covers_the_telemetry_crate() {
    // The scan must include `crates/telemetry` (D6's only target); guard
    // against the crate silently dropping out of the source-root walk.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    assert!(root.join("crates/telemetry/src/lib.rs").is_file());
    let report = run_workspace(root).expect("lint scan must be able to read the workspace");
    assert!(
        report.files_scanned > 100,
        "telemetry sources missing from the scan: {} files",
        report.files_scanned
    );
}
