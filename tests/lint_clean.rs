//! Tier-1 gate: the workspace must be free of determinism-lint errors.
//!
//! This is the wiring the determinism policy hangs on — `cargo test` fails
//! if anyone reintroduces a `HashMap`, a wall-clock read, or a float
//! equality into a simulation crate without a reasoned waiver. Run
//! `cargo run -p gimbal-lint` for the same report from the command line.

use std::path::Path;

use gimbal_lint::{format_human, run_workspace, Severity};

#[test]
fn workspace_has_no_determinism_lint_errors() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = run_workspace(root).expect("lint scan must be able to read the workspace");

    assert!(
        report.files_scanned > 30,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );

    let errors: Vec<String> = report.errors().map(format_human).collect();
    assert!(
        errors.is_empty(),
        "determinism lint found {} error(s):\n{}",
        errors.len(),
        errors.join("\n")
    );
}

#[test]
fn lint_reports_warnings_without_failing() {
    // D4 (unwrap in hot paths) is advisory: make sure warnings are surfaced
    // through the API but never escalate to errors.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = run_workspace(root).expect("lint scan must be able to read the workspace");
    for w in report.warnings() {
        assert_eq!(w.severity, Severity::Warning);
        assert_eq!(w.rule.code(), "D4");
    }
}
