//! Tier-1 gate: the workspace must be free of determinism-lint errors.
//!
//! This is the wiring the determinism policy hangs on — `cargo test` fails
//! if anyone reintroduces a `HashMap`, a wall-clock read, a float equality,
//! a truncating accounting cast (D7), un-whitelisted shared state (D8), or
//! unchecked time arithmetic (D9) into a simulation crate without a
//! reasoned waiver — and fails again if a waiver goes stale (expired or
//! orphaned). Run `cargo run -p gimbal-lint` for the same report from the
//! command line, `-- --waivers` for the waiver ledger.

use std::path::Path;

use gimbal_lint::{format_human, run_workspace, Severity};

#[test]
fn workspace_has_no_determinism_lint_errors() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = run_workspace(root).expect("lint scan must be able to read the workspace");

    assert!(
        report.files_scanned > 30,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );

    let errors: Vec<String> = report.errors().map(format_human).collect();
    assert!(
        errors.is_empty(),
        "determinism lint found {} error(s):\n{}",
        errors.len(),
        errors.join("\n")
    );
}

#[test]
fn lint_reports_warnings_without_failing() {
    // D4 (unwrap reachable from the poll loop), D5 (panics in lib code)
    // and D6 (telemetry record-path allocation) are advisory: make sure
    // warnings are surfaced through the API but never escalate to errors.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = run_workspace(root).expect("lint scan must be able to read the workspace");
    for w in report.warnings() {
        assert_eq!(w.severity, Severity::Warning);
        assert!(
            matches!(w.rule.code(), "D4" | "D5" | "D6"),
            "unexpected advisory rule: {}",
            format_human(w)
        );
    }
}

#[test]
fn lint_covers_the_telemetry_crate() {
    // The scan must include `crates/telemetry` (D6's only target); guard
    // against the crate silently dropping out of the source-root walk.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    assert!(root.join("crates/telemetry/src/lib.rs").is_file());
    let report = run_workspace(root).expect("lint scan must be able to read the workspace");
    assert!(
        report.files_scanned > 100,
        "telemetry sources missing from the scan: {} files",
        report.files_scanned
    );
}

#[test]
fn call_graph_index_finds_the_reactor_roots() {
    // D4's reachability analysis is only as good as the index under it:
    // if the poll-loop roots stop resolving (rename, move), D4 would
    // silently report nothing. Guard the index shape directly.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = run_workspace(root).expect("lint scan must be able to read the workspace");
    assert!(
        report.fns_indexed > 500,
        "suspiciously small symbol index: {} fns",
        report.fns_indexed
    );
    assert!(
        report.fns_hot > 50,
        "reactor roots unresolved: only {} hot fns (of {})",
        report.fns_hot,
        report.fns_indexed
    );
    assert!(
        report.fns_hot < report.fns_indexed,
        "reachability collapsed: every fn is hot"
    );
}

#[test]
fn all_waivers_are_active_and_well_formed() {
    // Waiver hygiene is part of tier-1: a malformed waiver (missing
    // owner/expiry/reason) is an error finding, and an expired or orphaned
    // one is debt the audit mode rejects. Keep the ledger clean here so CI
    // and `--waivers` never disagree.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = run_workspace(root).expect("lint scan must be able to read the workspace");
    assert!(
        !report.waivers.is_empty(),
        "waiver scan found nothing — parser broken?"
    );
    let orphaned: Vec<String> = report
        .orphaned_waivers()
        .map(|w| format!("{}:{} {}", w.file, w.site.line, w.site.slug))
        .collect();
    assert!(
        orphaned.is_empty(),
        "orphaned waivers (suppress nothing — delete them):\n{}",
        orphaned.join("\n")
    );
    let expired: Vec<String> = report
        .expired_waivers()
        .map(|w| format!("{}:{} {}", w.file, w.site.line, w.site.slug))
        .collect();
    assert!(
        expired.is_empty(),
        "expired waivers (renew or fix the code):\n{}",
        expired.join("\n")
    );
}
