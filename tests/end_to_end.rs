//! Cross-crate integration tests: full client → fabric → switch → SSD runs
//! exercising every scheme, plus the determinism guarantee that underpins
//! the reproducibility of every figure.

use gimbal_repro::sim::SimDuration;
use gimbal_repro::testbed::{
    KvTestbed, KvTestbedConfig, Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec,
};
use gimbal_repro::workload::{FioSpec, YcsbMix};

const CAP: u64 = 512 * 1024 * 1024 / 4096;

fn region(i: u32, n: u32) -> (u64, u64) {
    let per = CAP / u64::from(n);
    (u64::from(i) * per, per)
}

fn mixed_workers(readers: u32, writers: u32, io: u64) -> Vec<WorkerSpec> {
    let n = readers + writers;
    (0..n)
        .map(|i| {
            let (start, blocks) = region(i, n);
            let ratio = if i < readers { 1.0 } else { 0.0 };
            let label = if i < readers { "read" } else { "write" };
            WorkerSpec::new(label, FioSpec::paper_default(ratio, io, start, blocks))
        })
        .collect()
}

fn cfg(scheme: Scheme, pre: Precondition) -> TestbedConfig {
    TestbedConfig {
        scheme,
        precondition: pre,
        duration: SimDuration::from_millis(1500),
        warmup: SimDuration::from_millis(700),
        ..TestbedConfig::default()
    }
}

#[test]
fn every_scheme_moves_data_in_a_mixed_fragmented_workload() {
    for scheme in [
        Scheme::Vanilla,
        Scheme::Reflex,
        Scheme::Parda,
        Scheme::FlashFq,
        Scheme::Gimbal,
    ] {
        let res = Testbed::new(
            cfg(scheme, Precondition::Fragmented),
            mixed_workers(8, 8, 4096),
        )
        .run();
        let rd = res.aggregate_bps(|l| l == "read");
        let wr = res.aggregate_bps(|l| l == "write");
        assert!(rd > 5e6, "{}: reads {rd}", scheme.name());
        assert!(wr > 1e6, "{}: writes {wr}", scheme.name());
    }
}

#[test]
fn gimbal_balances_fragmented_read_write_cost_fairness() {
    // The paper's headline fairness result (§5.3, Fig 7c/f): under Gimbal
    // the read and write streams receive comparable *cost-normalized*
    // shares, while FlashFQ equalizes raw bandwidth (cost-blind).
    let gim = Testbed::new(
        cfg(Scheme::Gimbal, Precondition::Fragmented),
        mixed_workers(8, 8, 4096),
    )
    .run();
    let g_rd = gim.aggregate_bps(|l| l == "read");
    let g_wr = gim.aggregate_bps(|l| l == "write");
    // Reads must retain a large multiple of the write bandwidth (write cost
    // ~9 on this device); cost-blind schemes give reads ≈ writes.
    assert!(
        g_rd > 3.0 * g_wr,
        "gimbal read {g_rd:.0} vs write {g_wr:.0}"
    );

    let ffq = Testbed::new(
        cfg(Scheme::FlashFq, Precondition::Fragmented),
        mixed_workers(8, 8, 4096),
    )
    .run();
    let f_rd = ffq.aggregate_bps(|l| l == "read");
    let f_wr = ffq.aggregate_bps(|l| l == "write");
    let ratio = f_rd / f_wr;
    assert!(
        (0.5..2.0).contains(&ratio),
        "flashfq equalizes bandwidth: {ratio:.2}"
    );
    // And Gimbal's reads should beat FlashFQ's reads outright.
    assert!(g_rd > f_rd, "gimbal reads {g_rd:.0} vs flashfq {f_rd:.0}");
}

#[test]
fn gimbal_controls_tail_latency_versus_work_conserving_schemes() {
    // §5.4: credit-based flow control bounds tails that no-flow-control
    // schemes let grow.
    let run = |scheme| {
        let res = Testbed::new(
            cfg(scheme, Precondition::Clean),
            mixed_workers(16, 16, 128 * 1024),
        )
        .run();
        res.group_latency(|l| l == "write")[1].p999_ns
    };
    let gimbal = run(Scheme::Gimbal);
    let flashfq = run(Scheme::FlashFq);
    assert!(
        gimbal * 2 < flashfq,
        "gimbal write p99.9 {gimbal}ns vs flashfq {flashfq}ns"
    );
}

#[test]
fn identical_seeds_give_identical_results() {
    let run = || {
        let res = Testbed::new(
            cfg(Scheme::Gimbal, Precondition::Fragmented),
            mixed_workers(4, 4, 4096),
        )
        .run();
        res.workers
            .iter()
            .map(|w| {
                (
                    w.ops,
                    w.bytes,
                    w.read_latency.p999_ns,
                    w.write_latency.p999_ns,
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "simulation must be fully deterministic");
}

#[test]
fn different_seeds_differ_but_stay_in_band() {
    let run = |seed| {
        let mut c = cfg(Scheme::Gimbal, Precondition::Clean);
        c.seed = seed;
        let res = Testbed::new(c, mixed_workers(8, 0, 4096)).run();
        res.aggregate_bps(|_| true)
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a, b, "different seeds should perturb the run");
    let rel = (a - b).abs() / a.max(b);
    assert!(rel < 0.15, "but totals stay close: {a:.0} vs {b:.0}");
}

#[test]
fn multi_ssd_jbof_scales_aggregate_bandwidth() {
    let one = {
        let c = cfg(Scheme::Gimbal, Precondition::Clean);
        let w = vec![WorkerSpec::new(
            "r",
            FioSpec::paper_default(1.0, 128 * 1024, 0, CAP),
        )];
        Testbed::new(c, w).run().aggregate_bps(|_| true)
    };
    let four = {
        let mut c = cfg(Scheme::Gimbal, Precondition::Clean);
        c.num_ssds = 4;
        c.cores = 4;
        let w = (0..4)
            .map(|i| {
                WorkerSpec::new("r", FioSpec::paper_default(1.0, 128 * 1024, 0, CAP)).on_ssd(i)
            })
            .collect();
        Testbed::new(c, w).run().aggregate_bps(|_| true)
    };
    assert!(
        four > 2.5 * one,
        "4 SSDs should scale: {one:.0} → {four:.0}"
    );
}

#[test]
fn kv_deployment_runs_deterministically_across_schemes() {
    let run = |scheme| {
        let c = KvTestbedConfig {
            scheme,
            mix: YcsbMix::B,
            instances: 3,
            num_nodes: 1,
            ssds_per_node: 2,
            records_per_instance: 8_000,
            duration: SimDuration::from_millis(900),
            warmup: SimDuration::from_millis(300),
            ..KvTestbedConfig::default()
        };
        let res = KvTestbed::new(c).run();
        res.instances.iter().map(|i| i.ops).sum::<u64>()
    };
    for scheme in [Scheme::Reflex, Scheme::FlashFq, Scheme::Gimbal] {
        let a = run(scheme);
        let b = run(scheme);
        assert_eq!(a, b, "{}: nondeterministic KV run", scheme.name());
        assert!(a > 200, "{}: ops {a}", scheme.name());
    }
}
