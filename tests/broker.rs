//! Broker suite: inter-tenant token borrowing end to end.
//!
//! The broker is an option-gated subsystem: with `broker: None` the engine
//! schedules no epoch events and folds nothing extra into the digests, so a
//! broker-off run is bit-identical to a build without the crate. With the
//! ledger armed, every grant/borrow/repay is journaled and the conservation
//! audit (`granted == repaid + forgiven + outstanding`) runs at every epoch
//! and at the wall. This suite pins down:
//!
//! * broker-off bit-identity for all four compared schemes;
//! * broker-on double-run bit-identity (stats, submissions, access journal);
//! * conservation and debt forgiveness across injected device death;
//! * the isolation floor against adversarial always-on borrowers;
//! * flush traffic (write-back cache) charged to the owning tenant;
//! * deterministic Serifos-style migrations off interference telemetry.

use gimbal_repro::fabric::RetryConfig;
use gimbal_repro::sim::{FaultPlan, SimDuration, SimTime, SsdFaultSpec};
use gimbal_repro::testbed::{
    cache_tier_wb, AdmissionPolicy, BrokerConfig, FaultConfig, Precondition, RunResult, Scheme,
    Testbed, TestbedConfig, WorkerSpec, WritePolicy,
};
use gimbal_repro::workload::FioSpec;

const CAP: u64 = 512 * 1024 * 1024 / 4096;

fn ms(v: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(v)
}

/// A tight broker config: low capacity and a small burst so the heavy
/// tenant's bucket actually drains and borrowing is forced within a short
/// run, rather than coasting on the initial burst allowance.
fn tight_broker() -> BrokerConfig {
    BrokerConfig {
        capacity_bps: 64 * 1024 * 1024,
        burst_bytes: 256 * 1024,
        epoch: SimDuration::from_millis(5),
        ..BrokerConfig::default()
    }
}

/// One heavy 128 KiB reader plus `idle` mostly-quiet 4 KiB tenants on a
/// single SSD: the heavy tenant outruns its entitled share and must borrow
/// from the idle lenders every epoch.
fn skewed_workers(idle: u32) -> Vec<WorkerSpec> {
    let n = u64::from(idle) + 1;
    let per = CAP / n;
    let mut workers = vec![WorkerSpec::new(
        "heavy",
        FioSpec::paper_default(1.0, 128 * 1024, 0, per),
    )];
    for i in 0..idle {
        let mut fio = FioSpec::paper_default(1.0, 4096, (u64::from(i) + 1) * per, per);
        fio.queue_depth = 1;
        fio.rate_limit = Some(1024.0 * 1024.0);
        workers.push(WorkerSpec::new("idle", fio));
    }
    workers
}

fn run(cfg: TestbedConfig, workers: Vec<WorkerSpec>) -> RunResult {
    Testbed::new(cfg, workers).run()
}

fn base_cfg(scheme: Scheme) -> TestbedConfig {
    TestbedConfig {
        scheme,
        precondition: Precondition::Clean,
        duration: SimDuration::from_millis(300),
        warmup: SimDuration::from_millis(50),
        record_submissions: true,
        sanitize: true,
        ..TestbedConfig::default()
    }
}

/// With `broker: None`, every compared scheme double-runs to identical
/// stats, submission, and access-journal digests, and reports no broker
/// stats at all — the subsystem is provably inert when disabled.
#[test]
fn broker_off_is_bit_identical_for_every_scheme() {
    for scheme in Scheme::COMPARED {
        let a = run(base_cfg(scheme), skewed_workers(2));
        let b = run(base_cfg(scheme), skewed_workers(2));
        assert!(
            a.broker.is_none(),
            "{}: broker off but stats",
            scheme.name()
        );
        assert_eq!(
            a.stats_digest(),
            b.stats_digest(),
            "{}: broker-off stats digests diverged",
            scheme.name()
        );
        assert_eq!(
            a.submission_digest(),
            b.submission_digest(),
            "{}: broker-off submission digests diverged",
            scheme.name()
        );
        let (ja, jb) = (a.access_journal.unwrap(), b.access_journal.unwrap());
        assert_eq!(
            ja.digest(),
            jb.digest(),
            "{}: broker-off journals diverged",
            scheme.name()
        );
    }
}

/// With the ledger armed, double runs at the same seed are bit-identical —
/// borrowing, repayment, and the interest schedule are all deterministic —
/// and the run actually borrowed (the test is vacuous otherwise).
#[test]
fn broker_on_double_runs_are_bit_identical() {
    let mk = || {
        let cfg = TestbedConfig {
            broker: Some(tight_broker()),
            ..base_cfg(Scheme::Gimbal)
        };
        run(cfg, skewed_workers(2))
    };
    let a = mk();
    let b = mk();
    let sa = a.broker.as_ref().expect("broker stats");
    assert!(sa.borrow_events > 0, "no borrowing: {sa:?}");
    assert!(sa.conservation_holds(), "ledger leaked: {sa:?}");
    assert_eq!(a.stats_digest(), b.stats_digest());
    assert_eq!(a.submission_digest(), b.submission_digest());
    assert_eq!(
        a.access_journal.unwrap().digest(),
        b.access_journal.unwrap().digest()
    );
    assert_eq!(sa, b.broker.as_ref().expect("broker stats"));
}

/// Chaos: the SSD dies mid-run with debts outstanding. The next settlement
/// forgives every debt touching the dead device, conservation still
/// balances at the wall, and the command-level audit holds too.
#[test]
fn device_death_forgives_debts_and_conserves() {
    let cfg = TestbedConfig {
        broker: Some(tight_broker()),
        faults: Some(FaultConfig {
            plan: FaultPlan {
                ssd: vec![SsdFaultSpec {
                    fail_at: Some(ms(203)),
                    ..SsdFaultSpec::default()
                }],
                ..FaultPlan::default()
            },
            retry: RetryConfig::default(),
        }),
        ..base_cfg(Scheme::Gimbal)
    };
    let res = run(cfg, skewed_workers(2));
    let s = res.broker.as_ref().expect("broker stats");
    assert!(s.borrow_events > 0, "no borrowing before death: {s:?}");
    assert!(s.forgiven > 0, "death forgave nothing: {s:?}");
    assert!(s.conservation_holds(), "ledger leaked: {s:?}");
    assert_eq!(s.floor_violations, 0, "floor pierced: {s:?}");
    assert!(res.faults.conservation_holds(), "{:?}", res.faults);
}

/// Adversarial borrowers: three always-on 128 KiB tenants all over their
/// entitlement, one modest 4 KiB tenant. However hard the adversaries
/// borrow, the floor (each lender keeps `floor_num/floor_den` of its
/// entitled refill) is never pierced and the modest tenant still completes
/// IO every epoch.
#[test]
fn adversarial_borrowers_never_pierce_the_isolation_floor() {
    let per = CAP / 4;
    let mut workers: Vec<WorkerSpec> = (0..3u32)
        .map(|i| {
            WorkerSpec::new(
                "adversary",
                FioSpec::paper_default(1.0, 128 * 1024, u64::from(i) * per, per),
            )
        })
        .collect();
    let mut modest = FioSpec::paper_default(1.0, 4096, 3 * per, per);
    modest.queue_depth = 2;
    workers.push(WorkerSpec::new("modest", modest));
    let cfg = TestbedConfig {
        broker: Some(tight_broker()),
        ..base_cfg(Scheme::Gimbal)
    };
    let res = run(cfg, workers);
    let s = res.broker.as_ref().expect("broker stats");
    assert!(s.conservation_holds(), "ledger leaked: {s:?}");
    assert_eq!(s.floor_violations, 0, "floor pierced: {s:?}");
    let modest = res.workers.last().expect("modest worker");
    assert!(modest.ops > 0, "modest tenant starved: {modest:?}");
}

/// Flush-charging regression: with a write-back cache, the deterministic
/// flusher's writes reach the broker tagged with the *owning* tenant, not a
/// system account — `flush_charged_bytes` moves and stays inside the
/// overall charge total.
#[test]
fn write_back_flushes_are_charged_to_the_owning_tenant() {
    let per = CAP / 2;
    let workers = vec![
        WorkerSpec::new("writer", FioSpec::paper_default(0.0, 4096, 0, per)),
        WorkerSpec::new("reader", FioSpec::paper_default(1.0, 4096, per, per)),
    ];
    let cfg = TestbedConfig {
        broker: Some(tight_broker()),
        cache: cache_tier_wb(64, AdmissionPolicy::CongestionAware, WritePolicy::Back),
        ..base_cfg(Scheme::Gimbal)
    };
    let res = run(cfg, workers);
    let s = res.broker.as_ref().expect("broker stats");
    assert!(s.flush_charged_bytes > 0, "no flush traffic charged: {s:?}");
    assert!(
        s.flush_charged_bytes <= s.charged_bytes,
        "flush charge outside the total: {s:?}"
    );
    assert!(s.conservation_holds(), "ledger leaked: {s:?}");
}

/// Serifos-style placement: two SSDs, one crushed under three big-IO
/// tenants, the other idle with one light tenant. Epoch telemetry marks the
/// loaded device congested; the planner emits deterministic migrations and
/// double runs agree bit-for-bit on them.
#[test]
fn placement_migrations_fire_and_are_deterministic() {
    let mk = || {
        let per = CAP / 4;
        let mut workers: Vec<WorkerSpec> = (0..3u32)
            .map(|i| {
                WorkerSpec::new(
                    "crush",
                    FioSpec::paper_default(0.0, 128 * 1024, u64::from(i) * per, per),
                )
                .on_ssd(0)
            })
            .collect();
        let mut light = FioSpec::paper_default(1.0, 4096, 3 * per, per);
        light.queue_depth = 1;
        workers.push(WorkerSpec::new("light", light).on_ssd(1));
        let cfg = TestbedConfig {
            num_ssds: 2,
            precondition: Precondition::Fragmented,
            broker: Some(BrokerConfig {
                placement: true,
                max_moves_per_epoch: 1,
                ..tight_broker()
            }),
            ..base_cfg(Scheme::Gimbal)
        };
        run(cfg, workers)
    };
    let a = mk();
    let b = mk();
    let s = a.broker.as_ref().expect("broker stats");
    assert!(s.migrations > 0, "planner never moved a tenant: {s:?}");
    assert!(s.conservation_holds(), "ledger leaked: {s:?}");
    assert_eq!(s, b.broker.as_ref().expect("broker stats"));
    assert_eq!(a.stats_digest(), b.stats_digest());
    assert_eq!(
        a.access_journal.unwrap().digest(),
        b.access_journal.unwrap().digest()
    );
}
