//! Headline results of the paper, pinned as regression tests. Each test
//! re-runs a (shortened) version of the corresponding experiment and
//! asserts the paper's *shape* — orderings and rough ratios, not absolute
//! microseconds.

use gimbal_repro::fabric::IoType;
use gimbal_repro::sim::{SimDuration, SimTime};
use gimbal_repro::testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_repro::workload::FioSpec;

const CAP: u64 = 512 * 1024 * 1024 / 4096;

fn region(i: u32, n: u32) -> (u64, u64) {
    let per = CAP / u64::from(n);
    (u64::from(i) * per, per)
}

fn cfg(scheme: Scheme, pre: Precondition) -> TestbedConfig {
    TestbedConfig {
        scheme,
        precondition: pre,
        duration: SimDuration::from_millis(1400),
        warmup: SimDuration::from_millis(700),
        ..TestbedConfig::default()
    }
}

/// §2.3 / Fig 4: on an unmanaged target, a 4× more intense identical flow
/// takes several times the victim's bandwidth.
#[test]
fn fig4_intensity_steals_bandwidth_without_isolation() {
    let (s0, b0) = region(0, 2);
    let (s1, b1) = region(1, 2);
    let victim = WorkerSpec::new("victim", FioSpec::paper_default(1.0, 4096, s0, b0));
    let neighbor = WorkerSpec::new(
        "neighbor",
        FioSpec {
            queue_depth: 128,
            ..FioSpec::paper_default(1.0, 4096, s1, b1)
        },
    );
    let res = Testbed::new(
        cfg(Scheme::Vanilla, Precondition::Clean),
        vec![victim, neighbor],
    )
    .run();
    let v = res.workers[0].bandwidth_bps();
    let n = res.workers[1].bandwidth_bps();
    assert!(n > 2.5 * v, "intense neighbor {n:.0} vs victim {v:.0}");
}

/// §5.2 / Fig 6: ReFlex's static worst-case model leaves clean-SSD read
/// bandwidth on the table by more than 2× relative to Gimbal.
#[test]
fn fig6_reflex_underutilizes_clean_reads() {
    let run = |scheme| {
        let workers: Vec<WorkerSpec> = (0..16)
            .map(|i| {
                let (s, b) = region(i, 16);
                WorkerSpec::new("r", FioSpec::paper_default(1.0, 128 * 1024, s, b))
            })
            .collect();
        Testbed::new(cfg(scheme, Precondition::Clean), workers)
            .run()
            .aggregate_bps(|_| true)
    };
    let gimbal = run(Scheme::Gimbal);
    let reflex = run(Scheme::Reflex);
    assert!(
        gimbal > 2.0 * reflex,
        "gimbal {gimbal:.0} vs reflex {reflex:.0} (paper: ×2.4)"
    );
}

/// §5.5 / Fig 9: the write-cost estimator credits buffered writes. A single
/// rate-capped writer joining a read-heavy mix should see ~buffer-level
/// write latency while readers see device-level latency.
#[test]
fn fig9_first_writer_is_absorbed_by_the_buffer() {
    let mut workers: Vec<WorkerSpec> = (0..8)
        .map(|i| {
            let (s, b) = region(i, 9);
            WorkerSpec::new(
                "reader",
                FioSpec {
                    queue_depth: 8,
                    rate_limit: Some(200e6),
                    ..FioSpec::paper_default(1.0, 128 * 1024, s, b)
                },
            )
        })
        .collect();
    let (s, b) = region(8, 9);
    workers.push(WorkerSpec::new(
        "writer",
        FioSpec {
            queue_depth: 8,
            rate_limit: Some(60e6),
            ..FioSpec::paper_default(0.0, 128 * 1024, s, b)
        },
    ));
    let mut c = cfg(Scheme::Gimbal, Precondition::Fragmented);
    c.duration = SimDuration::from_millis(2000);
    c.warmup = SimDuration::from_millis(1000);
    let res = Testbed::new(c, workers).run();
    let writer = res.workers.iter().find(|w| w.label == "writer").unwrap();
    let reader = res.workers.iter().find(|w| w.label == "reader").unwrap();
    assert!(
        writer.write_latency.mean_us() < 150.0,
        "buffered writes: {:.0}us",
        writer.write_latency.mean_us()
    );
    assert!(
        reader.read_latency.mean_us() > 3.0 * writer.write_latency.mean_us(),
        "reads pay device time: {:.0}us vs {:.0}us",
        reader.read_latency.mean_us(),
        writer.write_latency.mean_us()
    );
    // The writer sustains its capped rate.
    assert!(
        writer.bandwidth_bps() > 45e6,
        "writer {:.0} MB/s",
        writer.bandwidth_bps() / 1e6
    );
}

/// §3.5: the virtual-slot DRR favors device-efficient large IOs — the
/// 128 KB tenant receives at least as much bandwidth per worker as the
/// 4 KB tenants (the paper measures +22 %).
#[test]
fn fig7_gimbal_grants_large_ios_their_efficiency() {
    let mut workers: Vec<WorkerSpec> = (0..16)
        .map(|i| {
            let (s, b) = region(i, 20);
            WorkerSpec::new("small", FioSpec::paper_default(1.0, 4096, s, b))
        })
        .collect();
    for i in 16..20 {
        let (s, b) = region(i, 20);
        workers.push(WorkerSpec::new(
            "large",
            FioSpec::paper_default(1.0, 128 * 1024, s, b),
        ));
    }
    let res = Testbed::new(cfg(Scheme::Gimbal, Precondition::Clean), workers).run();
    let small = res.aggregate_bps(|l| l == "small") / 16.0;
    let large = res.aggregate_bps(|l| l == "large") / 4.0;
    assert!(
        large > small && large < 2.5 * small,
        "per-worker large {large:.0} vs small {small:.0} (paper: +22%)"
    );
}

/// §5.8: retuning only Thresh_max adapts Gimbal to a different device —
/// the P3600 profile still reaches high fragmented-read utilization.
#[test]
fn s58_gimbal_generalizes_to_the_p3600_profile() {
    use gimbal_repro::gimbal::Params;
    use gimbal_repro::ssd::{SsdConfig, SsdProfile};
    let workers: Vec<WorkerSpec> = (0..16)
        .map(|i| {
            let (s, b) = region(i, 16);
            WorkerSpec::new("r", FioSpec::paper_default(1.0, 4096, s, b))
        })
        .collect();
    let mut c = cfg(Scheme::Gimbal, Precondition::Fragmented);
    c.ssd = SsdConfig {
        logical_capacity: 512 * 1024 * 1024,
        ..SsdConfig::profile(SsdProfile::P3600)
    };
    c.gimbal_params = Params::p3600();
    let res = Testbed::new(c, workers).run();
    let bw = res.aggregate_bps(|_| true);
    // P3600 die-limited 4 KB read ceiling ≈ 32/88 µs ≈ 1.45 GB/s.
    assert!(bw > 0.8e9, "P3600 fragmented reads: {:.0} MB/s", bw / 1e6);
}

/// §5.4: under high consolidation (8 readers + 8 writers on one fragmented
/// SSD), Gimbal's flow control bounds the *write* tail that an unmanaged
/// target lets grow unboundedly, while keeping read tails comparable.
#[test]
fn gimbal_bounds_tails_under_consolidation() {
    let run = |scheme| {
        let mut workers = Vec::new();
        for i in 0..8 {
            let (s, b) = region(i, 16);
            workers.push(WorkerSpec::new(
                "reader",
                FioSpec::paper_default(1.0, 4096, s, b),
            ));
        }
        for i in 8..16 {
            let (s, b) = region(i, 16);
            workers.push(WorkerSpec::new(
                "writer",
                FioSpec::paper_default(0.0, 4096, s, b),
            ));
        }
        let res = Testbed::new(cfg(scheme, Precondition::Fragmented), workers).run();
        let [rd, _] = res.group_latency(|l| l == "reader");
        let [_, wr] = res.group_latency(|l| l == "writer");
        (rd.p999_ns, wr.p999_ns)
    };
    let (g_rd, g_wr) = run(Scheme::Gimbal);
    let (v_rd, v_wr) = run(Scheme::Vanilla);
    assert!(
        g_wr * 2 < v_wr,
        "gimbal write p99.9 {g_wr} vs vanilla {v_wr}"
    );
    assert!(
        g_rd < 2 * v_rd,
        "read tails stay comparable: {g_rd} vs {v_rd}"
    );
    let _ = (IoType::Read, SimTime::ZERO); // imports used by other tests
}
