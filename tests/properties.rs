//! Property-style tests on the core data structures' invariants.
//!
//! These were originally written against `proptest`; the workspace is now
//! dependency-free, so each property drives its random cases from `SimRng`
//! with fixed seeds instead. Coverage is the same shape — randomized inputs,
//! many cases per property — but fully deterministic, which also means a
//! failure here reproduces identically on every machine.

use gimbal_repro::cache::{AdmissionPolicy, CacheConfig, SsdCache, WritePolicy};
use gimbal_repro::fabric::{CmdId, IoType, NvmeCmd, Priority, SsdId, TenantId};
use gimbal_repro::gimbal::scheduler::SchedPoll;
use gimbal_repro::gimbal::{Params, VirtualSlotScheduler};
use gimbal_repro::sim::{
    ArenaError, EventQueue, HeapEventQueue, Histogram, IoArena, SimRng, SimTime, TokenBucket,
};
use gimbal_repro::ssd::ftl::Ftl;
use gimbal_repro::ssd::SsdConfig;
use gimbal_repro::switch::Request;
use gimbal_repro::testbed::check_journal;
use gimbal_repro::workload::Zipfian;

fn req(id: u64, tenant: u32, op: IoType, len: u32) -> Request {
    Request {
        cmd: NvmeCmd {
            id: CmdId(id),
            tenant: TenantId(tenant),
            ssd: SsdId(0),
            opcode: op,
            lba: 0,
            len,
            priority: Priority::NORMAL,
            issued_at: SimTime::ZERO,
            wal: None,
        },
        ready_at: SimTime::ZERO,
    }
}

/// Histogram quantiles are monotone in q and bracketed by min/max.
#[test]
fn histogram_quantiles_are_monotone() {
    let mut rng = SimRng::new(0x9157_0001);
    for case in 0..200 {
        let n = 1 + rng.gen_below(499) as usize;
        let values: Vec<u64> = (0..n).map(|_| rng.gen_below(1_000_000_000)).collect();
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let qs = [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];
        let mut last = 0;
        for &q in &qs {
            let v = h.quantile(q);
            assert!(
                v >= last,
                "case {case}: quantile({q}) = {v} < previous {last}"
            );
            last = v;
        }
        assert!(h.quantile(0.0) >= h.min());
        assert!(h.quantile(1.0) <= h.max());
        assert_eq!(h.count(), values.len() as u64);
    }
}

/// A token bucket never goes negative and never exceeds its capacity,
/// under arbitrary interleavings of refills, deposits, and consumes.
#[test]
fn token_bucket_stays_in_bounds() {
    let mut rng = SimRng::new(0x9157_0002);
    for case in 0..200 {
        let mut tb = TokenBucket::with_rate(1e8, 1 << 20);
        let mut t = 0u64;
        let steps = 1 + rng.gen_below(199);
        for _ in 0..steps {
            let kind = rng.gen_below(3) as u8;
            let arg = 1 + rng.gen_below(99_999);
            match kind {
                0 => {
                    t += arg;
                    tb.refill(SimTime::from_nanos(t));
                }
                1 => {
                    let _ = tb.try_consume(arg);
                }
                _ => {
                    let overflow = tb.deposit(arg as f64);
                    assert!(overflow >= 0.0, "case {case}");
                }
            }
            assert!(tb.tokens() >= 0.0, "case {case}");
            assert!(tb.tokens() <= tb.capacity() + 1e-6, "case {case}");
        }
    }
}

/// The virtual-slot DRR conserves requests: everything enqueued is either
/// submitted or still queued, never duplicated or lost, under random
/// arrival/complete interleavings.
#[test]
fn drr_conserves_requests() {
    let mut rng = SimRng::new(0x9157_0003);
    for case in 0..150 {
        let mut s = VirtualSlotScheduler::new(Params::default());
        let mut next = 0u64;
        let mut enqueued = 0usize;
        let mut submitted = Vec::new();
        let mut completed = 0usize;
        let steps = 1 + rng.gen_below(299);
        for _ in 0..steps {
            let kind = rng.gen_below(4) as u8;
            let tenant = rng.gen_below(4) as u32;
            let sz = 1 + rng.gen_below(2) as u32;
            match kind {
                0 | 1 => {
                    let op = if kind == 0 {
                        IoType::Read
                    } else {
                        IoType::Write
                    };
                    s.on_arrival(req(next, tenant, op, sz * 4096), SimTime::ZERO);
                    next += 1;
                    enqueued += 1;
                }
                2 => {
                    if let SchedPoll::Submit(r) = s.dequeue(SimTime::ZERO, 3.0, |_| true) {
                        submitted.push(r.cmd.id);
                    }
                }
                _ => {
                    if let Some(id) = submitted.pop() {
                        s.on_completion(id, SimTime::ZERO);
                        completed += 1;
                    }
                }
            }
        }
        // Drain: everything left must come out exactly once.
        while let SchedPoll::Submit(r) = s.dequeue(SimTime::ZERO, 3.0, |_| true) {
            s.on_completion(r.cmd.id, SimTime::ZERO);
            completed += 1;
            if submitted.len() + completed > enqueued {
                break;
            }
        }
        // Complete all in-flight.
        for id in submitted.drain(..) {
            s.on_completion(id, SimTime::ZERO);
            completed += 1;
        }
        // Second drain after completions freed slots.
        while let SchedPoll::Submit(r) = s.dequeue(SimTime::ZERO, 3.0, |_| true) {
            s.on_completion(r.cmd.id, SimTime::ZERO);
            completed += 1;
        }
        assert_eq!(
            completed, enqueued,
            "case {case}: requests lost or duplicated"
        );
        assert_eq!(s.queued(), 0, "case {case}");
    }
}

/// FTL map/rmap stay mutually consistent under random writes and
/// invalidations, and free-block accounting never goes negative.
#[test]
fn ftl_mapping_consistency() {
    let mut rng = SimRng::new(0x9157_0004);
    for case in 0..50 {
        let cfg = SsdConfig {
            logical_capacity: 64 * 1024 * 1024,
            ..SsdConfig::default()
        };
        let mut ftl = Ftl::new(&cfg);
        let dies = cfg.dies();
        let mut die = 0u32;
        let steps = 1 + rng.gen_below(399);
        for _ in 0..steps {
            let kind = rng.gen_below(2) as u8;
            let lpn = rng.gen_below(2048);
            match kind {
                0 => {
                    // Keep a couple of free blocks via opportunistic GC.
                    if ftl.free_blocks(die) <= cfg.gc_low_watermark {
                        if let Some(victim) = ftl.pick_victim(die) {
                            let work = ftl.gc_work(victim);
                            for k in work.valid_lpns {
                                ftl.write_to_die(u64::from(k), die, true);
                            }
                            ftl.erase(victim);
                        }
                    }
                    let addr = ftl.write_to_die(lpn, die, false);
                    assert_eq!(ftl.translate(lpn), Some(addr), "case {case}");
                    die = (die + 1) % dies;
                }
                _ => {
                    ftl.invalidate(lpn);
                    assert!(ftl.translate(lpn).is_none(), "case {case}");
                }
            }
        }
        for d in 0..dies {
            assert!(ftl.free_blocks(d) <= cfg.blocks_per_die(), "case {case}");
        }
    }
}

/// Zipfian draws always land in range and the most popular rank really is
/// rank 0 for heavy skew.
#[test]
fn zipfian_bounds() {
    let mut meta = SimRng::new(0x9157_0005);
    for case in 0..40 {
        let items = 2 + meta.gen_below(49_998);
        let seed = meta.gen_below(1000);
        let z = Zipfian::new(items, 0.99);
        let mut rng = SimRng::new(seed);
        let mut zero = 0u64;
        let n = 2_000;
        for _ in 0..n {
            let k = z.next(&mut rng);
            assert!(k < items, "case {case}");
            if k == 0 {
                zero += 1;
            }
        }
        // Rank 0 gets at least its uniform share for any skewed keyspace.
        assert!(
            zero as f64 >= n as f64 / items as f64,
            "case {case}: items={items} zero={zero}"
        );
    }
}

fn wb_cache(lines: u64) -> SsdCache {
    SsdCache::new(
        SsdId(0),
        CacheConfig {
            capacity_bytes: lines * 4096,
            policy: AdmissionPolicy::Always,
            write_policy: WritePolicy::Back,
            ..CacheConfig::default()
        },
    )
}

fn wb_write(id: u64, tenant: u32, lba: u64, lines: u32, wal: Option<u64>) -> NvmeCmd {
    NvmeCmd {
        id: CmdId(id),
        tenant: TenantId(tenant),
        ssd: SsdId(0),
        opcode: IoType::Write,
        lba,
        len: lines * 4096,
        priority: Priority::NORMAL,
        issued_at: SimTime::ZERO,
        wal,
    }
}

/// Dirty-set accounting: under arbitrary interleavings of DRAM acks,
/// pass-through writes, flush completions (some failing), power losses and
/// device death, every acked line is accounted for exactly once —
/// `acked_lines == flushed + superseded + lost + still-dirty` — and the
/// crash-consistency oracle's journal replay agrees with the surfaced
/// counters. This is the "no silent loss, no phantom loss" property driven
/// from random inputs rather than a scripted fault plan. Tenants own
/// disjoint LBA ranges, as they do in the testbed.
#[test]
fn write_back_dirty_set_accounting_is_exact() {
    let mut rng = SimRng::new(0x9157_0007);
    for case in 0..60 {
        let mut c = wb_cache(32);
        let mut inflight: Vec<u64> = Vec::new();
        let mut next_wal = [0u64; 3];
        let mut t_ns = 0u64;
        let steps = 50 + rng.gen_below(250);
        for i in 0..steps {
            t_ns += 1 + rng.gen_below(5_000);
            let now = SimTime::from_nanos(t_ns);
            match rng.gen_below(10) {
                // Mostly writes: DRAM ack with pass-through fallback.
                0..=5 => {
                    let tenant = rng.gen_below(3) as u32;
                    let lba = u64::from(tenant) * 1024 + rng.gen_below(24);
                    let span = 1 + rng.gen_below(3) as u32;
                    let wal = (rng.gen_below(3) == 0).then(|| {
                        next_wal[tenant as usize] += 1;
                        next_wal[tenant as usize]
                    });
                    let w = wb_write(i, tenant, lba, span, wal);
                    if !c.write_back_ack(&w, now) {
                        c.stage_write(&w, now);
                        c.on_write_completion(&w, rng.gen_below(8) == 0, now);
                    }
                }
                // Issue flushes.
                6 | 7 => inflight.extend(c.take_flushes(now).into_iter().map(|f| f.id)),
                // Complete an in-flight flush, sometimes failing it.
                8 => {
                    if let Some(id) = inflight.pop() {
                        c.on_flush_completion(id, rng.gen_below(5) == 0, now);
                    }
                }
                // Rarely, a crash.
                _ => {
                    if rng.gen_below(20) == 0 {
                        if rng.gen_below(2) == 0 {
                            c.power_loss(now);
                        } else {
                            c.on_device_death(now);
                        }
                        inflight.clear();
                    }
                }
            }
            let wb = c.write_back_stats();
            assert!(wb.conservation_holds(), "case {case} step {i}: {wb:?}");
        }
        // Replay the journal through the oracle: counters, surfaced losses
        // and the journal must tell the same story.
        check_journal(0, c.journal(), c.losses(), &c.write_back_stats());
    }
}

/// Partition capacity conservation: dirty lines are pinned, so no tenant's
/// dirty count may ever exceed its partition budget, and the global dirty
/// count equals the sum over tenants — after every single operation. All
/// tenants are registered up front (budgets rebalance on first touch, and a
/// shrink cannot evict pinned lines, so a stable tenant set is the regime
/// the invariant is strict in), and tenants own disjoint LBA ranges.
#[test]
fn write_back_partitions_never_overcommit() {
    let mut rng = SimRng::new(0x9157_0008);
    for case in 0..60 {
        let mut c = wb_cache(24);
        let mut inflight: Vec<u64> = Vec::new();
        let mut t_ns = 0u64;
        // Pin the tenant set before any line is dirtied.
        for t in 0..4u32 {
            c.stage_write(
                &wb_write(u64::from(t), t, u64::from(t) * 1024, 1, None),
                SimTime::ZERO,
            );
        }
        let steps = 50 + rng.gen_below(200);
        for i in 0..steps {
            t_ns += 1 + rng.gen_below(5_000);
            let now = SimTime::from_nanos(t_ns);
            match rng.gen_below(8) {
                0..=4 => {
                    let tenant = rng.gen_below(4) as u32;
                    let w = wb_write(
                        i + 4,
                        tenant,
                        u64::from(tenant) * 1024 + rng.gen_below(16),
                        1 + rng.gen_below(4) as u32,
                        None,
                    );
                    if !c.write_back_ack(&w, now) {
                        c.stage_write(&w, now);
                        c.on_write_completion(&w, false, now);
                    }
                }
                5 | 6 => inflight.extend(c.take_flushes(now).into_iter().map(|f| f.id)),
                _ => {
                    if let Some(id) = inflight.pop() {
                        c.on_flush_completion(id, rng.gen_below(6) == 0, now);
                    }
                }
            }
            let parts = c.tenant_dirty();
            for &(t, dirty, budget) in &parts {
                assert!(
                    dirty <= budget,
                    "case {case} step {i}: tenant {t:?} pinned {dirty} dirty lines \
                     over its budget of {budget}"
                );
            }
            let total: u64 = parts.iter().map(|&(_, d, _)| d).sum();
            assert_eq!(
                total,
                c.write_back_stats().dirty_lines,
                "case {case} step {i}: per-tenant dirty counts disagree with the total"
            );
        }
    }
}

/// Flush order respects WAL tags: with per-tenant monotone WAL sequence
/// numbers (as `gimbal-lsm-kv` issues them over the tenant's own LBA
/// range) and no flush failures, the flusher drains a tenant's WAL-tagged
/// lines in non-decreasing tag order.
#[test]
fn write_back_flush_order_respects_wal_tags() {
    let mut rng = SimRng::new(0x9157_0009);
    for case in 0..60 {
        let mut c = wb_cache(32);
        let mut next_wal = [0u64; 3];
        let mut last_flushed = [0u64; 3];
        let mut t_ns = 0u64;
        let steps = 50 + rng.gen_below(200);
        for i in 0..steps {
            t_ns += 1 + rng.gen_below(5_000);
            let now = SimTime::from_nanos(t_ns);
            // A burst of writes, WAL-tagged half the time.
            for b in 0..1 + rng.gen_below(4) {
                let tenant = rng.gen_below(3) as u32;
                let wal = (rng.gen_below(2) == 0).then(|| {
                    next_wal[tenant as usize] += 1;
                    next_wal[tenant as usize]
                });
                let lba = u64::from(tenant) * 1024 + rng.gen_below(24);
                let w = wb_write(i * 8 + b, tenant, lba, 1, wal);
                let _ = c.write_back_ack(&w, now);
            }
            // Drain and complete successfully — no requeue exemptions needed.
            for io in c.take_flushes(now) {
                if let Some(w) = io.wal {
                    let t = io.tenant.0 as usize;
                    assert!(
                        w >= last_flushed[t],
                        "case {case} step {i}: tenant {t} flushed WAL tag {w} after \
                         {}",
                        last_flushed[t]
                    );
                    last_flushed[t] = w;
                }
                c.on_flush_completion(io.id, false, now);
            }
        }
        check_journal(0, c.journal(), c.losses(), &c.write_back_stats());
    }
}

/// PCG is deterministic per seed and uniform-ish over small ranges.
#[test]
fn rng_gen_below_is_in_range() {
    let mut meta = SimRng::new(0x9157_0006);
    for case in 0..200 {
        let seed = meta.gen_below(10_000);
        let bound = 1 + meta.gen_below(999_999);
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            let x = a.gen_below(bound);
            assert!(x < bound, "case {case}");
            assert_eq!(x, b.gen_below(bound), "case {case}");
        }
    }
}

/// The hierarchical timer wheel is observationally identical to the
/// `BinaryHeap` oracle it replaced: driven from the same `SimRng` event
/// streams — same-tick collisions, pushes interleaved with pops, far-future
/// times near `u64::MAX` that force cascades through every wheel level —
/// both queues report the same `(time, payload)` pop sequence, the same
/// `peek_time`, and the same length at every step. This is the equivalence
/// that keeps every digest, journal, and trace bit-identical across the
/// queue swap.
#[test]
fn timer_wheel_matches_heap_oracle_on_adversarial_streams() {
    let mut meta = SimRng::new(0x9157_000A);
    for case in 0..60 {
        let mut rng = SimRng::new(meta.next_u64());
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
        let mut next_id = 0u64;
        // A short memory of recently scheduled instants so pushes can
        // collide on the exact same tick (FIFO order must survive).
        let mut recent: Vec<u64> = Vec::new();
        for step in 0..500 {
            if wheel.is_empty() || rng.gen_bool(0.55) {
                let now = wheel.now().as_nanos();
                let at = match rng.gen_below(6) {
                    0 => now, // due immediately
                    1 if !recent.is_empty() => {
                        // same-tick collision with an earlier push
                        recent[rng.gen_below(recent.len() as u64) as usize]
                    }
                    1 | 2 => now.saturating_add(1 + rng.gen_below(64)),
                    3 => now.saturating_add(1 + rng.gen_below(1 << 18)),
                    4 => now.saturating_add(1 + rng.gen_below(1 << 34)),
                    // far future: pops from here cascade down every level
                    _ => u64::MAX - rng.gen_below(1 << 10),
                };
                let at = at.max(now);
                recent.push(at);
                if recent.len() > 8 {
                    recent.remove(0);
                }
                wheel.push(SimTime::from_nanos(at), next_id);
                heap.push(SimTime::from_nanos(at), next_id);
                next_id += 1;
            } else {
                let w = wheel.pop();
                let h = heap.pop();
                assert_eq!(w, h, "case {case} step {step}: pop diverged");
                // Old instants below the new watermark can no longer
                // collide; drop them so future pushes stay legal.
                let now = wheel.now().as_nanos();
                recent.retain(|&t| t >= now);
            }
            assert_eq!(wheel.len(), heap.len(), "case {case} step {step}");
            assert_eq!(
                wheel.peek_time(),
                heap.peek_time(),
                "case {case} step {step}"
            );
        }
        // Drain: the full residual sequence must agree too.
        while let Some(w) = wheel.pop() {
            assert_eq!(Some(w), heap.pop(), "case {case} drain");
        }
        assert!(heap.pop().is_none(), "case {case}: heap had extra events");
    }
}

/// Arena recycling never leaks state across incarnations: a slot freed and
/// re-allocated hands back exactly the freshly supplied value (never the
/// previous occupant's), every stale handle — including double-free — is a
/// typed [`ArenaError::Stale`], and no two in-flight handles ever alias the
/// same slot.
#[test]
fn arena_recycling_never_leaks_state_across_incarnations() {
    let mut meta = SimRng::new(0x9157_000B);
    for case in 0..100 {
        let mut rng = SimRng::new(meta.next_u64());
        let mut arena: IoArena<(u64, u64)> = IoArena::new();
        // Live handles with the exact value each slot must still hold.
        let mut live: Vec<(gimbal_repro::sim::IoHandle, (u64, u64))> = Vec::new();
        let mut freed: Vec<gimbal_repro::sim::IoHandle> = Vec::new();
        let mut stamp = 0u64;
        for step in 0..400 {
            if live.is_empty() || rng.gen_bool(0.55) {
                let value = (stamp, rng.next_u64());
                stamp += 1;
                let h = arena.alloc(value);
                // Freshly allocated == recycled-then-reset: whatever lived
                // in this slot before, the read-back is the new value.
                assert_eq!(arena.get(h), Ok(&value), "case {case} step {step}");
                live.push((h, value));
            } else {
                let i = rng.gen_below(live.len() as u64) as usize;
                let (h, expect) = live.swap_remove(i);
                assert_eq!(
                    arena.free(h),
                    Ok(expect),
                    "case {case} step {step}: freed value drifted"
                );
                freed.push(h);
            }
            // Every stale handle stays a typed error, alloc churn or not.
            for &h in &freed {
                assert_eq!(arena.get(h), Err(ArenaError::Stale), "case {case}");
                assert_eq!(arena.free(h), Err(ArenaError::Stale), "case {case}");
            }
            // No ID aliasing while in flight: distinct live handles occupy
            // distinct slots, and each still reads back its own value.
            let mut slots: Vec<u32> = live.iter().map(|(h, _)| h.index()).collect();
            slots.sort_unstable();
            slots.dedup();
            assert_eq!(slots.len(), live.len(), "case {case}: slot aliasing");
            for (h, v) in &live {
                assert_eq!(arena.get(*h), Ok(v), "case {case}: live value leaked");
            }
            assert_eq!(arena.len(), live.len(), "case {case}");
        }
    }
}

/// Timer-wheel pops never go backwards and `pop_if_at` only ever takes the
/// event that an unconditional `pop` would have returned — so batch
/// coalescing (its only caller) cannot reorder the schedule.
#[test]
fn timer_wheel_pop_if_at_agrees_with_pop() {
    let mut meta = SimRng::new(0x9157_000C);
    for case in 0..60 {
        let mut rng = SimRng::new(meta.next_u64());
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut last = SimTime::ZERO;
        for id in 0..300u64 {
            let at = q.now().as_nanos().saturating_add(rng.gen_below(1 << 20));
            q.push(SimTime::from_nanos(at), id);
        }
        while let Some(head) = q.peek_time() {
            assert!(head >= last, "case {case}: time went backwards");
            // Conditional pop at the head's own instant, accepting even
            // ids only; declined heads must come out of plain pop intact.
            match q.pop_if_at(head, |id| id % 2 == 0) {
                Some(id) => {
                    assert_eq!(id % 2, 0, "case {case}: predicate ignored");
                    assert_eq!(q.now(), head, "case {case}: watermark skipped");
                }
                None => {
                    let (at, id) = q.pop().expect("peeked head exists");
                    assert_eq!(at, head, "case {case}");
                    assert_eq!(id % 2, 1, "case {case}: even id was declined");
                }
            }
            last = head;
            if rng.gen_bool(0.3) {
                let at = q.now().as_nanos().saturating_add(rng.gen_below(1 << 20));
                q.push(SimTime::from_nanos(at), 1_000_000 + rng.gen_below(1000));
            }
        }
    }
}
