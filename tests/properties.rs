//! Property-style tests on the core data structures' invariants.
//!
//! These were originally written against `proptest`; the workspace is now
//! dependency-free, so each property drives its random cases from `SimRng`
//! with fixed seeds instead. Coverage is the same shape — randomized inputs,
//! many cases per property — but fully deterministic, which also means a
//! failure here reproduces identically on every machine.

use gimbal_repro::fabric::{CmdId, IoType, NvmeCmd, Priority, SsdId, TenantId};
use gimbal_repro::gimbal::scheduler::SchedPoll;
use gimbal_repro::gimbal::{Params, VirtualSlotScheduler};
use gimbal_repro::sim::{Histogram, SimRng, SimTime, TokenBucket};
use gimbal_repro::ssd::ftl::Ftl;
use gimbal_repro::ssd::SsdConfig;
use gimbal_repro::switch::Request;
use gimbal_repro::workload::Zipfian;

fn req(id: u64, tenant: u32, op: IoType, len: u32) -> Request {
    Request {
        cmd: NvmeCmd {
            id: CmdId(id),
            tenant: TenantId(tenant),
            ssd: SsdId(0),
            opcode: op,
            lba: 0,
            len,
            priority: Priority::NORMAL,
            issued_at: SimTime::ZERO,
        },
        ready_at: SimTime::ZERO,
    }
}

/// Histogram quantiles are monotone in q and bracketed by min/max.
#[test]
fn histogram_quantiles_are_monotone() {
    let mut rng = SimRng::new(0x9157_0001);
    for case in 0..200 {
        let n = 1 + rng.gen_below(499) as usize;
        let values: Vec<u64> = (0..n).map(|_| rng.gen_below(1_000_000_000)).collect();
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let qs = [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];
        let mut last = 0;
        for &q in &qs {
            let v = h.quantile(q);
            assert!(
                v >= last,
                "case {case}: quantile({q}) = {v} < previous {last}"
            );
            last = v;
        }
        assert!(h.quantile(0.0) >= h.min());
        assert!(h.quantile(1.0) <= h.max());
        assert_eq!(h.count(), values.len() as u64);
    }
}

/// A token bucket never goes negative and never exceeds its capacity,
/// under arbitrary interleavings of refills, deposits, and consumes.
#[test]
fn token_bucket_stays_in_bounds() {
    let mut rng = SimRng::new(0x9157_0002);
    for case in 0..200 {
        let mut tb = TokenBucket::with_rate(1e8, 1 << 20);
        let mut t = 0u64;
        let steps = 1 + rng.gen_below(199);
        for _ in 0..steps {
            let kind = rng.gen_below(3) as u8;
            let arg = 1 + rng.gen_below(99_999);
            match kind {
                0 => {
                    t += arg;
                    tb.refill(SimTime::from_nanos(t));
                }
                1 => {
                    let _ = tb.try_consume(arg);
                }
                _ => {
                    let overflow = tb.deposit(arg as f64);
                    assert!(overflow >= 0.0, "case {case}");
                }
            }
            assert!(tb.tokens() >= 0.0, "case {case}");
            assert!(tb.tokens() <= tb.capacity() + 1e-6, "case {case}");
        }
    }
}

/// The virtual-slot DRR conserves requests: everything enqueued is either
/// submitted or still queued, never duplicated or lost, under random
/// arrival/complete interleavings.
#[test]
fn drr_conserves_requests() {
    let mut rng = SimRng::new(0x9157_0003);
    for case in 0..150 {
        let mut s = VirtualSlotScheduler::new(Params::default());
        let mut next = 0u64;
        let mut enqueued = 0usize;
        let mut submitted = Vec::new();
        let mut completed = 0usize;
        let steps = 1 + rng.gen_below(299);
        for _ in 0..steps {
            let kind = rng.gen_below(4) as u8;
            let tenant = rng.gen_below(4) as u32;
            let sz = 1 + rng.gen_below(2) as u32;
            match kind {
                0 | 1 => {
                    let op = if kind == 0 {
                        IoType::Read
                    } else {
                        IoType::Write
                    };
                    s.on_arrival(req(next, tenant, op, sz * 4096), SimTime::ZERO);
                    next += 1;
                    enqueued += 1;
                }
                2 => {
                    if let SchedPoll::Submit(r) = s.dequeue(SimTime::ZERO, 3.0, |_| true) {
                        submitted.push(r.cmd.id);
                    }
                }
                _ => {
                    if let Some(id) = submitted.pop() {
                        s.on_completion(id, SimTime::ZERO);
                        completed += 1;
                    }
                }
            }
        }
        // Drain: everything left must come out exactly once.
        while let SchedPoll::Submit(r) = s.dequeue(SimTime::ZERO, 3.0, |_| true) {
            s.on_completion(r.cmd.id, SimTime::ZERO);
            completed += 1;
            if submitted.len() + completed > enqueued {
                break;
            }
        }
        // Complete all in-flight.
        for id in submitted.drain(..) {
            s.on_completion(id, SimTime::ZERO);
            completed += 1;
        }
        // Second drain after completions freed slots.
        while let SchedPoll::Submit(r) = s.dequeue(SimTime::ZERO, 3.0, |_| true) {
            s.on_completion(r.cmd.id, SimTime::ZERO);
            completed += 1;
        }
        assert_eq!(
            completed, enqueued,
            "case {case}: requests lost or duplicated"
        );
        assert_eq!(s.queued(), 0, "case {case}");
    }
}

/// FTL map/rmap stay mutually consistent under random writes and
/// invalidations, and free-block accounting never goes negative.
#[test]
fn ftl_mapping_consistency() {
    let mut rng = SimRng::new(0x9157_0004);
    for case in 0..50 {
        let cfg = SsdConfig {
            logical_capacity: 64 * 1024 * 1024,
            ..SsdConfig::default()
        };
        let mut ftl = Ftl::new(&cfg);
        let dies = cfg.dies();
        let mut die = 0u32;
        let steps = 1 + rng.gen_below(399);
        for _ in 0..steps {
            let kind = rng.gen_below(2) as u8;
            let lpn = rng.gen_below(2048);
            match kind {
                0 => {
                    // Keep a couple of free blocks via opportunistic GC.
                    if ftl.free_blocks(die) <= cfg.gc_low_watermark {
                        if let Some(victim) = ftl.pick_victim(die) {
                            let work = ftl.gc_work(victim);
                            for k in work.valid_lpns {
                                ftl.write_to_die(u64::from(k), die, true);
                            }
                            ftl.erase(victim);
                        }
                    }
                    let addr = ftl.write_to_die(lpn, die, false);
                    assert_eq!(ftl.translate(lpn), Some(addr), "case {case}");
                    die = (die + 1) % dies;
                }
                _ => {
                    ftl.invalidate(lpn);
                    assert!(ftl.translate(lpn).is_none(), "case {case}");
                }
            }
        }
        for d in 0..dies {
            assert!(ftl.free_blocks(d) <= cfg.blocks_per_die(), "case {case}");
        }
    }
}

/// Zipfian draws always land in range and the most popular rank really is
/// rank 0 for heavy skew.
#[test]
fn zipfian_bounds() {
    let mut meta = SimRng::new(0x9157_0005);
    for case in 0..40 {
        let items = 2 + meta.gen_below(49_998);
        let seed = meta.gen_below(1000);
        let z = Zipfian::new(items, 0.99);
        let mut rng = SimRng::new(seed);
        let mut zero = 0u64;
        let n = 2_000;
        for _ in 0..n {
            let k = z.next(&mut rng);
            assert!(k < items, "case {case}");
            if k == 0 {
                zero += 1;
            }
        }
        // Rank 0 gets at least its uniform share for any skewed keyspace.
        assert!(
            zero as f64 >= n as f64 / items as f64,
            "case {case}: items={items} zero={zero}"
        );
    }
}

/// PCG is deterministic per seed and uniform-ish over small ranges.
#[test]
fn rng_gen_below_is_in_range() {
    let mut meta = SimRng::new(0x9157_0006);
    for case in 0..200 {
        let seed = meta.gen_below(10_000);
        let bound = 1 + meta.gen_below(999_999);
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            let x = a.gen_below(bound);
            assert!(x < bound, "case {case}");
            assert_eq!(x, b.gen_below(bound), "case {case}");
        }
    }
}
