//! Property-based tests (proptest) on the core data structures' invariants.

use gimbal_repro::fabric::{CmdId, IoType, NvmeCmd, Priority, SsdId, TenantId};
use gimbal_repro::gimbal::scheduler::SchedPoll;
use gimbal_repro::gimbal::{Params, VirtualSlotScheduler};
use gimbal_repro::sim::{Histogram, SimRng, SimTime, TokenBucket};
use gimbal_repro::ssd::ftl::Ftl;
use gimbal_repro::ssd::SsdConfig;
use gimbal_repro::switch::Request;
use gimbal_repro::workload::Zipfian;
use proptest::prelude::*;

fn req(id: u64, tenant: u32, op: IoType, len: u32) -> Request {
    Request {
        cmd: NvmeCmd {
            id: CmdId(id),
            tenant: TenantId(tenant),
            ssd: SsdId(0),
            opcode: op,
            lba: 0,
            len,
            priority: Priority::NORMAL,
            issued_at: SimTime::ZERO,
        },
        ready_at: SimTime::ZERO,
    }
}

proptest! {
    /// Histogram quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn histogram_quantiles_are_monotone(values in prop::collection::vec(0u64..1_000_000_000, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let qs = [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];
        let mut last = 0;
        for &q in &qs {
            let v = h.quantile(q);
            prop_assert!(v >= last, "quantile({q}) = {v} < previous {last}");
            last = v;
        }
        prop_assert!(h.quantile(0.0) >= h.min());
        prop_assert!(h.quantile(1.0) <= h.max());
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// A token bucket never goes negative and never exceeds its capacity,
    /// under arbitrary interleavings of refills, deposits, and consumes.
    #[test]
    fn token_bucket_stays_in_bounds(ops in prop::collection::vec((0u8..3, 1u64..100_000), 1..200)) {
        let mut tb = TokenBucket::with_rate(1e8, 1 << 20);
        let mut t = 0u64;
        for (kind, arg) in ops {
            match kind {
                0 => {
                    t += arg;
                    tb.refill(SimTime::from_nanos(t));
                }
                1 => {
                    let _ = tb.try_consume(arg);
                }
                _ => {
                    let overflow = tb.deposit(arg as f64);
                    prop_assert!(overflow >= 0.0);
                }
            }
            prop_assert!(tb.tokens() >= 0.0);
            prop_assert!(tb.tokens() <= tb.capacity() + 1e-6);
        }
    }

    /// The virtual-slot DRR conserves requests: everything enqueued is
    /// either submitted or still queued, never duplicated or lost, under
    /// random arrival/complete interleavings.
    #[test]
    fn drr_conserves_requests(script in prop::collection::vec((0u8..4, 0u32..4, 1u32..3), 1..300)) {
        let mut s = VirtualSlotScheduler::new(Params::default());
        let mut next = 0u64;
        let mut enqueued = 0usize;
        let mut submitted = Vec::new();
        let mut completed = 0usize;
        for (kind, tenant, sz) in script {
            match kind {
                0 | 1 => {
                    let op = if kind == 0 { IoType::Read } else { IoType::Write };
                    s.on_arrival(req(next, tenant, op, sz * 4096), SimTime::ZERO);
                    next += 1;
                    enqueued += 1;
                }
                2 => {
                    if let SchedPoll::Submit(r) = s.dequeue(3.0, |_| true) {
                        submitted.push(r.cmd.id);
                    }
                }
                _ => {
                    if let Some(id) = submitted.pop() {
                        s.on_completion(id);
                        completed += 1;
                    }
                }
            }
        }
        // Drain: everything left must come out exactly once.
        loop {
            match s.dequeue(3.0, |_| true) {
                SchedPoll::Submit(r) => {
                    submitted.push(r.cmd.id);
                    s.on_completion(*submitted.last().unwrap());
                    completed += 1;
                    submitted.pop();
                }
                _ => break,
            }
            if submitted.len() + completed > enqueued {
                break;
            }
        }
        // Complete all in-flight.
        for id in submitted.drain(..) {
            s.on_completion(id);
            completed += 1;
        }
        // Second drain after completions freed slots.
        loop {
            match s.dequeue(3.0, |_| true) {
                SchedPoll::Submit(r) => {
                    s.on_completion(r.cmd.id);
                    completed += 1;
                }
                _ => break,
            }
        }
        prop_assert_eq!(completed, enqueued, "requests lost or duplicated");
        prop_assert_eq!(s.queued(), 0);
    }

    /// FTL map/rmap stay mutually consistent under random writes and
    /// invalidations, and free-block accounting never goes negative.
    #[test]
    fn ftl_mapping_consistency(ops in prop::collection::vec((0u8..2, 0u64..2048), 1..400)) {
        let cfg = SsdConfig {
            logical_capacity: 64 * 1024 * 1024,
            ..SsdConfig::default()
        };
        let mut ftl = Ftl::new(&cfg);
        let dies = cfg.dies();
        let mut die = 0u32;
        for (kind, lpn) in ops {
            match kind {
                0 => {
                    // Keep a couple of free blocks via opportunistic GC.
                    if ftl.free_blocks(die) <= cfg.gc_low_watermark {
                        if let Some(victim) = ftl.pick_victim(die) {
                            let work = ftl.gc_work(victim);
                            for k in work.valid_lpns {
                                ftl.write_to_die(u64::from(k), die, true);
                            }
                            ftl.erase(victim);
                        }
                    }
                    let addr = ftl.write_to_die(lpn, die, false);
                    prop_assert_eq!(ftl.translate(lpn), Some(addr));
                    die = (die + 1) % dies;
                }
                _ => {
                    ftl.invalidate(lpn);
                    prop_assert!(ftl.translate(lpn).is_none());
                }
            }
        }
        for d in 0..dies {
            prop_assert!(ftl.free_blocks(d) <= cfg.blocks_per_die());
        }
    }

    /// Zipfian draws always land in range and the most popular rank really
    /// is rank 0 for heavy skew.
    #[test]
    fn zipfian_bounds(items in 2u64..50_000, seed in 0u64..1000) {
        let z = Zipfian::new(items, 0.99);
        let mut rng = SimRng::new(seed);
        let mut zero = 0u64;
        let n = 2_000;
        for _ in 0..n {
            let k = z.next(&mut rng);
            prop_assert!(k < items);
            if k == 0 {
                zero += 1;
            }
        }
        // Rank 0 gets at least its uniform share for any skewed keyspace.
        prop_assert!(zero as f64 >= n as f64 / items as f64);
    }

    /// PCG is deterministic per seed and uniform-ish over small ranges.
    #[test]
    fn rng_gen_below_is_in_range(seed in 0u64..10_000, bound in 1u64..1_000_000) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            let x = a.gen_below(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.gen_below(bound));
        }
    }
}
