//! End-to-end checks for the NIC-DRAM cache tier: on a skewed read-heavy
//! workload the cache must actually earn its keep — nonzero hit ratio and a
//! lower mean read latency than the identical run with the cache off — and
//! its interplay with the congestion machinery must match the documented
//! contract (hits bypass the device, so the device's latency signals see
//! only real device service).

use gimbal_repro::sim::SimDuration;
use gimbal_repro::telemetry::{Component, TraceConfig};
use gimbal_repro::testbed::{
    AdmissionPolicy, CacheConfig, Precondition, RunResult, Scheme, Testbed, TestbedConfig,
    WorkerSpec,
};
use gimbal_repro::workload::{AccessPattern, FioSpec};

const CAP: u64 = 512 * 1024 * 1024 / 4096;

fn zipf_readers(n: u32) -> Vec<WorkerSpec> {
    (0..n)
        .map(|i| {
            // A shared region: the Zipf head is a common working set.
            let mut fio = FioSpec::paper_default(1.0, 4096, 0, CAP / 4);
            fio.read_pattern = AccessPattern::Zipfian;
            let _ = i;
            WorkerSpec::new("reader", fio)
        })
        .collect()
}

fn run_with(cache: Option<CacheConfig>, trace: bool) -> RunResult {
    let cfg = TestbedConfig {
        scheme: Scheme::Gimbal,
        precondition: Precondition::Fragmented,
        duration: SimDuration::from_millis(400),
        warmup: SimDuration::from_millis(100),
        seed: 7,
        cache,
        trace: trace.then_some(TraceConfig { capacity: 1 << 21 }),
        ..TestbedConfig::default()
    };
    Testbed::new(cfg, zipf_readers(8)).run()
}

/// The acceptance-shaped claim: skewed read-heavy fio, cache on vs off —
/// nonzero hit ratio, lower mean read latency, no lost throughput.
#[test]
fn skewed_reads_hit_the_cache_and_cut_mean_read_latency() {
    let off = run_with(None, false);
    let on = run_with(
        Some(CacheConfig {
            policy: AdmissionPolicy::Always,
            ..CacheConfig::for_mb(64)
        }),
        false,
    );
    assert!(off.cache.is_empty() && on.cache.len() == 1);
    let ratio = on.cache_hit_ratio();
    assert!(
        ratio > 0.1,
        "hit ratio {ratio:.3} — the Zipf head never hit"
    );
    let [rd_off, _] = off.group_latency(|_| true);
    let [rd_on, _] = on.group_latency(|_| true);
    assert!(
        rd_on.mean_us() < rd_off.mean_us(),
        "cache-on mean read latency {:.0}us must beat cache-off {:.0}us",
        rd_on.mean_us(),
        rd_off.mean_us()
    );
    let bw_off = off.aggregate_bps(|_| true);
    let bw_on = on.aggregate_bps(|_| true);
    assert!(
        bw_on >= bw_off,
        "absorbing reads in DRAM must not cost throughput ({bw_on:.0} < {bw_off:.0})"
    );
}

/// The Alg. 1 interplay, observed from outside: cache hits complete without
/// touching the SSD, so the device's read counter drops by exactly the
/// device reads the cache absorbed, and every hit/miss/fill lands in the
/// telemetry stream under the cache component.
#[test]
fn hits_bypass_the_device_and_land_in_telemetry() {
    let off = run_with(None, true);
    let on = run_with(
        Some(CacheConfig {
            policy: AdmissionPolicy::Always,
            ..CacheConfig::for_mb(64)
        }),
        true,
    );
    let stats = on.cache[0];
    assert!(stats.hits > 0);
    // Each hit is one SSD read the device never saw. The two runs schedule
    // differently once hits start (that is the point), so this is an order
    // check, not an equality: the device served far fewer reads.
    assert!(
        on.ssd_stats[0].reads < off.ssd_stats[0].reads,
        "cache on: device reads {} must drop below cache-off {}",
        on.ssd_stats[0].reads,
        off.ssd_stats[0].reads
    );
    let trace = on.trace.as_ref().expect("trace enabled");
    let view = trace.view();
    let hit_events = view
        .count(|e| e.kind.component() == Component::Cache && e.kind.name() == "cache_hit")
        as u64;
    let miss_events = view
        .count(|e| e.kind.component() == Component::Cache && e.kind.name() == "cache_miss")
        as u64;
    let fill_events = view
        .count(|e| e.kind.component() == Component::Cache && e.kind.name() == "cache_fill")
        as u64;
    assert_eq!(hit_events, stats.hits, "hit events vs counter");
    assert_eq!(miss_events, stats.misses, "miss events vs counter");
    assert_eq!(fill_events, stats.fills, "fill events vs counter");
    // The off run must carry no cache events at all.
    let off_trace = off.trace.as_ref().expect("trace enabled");
    assert_eq!(
        off_trace
            .view()
            .count(|e| e.kind.component() == Component::Cache),
        0,
        "cache-off run recorded cache events"
    );
}
