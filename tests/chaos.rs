//! Chaos suite: every scheme survives injected failures, and failure
//! handling itself is deterministic.
//!
//! The fault plans exercise the three failure families end to end:
//!
//! * **loss-only** — random command/completion capsule loss plus a burst
//!   brown-out window; recovery is the initiator's timeout/backoff/
//!   retransmission protocol and the target's replay dedup.
//! * **stall-only** — a GC-storm window on the SSD during which nothing is
//!   serviced; recovery is the congestion controller's rate floor (it never
//!   deadlocks at zero) plus retry timers for IOs stuck past their budget.
//! * **combined** — loss, a stall, transient device errors, and permanent
//!   device death partway through the run.
//!
//! Every run must finish without a panic and pass the command-conservation
//! audit: each submitted command completes, errors, times out, or is still
//! in flight at the wall — exactly once. Double runs at the same seed must
//! produce identical submission traces, faults and all.

use gimbal_repro::fabric::RetryConfig;
use gimbal_repro::sim::{FaultPlan, FaultWindow, SimDuration, SimTime, SsdFaultSpec};
use gimbal_repro::telemetry::{CapsuleKind, EventKind, TraceConfig};
use gimbal_repro::testbed::{
    check_run, AdmissionPolicy, CacheConfig, FaultConfig, Precondition, RunResult, Scheme, Testbed,
    TestbedConfig, WorkerSpec, WritePolicy, LOSS_EVENT_CMD,
};
use gimbal_repro::workload::{AccessPattern, FioSpec};

const CAP: u64 = 512 * 1024 * 1024 / 4096;
const SCHEMES: [Scheme; 4] = [
    Scheme::Reflex,
    Scheme::Parda,
    Scheme::FlashFq,
    Scheme::Gimbal,
];

fn ms(v: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(v)
}

fn mixed_workers(readers: u32, writers: u32) -> Vec<WorkerSpec> {
    let n = readers + writers;
    let per = CAP / u64::from(n);
    (0..n)
        .map(|i| {
            let ratio = if i < readers { 1.0 } else { 0.0 };
            let label = if i < readers { "read" } else { "write" };
            WorkerSpec::new(
                label,
                FioSpec::paper_default(ratio, 4096, u64::from(i) * per, per),
            )
        })
        .collect()
}

fn loss_only() -> FaultPlan {
    FaultPlan {
        cmd_loss_prob: 0.02,
        cpl_loss_prob: 0.02,
        burst_windows: vec![FaultWindow::new(ms(150), ms(160))],
        ..FaultPlan::default()
    }
}

fn stall_only() -> FaultPlan {
    FaultPlan {
        ssd: vec![SsdFaultSpec {
            stall_windows: vec![FaultWindow::new(ms(150), ms(250))],
            ..SsdFaultSpec::default()
        }],
        ..FaultPlan::default()
    }
}

fn combined() -> FaultPlan {
    FaultPlan {
        cmd_loss_prob: 0.01,
        cpl_loss_prob: 0.01,
        burst_windows: vec![FaultWindow::new(ms(120), ms(130))],
        ssd: vec![SsdFaultSpec {
            transient_error_prob: 0.02,
            stall_windows: vec![FaultWindow::new(ms(180), ms(220))],
            fail_at: Some(ms(320)),
        }],
        ..FaultPlan::default()
    }
}

fn run_chaos(scheme: Scheme, plan: FaultPlan, seed: u64) -> RunResult {
    let cfg = TestbedConfig {
        scheme,
        precondition: Precondition::Fragmented,
        duration: SimDuration::from_millis(400),
        warmup: SimDuration::from_millis(100),
        seed,
        record_submissions: true,
        faults: Some(FaultConfig {
            plan,
            retry: RetryConfig::default(),
        }),
        ..TestbedConfig::default()
    };
    Testbed::new(cfg, mixed_workers(3, 3)).run()
}

/// Every scheme finishes every fault plan without panicking, and the
/// conservation audit balances: no command is lost or double-counted.
#[test]
fn all_schemes_survive_all_fault_plans_and_conserve_commands() {
    for scheme in SCHEMES {
        for (name, plan) in [
            ("loss-only", loss_only()),
            ("stall-only", stall_only()),
            ("combined", combined()),
        ] {
            let res = run_chaos(scheme, plan, 7);
            let f = &res.faults;
            assert!(f.submitted > 1000, "{} {name}: ran: {f:?}", scheme.name());
            assert!(
                f.conservation_holds(),
                "{} {name}: conservation violated: {f:?}",
                scheme.name()
            );
            assert!(
                f.completed_ok > 0,
                "{} {name}: no IO ever succeeded: {f:?}",
                scheme.name()
            );
        }
    }
}

/// Capsule loss actually fires and is actually recovered: drops happen,
/// timers retransmit, the target dedups replays, and goodput survives.
#[test]
fn capsule_loss_is_retried_and_deduplicated() {
    for scheme in SCHEMES {
        let res = run_chaos(scheme, loss_only(), 11);
        let f = &res.faults;
        assert!(f.cmd_capsules_dropped > 0, "{}: {f:?}", scheme.name());
        assert!(f.cpl_capsules_dropped > 0, "{}: {f:?}", scheme.name());
        assert!(
            f.retries > 0,
            "{}: no retransmissions: {f:?}",
            scheme.name()
        );
        assert!(
            f.completions_resent > 0,
            "{}: dropped completions must be recovered from the target's \
             cache, not by re-executing the IO: {f:?}",
            scheme.name()
        );
        // Loss is 2%: the overwhelming majority of IOs still succeed.
        assert!(
            f.completed_ok > 50 * (f.timed_out + 1),
            "{}: goodput collapsed under 2% loss: {f:?}",
            scheme.name()
        );
        let moved: u64 = res.workers.iter().map(|w| w.bytes).sum();
        assert!(moved > 0, "{}: no payload moved", scheme.name());
    }
}

/// A GC storm freezes the device for 100 ms mid-run. The congestion
/// controller must not deadlock: service visibly resumes after the window
/// closes. (Throughput *level* after the storm is scheme-specific — Gimbal
/// re-probes from its conservative floor — so the assertion is progress,
/// not rate.)
#[test]
fn gc_storm_stall_does_not_deadlock_any_scheme() {
    for scheme in SCHEMES {
        let cfg = TestbedConfig {
            scheme,
            precondition: Precondition::Fragmented,
            duration: SimDuration::from_millis(400),
            warmup: SimDuration::from_millis(100),
            seed: 13,
            sample_interval: Some(SimDuration::from_millis(25)),
            faults: Some(FaultConfig {
                plan: stall_only(),
                retry: RetryConfig::default(),
            }),
            ..TestbedConfig::default()
        };
        let res = Testbed::new(cfg, mixed_workers(3, 3)).run();
        let f = &res.faults;
        assert!(f.conservation_holds(), "{}: {f:?}", scheme.name());
        assert!(
            res.ssd_stats[0].stalled_cmds > 0,
            "{}: the storm never hit",
            scheme.name()
        );
        // Bandwidth samples taken late enough that their whole 100 ms meter
        // window lies after the 250 ms release: real post-storm service, not
        // residue from before the stall.
        let post_storm_bps: f64 = res
            .workers
            .iter()
            .flat_map(|w| w.series.points())
            .filter(|p| p.0 >= ms(360))
            .map(|p| p.1)
            .sum();
        assert!(
            post_storm_bps > 0.0,
            "{}: no worker moved a byte after the storm cleared — \
             congestion control deadlocked: {f:?}",
            scheme.name()
        );
    }
}

/// Permanent device death: everything after `fail_at` errors out fast, the
/// errors are surfaced (not dropped, not panicking), and accounting stays
/// exact.
#[test]
fn device_death_surfaces_errors_without_losing_commands() {
    for scheme in SCHEMES {
        let res = run_chaos(scheme, combined(), 17);
        let f = &res.faults;
        assert!(f.conservation_holds(), "{}: {f:?}", scheme.name());
        assert!(
            f.completed_err > 100,
            "{}: device death at 320 ms must produce a stream of error \
             completions: {f:?}",
            scheme.name()
        );
        assert!(
            res.ssd_stats[0].failed_cmds > 0 && res.ssd_stats[0].injected_transient_errors > 0,
            "{}: device-side fault counters empty: {:?}",
            scheme.name(),
            res.ssd_stats[0]
        );
    }
}

/// Satellite (d): fault handling is part of the deterministic state machine.
/// Two runs at the same seed — faults, retries, failovers and all — produce
/// byte-identical submission traces and stats digests.
#[test]
fn chaos_runs_are_deterministic_per_seed() {
    for scheme in SCHEMES {
        let a = run_chaos(scheme, combined(), 23);
        let b = run_chaos(scheme, combined(), 23);
        assert!(!a.submissions.is_empty(), "{}: empty trace", scheme.name());
        assert_eq!(
            a.submissions,
            b.submissions,
            "{}: chaos submission traces diverged",
            scheme.name()
        );
        assert_eq!(
            a.submission_digest(),
            b.submission_digest(),
            "{}: chaos trace digests diverged",
            scheme.name()
        );
        assert_eq!(
            a.stats_digest(),
            b.stats_digest(),
            "{}: chaos stats digests diverged",
            scheme.name()
        );
        assert_eq!(
            a.faults,
            b.faults,
            "{}: fault counters diverged between identical runs",
            scheme.name()
        );
        // And the seed still matters.
        let c = run_chaos(scheme, combined(), 24);
        assert_ne!(
            a.submission_digest(),
            c.submission_digest(),
            "{}: different seeds produced identical chaos traces",
            scheme.name()
        );
    }
}

fn run_chaos_cache(
    scheme: Scheme,
    plan: FaultPlan,
    seed: u64,
    workers: Vec<WorkerSpec>,
) -> RunResult {
    run_chaos_cache_wb(scheme, plan, seed, workers, WritePolicy::Through)
}

fn run_chaos_cache_wb(
    scheme: Scheme,
    plan: FaultPlan,
    seed: u64,
    workers: Vec<WorkerSpec>,
    write: WritePolicy,
) -> RunResult {
    let cfg = TestbedConfig {
        scheme,
        precondition: Precondition::Fragmented,
        duration: SimDuration::from_millis(400),
        warmup: SimDuration::from_millis(100),
        seed,
        record_submissions: true,
        faults: Some(FaultConfig {
            plan,
            retry: RetryConfig::default(),
        }),
        cache: Some(CacheConfig {
            policy: AdmissionPolicy::Always,
            write_policy: write,
            ..CacheConfig::for_mb(64)
        }),
        ..TestbedConfig::default()
    };
    Testbed::new(cfg, workers).run()
}

/// Cache satellite: completions served from NIC DRAM are accounted by the
/// conservation audit. `cache_served` is a service-source counter — every
/// cache hit still lands in exactly one terminal bucket — so the equation
/// balances with the cache absorbing a large share of reads under capsule
/// loss.
#[test]
fn cache_served_completions_keep_conservation_exact() {
    let mut workers = mixed_workers(3, 3);
    for w in &mut workers {
        if w.fio.read_ratio > 0.5 {
            w.fio.read_pattern = AccessPattern::Zipfian;
        }
    }
    let res = run_chaos_cache(Scheme::Gimbal, loss_only(), 7, workers);
    let f = &res.faults;
    assert!(f.conservation_holds(), "conservation violated: {f:?}");
    assert!(
        f.cache_served > 0,
        "Zipf readers through a 64 MiB cache never hit: {f:?}"
    );
    // Every pumped cache hit is one cache-served completion; hits whose
    // emission was still queued at the wall are covered by the in-flight
    // bucket, so the gap is bounded by it.
    let hits: u64 = res.cache.iter().map(|c| c.hits).sum();
    assert!(
        f.cache_served <= hits && hits - f.cache_served <= f.in_flight_at_end,
        "cache-served completions ({}) must account for all {hits} hits \
         minus at most the {} in flight at the wall",
        f.cache_served,
        f.in_flight_at_end
    );
    assert!(
        f.cmd_capsules_dropped > 0 && f.retries > 0,
        "the loss plan never fired: {f:?}"
    );
}

/// Cache satellite: device death with dirty staged write lines surfaces a
/// typed [`gimbal_repro::testbed::StagedWriteLoss`] per failed write whose
/// staged lines were dropped — never silent loss — and the failure path is
/// deterministic.
#[test]
fn device_death_with_staged_writes_surfaces_typed_losses() {
    // Mixed 50/50 read/write streams over shared regions: reads fill lines,
    // fully-covering writes stage into them, and the 320 ms device death
    // fails writes whose staged data is then unbacked.
    let workers = |()| -> Vec<WorkerSpec> {
        let per = CAP / 4;
        (0..4u64)
            .map(|i| WorkerSpec::new("mix", FioSpec::paper_default(0.5, 4096, i * per, per)))
            .collect()
    };
    let a = run_chaos_cache(Scheme::Gimbal, combined(), 17, workers(()));
    let f = &a.faults;
    assert!(f.conservation_holds(), "conservation violated: {f:?}");
    let stats: u64 = a.cache.iter().map(|c| c.staged).sum();
    assert!(stats > 0, "no write ever staged into a resident line");
    assert!(
        !a.cache_losses.is_empty(),
        "device death must surface typed staged-write losses, got none \
         (staged {stats}, faults {f:?})"
    );
    let counted: u64 = a.cache.iter().map(|c| c.staged_losses).sum();
    assert_eq!(
        counted,
        a.cache_losses.len() as u64,
        "loss counter and typed loss records disagree"
    );
    for loss in &a.cache_losses {
        assert!(loss.lines_lost > 0, "a loss record with no lines: {loss:?}");
    }
    // Failure handling is part of the deterministic state machine.
    let b = run_chaos_cache(Scheme::Gimbal, combined(), 17, workers(()));
    assert_eq!(a.cache_losses, b.cache_losses, "loss records diverged");
    assert_eq!(a.cache, b.cache, "cache counters diverged");
    assert_eq!(a.stats_digest(), b.stats_digest());
}

/// Telemetry satellite: the fault events in the trace reconcile *exactly*
/// with the aggregate [`FaultCounters`] — every capsule drop, retransmission
/// and timeout that bumps a counter also lands in the event stream, and
/// nothing lands twice.
#[test]
fn fault_event_counts_reconcile_with_fault_counters() {
    for scheme in SCHEMES {
        let cfg = TestbedConfig {
            scheme,
            precondition: Precondition::Fragmented,
            duration: SimDuration::from_millis(400),
            warmup: SimDuration::from_millis(100),
            seed: 17,
            faults: Some(FaultConfig {
                plan: combined(),
                retry: RetryConfig::default(),
            }),
            trace: Some(TraceConfig { capacity: 1 << 21 }),
            ..TestbedConfig::default()
        };
        let res = Testbed::new(cfg, mixed_workers(3, 3)).run();
        let f = &res.faults;
        let trace = res.trace.as_ref().expect("trace was enabled");
        assert_eq!(
            trace.dropped_oldest,
            0,
            "{}: ring too small for exact reconciliation",
            scheme.name()
        );
        let view = trace.view();
        let cmd_drops = view.count(|e| {
            matches!(
                e.kind,
                EventKind::FaultInjected {
                    capsule: CapsuleKind::Command
                }
            )
        }) as u64;
        let cpl_drops = view.count(|e| {
            matches!(
                e.kind,
                EventKind::FaultInjected {
                    capsule: CapsuleKind::Completion
                }
            )
        }) as u64;
        let retries = view.count(|e| matches!(e.kind, EventKind::RetryScheduled { .. })) as u64;
        let timeouts = view.count(|e| matches!(e.kind, EventKind::TimedOut { .. })) as u64;
        assert_eq!(
            cmd_drops,
            f.cmd_capsules_dropped,
            "{}: command-drop events vs counter: {f:?}",
            scheme.name()
        );
        assert_eq!(
            cpl_drops,
            f.cpl_capsules_dropped,
            "{}: completion-drop events vs counter: {f:?}",
            scheme.name()
        );
        assert_eq!(
            retries,
            f.retries,
            "{}: retry events vs counter: {f:?}",
            scheme.name()
        );
        assert_eq!(
            timeouts,
            f.timed_out,
            "{}: timeout events vs counter: {f:?}",
            scheme.name()
        );
        // The plan actually fired: the reconciliation above is not 0 == 0.
        assert!(
            cmd_drops > 0 && cpl_drops > 0 && retries > 0,
            "{}: combined plan injected nothing: {f:?}",
            scheme.name()
        );
    }
}

/// Write-back satellite: device death partway through the run — with the
/// flusher actively draining — surfaces every acked-but-unflushed line as a
/// dirty-tagged [`gimbal_repro::testbed::StagedWriteLoss`], the
/// crash-consistency oracle confirms the loss set is exact (no silent loss,
/// no phantom loss), and the whole failure path is deterministic.
#[test]
fn device_death_mid_flush_surfaces_dirty_tagged_losses() {
    let run = || {
        run_chaos_cache_wb(
            Scheme::Gimbal,
            combined(),
            17,
            mixed_workers(2, 4),
            WritePolicy::Back,
        )
    };
    let a = run();
    assert!(
        a.faults.conservation_holds(),
        "conservation: {:?}",
        a.faults
    );
    assert!(!a.write_back.is_empty(), "write-back produced no stats");
    let acked: u64 = a.write_back.iter().map(|w| w.acked).sum();
    let flushed: u64 = a.write_back.iter().map(|w| w.flushed_lines).sum();
    let lost: u64 = a.write_back.iter().map(|w| w.lost_lines).sum();
    assert!(acked > 0, "no write was ever absorbed at DRAM cost");
    assert!(flushed > 0, "the flusher never drained a line before death");
    assert!(
        lost > 0,
        "death at 320 ms with active writers must strand dirty lines: {:?}",
        a.write_back
    );
    let dirty_losses: Vec<_> = a.cache_losses.iter().filter(|l| l.dirty).collect();
    assert!(
        !dirty_losses.is_empty(),
        "stranded dirty lines must surface as dirty-tagged loss records"
    );
    for l in &dirty_losses {
        assert_eq!(
            l.cmd, LOSS_EVENT_CMD,
            "aggregated record carries the sentinel cmd"
        );
        assert!(l.lines_lost > 0);
    }
    let surfaced: u64 = dirty_losses.iter().map(|l| u64::from(l.lines_lost)).sum();
    assert_eq!(
        surfaced, lost,
        "surfaced dirty lines disagree with the counter"
    );
    // The oracle replays the journal and cross-checks all of the above
    // against the shadow dirty set.
    check_run(&a);
    let b = run();
    assert_eq!(a.cache_losses, b.cache_losses, "loss records diverged");
    assert_eq!(a.write_back, b.write_back, "write-back counters diverged");
    assert_eq!(a.journals, b.journals, "journals diverged");
    assert_eq!(a.stats_digest(), b.stats_digest());
}

/// Write-back satellite: the command-conservation audit stays exact under
/// write-back for every scheme and every fault family — DRAM-acked writes,
/// flush traffic, retries and losses never double-count or drop a command —
/// and the oracle stays green on every run.
#[test]
fn write_back_keeps_fault_conservation_exact_under_all_plans() {
    for scheme in SCHEMES {
        for (name, plan) in [
            ("loss-only", loss_only()),
            ("stall-only", stall_only()),
            ("combined", combined()),
        ] {
            let res = run_chaos_cache_wb(scheme, plan, 7, mixed_workers(2, 4), WritePolicy::Back);
            let f = &res.faults;
            assert!(
                f.submitted > 1000,
                "{} {name}: barely ran: {f:?}",
                scheme.name()
            );
            assert!(
                f.conservation_holds(),
                "{} {name}: conservation violated under write-back: {f:?}",
                scheme.name()
            );
            assert!(
                f.completed_ok > 0,
                "{} {name}: no IO succeeded: {f:?}",
                scheme.name()
            );
            let acked: u64 = res.write_back.iter().map(|w| w.acked).sum();
            assert!(
                acked > 0,
                "{} {name}: write-back never engaged",
                scheme.name()
            );
            for wb in &res.write_back {
                assert!(
                    wb.conservation_holds(),
                    "{} {name}: write-back line conservation violated: {wb:?}",
                    scheme.name()
                );
            }
            check_run(&res);
        }
    }
}

/// Write-back satellite: a GC storm stalls the device for 100 ms while the
/// flusher holds dirty lines. The flusher must not deadlock — in-flight
/// flushes complete or requeue when the storm lifts, dirty debt drains, and
/// post-storm foreground throughput recovers.
#[test]
fn gc_storm_stall_does_not_deadlock_the_flusher() {
    for scheme in [Scheme::Gimbal, Scheme::Reflex] {
        let cfg = TestbedConfig {
            scheme,
            precondition: Precondition::Fragmented,
            duration: SimDuration::from_millis(400),
            warmup: SimDuration::from_millis(100),
            seed: 11,
            record_submissions: true,
            sample_interval: Some(SimDuration::from_millis(25)),
            faults: Some(FaultConfig {
                plan: stall_only(),
                retry: RetryConfig::default(),
            }),
            cache: Some(CacheConfig {
                policy: AdmissionPolicy::Always,
                write_policy: WritePolicy::Back,
                ..CacheConfig::for_mb(64)
            }),
            ..TestbedConfig::default()
        };
        let res = Testbed::new(cfg, mixed_workers(2, 4)).run();
        assert!(
            res.faults.conservation_holds(),
            "{}: conservation: {:?}",
            scheme.name(),
            res.faults
        );
        let wb = &res.write_back[0];
        assert!(wb.conservation_holds(), "{}: {wb:?}", scheme.name());
        assert!(
            wb.flushed_lines > 0,
            "{}: flusher drained nothing across the storm: {wb:?}",
            scheme.name()
        );
        // The storm (150–250 ms) must not leave the flusher wedged: by the
        // wall, dirty debt is bounded by what the watermark allows plus the
        // final in-flight batch, not the whole run's ack volume.
        assert!(
            wb.dirty_lines < wb.acked_lines || wb.acked_lines == 0,
            "{}: every acked line still dirty at the wall — flusher deadlocked: {wb:?}",
            scheme.name()
        );
        // Foreground service resumed after the storm lifted. Bandwidth
        // samples taken late enough that their whole meter window lies after
        // the 250 ms release: real post-storm service, not residue.
        let post_storm_bps: f64 = res
            .workers
            .iter()
            .flat_map(|w| w.series.points())
            .filter(|p| p.0 >= ms(360))
            .map(|p| p.1)
            .sum();
        assert!(
            post_storm_bps > 0.0,
            "{}: no worker moved a byte after the storm cleared — flusher or \
             congestion control deadlocked",
            scheme.name()
        );
        check_run(&res);
    }
}

/// An empty fault plan must behave exactly like no fault plan at all: the
/// injector draws nothing, so the schedule is bit-identical to a fault-free
/// run. Retry timers are armed but given a budget no healthy IO approaches,
/// so none fires (verified via the retry counter).
#[test]
fn empty_fault_plan_matches_fault_free_run() {
    let mut base = TestbedConfig {
        scheme: Scheme::Gimbal,
        precondition: Precondition::Fragmented,
        duration: SimDuration::from_millis(400),
        warmup: SimDuration::from_millis(100),
        seed: 31,
        record_submissions: true,
        ..TestbedConfig::default()
    };
    let plain = Testbed::new(base.clone(), mixed_workers(3, 3)).run();
    base.faults = Some(FaultConfig {
        plan: FaultPlan::default(),
        retry: RetryConfig {
            base_timeout: SimDuration::from_millis(100),
            max_timeout: SimDuration::from_millis(200),
            max_retries: 5,
            ..RetryConfig::default()
        },
    });
    let armed = Testbed::new(base, mixed_workers(3, 3)).run();
    assert_eq!(armed.faults.retries, 0, "no healthy IO takes 100 ms");
    assert_eq!(plain.submissions, armed.submissions);
    assert_eq!(plain.stats_digest(), armed.stats_digest());
    assert_eq!(armed.faults.cmd_capsules_dropped, 0);
    assert_eq!(armed.faults.timed_out, 0);
    assert!(plain.faults.conservation_holds());
    assert!(armed.faults.conservation_holds());
}
