//! Quickstart: share one simulated SSD between two tenants behind the
//! Gimbal storage switch and print what each achieved.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gimbal_repro::sim::SimDuration;
use gimbal_repro::testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_repro::workload::FioSpec;

fn main() {
    // The default testbed SSD exports 512 MiB of 4 KiB blocks.
    let cap_blocks = 512 * 1024 * 1024 / 4096;

    // Tenant A: small random reads (a latency-sensitive service).
    // Tenant B: large random reads (a bulk scanner).
    let workers = vec![
        WorkerSpec::new(
            "small-reads",
            FioSpec::paper_default(1.0, 4096, 0, cap_blocks / 2),
        ),
        WorkerSpec::new(
            "big-reads",
            FioSpec::paper_default(1.0, 128 * 1024, cap_blocks / 2, cap_blocks / 2),
        ),
    ];

    let cfg = TestbedConfig {
        scheme: Scheme::Gimbal,
        precondition: Precondition::Clean,
        duration: SimDuration::from_secs(2),
        warmup: SimDuration::from_millis(800),
        ..TestbedConfig::default()
    };

    println!("running 2 tenants over one SSD behind the Gimbal switch…");
    let res = Testbed::new(cfg, workers).run();

    for w in &res.workers {
        println!(
            "{:>12}: {:>8.1} MB/s  {:>8.0} IOPS   read avg {:>6.0}us  p99 {:>6.0}us",
            w.label,
            w.bandwidth_mbps(),
            w.iops(),
            w.read_latency.mean_us(),
            w.read_latency.p99_us(),
        );
    }
    let s = res.ssd_stats[0];
    println!(
        "device: {} reads, {} writes, write amplification {:.2}",
        s.reads,
        s.writes,
        s.write_amplification()
    );
}
