//! A multi-tenant key-value deployment: several RocksDB-analog instances
//! over a pool of Gimbal JBOF backends, with the §4.3 optimizations
//! (replication, credit-driven rate limiting, read load balancing).
//!
//! ```sh
//! cargo run --release --example kv_store
//! ```

use gimbal_repro::sim::SimDuration;
use gimbal_repro::testbed::{
    cache_tier, AdmissionPolicy, KvTestbed, KvTestbedConfig, Precondition, Scheme,
};
use gimbal_repro::workload::YcsbMix;

fn main() {
    println!(
        "{:>8} {:>10} {:>14} {:>16} {:>10}",
        "Mix", "KIOPS", "avg read us", "p99.9 read us", "hit ratio"
    );
    for mix in YcsbMix::ALL {
        let cfg = KvTestbedConfig {
            scheme: Scheme::Gimbal,
            mix,
            num_nodes: 1,
            ssds_per_node: 4,
            instances: 6,
            records_per_instance: 25_000,
            replicate: true,
            flow_control: true,
            load_balance: true,
            precondition: Precondition::Fragmented,
            duration: SimDuration::from_secs(2),
            warmup: SimDuration::from_millis(600),
            // Each backend pipeline fronts its SSD with 32 MiB of NIC DRAM;
            // the Zipf-skewed YCSB reads are the cache's intended prey.
            cache: cache_tier(32, AdmissionPolicy::CongestionAware),
            ..KvTestbedConfig::default()
        };
        let res = KvTestbed::new(cfg).run();
        println!(
            "{:>8} {:>10.1} {:>14.0} {:>16.0} {:>10.3}",
            mix.name(),
            res.total_kiops(),
            res.avg_read_latency_us(),
            res.p999_read_latency_us(),
            res.cache_hit_ratio(),
        );
    }
    println!("\n(update-heavy mixes exercise WAL group commit, flush, and compaction)");
}
