//! Noisy neighbor: a latency-sensitive reader shares a fragmented SSD with
//! a 4×-more-intense reader — compare no isolation vs each scheme.
//!
//! This is the scenario the paper's introduction motivates: "a flow with
//! high intensity always obtains more bandwidth," and write neighbors are
//! the worst (§2.3, Fig 4). Gimbal's virtual slots + dynamic write cost
//! restore the reader's share and tail latency.
//!
//! ```sh
//! cargo run --release --example noisy_neighbor
//! ```
//!
//! The Gimbal run records structured telemetry and dumps it as
//! `noisy_neighbor_gimbal.trace.json` — load it at ui.perfetto.dev to watch
//! the congestion state machine, the target-rate counter, and the token
//! buckets react to the neighbor (see EXPERIMENTS.md for the recipe).

use gimbal_repro::fabric::Priority;
use gimbal_repro::sim::SimDuration;
use gimbal_repro::telemetry::{export, TraceConfig};
use gimbal_repro::testbed::{
    cache_tier, AdmissionPolicy, Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec,
};
use gimbal_repro::workload::{AccessPattern, FioSpec};

fn main() {
    let cap = 512 * 1024 * 1024 / 4096;
    println!(
        "{:>9} {:>16} {:>16} {:>14} {:>14}",
        "Scheme", "victim MB/s", "neighbor MB/s", "victim p99", "victim p99.9"
    );
    for scheme in [
        Scheme::Vanilla,
        Scheme::Reflex,
        Scheme::Parda,
        Scheme::FlashFq,
        Scheme::Gimbal,
    ] {
        // Victim: 4 KB random reads at moderate intensity (QD 32).
        let victim = WorkerSpec::new("victim", FioSpec::paper_default(1.0, 4096, 0, cap / 2))
            .with_priority(Priority::HIGH);
        // Neighbor: same IO shape but 4× the intensity (QD 128) — the
        // paper's Fig 4 shows intensity alone steals bandwidth on an
        // unmanaged target.
        let neighbor = WorkerSpec::new(
            "neighbor",
            FioSpec {
                queue_depth: 128,
                ..FioSpec::paper_default(1.0, 4096, cap / 2, cap / 2)
            },
        )
        .with_priority(Priority::LOW);

        let cfg = TestbedConfig {
            scheme,
            precondition: Precondition::Fragmented,
            duration: SimDuration::from_secs(2),
            warmup: SimDuration::from_millis(800),
            // Trace the Gimbal run for the Perfetto dump below.
            trace: (scheme == Scheme::Gimbal).then(TraceConfig::default),
            ..TestbedConfig::default()
        };
        let res = Testbed::new(cfg, vec![victim, neighbor]).run();
        if let Some(trace) = &res.trace {
            let path = "noisy_neighbor_gimbal.trace.json";
            match export::write_chrome_trace(path, trace) {
                Ok(()) => eprintln!(
                    "[trace] {} events -> {path} (load at ui.perfetto.dev)",
                    trace.events.len()
                ),
                Err(e) => eprintln!("[trace] write failed: {e}"),
            }
        }
        let v = &res.workers[0];
        let n = &res.workers[1];
        println!(
            "{:>9} {:>16.1} {:>16.1} {:>12.0}us {:>12.0}us",
            scheme.name(),
            v.bandwidth_mbps(),
            n.bandwidth_mbps(),
            v.read_latency.p99_us(),
            v.read_latency.p999_us(),
        );
    }
    println!("\n(the victim should approach a 50/50 share under Gimbal; on the vanilla\n target the high-QD neighbor takes several times the victim's bandwidth)");

    // Second panel: the victim's reads are Zipf-skewed and the pipeline
    // fronts the SSD with a NIC-DRAM cache tier. The victim's hot set now
    // completes from DRAM, sidestepping the neighbor's device queue
    // entirely — isolation by absorption, on top of Gimbal's scheduling.
    println!(
        "\n{:>9} {:>16} {:>16} {:>14} {:>10}",
        "Cache", "victim MB/s", "neighbor MB/s", "victim p99", "hit ratio"
    );
    for cache_mb in [0u64, 64] {
        let mut fio = FioSpec::paper_default(1.0, 4096, 0, cap / 2);
        fio.read_pattern = AccessPattern::Zipfian;
        let victim = WorkerSpec::new("victim", fio).with_priority(Priority::HIGH);
        let neighbor = WorkerSpec::new(
            "neighbor",
            FioSpec {
                queue_depth: 128,
                ..FioSpec::paper_default(1.0, 4096, cap / 2, cap / 2)
            },
        )
        .with_priority(Priority::LOW);
        let cfg = TestbedConfig {
            scheme: Scheme::Gimbal,
            precondition: Precondition::Fragmented,
            duration: SimDuration::from_secs(2),
            warmup: SimDuration::from_millis(800),
            cache: cache_tier(cache_mb, AdmissionPolicy::CongestionAware),
            ..TestbedConfig::default()
        };
        let res = Testbed::new(cfg, vec![victim, neighbor]).run();
        let v = &res.workers[0];
        let n = &res.workers[1];
        println!(
            "{:>9} {:>16.1} {:>16.1} {:>12.0}us {:>10.3}",
            if cache_mb == 0 {
                "off".to_string()
            } else {
                format!("{cache_mb} MiB")
            },
            v.bandwidth_mbps(),
            n.bandwidth_mbps(),
            v.read_latency.p99_us(),
            res.cache_hit_ratio(),
        );
    }
}
