//! Watch Gimbal's control loops live: the delay-based congestion controller
//! ramping its target rate, the dynamic latency threshold chasing the EWMA,
//! and the write-cost estimator reacting to a write burst.
//!
//! ```sh
//! cargo run --release --example congestion_dynamics
//! ```

use gimbal_repro::sim::{SimDuration, SimTime};
use gimbal_repro::testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_repro::workload::FioSpec;

fn main() {
    let cap = 512 * 1024 * 1024 / 4096;
    // Phase 1 (0–1 s): readers only. Phase 2 (1–2.5 s): a write burst joins.
    let mut workers: Vec<WorkerSpec> = (0..4u64)
        .map(|i| {
            WorkerSpec::new(
                "reader",
                FioSpec::paper_default(1.0, 128 * 1024, i * cap / 8, cap / 8),
            )
        })
        .collect();
    for i in 4..8u64 {
        workers.push(
            WorkerSpec::new(
                "writer",
                FioSpec::paper_default(0.0, 128 * 1024, i * cap / 8, cap / 8),
            )
            .active(SimTime::from_secs(1), None),
        );
    }
    let cfg = TestbedConfig {
        scheme: Scheme::Gimbal,
        precondition: Precondition::Clean,
        duration: SimDuration::from_millis(2500),
        warmup: SimDuration::from_millis(100),
        sample_interval: Some(SimDuration::from_millis(50)),
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, workers).run();
    let tr = &res.gimbal_traces[0];

    println!(
        "{:>7} {:>14} {:>12} {:>13} {:>11}",
        "t (ms)", "target MB/s", "ewma (us)", "thresh (us)", "write cost"
    );
    let step = SimDuration::from_millis(250);
    let mut t = SimTime::ZERO + step;
    let end = SimTime::ZERO + SimDuration::from_millis(2500);
    while t <= end {
        let lo = t - step;
        println!(
            "{:>7.0} {:>14.0} {:>12.0} {:>13.0} {:>11.1}",
            t.as_secs_f64() * 1e3,
            tr.target_rate.mean_in(lo, t).unwrap_or(0.0) / 1e6,
            tr.read_ewma_us.mean_in(lo, t).unwrap_or(0.0),
            tr.read_thresh_us.mean_in(lo, t).unwrap_or(0.0),
            tr.write_cost.mean_in(lo, t).unwrap_or(f64::NAN),
        );
        t += step;
    }
    println!("\n(expect: rate ramps up during phase 1; write cost drops below 9 while");
    println!(" the buffer absorbs the burst, then recovers as write latency rises)");
}
