//! # gimbal-repro
//!
//! A full reproduction of **"Gimbal: Enabling Multi-tenant Storage
//! Disaggregation on SmartNIC JBOFs"** (Min et al., SIGCOMM 2021) as a
//! deterministic discrete-event simulation in Rust.
//!
//! This façade crate re-exports the workspace so applications can depend on
//! one crate:
//!
//! * [`sim`] — the simulation kernel (virtual time, events, RNG, stats);
//! * [`fabric`] — NVMe-oF protocol types and the RDMA fabric model;
//! * [`ssd`] — the flash SSD model (FTL, GC, write buffer, die priority);
//! * [`nic`] — SmartNIC/server CPU cost model;
//! * [`switch`] — the storage-switch pipeline and policy traits;
//! * [`cache`] — the congestion-aware multi-tenant NIC-DRAM cache tier;
//! * [`gimbal`] — the paper's contribution: delay-based congestion control,
//!   dual token bucket, write-cost estimation, virtual-slot DRR scheduling,
//!   credit-based flow control, per-SSD virtual view;
//! * [`baselines`] — ReFlex, Parda, FlashFQ ports;
//! * [`workload`] — fio-like streams and YCSB;
//! * [`broker`] — inter-tenant token borrowing with deterministic
//!   repayment, and Serifos-style interference-aware tenant placement;
//! * [`cores`] — the node-level reactor-core scheduler: deterministic
//!   inter-pipeline work stealing and epoch-based home rebalance;
//! * [`blobstore`] — the hierarchical blob allocator + replication layer;
//! * [`lsm_kv`] — the RocksDB-analog LSM store;
//! * [`telemetry`] — deterministic structured tracing, metrics, and
//!   Perfetto/JSONL export;
//! * [`testbed`] — end-to-end experiment orchestration.
//!
//! ## Quick start
//!
//! ```
//! use gimbal_repro::testbed::{Scheme, Testbed, TestbedConfig, WorkerSpec};
//! use gimbal_repro::workload::FioSpec;
//! use gimbal_repro::sim::SimDuration;
//!
//! // Two tenants share one SSD behind a Gimbal switch.
//! let cap = 512 * 1024 * 1024 / 4096;
//! let workers = vec![
//!     WorkerSpec::new("small-reads", FioSpec::paper_default(1.0, 4096, 0, cap / 2)),
//!     WorkerSpec::new("big-reads", FioSpec::paper_default(1.0, 128 * 1024, cap / 2, cap / 2)),
//! ];
//! let cfg = TestbedConfig {
//!     scheme: Scheme::Gimbal,
//!     duration: SimDuration::from_millis(400),
//!     warmup: SimDuration::from_millis(100),
//!     ..TestbedConfig::default()
//! };
//! let result = Testbed::new(cfg, workers).run();
//! assert!(result.workers.iter().all(|w| w.ops > 0));
//! ```

pub use gimbal_baselines as baselines;
pub use gimbal_blobstore as blobstore;
pub use gimbal_broker as broker;
pub use gimbal_cache as cache;
pub use gimbal_core as gimbal;
pub use gimbal_cores as cores;
pub use gimbal_fabric as fabric;
pub use gimbal_lsm_kv as lsm_kv;
pub use gimbal_nic as nic;
pub use gimbal_rack as rack;
pub use gimbal_sim as sim;
pub use gimbal_ssd as ssd;
pub use gimbal_switch as switch;
pub use gimbal_telemetry as telemetry;
pub use gimbal_testbed as testbed;
pub use gimbal_workload as workload;
