//! Compare a fresh jbofsim `--bench-json` summary against a committed
//! baseline and fail on performance regressions beyond a tolerance.
//!
//! ```text
//! bench_gate BASELINE.json FRESH.json [--tolerance PCT]
//! ```
//!
//! Both files carry the shape `write_bench_json` emits. The gate walks the
//! two documents in parallel and checks every metric with a known
//! direction:
//!
//! * higher is better: `throughput_mbps`, `hit_ratio`, `iops`, and the
//!   cores-sweep curve (`shared_nothing_mbps`, `steal_mbps`, `win_pct`,
//!   `steal_win_pct`) — fail when the fresh value drops more than `PCT`
//!   percent below the baseline;
//! * lower is better: `mean_us`, `p50_us`, `p99_us`, `p999_us`,
//!   `write_amplification` — fail when the fresh value rises more than
//!   `PCT` percent above the baseline.
//!
//! Everything else (counts, labels, configuration echoes) is ignored — the
//! bench-smoke freshness diff in CI already pins those bit for bit. The
//! default tolerance is 10%.

use std::process::ExitCode;

/// A minimal JSON value. The workspace has no dependencies, and the bench
/// summaries are machine-written with a fixed shape, so a small
/// recursive-descent parser is all the gate needs.
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered: the writer emits a fixed field order and the
    /// comparison walks both documents positionally.
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("json parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            // The writer only escapes quotes/backslashes;
                            // \u is tolerated as a literal passthrough.
                            out.push_str("\\u");
                        }
                        Some(c) => out.push(c as char),
                        None => return Err(self.err("truncated escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through byte-wise;
                    // the gate never compares string *contents*.
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(&String::from_utf8_lossy(&self.bytes[start..self.pos]));
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Metric direction by field name.
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
    Ignore,
}

fn direction(key: &str) -> Direction {
    match key {
        "throughput_mbps"
        | "hit_ratio"
        | "iops"
        | "shared_nothing_mbps"
        | "steal_mbps"
        | "win_pct"
        | "steal_win_pct"
        | "events_per_sec"
        | "wheel_mops"
        | "heap_mops"
        | "wheel_vs_heap_speedup" => Direction::HigherIsBetter,
        "mean_us" | "p50_us" | "p99_us" | "p999_us" | "write_amplification" => {
            Direction::LowerIsBetter
        }
        _ => Direction::Ignore,
    }
}

struct Gate {
    tolerance: f64,
    regressions: Vec<String>,
    compared: usize,
}

impl Gate {
    fn walk(&mut self, path: &str, base: &Json, fresh: &Json) {
        match (base, fresh) {
            (Json::Obj(a), Json::Obj(b)) => {
                for (key, bv) in a {
                    match b.iter().find(|(k, _)| k == key) {
                        Some((_, fv)) => {
                            self.walk(&format!("{path}.{key}"), bv, fv);
                        }
                        None => self
                            .regressions
                            .push(format!("{path}.{key}: missing from fresh output")),
                    }
                }
            }
            (Json::Arr(a), Json::Arr(b)) => {
                if a.len() != b.len() {
                    self.regressions.push(format!(
                        "{path}: length changed {} -> {}",
                        a.len(),
                        b.len()
                    ));
                    return;
                }
                for (i, (bv, fv)) in a.iter().zip(b).enumerate() {
                    self.walk(&format!("{path}[{i}]"), bv, fv);
                }
            }
            (Json::Num(bv), Json::Num(fv)) => {
                let key = path.rsplit('.').next().unwrap_or(path);
                let key = key.split('[').next().unwrap_or(key);
                let failed = match direction(key) {
                    // Tiny baselines (zero-count latency summaries) carry
                    // no signal; a relative bound on ~0 is pure noise.
                    Direction::HigherIsBetter if *bv > 0.0 => {
                        self.compared += 1;
                        *fv < bv * (1.0 - self.tolerance)
                    }
                    Direction::LowerIsBetter if *bv > 0.0 => {
                        self.compared += 1;
                        *fv > bv * (1.0 + self.tolerance)
                    }
                    _ => false,
                };
                if failed {
                    self.regressions.push(format!(
                        "{path}: {bv} -> {fv} ({:+.1}%, tolerance {:.0}%)",
                        (fv / bv - 1.0) * 100.0,
                        self.tolerance * 100.0
                    ));
                }
            }
            _ => {} // strings, bools, type changes: the freshness diff owns these
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 0.10f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("bench_gate: --tolerance needs a percentage");
                    return ExitCode::from(2);
                };
                tolerance = v / 100.0;
                i += 2;
            }
            "--help" | "-h" => {
                println!("usage: bench_gate BASELINE.json FRESH.json [--tolerance PCT]");
                return ExitCode::SUCCESS;
            }
            other => {
                paths.push(other.to_owned());
                i += 1;
            }
        }
    }
    let [base_path, fresh_path] = &paths[..] else {
        eprintln!("usage: bench_gate BASELINE.json FRESH.json [--tolerance PCT]");
        return ExitCode::from(2);
    };

    let read = |p: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
        parse(&text).map_err(|e| format!("{p}: {e}"))
    };
    let (base, fresh) = match (read(base_path), read(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };

    let mut gate = Gate {
        tolerance,
        regressions: Vec::new(),
        compared: 0,
    };
    gate.walk("$", &base, &fresh);

    if gate.compared == 0 {
        eprintln!("bench_gate: no comparable metrics found — wrong files?");
        return ExitCode::from(2);
    }
    for r in &gate.regressions {
        eprintln!("bench_gate: REGRESSION {r}");
    }
    println!(
        "bench_gate: {} metrics compared against {base_path}, {} regressions (tolerance {:.0}%)",
        gate.compared,
        gate.regressions.len(),
        tolerance * 100.0
    );
    if gate.regressions.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
        "scheme": "Gimbal",
        "cache": {"hit_ratio": 0.25},
        "groups": [
            {"label": "read", "throughput_mbps": 100.0,
             "read_latency": {"count": 10, "mean_us": 500.0, "p99_us": 900.0}}
        ],
        "ssds": [{"reads": 100, "write_amplification": 1.5}]
    }"#;

    fn run_gate(base: &str, fresh: &str, tol: f64) -> (usize, Vec<String>) {
        let b = parse(base).unwrap();
        let f = parse(fresh).unwrap();
        let mut g = Gate {
            tolerance: tol,
            regressions: Vec::new(),
            compared: 0,
        };
        g.walk("$", &b, &f);
        (g.compared, g.regressions)
    }

    #[test]
    fn identical_files_pass() {
        let (compared, regs) = run_gate(BASE, BASE, 0.10);
        assert!(compared >= 5, "compared {compared}");
        assert!(regs.is_empty(), "{regs:?}");
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let fresh = BASE
            .replace("100.0", "95.0") // -5% throughput: fine
            .replace("900.0", "950.0"); // +5.5% p99: fine
        let (_, regs) = run_gate(BASE, &fresh, 0.10);
        assert!(regs.is_empty(), "{regs:?}");
    }

    #[test]
    fn throughput_drop_beyond_tolerance_fails() {
        let fresh = BASE.replace("\"throughput_mbps\": 100.0", "\"throughput_mbps\": 80.0");
        let (_, regs) = run_gate(BASE, &fresh, 0.10);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("throughput_mbps"));
    }

    #[test]
    fn latency_rise_beyond_tolerance_fails() {
        let fresh = BASE.replace("\"p99_us\": 900.0", "\"p99_us\": 1200.0");
        let (_, regs) = run_gate(BASE, &fresh, 0.10);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("p99_us"));
    }

    #[test]
    fn latency_improvement_passes() {
        let fresh = BASE.replace("\"mean_us\": 500.0", "\"mean_us\": 100.0");
        let (_, regs) = run_gate(BASE, &fresh, 0.10);
        assert!(regs.is_empty(), "{regs:?}");
    }

    #[test]
    fn zero_baseline_metrics_are_skipped() {
        let base = r#"{"groups": [{"throughput_mbps": 0.0, "mean_us": 100.0}]}"#;
        let fresh = r#"{"groups": [{"throughput_mbps": 50.0, "mean_us": 100.0}]}"#;
        let (compared, regs) = run_gate(base, fresh, 0.10);
        assert_eq!(compared, 1); // only mean_us
        assert!(regs.is_empty());
    }

    #[test]
    fn missing_metric_is_flagged() {
        let fresh = BASE.replace("\"hit_ratio\": 0.25", "\"other\": 0.25");
        let (_, regs) = run_gate(BASE, &fresh, 0.10);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("missing"));
    }

    #[test]
    fn cores_sweep_curve_is_compared() {
        let base = r#"{"steal_win_pct": 40.0, "points": [
            {"cores": 2, "shared_nothing_mbps": 1500.0, "steal_mbps": 2100.0, "win_pct": 40.0}
        ]}"#;
        let fresh = base.replace("\"steal_mbps\": 2100.0", "\"steal_mbps\": 1600.0");
        let (compared, regs) = run_gate(base, &fresh, 0.10);
        assert_eq!(compared, 4, "{regs:?}");
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("steal_mbps"));
    }

    #[test]
    fn scale_bench_metrics_are_compared() {
        let base = r#"{"wall_ms": 900.0, "events_per_sec": 2000000.0,
            "queue_microbench": {"pending": 32000, "wheel_mops": 25.0, "heap_mops": 8.0},
            "wheel_vs_heap_speedup": 3.1}"#;
        // wall_ms is machine noise and must stay ignored; a collapsed
        // speedup must trip the gate.
        let fresh = base
            .replace("\"wall_ms\": 900.0", "\"wall_ms\": 5000.0")
            .replace(
                "\"wheel_vs_heap_speedup\": 3.1",
                "\"wheel_vs_heap_speedup\": 1.0",
            );
        let (compared, regs) = run_gate(base, &fresh, 0.10);
        assert_eq!(compared, 4, "{regs:?}");
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("wheel_vs_heap_speedup"));
    }

    #[test]
    fn parser_round_trips_real_shapes() {
        let v = parse(BASE).unwrap();
        let Json::Obj(fields) = &v else {
            panic!("not an object")
        };
        assert_eq!(fields[0].0, "scheme");
        assert_eq!(fields[0].1, Json::Str("Gimbal".to_owned()));
        assert!(parse("[1, 2.5, -3e2, true, null, \"x\"]").is_ok());
        assert!(parse("{\"a\": 1,}").is_err());
        assert!(parse("{} extra").is_err());
    }
}
