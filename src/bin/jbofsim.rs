//! `jbofsim` — compose multi-tenant JBOF experiments from the command line.
//!
//! ```sh
//! cargo run --release --bin jbofsim -- \
//!     --scheme gimbal --precondition fragmented --duration-ms 2000 \
//!     --workers 8x4k-read,4x128k-write-qd8,2x4k-read-rate50
//! ```
//!
//! Worker specs are `COUNTxSIZE-TYPE[-qdN][-rateM]` where SIZE is like `4k`
//! or `128k`, TYPE is `read`, `write`, or a mixed ratio like `mix70` (70 %
//! reads), and `rateM` caps each worker at M MB/s. Workers are spread over
//! disjoint LBA regions and, when `--ssds` > 1, round-robin across SSDs.

use gimbal_repro::cores::{CoresStats, StealConfig};
use gimbal_repro::fabric::RetryConfig;
use gimbal_repro::rack::{RackConfig, RackResult, RackTestbed};
use gimbal_repro::sim::{EventQueue, FaultPlan, FaultWindow, HeapEventQueue, SimDuration, SimTime};
use gimbal_repro::telemetry::{export, TraceConfig};
use gimbal_repro::testbed::{
    cache_tier_wb, jain_index, AdmissionPolicy, BrokerConfig, BrokerMode, FaultConfig,
    Precondition, RunResult, Scheme, Testbed, TestbedConfig, WorkerSpec, WritePolicy,
};
use gimbal_repro::workload::FioSpec;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: jbofsim [--scheme vanilla|reflex|parda|flashfq|gimbal]\n\
         \x20              [--precondition clean|fragmented]\n\
         \x20              [--duration-ms N] [--warmup-ms N] [--ssds N] [--cores N]\n\
         \x20              [--seed N] [--trace-out FILE] [--trace-format chrome|jsonl]\n\
         \x20              [--cache-mb N] [--cache-policy always|congestion|never]\n\
         \x20              [--cache-write-policy through|back] [--bench-json FILE]\n\
         \x20              [--borrow] [--borrow-strict] [--borrow-mbps N]\n\
         \x20              [--borrow-epoch-ms N] [--placement]\n\
         \x20              [--steal] [--steal-rebalance-ms N] [--cores-sweep K[,K…]]\n\
         \x20              [--batch N] [--scale TENANTS]\n\
         \x20              [--sanitize] --workers SPEC[,SPEC…]\n\
         \x20      rack mode: --rack-nodes N [--rack-ssds-per-node N]\n\
         \x20              [--rack-clients N] [--rack-qd N] [--rack-read-ratio F]\n\
         \x20              [--rack-fault none|node-death|gc-storm|partition]\n\
         \x20              [--rack-no-replicate] [--rack-gc-blind]\n\
         \n\
         SPEC = COUNTxSIZE-TYPE[-qdN][-rateM][-zipf][-burstAxB][-ssdN]   e.g.\n\
         \x20      8x4k-read, 4x128k-write-qd8, 2x4k-mix70-rate50 (70% reads,\n\
         \x20      50 MB/s cap per worker), 8x4k-read-zipf (Zipf-skewed\n\
         \x20      addresses), 4x4k-read-burst20x60 (20 ms on, 60 ms off,\n\
         \x20      phases auto-staggered across the group's workers);\n\
         \x20      -ssdN pins the whole group to SSD N (skewed placements\n\
         \x20      for the core-stealing bench) instead of round-robin\n\
         \n\
         --borrow enables the inter-tenant token broker (borrowing on);\n\
         \x20      --borrow-strict runs it with borrowing off (per-tenant\n\
         \x20      buckets only — the ablation baseline); --borrow-mbps sets\n\
         \x20      the brokered per-SSD capacity (default 512 MiB/s);\n\
         \x20      --borrow-epoch-ms sets the settlement epoch (default 20;\n\
         \x20      pick one co-prime with burst periods to avoid phase lock);\n\
         \x20      --placement adds Serifos-style tenant migration at epochs\n\
         --steal shares the reactor cores across SSD pipelines (gimbal-cores):\n\
         \x20      an idle core executes poll quanta for a saturated\n\
         \x20      neighbor's pipeline through the deterministic steal ring;\n\
         \x20      --steal-rebalance-ms sets the home-rebalance epoch\n\
         \x20      (default 20, 0 disables rebalance)\n\
         --cores-sweep runs the workload once per listed core count, with\n\
         \x20      stealing off and on, and reports the throughput-vs-cores\n\
         \x20      curve (the XBOF claim; --bench-json writes it as JSON)\n\
         --cache-mb enables a NIC-DRAM cache of N MiB per SSD pipeline (0 = off);\n\
         \x20      --cache-policy picks the fill admission law (default congestion);\n\
         \x20      --cache-write-policy back acks writes from DRAM and drains\n\
         \x20      them to flash via the deterministic flusher (default through)\n\
         --batch coalesces up to N same-instant command arrivals per SSD into\n\
         \x20      one pipeline quantum (default 1 = off; digests are stable\n\
         \x20      across batch sizes — see tests/trace_conformance.rs)\n\
         --scale runs the hot-path bench: TENANTS synthesized 4 KiB readers\n\
         \x20      spread round-robin over the SSDs, batching on, wall-clock\n\
         \x20      events/sec reported alongside a wheel-vs-heap event-queue\n\
         \x20      microbench; --bench-json writes BENCH_scale.json-shaped\n\
         \x20      output (--workers is ignored in this mode)\n\
         --bench-json writes a machine-readable run summary to FILE\n\
         --rack-nodes switches to the rack testbed: N JBOF nodes behind a\n\
         \x20      deterministic ToR with GC/failure-aware routing; --rack-fault\n\
         \x20      injects a canonical mid-run fault (node-death kills node 1,\n\
         \x20      gc-storm storms node 0, partition isolates node 1 briefly)\n\
         --sanitize runs the experiment twice with the state-access journal\n\
         \x20      enabled and localizes any divergence to its first tick\n\
         --trace-out enables structured telemetry and writes the trace to FILE:\n\
         \x20      chrome (default) loads in Perfetto (ui.perfetto.dev), jsonl is\n\
         \x20      one event per line for grep/jq"
    );
    exit(2);
}

fn parse_size(s: &str) -> Option<u64> {
    let s = s.to_ascii_lowercase();
    let (num, mult) = if let Some(n) = s.strip_suffix('k') {
        (n, 1024)
    } else if let Some(n) = s.strip_suffix('m') {
        (n, 1024 * 1024)
    } else {
        (s.as_str(), 1)
    };
    num.parse::<u64>().ok().map(|v| v * mult)
}

struct ParsedWorker {
    count: u32,
    io_bytes: u64,
    read_ratio: f64,
    qd: Option<u32>,
    rate: Option<f64>,
    zipf: bool,
    /// `(on_ms, off_ms)` burst cycle; phases are staggered evenly across
    /// the group's `count` workers so their ON windows interleave.
    burst: Option<(u64, u64)>,
    /// Pin the whole group to one SSD instead of round-robin placement —
    /// how the cores bench lands every hot tenant on one home core.
    ssd: Option<u32>,
    label: String,
}

fn parse_worker(spec: &str) -> Option<ParsedWorker> {
    let (count, rest) = spec.split_once('x')?;
    let count: u32 = count.parse().ok()?;
    let mut parts = rest.split('-');
    let io_bytes = parse_size(parts.next()?)?;
    let ty = parts.next()?;
    let read_ratio = match ty {
        "read" => 1.0,
        "write" => 0.0,
        t if t.starts_with("mix") => t[3..].parse::<f64>().ok()? / 100.0,
        _ => return None,
    };
    let mut qd = None;
    let mut rate = None;
    let mut zipf = false;
    let mut burst = None;
    let mut ssd = None;
    for p in parts {
        if let Some(n) = p.strip_prefix("ssd") {
            ssd = Some(n.parse().ok()?);
        } else if let Some(n) = p.strip_prefix("qd") {
            qd = Some(n.parse().ok()?);
        } else if let Some(n) = p.strip_prefix("rate") {
            rate = Some(n.parse::<f64>().ok()? * 1e6);
        } else if let Some(n) = p.strip_prefix("burst") {
            let (on, off) = n.split_once('x')?;
            let on: u64 = on.parse().ok()?;
            let off: u64 = off.parse().ok()?;
            if on == 0 || off == 0 {
                return None;
            }
            burst = Some((on, off));
        } else if p == "zipf" {
            zipf = true;
        } else {
            return None;
        }
    }
    Some(ParsedWorker {
        count,
        io_bytes,
        read_ratio,
        qd,
        rate,
        zipf,
        burst,
        ssd,
        label: spec.to_string(),
    })
}

/// Minimal JSON string escape for worker labels (quotes and backslashes;
/// specs cannot contain control characters).
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn latency_json(l: &gimbal_repro::sim::stats::LatencySummary) -> String {
    format!(
        "{{\"count\": {}, \"mean_us\": {:.3}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \"p999_us\": {:.3}}}",
        l.count,
        l.mean_us(),
        l.p50_ns as f64 / 1e3,
        l.p99_us(),
        l.p999_us()
    )
}

/// Write the machine-readable run summary: scheme, per-group throughput and
/// latency percentiles, per-SSD device stats, and the cache tier's hit
/// ratio. Hand-rolled JSON — the workspace carries no serializer.
fn write_bench_json(
    path: &str,
    scheme: Scheme,
    cache_mb: u64,
    cache_policy: AdmissionPolicy,
    cache_write: WritePolicy,
    worker_specs: &[ParsedWorker],
    res: &RunResult,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"scheme\": \"{}\",\n", scheme.name()));
    let total_mbps = res.aggregate_bps(|_| true) / 1e6;
    out.push_str(&format!("  \"total_throughput_mbps\": {total_mbps:.3},\n"));
    // Per-tenant fairness: Jain's index over per-worker achieved bandwidth,
    // plus each group's achieved share of the aggregate against its
    // entitled (equal-split) share.
    let per_worker: Vec<f64> = res.workers.iter().map(|w| w.bandwidth_mbps()).collect();
    let total_workers: u32 = worker_specs.iter().map(|w| w.count).sum();
    out.push_str(&format!(
        "  \"fairness\": {{\"jain_index\": {:.6}, \"groups\": [",
        jain_index(&per_worker)
    ));
    for (gi, w) in worker_specs.iter().enumerate() {
        let achieved = if total_mbps > 0.0 {
            res.aggregate_bps(|l| l == w.label) / 1e6 / total_mbps
        } else {
            0.0
        };
        let entitled = f64::from(w.count) / f64::from(total_workers.max(1));
        out.push_str(&format!(
            "{}{{\"label\": \"{}\", \"achieved_share\": {achieved:.6}, \"entitled_share\": {entitled:.6}}}",
            if gi > 0 { ", " } else { "" },
            json_escape(&w.label)
        ));
    }
    out.push_str("]},\n");
    if let Some(b) = &res.broker {
        out.push_str(&format!(
            "  \"broker\": {{\"granted\": {}, \"repaid\": {}, \"interest_paid\": {}, \"forgiven\": {}, \"outstanding\": {}, \"denials\": {}, \"borrow_events\": {}, \"charged_bytes\": {}, \"flush_charged_bytes\": {}, \"migrations\": {}, \"epochs\": {}, \"floor_violations\": {}, \"conservation\": {}}},\n",
            b.granted,
            b.repaid,
            b.interest_paid,
            b.forgiven,
            b.outstanding,
            b.denials,
            b.borrow_events,
            b.charged_bytes,
            b.flush_charged_bytes,
            b.migrations,
            b.epochs,
            b.floor_violations,
            b.conservation_holds()
        ));
    }
    if let Some(c) = &res.cores {
        out.push_str(&format!(
            "  \"cores\": {{\"count\": {}, \"steals\": {}, \"rebalances\": {}, \"moved_homes\": {}, \"stolen_busy_ns\": {}, \"per_core_busy_ns\": [{}]}},\n",
            c.cores,
            c.steals,
            c.rebalances,
            c.moved_homes,
            c.stolen_busy_ns,
            c.per_core_busy_ns
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    let [_, wr_all] = res.group_latency(|_| true);
    out.push_str(&format!(
        "  \"cache\": {{\"enabled\": {}, \"mb_per_ssd\": {cache_mb}, \"policy\": \"{}\", \"write_policy\": \"{}\", \"hit_ratio\": {:.4}, \"write_back\": {{\"acked\": {}, \"flushed_lines\": {}, \"lost_lines\": {}, \"dirty_lines\": {}, \"mean_write_us\": {:.3}}}}},\n",
        !res.cache.is_empty(),
        cache_policy.name(),
        cache_write.name(),
        res.cache_hit_ratio(),
        res.write_back.iter().map(|w| w.acked).sum::<u64>(),
        res.write_back.iter().map(|w| w.flushed_lines).sum::<u64>(),
        res.write_back.iter().map(|w| w.lost_lines).sum::<u64>(),
        res.write_back.iter().map(|w| w.dirty_lines).sum::<u64>(),
        wr_all.mean_us()
    ));
    out.push_str("  \"groups\": [\n");
    for (gi, w) in worker_specs.iter().enumerate() {
        let bw = res.aggregate_bps(|l| l == w.label) / 1e6;
        let [rd, wr] = res.group_latency(|l| l == w.label);
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"workers\": {}, \"throughput_mbps\": {:.3}, \"read_latency\": {}, \"write_latency\": {}}}{}\n",
            json_escape(&w.label),
            w.count,
            bw,
            latency_json(&rd),
            latency_json(&wr),
            if gi + 1 < worker_specs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"ssds\": [\n");
    for (si, s) in res.ssd_stats.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"reads\": {}, \"writes\": {}, \"write_amplification\": {:.4}}}{}\n",
            s.reads,
            s.writes,
            s.write_amplification(),
            if si + 1 < res.ssd_stats.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// The canonical mid-run fault plans the CLI can inject into a rack run.
/// Windows are fractions of the run so any `--duration-ms` works.
fn rack_fault_config(kind: &str, duration_ms: u64) -> Option<FaultConfig> {
    let at =
        |f: f64| SimTime::ZERO + SimDuration::from_micros((duration_ms as f64 * f * 1e3) as u64);
    let retry = RetryConfig {
        base_timeout: SimDuration::from_millis(1),
        max_timeout: SimDuration::from_millis(8),
        max_retries: 5,
        suspect_after: 2,
    };
    match kind {
        "none" => None,
        "node-death" => Some(FaultConfig {
            plan: FaultPlan::default().with_node_death(1, at(1.0 / 3.0)),
            retry,
        }),
        "gc-storm" => Some(FaultConfig {
            plan: FaultPlan::default().with_node_gc_storm(0, FaultWindow::new(at(0.25), at(0.75))),
            retry,
        }),
        "partition" => Some(FaultConfig {
            plan: FaultPlan::default()
                .with_node_partition(1, FaultWindow::new(at(1.0 / 3.0), at(0.45))),
            retry,
        }),
        other => {
            eprintln!("unknown rack fault {other}");
            usage()
        }
    }
}

/// Machine-readable rack run summary: throughput, read/write latency, the
/// two conservation ledgers, and per-node ToR byte counts.
fn write_rack_bench_json(
    path: &str,
    scheme: Scheme,
    fault: &str,
    res: &RackResult,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"scheme\": \"{}\",\n", scheme.name()));
    out.push_str(&format!("  \"fault\": \"{}\",\n", json_escape(fault)));
    out.push_str(&format!("  \"iops\": {:.3},\n", res.iops()));
    out.push_str(&format!(
        "  \"read_latency\": {{\"mean_us\": {:.3}, \"p99_us\": {:.3}}},\n",
        res.mean_read_latency_us(),
        res.p99_read_latency_us()
    ));
    let r = &res.rack;
    out.push_str(&format!(
        "  \"rack\": {{\"issued\": {}, \"acked_ok\": {}, \"acked_degraded\": {}, \"failed_typed\": {}, \"in_flight_at_end\": {}, \"nodes_suspected\": {}, \"reroutes\": {}, \"tor_cmd_drops\": {}, \"tor_cpl_drops\": {}, \"link_degraded_crossings\": {}}},\n",
        r.issued,
        r.acked_ok,
        r.acked_degraded,
        r.failed_typed,
        r.in_flight_at_end,
        r.nodes_suspected,
        r.reroutes,
        r.tor_cmd_drops,
        r.tor_cpl_drops,
        r.link_degraded_crossings
    ));
    out.push_str(&format!(
        "  \"physical\": {{\"submitted\": {}, \"timed_out\": {}, \"retries\": {}}},\n",
        res.physical.submitted, res.physical.timed_out, res.physical.retries
    ));
    out.push_str(&format!(
        "  \"conservation_audit\": {},\n",
        res.conservation_audit_holds()
    ));
    out.push_str("  \"tor\": [\n");
    let nodes = res.tor_bytes_down.len();
    for n in 0..nodes {
        out.push_str(&format!(
            "    {{\"node\": {n}, \"bytes_down\": {}, \"bytes_up\": {}}}{}\n",
            res.tor_bytes_down[n],
            res.tor_bytes_up[n],
            if n + 1 < nodes { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

#[allow(clippy::too_many_arguments)]
fn run_rack(
    scheme: Scheme,
    nodes: u32,
    ssds_per_node: u32,
    clients: u32,
    qd: u32,
    read_ratio: f64,
    fault: &str,
    replicate: bool,
    gc_aware: bool,
    duration_ms: u64,
    warmup_ms: u64,
    seed: u64,
    sanitize: bool,
    steal: Option<StealConfig>,
    bench_json: Option<&str>,
) {
    let cfg = RackConfig {
        scheme,
        nodes,
        ssds_per_node,
        clients,
        queue_depth: qd,
        read_ratio,
        replicate,
        gc_aware_routing: gc_aware,
        duration: SimDuration::from_millis(duration_ms),
        warmup: SimDuration::from_millis(warmup_ms.min(duration_ms.saturating_sub(1))),
        seed,
        faults: rack_fault_config(fault, duration_ms),
        sanitize,
        steal,
        ..RackConfig::default()
    };
    eprintln!(
        "jbofsim rack: {} nodes x {} SSDs, {} clients qd {}, scheme {}, fault {}, {} ms",
        nodes,
        ssds_per_node,
        clients,
        qd,
        scheme.name(),
        fault,
        duration_ms
    );
    let res = if sanitize {
        let a = RackTestbed::new(cfg.clone()).run();
        let b = RackTestbed::new(cfg).run();
        let ja = a.access_journal.as_ref().expect("sanitizer was enabled");
        let jb = b.access_journal.as_ref().expect("sanitizer was enabled");
        match gimbal_repro::sim::first_divergence(ja, jb) {
            None if a.stats_digest() == b.stats_digest() => {
                eprintln!(
                    "sanitizer: double run identical — {} journal entries, digest {:#018x}",
                    ja.len(),
                    ja.digest()
                );
            }
            None => {
                eprintln!(
                    "sanitizer: stats digests diverged ({:#018x} vs {:#018x}) but the \
                     access journals agree — widen journal coverage",
                    a.stats_digest(),
                    b.stats_digest()
                );
                exit(1);
            }
            Some(r) => {
                eprintln!("sanitizer: DIVERGENCE — {r}");
                println!("{}", gimbal_repro::sim::journal::report_json(&r));
                exit(1);
            }
        }
        a
    } else {
        RackTestbed::new(cfg).run()
    };

    println!(
        "rack: {:.0} IOPS, read mean {:.0} us p99 {:.0} us",
        res.iops(),
        res.mean_read_latency_us(),
        res.p99_read_latency_us()
    );
    let r = &res.rack;
    println!(
        "logical: {} issued = {} ok + {} degraded + {} typed-error + {} in-flight",
        r.issued, r.acked_ok, r.acked_degraded, r.failed_typed, r.in_flight_at_end
    );
    println!(
        "ladder: {} timeouts, {} retries, {} suspicions, {} reroutes, {} cmd / {} cpl drops at ToR",
        res.physical.timed_out,
        res.physical.retries,
        r.nodes_suspected,
        r.reroutes,
        r.tor_cmd_drops,
        r.tor_cpl_drops
    );
    for n in 0..res.tor_bytes_down.len() {
        println!(
            "node{n}: {:.1} MB down, {:.1} MB up",
            res.tor_bytes_down[n] as f64 / 1e6,
            res.tor_bytes_up[n] as f64 / 1e6
        );
    }
    if !res.conservation_audit_holds() {
        eprintln!(
            "rack conservation audit FAILED: {:?} / {:?}",
            res.physical, r
        );
        exit(1);
    }
    println!("conservation audit: ok (physical and logical ledgers balance)");

    if let Some(path) = bench_json {
        match write_rack_bench_json(path, scheme, fault, &res) {
            Ok(()) => eprintln!("bench summary -> {path}"),
            Err(e) => {
                eprintln!("bench summary: failed to write {path}: {e}");
                exit(1);
            }
        }
    }
}

/// Throughput-vs-cores sweep (the XBOF claim): for each listed core count
/// run the same workload twice — shared-nothing (steal off) and with the
/// core scheduler stealing — and report the curve. The headline
/// `steal_win_pct` is the largest win across the sweep, i.e. the most
/// skewed point; the bench gate pins it at ≥10 %.
fn run_cores_sweep(
    scheme: Scheme,
    template: &TestbedConfig,
    workers: &[WorkerSpec],
    sweep: &[u32],
    steal_cfg: &StealConfig,
    steal_rebalance_ms: u64,
    bench_json: Option<&str>,
) {
    let mut points: Vec<(u32, f64, f64, CoresStats)> = Vec::new();
    for &k in sweep {
        let run = |steal: Option<StealConfig>| {
            let cfg = TestbedConfig {
                cores: k,
                steal,
                ..template.clone()
            };
            Testbed::new(cfg, workers.to_vec()).run()
        };
        let pinned = run(None);
        let stealing = run(Some(steal_cfg.clone()));
        points.push((
            k,
            pinned.aggregate_bps(|_| true) / 1e6,
            stealing.aggregate_bps(|_| true) / 1e6,
            stealing.cores.clone().expect("steal-on run collects stats"),
        ));
    }
    let win_pct = |base: f64, stolen: f64| {
        if base > 0.0 {
            (stolen / base - 1.0) * 100.0
        } else {
            0.0
        }
    };
    let headline = points
        .iter()
        .map(|(_, b, s, _)| win_pct(*b, *s))
        .fold(f64::NEG_INFINITY, f64::max);

    println!(
        "{:<6} {:>16} {:>12} {:>8} {:>8} {:>12}",
        "cores", "pinned MB/s", "steal MB/s", "win %", "steals", "stolen ms"
    );
    for (k, b, s, st) in &points {
        println!(
            "{k:<6} {b:>16.1} {s:>12.1} {:>8.1} {:>8} {:>12.1}",
            win_pct(*b, *s),
            st.steals,
            st.stolen_busy_ns as f64 / 1e6
        );
    }
    println!("best steal win across the sweep: {headline:.1}%");

    if let Some(path) = bench_json {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"cores\",\n");
        out.push_str(&format!("  \"scheme\": \"{}\",\n", scheme.name()));
        out.push_str(&format!("  \"ssds\": {},\n", template.num_ssds));
        out.push_str(&format!(
            "  \"steal_rebalance_ms\": {steal_rebalance_ms},\n"
        ));
        out.push_str(&format!("  \"steal_win_pct\": {headline:.3},\n"));
        out.push_str("  \"points\": [\n");
        for (pi, (k, b, s, st)) in points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"cores\": {k}, \"shared_nothing_mbps\": {b:.3}, \"steal_mbps\": {s:.3}, \"win_pct\": {:.3}, \"steals\": {}, \"rebalances\": {}, \"moved_homes\": {}, \"stolen_busy_ns\": {}}}{}\n",
                win_pct(*b, *s),
                st.steals,
                st.rebalances,
                st.moved_homes,
                st.stolen_busy_ns,
                if pi + 1 < points.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        match std::fs::write(path, out) {
            Ok(()) => eprintln!("bench summary -> {path}"),
            Err(e) => {
                eprintln!("bench summary: failed to write {path}: {e}");
                exit(1);
            }
        }
    }
}

/// Random inter-event jump for the queue microbench, shaped like the
/// engine's real push distribution: overwhelmingly near-future device and
/// fabric events (≤ ~131 µs), with an occasional timeout-class timer
/// (~67 ms) to force high-level wheel cascades.
fn bench_jump(rng: &mut gimbal_repro::sim::SimRng) -> u64 {
    if rng.gen_below(16) == 0 {
        1 + rng.gen_below(1 << 26)
    } else {
        1 + rng.gen_below(1 << 17)
    }
}

/// Hold-and-push loop over one queue implementation: keep `pending` events
/// in flight, pop the head, push a replacement a random jump past it, `ops`
/// times. Both variants are fed the same seeded [`SimRng`] stream, so they
/// do bit-identical work; only the container differs.
macro_rules! queue_bench {
    ($Q:ty, $pending:expr, $ops:expr) => {{
        let mut q: $Q = <$Q>::new();
        let mut rng = gimbal_repro::sim::SimRng::new(0x5CA1E);
        for _ in 0..$pending {
            let at = q.now() + SimDuration::from_nanos(bench_jump(&mut rng));
            q.push(at, ());
        }
        let t0 = std::time::Instant::now();
        for _ in 0..$ops {
            let (at, ()) = q.pop().expect("queue stays full");
            q.push(at + SimDuration::from_nanos(bench_jump(&mut rng)), ());
        }
        let dt = t0.elapsed();
        assert_eq!(q.len(), $pending as usize, "hold-and-push conserves events");
        dt
    }};
}

/// Wheel-vs-heap event-queue microbench at a pending population matching
/// the scale run (1k tenants x qd 32 ≈ 32k in-flight events). Returns
/// `(wheel_mops, heap_mops, speedup)` where speedup > 1 means the
/// hierarchical wheel beats the pre-PR `BinaryHeap` path.
fn queue_microbench(pending: u64, ops: u64) -> (f64, f64, f64) {
    // Untimed warm-up pass so neither variant pays first-touch page faults.
    let _ = queue_bench!(EventQueue<()>, pending, ops / 8);
    let _ = queue_bench!(HeapEventQueue<()>, pending, ops / 8);
    let wheel = queue_bench!(EventQueue<()>, pending, ops);
    let heap = queue_bench!(HeapEventQueue<()>, pending, ops);
    let mops = |d: std::time::Duration| ops as f64 / d.as_secs_f64() / 1e6;
    (
        mops(wheel),
        mops(heap),
        heap.as_secs_f64() / wheel.as_secs_f64(),
    )
}

/// The `--scale` hot-path bench: `tenants` synthesized 4 KiB readers over
/// disjoint LBA regions, round-robin across the SSDs, command batching on.
/// Reports wall-clock events/sec for the whole simulation plus the
/// wheel-vs-heap microbench, and writes the `BENCH_scale.json` shape the
/// bench gate consumes.
#[allow(clippy::too_many_arguments)]
fn run_scale(
    scheme: Scheme,
    tenants: u32,
    ssds: u32,
    cores: u32,
    duration_ms: u64,
    warmup_ms: u64,
    seed: u64,
    batch: u32,
    bench_json: Option<&str>,
) {
    let cap_blocks = 512 * 1024 * 1024 / 4096u64;
    let per_region = (cap_blocks / u64::from(tenants).max(1)).max(1);
    let workers: Vec<WorkerSpec> = (0..tenants)
        .map(|i| {
            let fio = FioSpec::paper_default(
                1.0,
                4096,
                u64::from(i) * per_region % cap_blocks,
                per_region,
            );
            WorkerSpec::new("scale", fio).on_ssd(i % ssds)
        })
        .collect();
    let cfg = TestbedConfig {
        scheme,
        num_ssds: ssds,
        cores,
        duration: SimDuration::from_millis(duration_ms),
        warmup: SimDuration::from_millis(warmup_ms.min(duration_ms.saturating_sub(1))),
        seed,
        batch,
        ..TestbedConfig::default()
    };
    eprintln!(
        "jbofsim scale: {} tenants over {} SSDs x {} cores, scheme {}, batch {}, {} ms",
        tenants,
        ssds,
        cores,
        scheme.name(),
        batch,
        duration_ms
    );
    let t0 = std::time::Instant::now();
    let res = Testbed::new(cfg, workers).run();
    let wall = t0.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    let events_per_sec = res.events_processed as f64 / wall.as_secs_f64().max(1e-9);
    let total_ios: u64 = res.ssd_stats.iter().map(|s| s.reads + s.writes).sum();
    let total_mbps = res.aggregate_bps(|_| true) / 1e6;

    let pending = (u64::from(tenants) * 32).clamp(1 << 12, 1 << 16);
    let (wheel_mops, heap_mops, speedup) = queue_microbench(pending, 2_000_000);

    println!(
        "scale: {} events in {wall_ms:.0} ms = {:.2} M events/s, {} device IOs, {total_mbps:.0} MB/s",
        res.events_processed,
        events_per_sec / 1e6,
        total_ios
    );
    println!(
        "queue microbench ({pending} pending): wheel {wheel_mops:.1} Mops/s, heap {heap_mops:.1} Mops/s, speedup {speedup:.2}x"
    );

    if let Some(path) = bench_json {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"scale\",\n");
        out.push_str(&format!("  \"scheme\": \"{}\",\n", scheme.name()));
        out.push_str(&format!("  \"tenants\": {tenants},\n"));
        out.push_str(&format!("  \"ssds\": {ssds},\n"));
        out.push_str(&format!("  \"cores\": {cores},\n"));
        out.push_str(&format!("  \"batch\": {batch},\n"));
        out.push_str(&format!("  \"duration_ms\": {duration_ms},\n"));
        out.push_str(&format!(
            "  \"events_processed\": {},\n",
            res.events_processed
        ));
        out.push_str(&format!("  \"total_ios\": {total_ios},\n"));
        out.push_str(&format!("  \"total_throughput_mbps\": {total_mbps:.3},\n"));
        out.push_str(&format!("  \"wall_ms\": {wall_ms:.1},\n"));
        out.push_str(&format!("  \"events_per_sec\": {events_per_sec:.0},\n"));
        out.push_str(&format!(
            "  \"queue_microbench\": {{\"pending\": {pending}, \"ops\": 2000000, \"wheel_mops\": {wheel_mops:.2}, \"heap_mops\": {heap_mops:.2}}},\n"
        ));
        out.push_str(&format!("  \"wheel_vs_heap_speedup\": {speedup:.3}\n"));
        out.push_str("}\n");
        match std::fs::write(path, out) {
            Ok(()) => eprintln!("bench summary -> {path}"),
            Err(e) => {
                eprintln!("bench summary: failed to write {path}: {e}");
                exit(1);
            }
        }
    }
}

fn main() {
    let mut scheme = Scheme::Gimbal;
    let mut pre = Precondition::Clean;
    let mut duration_ms = 2000u64;
    let mut warmup_ms = 500u64;
    let mut ssds = 1u32;
    let mut cores = 0u32; // 0 = one per SSD
    let mut seed = 42u64;
    let mut trace_out: Option<String> = None;
    let mut trace_chrome = true;
    let mut cache_mb = 0u64;
    let mut cache_policy = AdmissionPolicy::CongestionAware;
    let mut cache_write = WritePolicy::Through;
    let mut bench_json: Option<String> = None;
    let mut sanitize = false;
    let mut borrow = false;
    let mut borrow_strict = false;
    let mut borrow_mbps = 512u64;
    let mut borrow_epoch_ms = 20u64;
    let mut placement = false;
    let mut steal = false;
    let mut steal_rebalance_ms = 20u64;
    let mut cores_sweep: Vec<u32> = Vec::new();
    // `None` = default: 1 (off) for normal runs, 32 for `--scale`.
    let mut batch: Option<u32> = None;
    let mut scale_tenants = 0u32;
    let mut worker_specs: Vec<ParsedWorker> = Vec::new();
    let mut rack_nodes = 0u32;
    let mut rack_ssds_per_node = 2u32;
    let mut rack_clients = 4u32;
    let mut rack_qd = 4u32;
    let mut rack_read_ratio = 0.7f64;
    let mut rack_fault = "none".to_string();
    let mut rack_replicate = true;
    let mut rack_gc_aware = true;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| args.get(i + 1).unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--scheme" => {
                scheme = match need(i).as_str() {
                    "vanilla" => Scheme::Vanilla,
                    "reflex" => Scheme::Reflex,
                    "parda" => Scheme::Parda,
                    "flashfq" => Scheme::FlashFq,
                    "gimbal" => Scheme::Gimbal,
                    other => {
                        eprintln!("unknown scheme {other}");
                        usage()
                    }
                };
                i += 2;
            }
            "--precondition" => {
                pre = match need(i).as_str() {
                    "clean" => Precondition::Clean,
                    "fragmented" => Precondition::Fragmented,
                    other => {
                        eprintln!("unknown precondition {other}");
                        usage()
                    }
                };
                i += 2;
            }
            "--duration-ms" => {
                duration_ms = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--warmup-ms" => {
                warmup_ms = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--ssds" => {
                ssds = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--cores" => {
                cores = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--seed" => {
                seed = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--trace-out" => {
                trace_out = Some(need(i).clone());
                i += 2;
            }
            "--trace-format" => {
                trace_chrome = match need(i).as_str() {
                    "chrome" => true,
                    "jsonl" => false,
                    other => {
                        eprintln!("unknown trace format {other}");
                        usage()
                    }
                };
                i += 2;
            }
            "--cache-mb" => {
                cache_mb = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--cache-policy" => {
                cache_policy = match AdmissionPolicy::parse(need(i)) {
                    Some(p) => p,
                    None => {
                        eprintln!("unknown cache policy {}", need(i));
                        usage()
                    }
                };
                i += 2;
            }
            "--cache-write-policy" => {
                cache_write = match WritePolicy::parse(need(i)) {
                    Some(p) => p,
                    None => {
                        eprintln!("unknown cache write policy {}", need(i));
                        usage()
                    }
                };
                i += 2;
            }
            "--bench-json" => {
                bench_json = Some(need(i).clone());
                i += 2;
            }
            "--workers" => {
                for spec in need(i).split(',') {
                    match parse_worker(spec) {
                        Some(w) => worker_specs.push(w),
                        None => {
                            eprintln!("bad worker spec: {spec}");
                            usage();
                        }
                    }
                }
                i += 2;
            }
            "--sanitize" => {
                sanitize = true;
                i += 1;
            }
            "--borrow" => {
                borrow = true;
                i += 1;
            }
            "--borrow-strict" => {
                borrow_strict = true;
                i += 1;
            }
            "--borrow-mbps" => {
                borrow_mbps = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--borrow-epoch-ms" => {
                borrow_epoch_ms = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--placement" => {
                placement = true;
                i += 1;
            }
            "--steal" => {
                steal = true;
                i += 1;
            }
            "--steal-rebalance-ms" => {
                steal_rebalance_ms = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--batch" => {
                let n: u32 = need(i).parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    eprintln!("--batch must be >= 1");
                    usage();
                }
                batch = Some(n);
                i += 2;
            }
            "--scale" => {
                scale_tenants = need(i).parse().unwrap_or_else(|_| usage());
                if scale_tenants == 0 {
                    eprintln!("--scale needs at least one tenant");
                    usage();
                }
                i += 2;
            }
            "--cores-sweep" => {
                for k in need(i).split(',') {
                    match k.parse::<u32>() {
                        Ok(n) if n > 0 => cores_sweep.push(n),
                        _ => {
                            eprintln!("bad core count {k}");
                            usage();
                        }
                    }
                }
                i += 2;
            }
            "--rack-nodes" => {
                rack_nodes = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--rack-ssds-per-node" => {
                rack_ssds_per_node = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--rack-clients" => {
                rack_clients = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--rack-qd" => {
                rack_qd = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--rack-read-ratio" => {
                rack_read_ratio = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--rack-fault" => {
                rack_fault = need(i).clone();
                i += 2;
            }
            "--rack-no-replicate" => {
                rack_replicate = false;
                i += 1;
            }
            "--rack-gc-blind" => {
                rack_gc_aware = false;
                i += 1;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    let steal_cfg = StealConfig {
        rebalance_epoch: SimDuration::from_millis(steal_rebalance_ms),
        ..StealConfig::default()
    };
    if rack_nodes > 0 {
        run_rack(
            scheme,
            rack_nodes,
            rack_ssds_per_node,
            rack_clients,
            rack_qd,
            rack_read_ratio,
            &rack_fault,
            rack_replicate,
            rack_gc_aware,
            duration_ms,
            warmup_ms,
            seed,
            sanitize,
            steal.then(|| steal_cfg.clone()),
            bench_json.as_deref(),
        );
        return;
    }
    if scale_tenants > 0 {
        run_scale(
            scheme,
            scale_tenants,
            ssds,
            if cores == 0 { ssds } else { cores },
            duration_ms,
            warmup_ms,
            seed,
            batch.unwrap_or(32),
            bench_json.as_deref(),
        );
        return;
    }
    if worker_specs.is_empty() {
        eprintln!("no --workers given");
        usage();
    }

    let cap_blocks = 512 * 1024 * 1024 / 4096u64;
    let total: u32 = worker_specs.iter().map(|w| w.count).sum();
    let per_region = cap_blocks / u64::from(total).max(1);
    let mut workers = Vec::new();
    let mut idx = 0u64;
    for w in &worker_specs {
        for k in 0..w.count {
            let mut fio =
                FioSpec::paper_default(w.read_ratio, w.io_bytes, idx * per_region, per_region);
            if let Some(qd) = w.qd {
                fio.queue_depth = qd;
            }
            fio.rate_limit = w.rate;
            if let Some((on_ms, off_ms)) = w.burst {
                // Stagger phases evenly across the group so ON windows
                // interleave: at any instant some workers peak while the
                // rest idle — the mix inter-tenant borrowing is built for.
                let period_ns = (on_ms + off_ms) * 1_000_000;
                let phase_ns = u64::from(k) * period_ns / u64::from(w.count);
                fio = fio.with_burst(
                    SimDuration::from_millis(on_ms),
                    SimDuration::from_millis(off_ms),
                    SimDuration::from_nanos(phase_ns),
                );
            }
            if w.zipf {
                fio.read_pattern = gimbal_repro::workload::AccessPattern::Zipfian;
                fio.write_pattern = gimbal_repro::workload::AccessPattern::Zipfian;
            }
            workers.push(
                WorkerSpec::new(w.label.clone(), fio)
                    .on_ssd(w.ssd.unwrap_or((idx % u64::from(ssds)) as u32))
                    .active(SimTime::ZERO, None),
            );
            idx += 1;
        }
    }

    let broker = (borrow || borrow_strict || placement).then(|| {
        let mut bc = BrokerConfig {
            capacity_bps: borrow_mbps * 1024 * 1024,
            epoch: SimDuration::from_millis(borrow_epoch_ms),
            placement,
            ..BrokerConfig::default()
        };
        if borrow_strict {
            bc.mode = BrokerMode::Strict;
        }
        bc
    });

    let cfg = TestbedConfig {
        scheme,
        precondition: pre,
        num_ssds: ssds,
        cores: if cores == 0 { ssds } else { cores },
        duration: SimDuration::from_millis(duration_ms),
        warmup: SimDuration::from_millis(warmup_ms.min(duration_ms.saturating_sub(1))),
        seed,
        trace: trace_out.as_ref().map(|_| TraceConfig::default()),
        cache: cache_tier_wb(cache_mb, cache_policy, cache_write),
        sanitize,
        broker,
        batch: batch.unwrap_or(1),
        steal: steal.then(|| steal_cfg.clone()),
        ..TestbedConfig::default()
    };

    if !cores_sweep.is_empty() {
        run_cores_sweep(
            scheme,
            &cfg,
            &workers,
            &cores_sweep,
            &steal_cfg,
            steal_rebalance_ms,
            bench_json.as_deref(),
        );
        return;
    }

    eprintln!(
        "jbofsim: {} workers, scheme {}, {:?} SSD ×{}, {} ms ({} ms warmup)",
        workers.len(),
        scheme.name(),
        pre,
        ssds,
        duration_ms,
        warmup_ms
    );
    let res = if sanitize {
        // Double run: same config, same seed. Any difference is a
        // determinism bug; the journal names where it started.
        let a = Testbed::new(cfg.clone(), workers.clone()).run();
        let b = Testbed::new(cfg, workers).run();
        let ja = a.access_journal.as_ref().expect("sanitizer was enabled");
        let jb = b.access_journal.as_ref().expect("sanitizer was enabled");
        match gimbal_repro::sim::first_divergence(ja, jb) {
            None if a.stats_digest() == b.stats_digest() => {
                eprintln!(
                    "sanitizer: double run identical — {} journal entries, digest {:#018x}",
                    ja.len(),
                    ja.digest()
                );
            }
            None => {
                eprintln!(
                    "sanitizer: stats digests diverged ({:#018x} vs {:#018x}) but the \
                     access journals agree — widen journal coverage",
                    a.stats_digest(),
                    b.stats_digest()
                );
                exit(1);
            }
            Some(r) => {
                eprintln!("sanitizer: DIVERGENCE — {r}");
                println!("{}", gimbal_repro::sim::journal::report_json(&r));
                exit(1);
            }
        }
        a
    } else {
        Testbed::new(cfg, workers).run()
    };

    // Group report by spec label.
    println!(
        "{:<28} {:>8} {:>12} {:>10} {:>10} {:>11}",
        "group", "workers", "MB/s total", "avg us", "p99 us", "p99.9 us"
    );
    for w in &worker_specs {
        let bw = res.aggregate_bps(|l| l == w.label) / 1e6;
        let [rd, wr] = res.group_latency(|l| l == w.label);
        let lat = if rd.count >= wr.count { rd } else { wr };
        println!(
            "{:<28} {:>8} {:>12.1} {:>10.0} {:>10.0} {:>11.0}",
            w.label,
            w.count,
            bw,
            lat.mean_us(),
            lat.p99_us(),
            lat.p999_us()
        );
    }
    for (i, s) in res.ssd_stats.iter().enumerate() {
        println!(
            "ssd{i}: {} reads, {} writes, WA {:.2}, buffer stalls {}",
            s.reads,
            s.writes,
            s.write_amplification(),
            s.buffer_stalls
        );
    }
    if !res.cache.is_empty() {
        let hits: u64 = res.cache.iter().map(|c| c.hits).sum();
        let fills: u64 = res.cache.iter().map(|c| c.fills).sum();
        let evict: u64 = res.cache.iter().map(|c| c.evictions).sum();
        println!(
            "cache ({cache_mb} MiB/ssd, {}): hit ratio {:.3}, {hits} hits, {fills} fills, {evict} evictions",
            cache_policy.name(),
            res.cache_hit_ratio(),
        );
    }
    if !res.write_back.is_empty() {
        let acked: u64 = res.write_back.iter().map(|w| w.acked).sum();
        let flushed: u64 = res.write_back.iter().map(|w| w.flushed_lines).sum();
        let lost: u64 = res.write_back.iter().map(|w| w.lost_lines).sum();
        let dirty: u64 = res.write_back.iter().map(|w| w.dirty_lines).sum();
        println!(
            "write-back: {acked} acks from DRAM, {flushed} lines flushed, {dirty} dirty at end, {lost} lost"
        );
    }

    if let Some(path) = bench_json {
        match write_bench_json(
            &path,
            scheme,
            cache_mb,
            cache_policy,
            cache_write,
            &worker_specs,
            &res,
        ) {
            Ok(()) => eprintln!("bench summary -> {path}"),
            Err(e) => {
                eprintln!("bench summary: failed to write {path}: {e}");
                exit(1);
            }
        }
    }

    if let Some(path) = trace_out {
        let trace = res.trace.as_ref().expect("trace was enabled");
        let write = if trace_chrome {
            export::write_chrome_trace(&path, trace)
        } else {
            export::write_jsonl(&path, trace)
        };
        match write {
            Ok(()) => eprintln!(
                "trace: {} events ({} dropped) -> {path} [{}]",
                trace.events.len(),
                trace.dropped_oldest,
                if trace_chrome { "chrome" } else { "jsonl" }
            ),
            Err(e) => {
                eprintln!("trace: failed to write {path}: {e}");
                exit(1);
            }
        }
    }
}
