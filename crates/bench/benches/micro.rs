//! Micro-benchmarks for the per-IO-cost-critical components.
//!
//! The paper's whole premise is that a SmartNIC core gives Gimbal about a
//! microsecond per IO (§2.4, Table 1); these benchmarks check that the
//! *reimplemented* data structures stay well inside that envelope per
//! operation on commodity hardware.
//!
//! This is a `harness = false` target with a small built-in timing loop
//! (median of several repetitions of a fixed batch) so it needs no external
//! benchmark framework. Run with `cargo bench --bench micro`; pass a filter
//! string to run a subset: `cargo bench --bench micro -- drr`.

use gimbal_cache::{AdmissionPolicy, CacheConfig, SsdCache};
use gimbal_core::{GimbalPolicy, LatencyMonitor, Params, VirtualSlotScheduler, WriteCostEstimator};
use gimbal_fabric::{CmdId, IoType, NvmeCmd, Priority, SsdId, TenantId};
use gimbal_sim::{EventQueue, Histogram, SimDuration, SimRng, SimTime, TokenBucket};
use gimbal_ssd::{FlashSsd, SsdConfig, StorageDevice};
use gimbal_switch::{CompletionInfo, PolicyPoll, Request, SwitchPolicy};
use gimbal_telemetry::{EventKind, TraceConfig, TraceHandle, Tracer};
use gimbal_workload::Zipfian;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Allocation-counting wrapper around the system allocator so the telemetry
/// section can assert the disabled record path never touches the heap.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

// The workspace denies `unsafe_code`; the allocator hook is the one place a
// benchmark needs it, and it only counts before delegating to `System`.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn req(id: u64, tenant: u32, op: IoType, len: u32) -> Request {
    Request {
        cmd: NvmeCmd {
            id: CmdId(id),
            tenant: TenantId(tenant),
            ssd: SsdId(0),
            opcode: op,
            lba: 0,
            len,
            priority: Priority::NORMAL,
            issued_at: SimTime::ZERO,
            wal: None,
        },
        ready_at: SimTime::ZERO,
    }
}

/// Time `iters` calls of `f`, repeated `REPS` times; report the median
/// nanoseconds per call. Coarse compared to a statistical harness, but
/// plenty to confirm "well under a microsecond".
fn bench<F: FnMut()>(name: &str, iters: u64, mut f: F) {
    const REPS: usize = 7;
    // Warm-up.
    for _ in 0..iters / 4 {
        f();
    }
    let mut samples = [0f64; REPS];
    for s in samples.iter_mut() {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        *s = t.elapsed().as_nanos() as f64 / iters as f64;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    println!("{name:<40} {:>10.1} ns/op", samples[REPS / 2]);
}

fn bench_sim_primitives(want: &dyn Fn(&str) -> bool) {
    if want("sim/rng_next_u64") {
        let mut rng = SimRng::new(1);
        bench("sim/rng_next_u64", 2_000_000, || {
            black_box(rng.next_u64());
        });
    }
    if want("sim/event_queue_push_pop") {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut t = 0u64;
        bench("sim/event_queue_push_pop", 1_000_000, || {
            t += 100;
            q.push(SimTime::from_nanos(t), t);
            if q.len() > 64 {
                black_box(q.pop());
            }
        });
    }
    if want("sim/histogram_record") {
        let mut h = Histogram::new();
        let mut v = 1u64;
        bench("sim/histogram_record", 2_000_000, || {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(v >> 40));
        });
    }
    if want("sim/histogram_p999") {
        let mut h = Histogram::new();
        for i in 0..100_000u64 {
            h.record(i % 10_000);
        }
        bench("sim/histogram_p999", 100_000, || {
            black_box(h.quantile(0.999));
        });
    }
    if want("sim/token_bucket_cycle") {
        let mut tb = TokenBucket::with_rate(1e9, 1 << 20);
        let mut t = 0u64;
        bench("sim/token_bucket_cycle", 1_000_000, || {
            t += 1_000;
            tb.refill(SimTime::from_nanos(t));
            black_box(tb.try_consume(4096));
        });
    }
}

fn bench_gimbal_components(want: &dyn Fn(&str) -> bool) {
    if want("gimbal/latency_monitor_update") {
        let mut m = LatencyMonitor::new(&Params::default());
        let mut lat = 100u64;
        bench("gimbal/latency_monitor_update", 1_000_000, || {
            lat = (lat * 13) % 1500 + 50;
            black_box(m.update(SimDuration::from_micros(lat)));
        });
    }
    if want("gimbal/write_cost_update") {
        let mut e = WriteCostEstimator::new(&Params::default());
        let mut t = 0u64;
        bench("gimbal/write_cost_update", 1_000_000, || {
            t += 50_000;
            e.on_write_completion(SimTime::from_nanos(t), t.is_multiple_of(3));
            black_box(e.cost());
        });
    }
    if want("gimbal/drr_dequeue_complete_16_tenants") {
        // Keep the scheduler loaded: top it back up each batch.
        let mut s = VirtualSlotScheduler::new(Params::default());
        let mut next_id = 0u64;
        bench("gimbal/drr_dequeue_complete_16_tenants", 20_000, || {
            while s.queued() < 256 {
                s.on_arrival(
                    req(next_id, (next_id % 16) as u32, IoType::Read, 4096),
                    SimTime::ZERO,
                );
                next_id += 1;
            }
            for _ in 0..64 {
                if let gimbal_core::scheduler::SchedPoll::Submit(r) =
                    s.dequeue(SimTime::ZERO, 1.5, |_| true)
                {
                    s.on_completion(r.cmd.id, SimTime::ZERO);
                }
            }
            black_box(s.queued());
        });
    }
    if want("gimbal/full_policy_submit_complete") {
        let mut p = GimbalPolicy::with_defaults(SsdId(0));
        let mut id = 0u64;
        let mut t = 0u64;
        bench("gimbal/full_policy_submit_complete", 500_000, || {
            t += 2_500;
            let now = SimTime::from_nanos(t);
            p.on_arrival(req(id, (id % 4) as u32, IoType::Read, 4096), now);
            if let PolicyPoll::Submit(r) = p.next_submission(now, 0) {
                let info = CompletionInfo {
                    cmd: r.cmd,
                    device_latency: SimDuration::from_micros(80),
                    completed_at: now,
                    failed: false,
                };
                p.on_completion(&info, now);
            }
            id += 1;
        });
    }
}

fn bench_telemetry(want: &dyn Fn(&str) -> bool) {
    if want("telemetry/record_disabled_zero_alloc") {
        // The acceptance gate for the off-by-default policy: with tracing
        // disabled, the record/observe/gauge paths must not allocate.
        let handle = TraceHandle::disabled();
        let mut t = 0u64;
        let mut step = || {
            t += 1;
            handle.record(
                SimTime::from_nanos(t),
                SsdId(0),
                Some(TenantId(0)),
                EventKind::CreditGranted { credit: 1 },
            );
            handle.observe("device_latency_ns", TenantId(0), t);
            handle.set_gauge("target_bytes_sent", t as f64);
        };
        let before = ALLOC_COUNT.load(Ordering::Relaxed);
        for _ in 0..200_000u64 {
            step();
        }
        let allocs = ALLOC_COUNT.load(Ordering::Relaxed) - before;
        assert_eq!(allocs, 0, "disabled telemetry hot path allocated {allocs}x");
        bench("telemetry/record_disabled_zero_alloc", 2_000_000, step);
    }
    if want("telemetry/record_enabled_ring") {
        let tracer = Rc::new(RefCell::new(Tracer::new(TraceConfig { capacity: 1 << 12 })));
        let handle = TraceHandle::attached(&tracer);
        let mut t = 0u64;
        bench("telemetry/record_enabled_ring", 1_000_000, || {
            t += 1;
            handle.record(
                SimTime::from_nanos(t),
                SsdId(0),
                Some(TenantId((t % 4) as u32)),
                EventKind::CreditGranted {
                    credit: (t % 64) as u32,
                },
            );
        });
        black_box(tracer.borrow().len());
    }
}

fn bench_cache(want: &dyn Fn(&str) -> bool) {
    let read_at = |id: u64, lba: u64| NvmeCmd {
        id: CmdId(id),
        tenant: TenantId(0),
        ssd: SsdId(0),
        opcode: IoType::Read,
        lba,
        len: 4096,
        priority: Priority::NORMAL,
        issued_at: SimTime::ZERO,
        wal: None,
    };
    if want("cache/hit_path_lookup") {
        // The latency a cache hit adds to the pipeline's submit path: one
        // line-table probe plus the FIFO bookkeeping. Must be well under
        // the ~µs per-IO envelope for the bypass to be worth anything.
        let mut c = SsdCache::new(
            SsdId(0),
            CacheConfig {
                policy: AdmissionPolicy::Always,
                ..CacheConfig::for_mb(64)
            },
        );
        let hot = 1024u64;
        for i in 0..hot {
            let cmd = read_at(i, i);
            c.try_read_hit(&cmd, SimTime::ZERO);
            c.on_read_completion(&cmd, SimDuration::from_micros(80), false, SimTime::ZERO);
        }
        let mut id = hot;
        let mut lba = 0u64;
        bench("cache/hit_path_lookup", 1_000_000, || {
            lba = (lba + 1) % hot;
            id += 1;
            black_box(c.try_read_hit(&read_at(id, lba), SimTime::ZERO));
        });
    }
    if want("cache/miss_fill_evict_cycle") {
        // Steady-state thrash: every lookup misses, every fill evicts.
        let mut c = SsdCache::new(
            SsdId(0),
            CacheConfig {
                policy: AdmissionPolicy::Always,
                capacity_bytes: 1 << 20,
                ..CacheConfig::for_mb(64)
            },
        );
        let mut id = 0u64;
        let mut lba = 0u64;
        bench("cache/miss_fill_evict_cycle", 500_000, || {
            id += 1;
            lba += 1;
            let cmd = read_at(id, lba);
            c.try_read_hit(&cmd, SimTime::ZERO);
            c.on_read_completion(&cmd, SimDuration::from_micros(80), false, SimTime::ZERO);
        });
        black_box(c.stats().evictions);
    }
}

fn bench_substrates(want: &dyn Fn(&str) -> bool) {
    if want("substrates/zipfian_draw") {
        let z = Zipfian::new(1_000_000, 0.99);
        let mut rng = SimRng::new(5);
        bench("substrates/zipfian_draw", 1_000_000, || {
            black_box(z.next(&mut rng));
        });
    }
    if want("substrates/flash_ssd_4k_read_cycle") {
        let cfg = SsdConfig {
            logical_capacity: 256 * 1024 * 1024,
            ..SsdConfig::default()
        };
        let mut ssd = FlashSsd::new(cfg, 1);
        ssd.precondition_clean();
        let cap = ssd.capacity_blocks();
        let mut rng = SimRng::new(2);
        let mut tag = 0u64;
        let mut t = 0u64;
        bench("substrates/flash_ssd_4k_read_cycle", 200_000, || {
            t += 2_500;
            ssd.submit(
                tag,
                IoType::Read,
                rng.gen_below(cap),
                4096,
                SimTime::from_nanos(t),
            );
            tag += 1;
            black_box(ssd.poll(SimTime::from_nanos(t)).len());
        });
    }
}

fn main() {
    let filter: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let want =
        move |name: &str| filter.is_empty() || filter.iter().any(|f| name.contains(f.as_str()));
    bench_sim_primitives(&want);
    bench_gimbal_components(&want);
    bench_telemetry(&want);
    bench_cache(&want);
    bench_substrates(&want);
}
