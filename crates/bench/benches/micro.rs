//! Criterion micro-benchmarks for the per-IO-cost-critical components.
//!
//! The paper's whole premise is that a SmartNIC core gives Gimbal about a
//! microsecond per IO (§2.4, Table 1); these benchmarks check that the
//! *reimplemented* data structures stay well inside that envelope per
//! operation on commodity hardware.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gimbal_core::{GimbalPolicy, LatencyMonitor, Params, VirtualSlotScheduler, WriteCostEstimator};
use gimbal_fabric::{CmdId, IoType, NvmeCmd, Priority, SsdId, TenantId};
use gimbal_sim::{EventQueue, Histogram, SimDuration, SimRng, SimTime, TokenBucket};
use gimbal_ssd::{FlashSsd, SsdConfig, StorageDevice};
use gimbal_switch::{CompletionInfo, PolicyPoll, Request, SwitchPolicy};
use gimbal_workload::Zipfian;
use std::hint::black_box;

fn req(id: u64, tenant: u32, op: IoType, len: u32) -> Request {
    Request {
        cmd: NvmeCmd {
            id: CmdId(id),
            tenant: TenantId(tenant),
            ssd: SsdId(0),
            opcode: op,
            lba: 0,
            len,
            priority: Priority::NORMAL,
            issued_at: SimTime::ZERO,
        },
        ready_at: SimTime::ZERO,
    }
}

fn bench_sim_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.bench_function("rng_next_u64", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| black_box(rng.next_u64()));
    });
    g.bench_function("event_queue_push_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 100;
            q.push(SimTime::from_nanos(t), t);
            if q.len() > 64 {
                black_box(q.pop());
            }
        });
    });
    g.bench_function("histogram_record", |b| {
        let mut h = Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(v >> 40));
        });
    });
    g.bench_function("histogram_p999", |b| {
        let mut h = Histogram::new();
        for i in 0..100_000u64 {
            h.record(i % 10_000);
        }
        b.iter(|| black_box(h.quantile(0.999)));
    });
    g.bench_function("token_bucket_cycle", |b| {
        let mut tb = TokenBucket::with_rate(1e9, 1 << 20);
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000;
            tb.refill(SimTime::from_nanos(t));
            black_box(tb.try_consume(4096));
        });
    });
    g.finish();
}

fn bench_gimbal_components(c: &mut Criterion) {
    let mut g = c.benchmark_group("gimbal");
    g.bench_function("latency_monitor_update", |b| {
        let mut m = LatencyMonitor::new(&Params::default());
        let mut lat = 100u64;
        b.iter(|| {
            lat = (lat * 13) % 1500 + 50;
            black_box(m.update(SimDuration::from_micros(lat)));
        });
    });
    g.bench_function("write_cost_update", |b| {
        let mut e = WriteCostEstimator::new(&Params::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 50_000;
            e.on_write_completion(SimTime::from_nanos(t), t % 3 == 0);
            black_box(e.cost());
        });
    });
    g.bench_function("drr_dequeue_complete_16_tenants", |b| {
        b.iter_batched(
            || {
                let mut s = VirtualSlotScheduler::new(Params::default());
                for i in 0..256u64 {
                    s.on_arrival(req(i, (i % 16) as u32, IoType::Read, 4096), SimTime::ZERO);
                }
                s
            },
            |mut s| {
                for _ in 0..64 {
                    if let gimbal_core::scheduler::SchedPoll::Submit(r) = s.dequeue(1.5, |_| true)
                    {
                        s.on_completion(r.cmd.id);
                    }
                }
                black_box(s.queued())
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("full_policy_submit_complete", |b| {
        let mut p = GimbalPolicy::with_defaults(SsdId(0));
        let mut id = 0u64;
        let mut t = 0u64;
        b.iter(|| {
            t += 2_500;
            let now = SimTime::from_nanos(t);
            p.on_arrival(req(id, (id % 4) as u32, IoType::Read, 4096), now);
            if let PolicyPoll::Submit(r) = p.next_submission(now, 0) {
                let info = CompletionInfo {
                    cmd: r.cmd,
                    device_latency: SimDuration::from_micros(80),
                    completed_at: now,
                    failed: false,
                };
                p.on_completion(&info, now);
            }
            id += 1;
        });
    });
    g.finish();
}

fn bench_substrates(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates");
    g.bench_function("zipfian_draw", |b| {
        let z = Zipfian::new(1_000_000, 0.99);
        let mut rng = SimRng::new(5);
        b.iter(|| black_box(z.next(&mut rng)));
    });
    g.bench_function("flash_ssd_4k_read_cycle", |b| {
        let cfg = SsdConfig {
            logical_capacity: 256 * 1024 * 1024,
            ..SsdConfig::default()
        };
        let mut ssd = FlashSsd::new(cfg, 1);
        ssd.precondition_clean();
        let cap = ssd.capacity_blocks();
        let mut rng = SimRng::new(2);
        let mut tag = 0u64;
        let mut t = 0u64;
        b.iter(|| {
            t += 2_500;
            ssd.submit(tag, IoType::Read, rng.gen_below(cap), 4096, SimTime::from_nanos(t));
            tag += 1;
            black_box(ssd.poll(SimTime::from_nanos(t)).len());
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sim_primitives,
    bench_gimbal_components,
    bench_substrates
);
criterion_main!(benches);
