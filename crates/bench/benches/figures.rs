//! `cargo bench` entry point that regenerates **every table and figure** of
//! the paper in quick mode. Each figure is also available at full scale as
//! a standalone binary (`cargo run -p gimbal-bench --release --bin figNN_…`).
//!
//! This is a `harness = false` bench target: the "benchmark" is the
//! experiment suite itself, and its output is the paper's rows/series.

use std::time::Instant;

/// A quick-mode figure harness: takes `quick` and prints the paper's rows.
type FigRun = fn(bool);

fn main() {
    // Respect `cargo bench -- <filter>`: run only figures whose name
    // contains the filter string. The `--bench` flag cargo passes is
    // ignored.
    let filter: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let want = |name: &str| filter.is_empty() || filter.iter().any(|f| name.contains(f.as_str()));

    let figs: Vec<(&str, FigRun)> = vec![
        (
            "fig02_unloaded_latency",
            gimbal_bench::figs::fig02_unloaded_latency::run,
        ),
        (
            "fig03_cores_throughput",
            gimbal_bench::figs::fig03_cores_throughput::run,
        ),
        (
            "fig04_interference",
            gimbal_bench::figs::fig04_interference::run,
        ),
        (
            "fig06_utilization",
            gimbal_bench::figs::fig06_utilization::run,
        ),
        ("fig07_fairness", gimbal_bench::figs::fig07_fairness::run),
        ("fig08_latency", gimbal_bench::figs::fig08_latency::run),
        ("fig09_dynamic", gimbal_bench::figs::fig09_dynamic::run),
        ("fig10_ycsb", gimbal_bench::figs::fig10_ycsb::run),
        (
            "fig11_12_scalability",
            gimbal_bench::figs::fig11_12_scalability::run,
        ),
        (
            "fig13_virtual_view",
            gimbal_bench::figs::fig13_virtual_view::run,
        ),
        ("fig14_bathtub", gimbal_bench::figs::fig14_bathtub::run),
        (
            "fig15_read_latency",
            gimbal_bench::figs::fig15_read_latency::run,
        ),
        ("fig16_percost", gimbal_bench::figs::fig16_percost::run),
        (
            "fig17_congestion",
            gimbal_bench::figs::fig17_congestion::run,
        ),
        ("fig18_threshold", gimbal_bench::figs::fig18_threshold::run),
        ("fig19_intensity", gimbal_bench::figs::fig19_intensity::run),
        ("fig20_iosize", gimbal_bench::figs::fig20_iosize::run),
        ("fig21_pattern", gimbal_bench::figs::fig21_pattern::run),
        (
            "fig22_23_mixed_latency",
            gimbal_bench::figs::fig22_23_mixed_latency::run,
        ),
        ("tab1_overheads", gimbal_bench::figs::tab1_overheads::run),
        ("tab2_comparison", gimbal_bench::figs::tab2_comparison::run),
        ("gen_p3600", gimbal_bench::figs::gen_p3600::run),
        ("abl_threshold", gimbal_bench::figs::abl_threshold::run),
        ("abl_bucket_cost", gimbal_bench::figs::abl_bucket_cost::run),
        ("abl_slots", gimbal_bench::figs::abl_slots::run),
    ];

    let total = Instant::now();
    for (name, run) in figs {
        if !want(name) {
            continue;
        }
        let t = Instant::now();
        run(true);
        eprintln!("[{name}: {:.1}s]", t.elapsed().as_secs_f64());
    }
    eprintln!("\n[all figures: {:.1}s]", total.elapsed().as_secs_f64());
}
