//! The benchmark harness: one module per table/figure of the paper's
//! evaluation, regenerating the same rows/series.
//!
//! Each figure lives in [`figs`] as a `run(quick: bool)` function:
//!
//! * `quick = false` — full-scale parameters (the `src/bin/figNN_*` binaries);
//! * `quick = true` — shortened durations / fewer points, used by the
//!   `cargo bench` harness (`benches/figures.rs`) so the whole evaluation
//!   regenerates in minutes.
//!
//! Absolute numbers come from the simulated substrate, not the authors'
//! Stingray testbed; EXPERIMENTS.md records paper-vs-measured for each
//! experiment and discusses where the shapes match.

pub mod common;
pub mod figs;

pub use common::{println_header, standalone_bw, Region};
