//! Figures 11 & 12: throughput and average read latency as the number of
//! DB instances grows (Gimbal scheme).
//!
//! Paper shape: throughput grows then saturates (A/B/D max out around 20
//! instances, F around 16); read latency climbs with consolidation except
//! for read-only C, which stays flat.

use crate::common::println_header;
use crate::figs::fig10_ycsb::run_cell;
use gimbal_testbed::Scheme;
use gimbal_workload::YcsbMix;

/// Run the experiment and print both figures' series.
pub fn run(quick: bool) {
    println_header("Figures 11/12: scalability with DB instances (Gimbal)");
    let counts: &[u32] = if quick {
        &[2, 6, 10]
    } else {
        &[4, 8, 12, 16, 20, 24]
    };
    println!(
        "{:>8} {:>10} {:>12} {:>14}",
        "Mix", "Instances", "KIOPS", "Avg RD (us)"
    );
    for mix in YcsbMix::ALL {
        for &n in counts {
            let res = run_cell(Scheme::Gimbal, mix, n, quick);
            println!(
                "{:>8} {:>10} {:>12.1} {:>14.0}",
                mix.name(),
                n,
                res.total_kiops(),
                res.avg_read_latency_us(),
            );
        }
    }
}
