//! Figure 7: fairness across IO sizes and IO types, per scheme and SSD
//! condition, reported as per-group bandwidth and f-Util (§5.1's metric).
//!
//! * (a/d) clean SSD: 16 workers of 4 KB random read + 4 workers of 128 KB
//!   random read;
//! * (b/e) clean SSD: 16 × 128 KB sequential read + 16 × 128 KB random
//!   write;
//! * (c/f) fragmented SSD: 16 × 4 KB random read + 16 × 4 KB random write.
//!
//! Paper shape: Gimbal's f-Utils sit closest to 1.0 in every mix; ReFlex is
//! byte-fair across sizes (so misses the cost difference) and chokes clean
//! writes; FlashFQ equalizes read/write bandwidth; Parda collapses
//! fragmented reads against buffered writes.

use crate::common::{default_ssd, durations, println_header, standalone_bw, Region, CAP_BLOCKS};
use gimbal_sim::stats::LatencySummary;
use gimbal_testbed::{f_util, Precondition, RunResult, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::{AccessPattern, FioSpec};

/// One worker group within a mix.
#[derive(Clone, Debug)]
pub struct Group {
    /// Group label ("4KB", "Read", ...).
    pub label: &'static str,
    /// Workers in the group.
    pub count: u32,
    /// Stream shape (region filled per worker).
    pub fio: FioSpec,
}

/// A fairness mix: two groups sharing one SSD.
pub struct Mix {
    /// Panel name.
    pub name: &'static str,
    /// SSD condition.
    pub pre: Precondition,
    /// The two contending groups.
    pub groups: [Group; 2],
}

fn spec(read_ratio: f64, io: u64, seq_read: bool) -> FioSpec {
    let mut f = FioSpec::paper_default(read_ratio, io, 0, CAP_BLOCKS);
    if seq_read {
        f.read_pattern = AccessPattern::Sequential;
    }
    f
}

/// The three mixes of Fig 7.
pub fn mixes() -> [Mix; 3] {
    [
        Mix {
            name: "(a/d) Clean: 4KB vs 128KB read",
            pre: Precondition::Clean,
            groups: [
                Group {
                    label: "4KB",
                    count: 16,
                    fio: spec(1.0, 4096, false),
                },
                Group {
                    label: "128KB",
                    count: 4,
                    fio: spec(1.0, 128 * 1024, false),
                },
            ],
        },
        Mix {
            name: "(b/e) Clean: 128KB read vs write",
            pre: Precondition::Clean,
            groups: [
                Group {
                    label: "Read",
                    count: 16,
                    fio: spec(1.0, 128 * 1024, true),
                },
                Group {
                    label: "Write",
                    count: 16,
                    fio: {
                        let mut f = spec(0.0, 128 * 1024, false);
                        f.write_pattern = AccessPattern::Random; // 128KB *random* write
                        f
                    },
                },
            ],
        },
        Mix {
            name: "(c/f) Fragmented: 4KB read vs write",
            pre: Precondition::Fragmented,
            groups: [
                Group {
                    label: "Read",
                    count: 16,
                    fio: spec(1.0, 4096, false),
                },
                Group {
                    label: "Write",
                    count: 16,
                    fio: spec(0.0, 4096, false),
                },
            ],
        },
    ]
}

/// Result of one (mix, scheme) run: per-group mean worker bandwidth,
/// f-Util, and latency summaries `[read, write]` for Fig 8.
pub struct MixResult {
    /// Per-group (bandwidth bytes/s per worker, f-Util).
    pub groups: [(f64, f64); 2],
    /// Group latency summaries of the whole run `[read, write]`.
    pub latency: [LatencySummary; 2],
}

/// Run one mix under a scheme.
pub fn run_mix(mix: &Mix, scheme: Scheme, quick: bool) -> MixResult {
    let total: u32 = mix.groups.iter().map(|g| g.count).sum();
    let mut workers = Vec::new();
    let mut idx = 0u32;
    for g in &mix.groups {
        for _ in 0..g.count {
            let r = Region::slice(idx, total, CAP_BLOCKS);
            let mut fio = g.fio;
            fio.region_start = r.start;
            fio.region_blocks = r.blocks;
            workers.push(WorkerSpec::new(g.label, fio));
            idx += 1;
        }
    }
    let (duration, warmup) = durations(quick);
    let cfg = TestbedConfig {
        scheme,
        ssd: default_ssd(),
        precondition: mix.pre,
        duration,
        warmup,
        ..TestbedConfig::default()
    };
    let res: RunResult = Testbed::new(cfg, workers).run();

    let mut groups = [(0.0, 0.0); 2];
    for (gi, g) in mix.groups.iter().enumerate() {
        let bw = res.aggregate_bps(|l| l == g.label) / f64::from(g.count);
        let standalone = standalone_bw(g.fio, mix.pre, quick);
        groups[gi] = (bw, f_util(bw, standalone, total));
    }
    MixResult {
        groups,
        latency: res.group_latency(|_| true),
    }
}

/// Run the experiment and print bandwidth + f-Util panels.
pub fn run(quick: bool) {
    println_header("Figure 7: fairness in mixed workloads");
    for mix in mixes() {
        println!("\n-- {} --", mix.name);
        println!(
            "{:>9} {:>8}: {:>12} {:>8}   {:>8}: {:>12} {:>8}",
            "Scheme",
            mix.groups[0].label,
            "MB/s/worker",
            "f-Util",
            mix.groups[1].label,
            "MB/s/worker",
            "f-Util"
        );
        for scheme in Scheme::COMPARED {
            let r = run_mix(&mix, scheme, quick);
            println!(
                "{:>9} {:>8}: {:>12.1} {:>8.2}   {:>8}: {:>12.1} {:>8.2}",
                scheme.name(),
                mix.groups[0].label,
                r.groups[0].0 / 1e6,
                r.groups[0].1,
                mix.groups[1].label,
                r.groups[1].0 / 1e6,
                r.groups[1].1,
            );
        }
    }
}
