//! Figure 16 (Appendix): achieved bandwidth as per-IO processing cost is
//! added on the SmartNIC — the computing-headroom budget of §2.4.
//!
//! All 8 ARM cores, 4 SSDs, one saturating worker per SSD. Paper shape:
//! 4 KB streams tolerate ~1 µs of added cost before bandwidth falls; 128 KB
//! streams tolerate 5–10 µs; beyond that bandwidth decays as 1/cost.

use crate::common::{default_ssd, println_header, Region, CAP_BLOCKS};
use gimbal_fabric::IoType;
use gimbal_sim::SimDuration;
use gimbal_testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::{AccessPattern, FioSpec};

fn agg_gbps(io_kb: u64, op: IoType, added_us: f64, quick: bool) -> f64 {
    let workers: Vec<WorkerSpec> = (0..4)
        .map(|i| {
            let region = Region::slice(0, 1, CAP_BLOCKS);
            let fio = FioSpec {
                read_ratio: if op == IoType::Read { 1.0 } else { 0.0 },
                io_bytes: io_kb * 1024,
                read_pattern: AccessPattern::Random,
                write_pattern: AccessPattern::Sequential,
                queue_depth: if io_kb >= 128 { 16 } else { 192 },
                rate_limit: None,
                burst: None,
                region_start: region.start,
                region_blocks: region.blocks,
            };
            WorkerSpec::new(format!("w{i}"), fio).on_ssd(i)
        })
        .collect();
    let cfg = TestbedConfig {
        scheme: Scheme::Vanilla,
        ssd: default_ssd(),
        num_ssds: 4,
        cores: 8,
        precondition: Precondition::Clean,
        added_per_io_us: added_us,
        duration: if quick {
            SimDuration::from_millis(300)
        } else {
            SimDuration::from_millis(800)
        },
        warmup: SimDuration::from_millis(100),
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, workers).run();
    res.aggregate_bps(|_| true) / 1e9
}

/// Run the experiment and print the four curves.
pub fn run(quick: bool) {
    println_header("Figure 16: bandwidth vs added per-IO processing cost (8 cores, 4 SSDs)");
    println!(
        "{:>10} {:>10} {:>12} {:>10} {:>12}",
        "Added us", "4KB read", "128KB read", "4KB write", "128KB write"
    );
    let costs: &[f64] = if quick {
        &[0.0, 1.0, 10.0, 80.0]
    } else {
        &[0.0, 1.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0]
    };
    for &c in costs {
        println!(
            "{:>10} {:>8.2}GB {:>10.2}GB {:>8.2}GB {:>10.2}GB",
            c,
            agg_gbps(4, IoType::Read, c, quick),
            agg_gbps(128, IoType::Read, c, quick),
            agg_gbps(4, IoType::Write, c, quick),
            agg_gbps(128, IoType::Write, c, quick),
        );
    }
}
