//! Figure 17 (Appendix B): the latency impulse — delay vs load on an
//! uncontrolled target as offered load crosses the device's capacity.
//!
//! A 4 KB + 128 KB read mix ramps up (one more worker pair joins every
//! second). Paper shape: bandwidth saturates while average latency, flat
//! until then, spikes dramatically at the congestion point — the signal
//! Gimbal's delay-based congestion control feeds on.

use crate::common::{default_ssd, println_header, Region, CAP_BLOCKS};
use gimbal_sim::{SimDuration, SimTime};
use gimbal_testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::FioSpec;

/// Run the experiment and print the time series.
pub fn run(quick: bool) {
    println_header("Figure 17: latency impulse under rising 4KB/128KB read load (vanilla)");
    let step = if quick {
        SimDuration::from_millis(400)
    } else {
        SimDuration::from_secs(1)
    };
    let pairs = 8u32;
    let duration = step * u64::from(pairs + 2);
    let mut specs = Vec::new();
    for i in 0..pairs {
        let start = SimTime::ZERO + step * u64::from(i);
        let r1 = Region::slice(2 * i, 2 * pairs, CAP_BLOCKS);
        let r2 = Region::slice(2 * i + 1, 2 * pairs, CAP_BLOCKS);
        specs.push(
            WorkerSpec::new(
                "small",
                FioSpec::paper_default(1.0, 4096, r1.start, r1.blocks),
            )
            .active(start, None),
        );
        specs.push(
            WorkerSpec::new(
                "large",
                FioSpec::paper_default(1.0, 128 * 1024, r2.start, r2.blocks),
            )
            .active(start, None),
        );
    }
    let cfg = TestbedConfig {
        scheme: Scheme::Vanilla,
        ssd: default_ssd(),
        precondition: Precondition::Clean,
        duration,
        warmup: SimDuration::from_millis(50),
        sample_interval: Some(SimDuration::from_millis(50)),
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, specs).run();
    let dev = &res.device_series[0];
    println!(
        "{:>8} {:>14} {:>16}",
        "t (s)", "avg lat (us)", "agg B/W (MB/s)"
    );
    let mut t = SimTime::ZERO + step;
    while t <= SimTime::ZERO + duration {
        let lo = t - step;
        println!(
            "{:>8.1} {:>14.0} {:>16.0}",
            t.as_secs_f64(),
            dev.read_lat_us.mean_in(lo, t).unwrap_or(0.0),
            dev.bandwidth_bps.mean_in(lo, t).unwrap_or(0.0) / 1e6,
        );
        t += step;
    }
}
