//! Figure 15 (Appendix A): random-read latency vs IO size under four
//! scenarios — clean QD1 ("vanilla"), fragmented QD1, 70/30 read/write mix,
//! and clean QD8.
//!
//! Paper shape: fragmentation, write mixing, and concurrency each raise
//! read latency, and larger IOs degrade more (they touch more dies, so
//! they are more likely to queue behind a busy one).

use crate::common::{default_ssd, println_header, Region, CAP_BLOCKS};
use gimbal_sim::SimDuration;
use gimbal_testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::{AccessPattern, FioSpec};

fn read_lat_us(io_kb: u64, pre: Precondition, read_ratio: f64, qd: u32, quick: bool) -> f64 {
    let region = Region::slice(0, 1, CAP_BLOCKS);
    let fio = FioSpec {
        read_ratio,
        io_bytes: io_kb * 1024,
        read_pattern: AccessPattern::Random,
        write_pattern: AccessPattern::Random,
        queue_depth: qd,
        rate_limit: None,
        burst: None,
        region_start: region.start,
        region_blocks: region.blocks,
    };
    let cfg = TestbedConfig {
        scheme: Scheme::Vanilla,
        ssd: default_ssd(),
        precondition: pre,
        duration: if quick {
            SimDuration::from_millis(200)
        } else {
            SimDuration::from_millis(600)
        },
        warmup: SimDuration::from_millis(50),
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, vec![WorkerSpec::new("w", fio)]).run();
    res.workers[0].read_latency.mean_us()
}

/// Run the experiment and print the four curves.
pub fn run(quick: bool) {
    println_header("Figure 15: random-read latency vs IO size, four scenarios");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10}",
        "IO (KB)", "Vanilla", "Fragmented", "70/30 R/W", "QD8"
    );
    let sizes: &[u64] = if quick {
        &[4, 32, 128, 256]
    } else {
        &[4, 8, 16, 32, 64, 128, 256]
    };
    for &kb in sizes {
        println!(
            "{:>8} {:>8.0}us {:>10.0}us {:>10.0}us {:>8.0}us",
            kb,
            read_lat_us(kb, Precondition::Clean, 1.0, 1, quick),
            read_lat_us(kb, Precondition::Fragmented, 1.0, 1, quick),
            read_lat_us(kb, Precondition::Fragmented, 0.7, 4, quick),
            read_lat_us(kb, Precondition::Clean, 1.0, 8, quick),
        );
    }
}
