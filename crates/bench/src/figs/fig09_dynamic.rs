//! Figure 9: dynamic workload — Gimbal adapting the write cost as writers
//! join and readers leave.
//!
//! Eight rate-capped readers (200 MB/s each) start; one rate-capped writer
//! (60 MB/s) joins per interval until 8 run; then readers drop one per
//! interval. Paper shape: the first writer's IOs are absorbed by the SSD
//! write buffer at ~70 µs (write cost decays to 1); once writers outrun the
//! buffer, write latency jumps ~10×, Gimbal raises the write cost, and
//! writer bandwidth converges to the fair share.

use crate::common::{default_ssd, println_header, Region, CAP_BLOCKS};
use gimbal_sim::{SimDuration, SimTime};
use gimbal_testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::{AccessPattern, FioSpec};

/// Run the experiment and print the timeline.
pub fn run(quick: bool) {
    println_header("Figure 9: dynamic workload (Gimbal), write-cost adaptation");
    // Paper interval: 5 s. Quick mode compresses to 1 s.
    let step = if quick {
        SimDuration::from_secs(1)
    } else {
        SimDuration::from_secs(5)
    };
    let readers = 8u32;
    let writers = 8u32;
    let phases = readers + writers; // 8 writer joins + 7 reader drops + tail
    let duration = step * u64::from(phases + 1);

    let mut specs = Vec::new();
    let total = readers + writers;
    for i in 0..readers {
        let r = Region::slice(i, total, CAP_BLOCKS);
        let fio = FioSpec {
            read_ratio: 1.0,
            io_bytes: 128 * 1024,
            read_pattern: AccessPattern::Random,
            write_pattern: AccessPattern::Sequential,
            queue_depth: 8,
            rate_limit: Some(200e6),
            burst: None,
            region_start: r.start,
            region_blocks: r.blocks,
        };
        // Reader i stops at step × (8 + i) (first-started drops first once
        // the drop phase begins).
        let stop = SimTime::ZERO + step * u64::from(writers + i);
        specs.push(WorkerSpec::new("reader", fio).active(SimTime::ZERO, Some(stop)));
    }
    for j in 0..writers {
        let r = Region::slice(readers + j, total, CAP_BLOCKS);
        let fio = FioSpec {
            read_ratio: 0.0,
            io_bytes: 128 * 1024,
            read_pattern: AccessPattern::Random,
            write_pattern: AccessPattern::Sequential,
            queue_depth: 8,
            rate_limit: Some(60e6),
            burst: None,
            region_start: r.start,
            region_blocks: r.blocks,
        };
        let start = SimTime::ZERO + step * u64::from(j + 1);
        specs.push(WorkerSpec::new("writer", fio).active(start, None));
    }

    let cfg = TestbedConfig {
        scheme: Scheme::Gimbal,
        ssd: default_ssd(),
        precondition: Precondition::Fragmented,
        duration,
        warmup: SimDuration::from_millis(100),
        sample_interval: Some(SimDuration::from_millis(100)),
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, specs).run();

    // Timeline: per-interval mean of reader/writer bandwidth, device
    // latencies, and the dynamic write cost.
    println!(
        "{:>7} {:>12} {:>12} {:>11} {:>11} {:>10}",
        "t (s)", "RD MB/s/wkr", "WR MB/s/wkr", "RD lat us", "WR lat us", "write cost"
    );
    let trace = &res.gimbal_traces[0];
    let dev = &res.device_series[0];
    let mut t = SimTime::ZERO + step;
    while t <= SimTime::ZERO + duration {
        let lo = t - step;
        let mean = |which: &str| -> f64 {
            let vals: Vec<f64> = res
                .workers
                .iter()
                .filter(|w| w.label == which)
                .filter_map(|w| w.series.mean_in(lo, t))
                .filter(|&v| v > 1e3)
                .collect();
            if vals.is_empty() {
                0.0
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        };
        println!(
            "{:>7.1} {:>12.0} {:>12.0} {:>11.0} {:>11.0} {:>10.1}",
            t.as_secs_f64(),
            mean("reader") / 1e6,
            mean("writer") / 1e6,
            dev.read_lat_us.mean_in(lo, t).unwrap_or(0.0),
            dev.write_lat_us.mean_in(lo, t).unwrap_or(0.0),
            trace.write_cost.mean_in(lo, t).unwrap_or(f64::NAN),
        );
        t += step;
    }
}
