//! Table 2: qualitative comparison of the four multi-tenancy mechanisms —
//! printed from the implemented components so it stays honest about what
//! the code actually does.

use crate::common::println_header;

/// Print the comparison table (no simulation required).
pub fn run(_quick: bool) {
    println_header("Table 2: comparison of four multi-tenancy mechanisms");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10}",
        "", "ReFlex", "Parda", "FlashFQ", "Gimbal"
    );
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10}",
        "BW estimation", "Static", "Dynamic", "none", "Dynamic"
    );
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10}",
        "IO cost & WR tax", "Static", "none", "Static", "Dynamic"
    );
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10}",
        "Fair queueing", "@Target", "@Client", "@Target", "@Target"
    );
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10}",
        "Flow control", "no", "yes", "no", "yes"
    );
}
