//! Ablation: the virtual-slot threshold (§4.2's "number of virtual slots").
//!
//! The paper sets the per-tenant slot threshold to 8 — "the minimum number
//! to reach the device's maximum bandwidth if there is only one active
//! tenant" — and notes that larger slots degrade fairness. This sweep
//! measures single-tenant utilization and 16-tenant fairness across slot
//! thresholds.

use crate::common::{default_ssd, durations, println_header, Region, CAP_BLOCKS};
use gimbal_core::Params;
use gimbal_testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::FioSpec;

fn run_with_slots(slots: u32, tenants: u32, quick: bool) -> (f64, f64) {
    let workers: Vec<WorkerSpec> = (0..tenants)
        .map(|i| {
            let r = Region::slice(i, tenants, CAP_BLOCKS);
            WorkerSpec::new(
                format!("w{i}"),
                FioSpec {
                    queue_depth: 16,
                    ..FioSpec::paper_default(1.0, 128 * 1024, r.start, r.blocks)
                },
            )
        })
        .collect();
    let (duration, warmup) = durations(quick);
    let cfg = TestbedConfig {
        scheme: Scheme::Gimbal,
        gimbal_params: Params {
            slots_per_tenant: slots,
            ..Params::default()
        },
        ssd: default_ssd(),
        precondition: Precondition::Clean,
        duration,
        warmup,
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, workers).run();
    let total = res.aggregate_bps(|_| true) / 1e6;
    // Jain's fairness index over per-worker bandwidth.
    let bws: Vec<f64> = res.workers.iter().map(|w| w.bandwidth_bps()).collect();
    let sum: f64 = bws.iter().sum();
    let sum_sq: f64 = bws.iter().map(|b| b * b).sum();
    // lint: allow(float-eq, owner=bench, expires=2028-08-01) — exact-zero guard before division, not a tolerance check
    let jain = if sum_sq == 0.0 {
        1.0
    } else {
        sum * sum / (bws.len() as f64 * sum_sq)
    };
    (total, jain)
}

/// Run the sweep.
pub fn run(quick: bool) {
    println_header("Ablation: virtual-slot threshold sweep (clean 128KB reads)");
    println!(
        "{:>7} {:>18} {:>18} {:>14}",
        "Slots", "1-tenant MB/s", "16-tenant MB/s", "Jain fairness"
    );
    let sweep: &[u32] = if quick {
        &[2, 8, 32]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    for &slots in sweep {
        let (solo, _) = run_with_slots(slots, 1, quick);
        let (multi, jain) = run_with_slots(slots, 16, quick);
        println!("{slots:>7} {solo:>18.0} {multi:>18.0} {jain:>14.3}");
    }
}
