//! Ablations: dual vs single token bucket (Appendix C.1) and dynamic vs
//! static write cost (§3.4).
//!
//! * The single-bucket variant "would submit write IOs at a wrong rate and
//!   cause severe latency increments" — measured here as write latency on
//!   the clean 128 KB read/write mix.
//! * The static-write-cost variant is ReFlex's worst-case tax: it forfeits
//!   the device's write-buffer optimization, starving writes that the SSD
//!   could have absorbed for free (the Fig 9 effect).

use crate::common::{default_ssd, durations, println_header, Region, CAP_BLOCKS};
use gimbal_core::Params;
use gimbal_sim::{SimDuration, SimTime};
use gimbal_testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::{AccessPattern, FioSpec};

struct Row {
    read_mbps: f64,
    write_mbps: f64,
    write_avg_us: f64,
    write_p999_us: f64,
}

fn rw_mix(params: Params, pre: Precondition, io: u64, quick: bool) -> Row {
    let n = 32u32;
    let mut workers = Vec::new();
    for i in 0..n {
        let r = Region::slice(i, n, CAP_BLOCKS);
        let ratio = if i < n / 2 { 1.0 } else { 0.0 };
        let mut fio = FioSpec::paper_default(ratio, io, r.start, r.blocks);
        if io >= 128 * 1024 {
            fio.write_pattern = AccessPattern::Random;
            fio.read_pattern = AccessPattern::Sequential;
        }
        workers.push(WorkerSpec::new(
            if i < n / 2 { "read" } else { "write" },
            fio,
        ));
    }
    let (duration, warmup) = durations(quick);
    let cfg = TestbedConfig {
        scheme: Scheme::Gimbal,
        gimbal_params: params,
        ssd: default_ssd(),
        precondition: pre,
        duration,
        warmup,
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, workers).run();
    let [_, wr] = res.group_latency(|l| l == "write");
    Row {
        read_mbps: res.aggregate_bps(|l| l == "read") / 1e6,
        write_mbps: res.aggregate_bps(|l| l == "write") / 1e6,
        write_avg_us: wr.mean_us(),
        write_p999_us: wr.p999_us(),
    }
}

/// Readers run from t=0 (warming the target rate to the read-heavy
/// operating point); 8 write workers burst in at half time.
fn write_burst(params: Params, quick: bool) -> Row {
    let n = 16u32;
    let (duration, warmup) = durations(quick);
    let burst_at = SimTime::ZERO + warmup;
    let mut workers = Vec::new();
    // Readers warm the target rate to the read operating point, then STOP
    // exactly when the writers arrive — the dequeue series turns all-write,
    // which is the Appendix C.1 case where a shared bucket admits writes at
    // the read-calibrated rate.
    for i in 0..8 {
        let r = Region::slice(i, n, CAP_BLOCKS);
        workers.push(
            WorkerSpec::new("read", FioSpec::paper_default(1.0, 4096, r.start, r.blocks))
                .active(SimTime::ZERO, Some(burst_at)),
        );
    }
    for i in 8..16 {
        let r = Region::slice(i, n, CAP_BLOCKS);
        workers.push(
            WorkerSpec::new(
                "write",
                FioSpec::paper_default(0.0, 4096, r.start, r.blocks),
            )
            .active(burst_at, None),
        );
    }
    let cfg = TestbedConfig {
        scheme: Scheme::Gimbal,
        gimbal_params: params,
        ssd: default_ssd(),
        precondition: Precondition::Fragmented,
        duration: duration + SimDuration::from_millis(200),
        warmup,
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, workers).run();
    let [_, wr] = res.group_latency(|l| l == "write");
    Row {
        read_mbps: res.aggregate_bps(|l| l == "read") / 1e6,
        write_mbps: res.aggregate_bps(|l| l == "write") / 1e6,
        write_avg_us: wr.mean_us(),
        write_p999_us: wr.p999_us(),
    }
}

/// Run both ablations.
pub fn run(quick: bool) {
    // Appendix C.1's pathology is a *burst*: the DRR "does not reorder read
    // and write I/Os so … only a single kind of IO operations may be
    // dequeued in a series", and with one shared bucket that series of
    // writes is admitted at the (read-calibrated, much higher) total target
    // rate. Scenario: readers warm the rate up on a fragmented drive, then
    // a write burst joins.
    println_header("Ablation: dual vs single token bucket (write burst joins warm readers)");
    println!(
        "{:>14} {:>10} {:>10} {:>12} {:>14}",
        "Variant", "RD MB/s", "WR MB/s", "WR avg us", "WR p99.9 us"
    );
    for (label, params) in [
        ("dual bucket", Params::default()),
        (
            "single bucket",
            Params {
                single_bucket: true,
                ..Params::default()
            },
        ),
    ] {
        let r = write_burst(params, quick);
        println!(
            "{label:>14} {:>10.0} {:>10.0} {:>12.0} {:>14.0}",
            r.read_mbps, r.write_mbps, r.write_avg_us, r.write_p999_us
        );
    }

    println_header("Ablation: dynamic vs static write cost (fragmented, 16R+16W 4KB)");
    println!(
        "{:>14} {:>10} {:>10} {:>12} {:>14}",
        "Variant", "RD MB/s", "WR MB/s", "WR avg us", "WR p99.9 us"
    );
    for (label, params) in [
        ("dynamic cost", Params::default()),
        (
            "static worst",
            Params {
                static_write_cost: true,
                ..Params::default()
            },
        ),
    ] {
        let r = rw_mix(params, Precondition::Fragmented, 4096, quick);
        println!(
            "{label:>14} {:>10.0} {:>10.0} {:>12.0} {:>14.0}",
            r.read_mbps, r.write_mbps, r.write_avg_us, r.write_p999_us
        );
    }
}
