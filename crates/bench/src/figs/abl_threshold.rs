//! Ablation: dynamic latency-threshold scaling vs the fixed thresholds the
//! paper tried first (§3.2).
//!
//! The paper reports that a fixed 2 ms threshold "is only effective for
//! large IOs but cannot capture the congestion for small IOs promptly," and
//! that lowering it (<1 ms) "hurts the device utilization." This ablation
//! runs 16-worker read workloads (4 KB fragmented, 128 KB clean) under the
//! full dynamic design and both fixed settings, reporting utilization and
//! latency.

use crate::common::{default_ssd, durations, println_header, Region, CAP_BLOCKS};
use gimbal_core::Params;
use gimbal_sim::SimDuration;
use gimbal_testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::FioSpec;

fn run_variant(
    label: &str,
    params: Params,
    io: u64,
    pre: Precondition,
    quick: bool,
) -> (f64, f64, f64) {
    let n = 16u32;
    // io == 0 encodes the 70/30 read/write 4 KB mix.
    let (io, ratio) = if io == 0 { (4096, 0.7) } else { (io, 1.0) };
    let workers: Vec<WorkerSpec> = (0..n)
        .map(|i| {
            let r = Region::slice(i, n, CAP_BLOCKS);
            WorkerSpec::new(
                format!("w{i}"),
                FioSpec::paper_default(ratio, io, r.start, r.blocks),
            )
        })
        .collect();
    let (duration, warmup) = durations(quick);
    let cfg = TestbedConfig {
        scheme: Scheme::Gimbal,
        gimbal_params: params,
        ssd: default_ssd(),
        precondition: pre,
        duration,
        warmup,
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, workers).run();
    let bw = res.aggregate_bps(|_| true) / 1e6;
    let [rd, _] = res.group_latency(|_| true);
    let _ = label;
    (bw, rd.mean_us(), rd.p999_us())
}

/// Run the ablation and print both workload panels.
pub fn run(quick: bool) {
    println_header("Ablation: dynamic vs fixed latency threshold (Gimbal, 16 readers)");
    // "fixed 2ms" reproduces the paper's first attempt (§3.2): with the
    // congestion signal parked at 2 ms the controller only reacts once the
    // device is already deep in its queueing regime. "fixed 300us" is the
    // over-tight end ("reducing the threshold … hurts the device
    // utilization"): it sits below the latency the device needs to deliver
    // full bandwidth.
    let variants: [(&str, Params); 3] = [
        ("dynamic", Params::default()),
        (
            "fixed 2ms",
            Params {
                fixed_threshold: Some(SimDuration::from_millis(2)),
                thresh_max: SimDuration::from_millis(2),
                ..Params::default()
            },
        ),
        (
            "fixed 300us",
            Params {
                fixed_threshold: Some(SimDuration::from_micros(300)),
                ..Params::default()
            },
        ),
    ];
    for (case, io, pre) in [
        ("Fragmented 4KB read", 4096u64, Precondition::Fragmented),
        (
            "Fragmented 4KB 70/30 R/W mix",
            0u64,
            Precondition::Fragmented,
        ),
        ("Clean 128KB read", 128 * 1024, Precondition::Clean),
    ] {
        println!("\n-- {case} --");
        println!(
            "{:>12} {:>12} {:>12} {:>14}",
            "Variant", "Agg MB/s", "avg (us)", "p99.9 (us)"
        );
        for (label, params) in variants.iter() {
            let (bw, avg, p999) = run_variant(label, *params, io, pre, quick);
            println!("{label:>12} {bw:>12.0} {avg:>12.0} {p999:>14.0}");
        }
    }
}
