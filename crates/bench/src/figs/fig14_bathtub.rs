//! Figure 14 (Appendix A): 4 KB IOPS vs read ratio on clean and fragmented
//! SSDs — the "bathtub" showing write amplification's cost.
//!
//! Paper shape: on the fragmented drive write-heavy mixes collapse (write-
//! only ≈ 17 % of clean) and even 5 % writes cost ~40 % of a read stream's
//! IOPS; the clean drive degrades far more gracefully.

use crate::common::{default_ssd, durations, println_header, Region, CAP_BLOCKS};
use gimbal_testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::FioSpec;

fn split_bw(pre: Precondition, read_ratio: f64, quick: bool) -> (f64, f64) {
    let n = 4u32;
    let workers: Vec<WorkerSpec> = (0..n)
        .map(|i| {
            let r = Region::slice(i, n, CAP_BLOCKS);
            WorkerSpec::new(
                format!("w{i}"),
                FioSpec::paper_default(read_ratio, 4096, r.start, r.blocks),
            )
        })
        .collect();
    let (duration, warmup) = durations(quick);
    let cfg = TestbedConfig {
        scheme: Scheme::Vanilla,
        ssd: default_ssd(),
        precondition: pre,
        duration,
        warmup,
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, workers).run();
    // Split by op using per-worker op counts is not tracked per type; infer
    // from the ratio: measure via read/write latency counts × 4 KB.
    let window = res.workers[0].window.as_secs_f64();
    let read_bytes: u64 = res
        .workers
        .iter()
        .map(|w| w.read_latency.count * 4096)
        .sum();
    let write_bytes: u64 = res
        .workers
        .iter()
        .map(|w| w.write_latency.count * 4096)
        .sum();
    (read_bytes as f64 / window, write_bytes as f64 / window)
}

/// Run the experiment and print both condition curves.
pub fn run(quick: bool) {
    println_header("Figure 14: 4KB bandwidth vs read ratio (clean vs fragmented)");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "Read %", "Clean-RD", "Clean-WR", "Frag-RD", "Frag-WR"
    );
    let ratios: &[f64] = if quick {
        &[0.0, 0.5, 0.95, 1.0]
    } else {
        &[0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1.0]
    };
    for &r in ratios {
        let (crd, cwr) = split_bw(Precondition::Clean, r, quick);
        let (frd, fwr) = split_bw(Precondition::Fragmented, r, quick);
        println!(
            "{:>10.0} {:>10.0}MB {:>10.0}MB {:>10.0}MB {:>10.0}MB",
            r * 100.0,
            crd / 1e6,
            cwr / 1e6,
            frd / 1e6,
            fwr / 1e6
        );
    }
}
