//! Figure 19 (Appendix D): IO-intensity interference — two competing
//! streams identical except that stream 1 runs twice the queue depth of
//! stream 2, swept over IO size.
//!
//! Paper shape: the more intense stream takes ~2× the bandwidth at every
//! size, for both random reads and sequential writes.

use crate::common::{default_ssd, durations, println_header, Region, CAP_BLOCKS};
use gimbal_fabric::IoType;
use gimbal_testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::{AccessPattern, FioSpec};

fn pair_bw(io_kb: u64, op: IoType, quick: bool) -> (f64, f64) {
    let (qd1, qd2) = if io_kb >= 64 { (8, 4) } else { (64, 32) };
    let mk = |i: u32, qd: u32| {
        let r = Region::slice(i, 2, CAP_BLOCKS);
        let (read_ratio, wp) = match op {
            IoType::Read => (1.0, AccessPattern::Random),
            IoType::Write => (0.0, AccessPattern::Sequential),
        };
        WorkerSpec::new(
            format!("s{}", i + 1),
            FioSpec {
                read_ratio,
                io_bytes: io_kb * 1024,
                read_pattern: AccessPattern::Random,
                write_pattern: wp,
                queue_depth: qd,
                rate_limit: None,
                burst: None,
                region_start: r.start,
                region_blocks: r.blocks,
            },
        )
    };
    let (duration, warmup) = durations(quick);
    let cfg = TestbedConfig {
        scheme: Scheme::Vanilla,
        ssd: default_ssd(),
        precondition: Precondition::Clean,
        duration,
        warmup,
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, vec![mk(0, qd1), mk(1, qd2)]).run();
    (
        res.workers[0].bandwidth_mbps(),
        res.workers[1].bandwidth_mbps(),
    )
}

/// Run the experiment and print both panels.
pub fn run(quick: bool) {
    println_header("Figure 19: 2:1 queue-depth competition vs IO size (vanilla)");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "IO (KB)", "S1 RND-RD", "S2 RND-RD", "S1 SEQ-WR", "S2 SEQ-WR"
    );
    let sizes: &[u64] = if quick {
        &[4, 32, 128]
    } else {
        &[4, 8, 16, 32, 64, 128, 256]
    };
    for &kb in sizes {
        let (r1, r2) = pair_bw(kb, IoType::Read, quick);
        let (w1, w2) = pair_bw(kb, IoType::Write, quick);
        println!(
            "{:>8} {:>10.0}MB {:>10.0}MB {:>10.0}MB {:>10.0}MB",
            kb, r1, r2, w1, w2
        );
    }
}
