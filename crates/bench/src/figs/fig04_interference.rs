//! Figure 4: multi-tenant interference on a vanilla (no-isolation) target.
//!
//! The victim runs 4 KB random reads at QD 32; a neighbor of varying shape
//! shares the SSD. Paper shape: higher-intensity neighbors grab bandwidth
//! regardless of size/pattern, and write neighbors collapse the victim.

use crate::common::{default_ssd, durations, println_header, Region, CAP_BLOCKS};
use gimbal_fabric::IoType;
use gimbal_testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::{AccessPattern, FioSpec};

struct Neighbor {
    label: &'static str,
    io_kb: u64,
    op: IoType,
    qd: u32,
}

/// Run the experiment and print the figure's bars.
pub fn run(quick: bool) {
    println_header("Figure 4: victim (4KB-RD QD32) vs neighbor types (vanilla target)");
    let neighbors = [
        Neighbor {
            label: "4KB-RD QD32",
            io_kb: 4,
            op: IoType::Read,
            qd: 32,
        },
        Neighbor {
            label: "4KB-RD QD128",
            io_kb: 4,
            op: IoType::Read,
            qd: 128,
        },
        Neighbor {
            label: "128KB-RD QD1",
            io_kb: 128,
            op: IoType::Read,
            qd: 1,
        },
        Neighbor {
            label: "128KB-RD QD8",
            io_kb: 128,
            op: IoType::Read,
            qd: 8,
        },
        Neighbor {
            label: "4KB-WR QD32",
            io_kb: 4,
            op: IoType::Write,
            qd: 32,
        },
        Neighbor {
            label: "4KB-WR QD128",
            io_kb: 4,
            op: IoType::Write,
            qd: 128,
        },
    ];
    println!(
        "{:>14} {:>14} {:>14}",
        "Neighbor", "Victim MB/s", "Neighbor MB/s"
    );
    let (duration, warmup) = durations(quick);
    for n in &neighbors {
        let victim_region = Region::slice(0, 2, CAP_BLOCKS);
        let victim = WorkerSpec::new(
            "victim",
            FioSpec {
                read_ratio: 1.0,
                io_bytes: 4096,
                read_pattern: AccessPattern::Random,
                write_pattern: AccessPattern::Random,
                queue_depth: 32,
                rate_limit: None,
                burst: None,
                region_start: victim_region.start,
                region_blocks: victim_region.blocks,
            },
        );
        let nr = Region::slice(1, 2, CAP_BLOCKS);
        let neighbor = WorkerSpec::new(
            "neighbor",
            FioSpec {
                read_ratio: if n.op == IoType::Read { 1.0 } else { 0.0 },
                io_bytes: n.io_kb * 1024,
                read_pattern: AccessPattern::Random,
                write_pattern: AccessPattern::Random,
                queue_depth: n.qd,
                rate_limit: None,
                burst: None,
                region_start: nr.start,
                region_blocks: nr.blocks,
            },
        );
        let cfg = TestbedConfig {
            scheme: Scheme::Vanilla,
            ssd: default_ssd(),
            precondition: Precondition::Clean,
            duration,
            warmup,
            ..TestbedConfig::default()
        };
        let res = Testbed::new(cfg, vec![victim, neighbor]).run();
        println!(
            "{:>14} {:>14.0} {:>14.0}",
            n.label,
            res.workers[0].bandwidth_mbps(),
            res.workers[1].bandwidth_mbps()
        );
    }
}
