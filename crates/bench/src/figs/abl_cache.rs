//! Ablation: the NIC-DRAM cache tier on a skewed read-heavy workload.
//!
//! Eight readers issue Zipf-skewed 4 KB reads (YCSB's theta 0.99) against
//! one SSD; the cache tier is swept off → always-admit → congestion-aware →
//! never-admit. A skewed read-heavy stream is the cache's best case: the
//! hot slots fit in a few MiB of NIC DRAM, so hits bypass both the SSD and
//! the scheme's rate machinery and complete in the DRAM-copy latency. The
//! expected shape: nonzero hit ratio and lower mean read latency whenever
//! fills are admitted, and bit-identical behavior to "off" under
//! `never` only once the classifier sees an uncongested device (the
//! bypassed fills still consume no cache state).

use crate::common::{default_ssd, durations, println_header, CAP_BLOCKS};
use gimbal_cache::{AdmissionPolicy, WritePolicy};
use gimbal_testbed::{
    cache_tier, cache_tier_wb, Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec,
};
use gimbal_workload::{AccessPattern, FioSpec};

fn run_variant(cache_mb: u64, policy: AdmissionPolicy, quick: bool) -> (f64, f64, f64, f64) {
    let n = 8u32;
    let workers: Vec<WorkerSpec> = (0..n)
        .map(|i| {
            // All readers share one region so the Zipf head is a shared
            // working set — the multi-tenant cache's intended prey.
            let mut fio = FioSpec::paper_default(1.0, 4096, 0, CAP_BLOCKS / 4);
            fio.read_pattern = AccessPattern::Zipfian;
            WorkerSpec::new(format!("r{i}"), fio)
        })
        .collect();
    let (duration, warmup) = durations(quick);
    let cfg = TestbedConfig {
        scheme: Scheme::Gimbal,
        ssd: default_ssd(),
        precondition: Precondition::Fragmented,
        duration,
        warmup,
        cache: cache_tier(cache_mb, policy),
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, workers).run();
    let bw = res.aggregate_bps(|_| true) / 1e6;
    let [rd, _] = res.group_latency(|_| true);
    (bw, rd.mean_us(), rd.p999_us(), res.cache_hit_ratio())
}

/// Write-policy leg: two Zipf readers plus four Zipf writers over disjoint
/// regions, cache fixed at 16 MiB always-admit, sweeping write-through vs
/// write-back. Write-back acks the hot write set at DRAM cost and drains it
/// through the flusher, so mean write latency should drop while the dirty
/// set stays bounded by the per-tenant partitions.
fn run_wb_variant(write: WritePolicy, quick: bool) -> (f64, f64, f64, u64, u64) {
    let n = 6u64;
    let per = CAP_BLOCKS / n;
    let workers: Vec<WorkerSpec> = (0..n)
        .map(|i| {
            let ratio = if i < 2 { 1.0 } else { 0.0 };
            let mut fio = FioSpec::paper_default(ratio, 4096, i * per, per);
            fio.read_pattern = AccessPattern::Zipfian;
            fio.write_pattern = AccessPattern::Zipfian;
            WorkerSpec::new(
                if i < 2 {
                    format!("r{i}")
                } else {
                    format!("w{i}")
                },
                fio,
            )
        })
        .collect();
    let (duration, warmup) = durations(quick);
    let cfg = TestbedConfig {
        scheme: Scheme::Gimbal,
        ssd: default_ssd(),
        precondition: Precondition::Fragmented,
        duration,
        warmup,
        cache: cache_tier_wb(16, AdmissionPolicy::Always, write),
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, workers).run();
    let bw = res.aggregate_bps(|_| true) / 1e6;
    let [_, wr] = res.group_latency(|_| true);
    let acked: u64 = res.write_back.iter().map(|w| w.acked).sum();
    let flushed: u64 = res.write_back.iter().map(|w| w.flushed_lines).sum();
    (bw, wr.mean_us(), wr.p999_us(), acked, flushed)
}

/// Run the ablation: cache off and three admission policies.
pub fn run(quick: bool) {
    println_header("Ablation: NIC-DRAM cache tier (Gimbal, 8 Zipf readers, 4KB)");
    println!(
        "{:>18} {:>12} {:>12} {:>14} {:>10}",
        "Variant", "Agg MB/s", "avg (us)", "p99.9 (us)", "hit ratio"
    );
    let variants: [(&str, u64, AdmissionPolicy); 4] = [
        ("off", 0, AdmissionPolicy::Never),
        ("64MB always", 64, AdmissionPolicy::Always),
        ("64MB congestion", 64, AdmissionPolicy::CongestionAware),
        ("64MB never", 64, AdmissionPolicy::Never),
    ];
    for (label, mb, policy) in variants {
        let (bw, avg, p999, hit) = run_variant(mb, policy, quick);
        println!("{label:>18} {bw:>12.0} {avg:>12.0} {p999:>14.0} {hit:>10.3}");
    }
    println_header("Ablation: write policy (Gimbal, 16MB always, Zipf writers)");
    println!(
        "{:>18} {:>12} {:>14} {:>16} {:>10} {:>10}",
        "Variant", "Agg MB/s", "wr avg (us)", "wr p99.9 (us)", "acked", "flushed"
    );
    for write in [WritePolicy::Through, WritePolicy::Back] {
        let (bw, avg, p999, acked, flushed) = run_wb_variant(write, quick);
        println!(
            "{:>18} {bw:>12.0} {avg:>14.0} {p999:>16.0} {acked:>10} {flushed:>10}",
            write.name()
        );
    }
}
