//! Figure 10: RocksDB-analog performance — YCSB throughput, average read
//! latency, and p99.9 read latency for the four schemes.
//!
//! The paper runs 24 DB instances over 3 SmartNIC JBOFs on fragmented SSDs;
//! we scale the instance count and dataset with the scaled-down SSDs.
//! Paper shape: Gimbal wins throughput (~×1.7 over ReFlex, ×2.1 Parda,
//! ×1.3 FlashFQ on average) with the update-heavy mixes (A, F) benefiting
//! most and read-only C least; Gimbal also cuts avg and tail read latency.

use crate::common::{default_ssd, println_header};
use gimbal_sim::SimDuration;
use gimbal_testbed::{KvRunResult, KvTestbed, KvTestbedConfig, Precondition, Scheme};
use gimbal_workload::YcsbMix;

/// The standard experiment configuration for the KV study.
pub fn kv_config(scheme: Scheme, mix: YcsbMix, instances: u32, quick: bool) -> KvTestbedConfig {
    KvTestbedConfig {
        scheme,
        mix,
        instances,
        num_nodes: if quick { 2 } else { 3 },
        ssds_per_node: 2,
        records_per_instance: if quick { 15_000 } else { 40_000 },
        // High per-instance concurrency so the SSDs actually contend — the
        // paper's 24 instances saturate 3 JBOFs; scheme differences only
        // appear under pressure.
        ops_concurrency: 24,
        ssd: default_ssd(),
        precondition: Precondition::Fragmented,
        duration: if quick {
            SimDuration::from_millis(1000)
        } else {
            SimDuration::from_secs(2)
        },
        warmup: if quick {
            SimDuration::from_millis(400)
        } else {
            SimDuration::from_millis(800)
        },
        ..KvTestbedConfig::default()
    }
}

/// Run one (scheme, mix) cell.
pub fn run_cell(scheme: Scheme, mix: YcsbMix, instances: u32, quick: bool) -> KvRunResult {
    KvTestbed::new(kv_config(scheme, mix, instances, quick)).run()
}

/// Run the experiment and print all three panels.
pub fn run(quick: bool) {
    println_header("Figure 10: YCSB over the KV store, 4 schemes (fragmented SSDs)");
    let instances = if quick { 12 } else { 24 };
    println!(
        "{:>8} {:>9} {:>12} {:>14} {:>16}",
        "Mix", "Scheme", "KIOPS", "Avg RD (us)", "p99.9 RD (us)"
    );
    for mix in YcsbMix::ALL {
        for scheme in Scheme::COMPARED {
            let res = run_cell(scheme, mix, instances, quick);
            println!(
                "{:>8} {:>9} {:>12.1} {:>14.0} {:>16.0}",
                mix.name(),
                scheme.name(),
                res.total_kiops(),
                res.avg_read_latency_us(),
                res.p999_read_latency_us(),
            );
        }
    }
}
