//! Figure 13: application optimizations enabled by the per-SSD virtual view
//! — p99.9 read latency of vanilla vs +flow-control vs +FC+load-balancing.
//!
//! 8 DB instances on one Gimbal JBOF. Paper shape: the credit-driven IO
//! rate limiter cuts p99.9 by ~28 %; steering reads to the replica with
//! more credit cuts another ~19 %.

use crate::common::println_header;
use crate::figs::fig10_ycsb::kv_config;
use gimbal_testbed::{KvTestbed, Scheme};
use gimbal_workload::YcsbMix;

/// Run the experiment and print the three bars per mix.
pub fn run(quick: bool) {
    println_header("Figure 13: virtual-view optimizations (Gimbal, 1 JBOF, 8 instances)");
    println!("{:>8} {:>18} {:>16}", "Mix", "Variant", "p99.9 RD (us)");
    for mix in YcsbMix::ALL {
        for (label, fc, lb) in [
            ("Vanilla", false, false),
            ("Vanilla+FC", true, false),
            ("Vanilla+FC+LB", true, true),
        ] {
            let mut cfg = kv_config(Scheme::Gimbal, mix, 8, quick);
            cfg.num_nodes = 1;
            cfg.ssds_per_node = 4;
            cfg.flow_control = fc;
            cfg.load_balance = lb;
            let res = KvTestbed::new(cfg).run();
            println!(
                "{:>8} {:>18} {:>16.0}",
                mix.name(),
                label,
                res.p999_read_latency_us()
            );
        }
    }
}
