//! Figure 21 (Appendix D): IO-pattern interference — a read stream's
//! bandwidth standalone vs mixed with a same-shape write stream, across IO
//! sizes.
//!
//! Paper shape: mixing with writes costs the read stream roughly 60–70 % of
//! its standalone bandwidth (program operations occupy dies for hundreds of
//! microseconds).

use crate::common::{default_ssd, durations, println_header, Region, CAP_BLOCKS};
use gimbal_testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::{AccessPattern, FioSpec};

fn read_bw(io_kb: u64, seq: bool, with_writes: bool, quick: bool) -> f64 {
    let pattern = if seq {
        AccessPattern::Sequential
    } else {
        AccessPattern::Random
    };
    let mut workers = Vec::new();
    let n = if with_writes { 2 } else { 1 };
    let r = Region::slice(0, n, CAP_BLOCKS);
    workers.push(WorkerSpec::new(
        "reader",
        FioSpec {
            read_ratio: 1.0,
            io_bytes: io_kb * 1024,
            read_pattern: pattern,
            write_pattern: pattern,
            queue_depth: 32,
            rate_limit: None,
            burst: None,
            region_start: r.start,
            region_blocks: r.blocks,
        },
    ));
    if with_writes {
        let r = Region::slice(1, 2, CAP_BLOCKS);
        workers.push(WorkerSpec::new(
            "writer",
            FioSpec {
                read_ratio: 0.0,
                io_bytes: io_kb * 1024,
                read_pattern: pattern,
                write_pattern: pattern,
                queue_depth: 32,
                rate_limit: None,
                burst: None,
                region_start: r.start,
                region_blocks: r.blocks,
            },
        ));
    }
    let (duration, warmup) = durations(quick);
    let cfg = TestbedConfig {
        scheme: Scheme::Vanilla,
        ssd: default_ssd(),
        precondition: Precondition::Clean,
        duration,
        warmup,
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, workers).run();
    res.workers[0].bandwidth_mbps()
}

/// Run the experiment and print the four curves.
pub fn run(quick: bool) {
    println_header("Figure 21: read bandwidth, standalone vs mixed with writes (vanilla)");
    println!(
        "{:>8} {:>13} {:>16} {:>13} {:>16}",
        "IO (KB)", "RND read", "RND read+write", "SEQ read", "SEQ read+write"
    );
    let sizes: &[u64] = if quick {
        &[4, 32, 128]
    } else {
        &[4, 8, 16, 32, 64, 128, 256]
    };
    for &kb in sizes {
        println!(
            "{:>8} {:>11.0}MB {:>14.0}MB {:>11.0}MB {:>14.0}MB",
            kb,
            read_bw(kb, false, false, quick),
            read_bw(kb, false, true, quick),
            read_bw(kb, true, false, quick),
            read_bw(kb, true, true, quick),
        );
    }
}
