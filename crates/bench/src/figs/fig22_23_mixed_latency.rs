//! Figures 22 & 23 (Appendix D): latency interference from background
//! traffic of growing IO size.
//!
//! Fig 22: a 4 KB random-read stream's avg/p99.9 latency while a
//! random/sequential *write* stream sweeps its IO size. Fig 23: a 4 KB
//! sequential-write stream against a read stream. Paper shape: bigger
//! background IOs mean worse head-of-line blocking; the curves flatten once
//! the background stream saturates its bandwidth.

use crate::common::{default_ssd, durations, println_header, Region, CAP_BLOCKS};
use gimbal_fabric::IoType;
use gimbal_testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::{AccessPattern, FioSpec};

/// (avg µs, p99.9 µs) of the 4 KB foreground stream.
fn foreground_lat(
    fg_op: IoType,
    bg_op: IoType,
    bg_seq: bool,
    bg_kb: u64,
    quick: bool,
) -> (f64, f64) {
    let fg_region = Region::slice(0, 2, CAP_BLOCKS);
    let fg = WorkerSpec::new(
        "fg",
        FioSpec {
            read_ratio: if fg_op == IoType::Read { 1.0 } else { 0.0 },
            io_bytes: 4096,
            read_pattern: AccessPattern::Random,
            write_pattern: AccessPattern::Sequential,
            queue_depth: 16,
            rate_limit: None,
            burst: None,
            region_start: fg_region.start,
            region_blocks: fg_region.blocks,
        },
    );
    let mut workers = vec![fg];
    if bg_kb > 0 {
        let r = Region::slice(1, 2, CAP_BLOCKS);
        let pattern = if bg_seq {
            AccessPattern::Sequential
        } else {
            AccessPattern::Random
        };
        workers.push(WorkerSpec::new(
            "bg",
            FioSpec {
                read_ratio: if bg_op == IoType::Read { 1.0 } else { 0.0 },
                io_bytes: bg_kb * 1024,
                read_pattern: pattern,
                write_pattern: pattern,
                queue_depth: 16,
                rate_limit: None,
                burst: None,
                region_start: r.start,
                region_blocks: r.blocks,
            },
        ));
    }
    let (duration, warmup) = durations(quick);
    let cfg = TestbedConfig {
        scheme: Scheme::Vanilla,
        ssd: default_ssd(),
        precondition: Precondition::Clean,
        duration,
        warmup,
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, workers).run();
    let s = if fg_op == IoType::Read {
        res.workers[0].read_latency
    } else {
        res.workers[0].write_latency
    };
    (s.mean_us(), s.p999_us())
}

/// Run both figures.
pub fn run(quick: bool) {
    let sizes: &[u64] = if quick {
        &[0, 16, 128]
    } else {
        &[0, 4, 8, 16, 32, 64, 128, 256]
    };

    println_header("Figure 22: 4KB random read vs background writes of growing size");
    println!(
        "{:>10} {:>12} {:>14} {:>12} {:>14}",
        "BG (KB)", "avg rnd-wr", "p99.9 rnd-wr", "avg seq-wr", "p99.9 seq-wr"
    );
    for &kb in sizes {
        let (ar, pr) = foreground_lat(IoType::Read, IoType::Write, false, kb, quick);
        let (as_, ps) = foreground_lat(IoType::Read, IoType::Write, true, kb, quick);
        println!(
            "{:>10} {:>10.0}us {:>12.0}us {:>10.0}us {:>12.0}us",
            kb, ar, pr, as_, ps
        );
    }

    println_header("Figure 23: 4KB sequential write vs background reads of growing size");
    println!(
        "{:>10} {:>12} {:>14} {:>12} {:>14}",
        "BG (KB)", "avg rnd-rd", "p99.9 rnd-rd", "avg seq-rd", "p99.9 seq-rd"
    );
    for &kb in sizes {
        let (ar, pr) = foreground_lat(IoType::Write, IoType::Read, false, kb, quick);
        let (as_, ps) = foreground_lat(IoType::Write, IoType::Read, true, kb, quick);
        println!(
            "{:>10} {:>10.0}us {:>12.0}us {:>10.0}us {:>12.0}us",
            kb, ar, pr, as_, ps
        );
    }
}
