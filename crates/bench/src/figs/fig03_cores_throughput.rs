//! Figure 3: 4 KB read/write throughput vs number of target cores,
//! server vs SmartNIC JBOF.
//!
//! Four SSDs, one high-QD worker per SSD; cores 1–8 shared round-robin
//! across the four pipelines. Paper shape: the server saturates the storage
//! (~1.5 M KIOPS reads) with 2 cores, the SmartNIC needs 3; beyond that the
//! curves are flat (device-limited).

use crate::common::{default_ssd, println_header, Region, CAP_BLOCKS};
use gimbal_sim::SimDuration;
use gimbal_testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::{AccessPattern, FioSpec};

fn kiops(cores: u32, read: bool, xeon: bool, quick: bool) -> f64 {
    let workers: Vec<WorkerSpec> = (0..4)
        .map(|i| {
            let region = Region::slice(0, 1, CAP_BLOCKS);
            let fio = FioSpec {
                read_ratio: if read { 1.0 } else { 0.0 },
                io_bytes: 4096,
                read_pattern: AccessPattern::Random,
                write_pattern: AccessPattern::Sequential,
                queue_depth: 192,
                rate_limit: None,
                burst: None,
                region_start: region.start,
                region_blocks: region.blocks,
            };
            WorkerSpec::new(format!("ssd{i}"), fio).on_ssd(i)
        })
        .collect();
    let cfg = TestbedConfig {
        scheme: Scheme::Vanilla,
        ssd: default_ssd(),
        num_ssds: 4,
        cores,
        xeon,
        precondition: Precondition::Clean,
        duration: if quick {
            SimDuration::from_millis(300)
        } else {
            SimDuration::from_millis(800)
        },
        warmup: SimDuration::from_millis(100),
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, workers).run();
    res.workers.iter().map(|w| w.iops()).sum::<f64>() / 1e3
}

/// Run the experiment and print the figure's series.
pub fn run(quick: bool) {
    println_header("Figure 3: throughput vs cores (4 SSDs, 4KB)");
    println!(
        "{:>6} {:>14} {:>16} {:>14} {:>16}",
        "Cores", "Server-RND-RD", "SmartNIC-RND-RD", "Server-SEQ-WR", "SmartNIC-SEQ-WR"
    );
    let cores: &[u32] = if quick {
        &[1, 2, 3, 4, 8]
    } else {
        &[1, 2, 3, 4, 5, 6, 7, 8]
    };
    for &c in cores {
        println!(
            "{:>6} {:>8.0} KIOPS {:>10.0} KIOPS {:>8.0} KIOPS {:>10.0} KIOPS",
            c,
            kiops(c, true, true, quick),
            kiops(c, true, false, quick),
            kiops(c, false, true, quick),
            kiops(c, false, false, quick),
        );
    }
}
