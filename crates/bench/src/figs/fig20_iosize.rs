//! Figure 20 (Appendix D): IO-size interference — a 4 KB stream 1 against a
//! stream 2 of growing IO size, same queue depth.
//!
//! Paper shape: larger neighbor IOs take an ever-larger bandwidth share;
//! e.g. 4 KB vs 64 KB random reads end up ~91 vs ~1473 MB/s.

use crate::common::{default_ssd, durations, println_header, Region, CAP_BLOCKS};
use gimbal_testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::{AccessPattern, FioSpec};

fn stream1_bw(read: bool, seq: bool, s2_kb: u64, quick: bool) -> (f64, f64) {
    let mk = |i: u32, kb: u64| {
        let r = Region::slice(i, 2, CAP_BLOCKS);
        let pattern = if seq {
            AccessPattern::Sequential
        } else {
            AccessPattern::Random
        };
        WorkerSpec::new(
            format!("s{}", i + 1),
            FioSpec {
                read_ratio: if read { 1.0 } else { 0.0 },
                io_bytes: kb * 1024,
                read_pattern: pattern,
                write_pattern: pattern,
                queue_depth: 32,
                rate_limit: None,
                burst: None,
                region_start: r.start,
                region_blocks: r.blocks,
            },
        )
    };
    let (duration, warmup) = durations(quick);
    let cfg = TestbedConfig {
        scheme: Scheme::Vanilla,
        ssd: default_ssd(),
        precondition: Precondition::Clean,
        duration,
        warmup,
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, vec![mk(0, 4), mk(1, s2_kb)]).run();
    (
        res.workers[0].bandwidth_mbps(),
        res.workers[1].bandwidth_mbps(),
    )
}

/// Run the experiment and print the four curves (stream 1's bandwidth).
pub fn run(quick: bool) {
    println_header("Figure 20: 4KB stream-1 bandwidth vs stream-2 IO size (vanilla)");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10}",
        "S2 (KB)", "rnd read", "seq read", "rnd write", "seq write"
    );
    let sizes: &[u64] = if quick {
        &[4, 32, 128]
    } else {
        &[4, 8, 16, 32, 64, 128]
    };
    for &kb in sizes {
        println!(
            "{:>10} {:>8.0}MB {:>8.0}MB {:>8.0}MB {:>8.0}MB",
            kb,
            stream1_bw(true, false, kb, quick).0,
            stream1_bw(true, true, kb, quick).0,
            stream1_bw(false, false, kb, quick).0,
            stream1_bw(false, true, kb, quick).0,
        );
    }
}
