//! Figure 18 (Appendix B): Gimbal's dynamic latency threshold tracking the
//! EWMA latency (128 KB random read).
//!
//! Paper shape: the threshold decays toward the EWMA; when outstanding IO
//! grows and the EWMA crosses it, congestion signals fire and the threshold
//! springs toward `Thresh_max`, firing more often the closer latency gets
//! to the ceiling.

use crate::common::{default_ssd, println_header, Region, CAP_BLOCKS};
use gimbal_sim::{SimDuration, SimTime};
use gimbal_testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::FioSpec;

/// Run the experiment and print the two traces.
pub fn run(quick: bool) {
    println_header("Figure 18: dynamic latency threshold (Gimbal, 128KB random read)");
    let n = 8u32;
    let workers: Vec<WorkerSpec> = (0..n)
        .map(|i| {
            let r = Region::slice(i, n, CAP_BLOCKS);
            // Stagger starts so load (and the EWMA) ramps visibly.
            let start = SimTime::ZERO + SimDuration::from_millis(150 * u64::from(i));
            WorkerSpec::new(
                format!("w{i}"),
                FioSpec::paper_default(1.0, 128 * 1024, r.start, r.blocks),
            )
            .active(start, None)
        })
        .collect();
    let duration = if quick {
        SimDuration::from_millis(1600)
    } else {
        SimDuration::from_secs(4)
    };
    let cfg = TestbedConfig {
        scheme: Scheme::Gimbal,
        ssd: default_ssd(),
        precondition: Precondition::Clean,
        duration,
        warmup: SimDuration::from_millis(50),
        sample_interval: Some(SimDuration::from_millis(25)),
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, workers).run();
    let tr = &res.gimbal_traces[0];
    println!("{:>8} {:>12} {:>12}", "t (ms)", "ewma (us)", "thresh (us)");
    let step = SimDuration::from_millis(100);
    let mut t = SimTime::ZERO + step;
    while t <= SimTime::ZERO + duration {
        let lo = t - step;
        println!(
            "{:>8.0} {:>12.0} {:>12.0}",
            t.as_secs_f64() * 1e3,
            tr.read_ewma_us.mean_in(lo, t).unwrap_or(0.0),
            tr.read_thresh_us.mean_in(lo, t).unwrap_or(0.0),
        );
        t += step;
    }
}
