//! Figure 8: average / p99 / p99.9 end-to-end latency of the read+write
//! mixed workloads of Fig 7 (b: clean 128 KB, c: fragmented 4 KB).
//!
//! Paper shape: Gimbal's credit-based flow control keeps the tails an order
//! of magnitude below FlashFQ/ReFlex (no flow control) and beats Parda at
//! p99/p99.9.

use crate::common::println_header;
use crate::figs::fig07_fairness::{mixes, run_mix};
use gimbal_testbed::Scheme;

/// Run the experiment and print both panels.
pub fn run(quick: bool) {
    println_header("Figure 8: read/write latency, 16 read + 16 write workers");
    let all = mixes();
    for mix in &all[1..] {
        println!("\n-- {} --", mix.name);
        println!(
            "{:>9} {:>10} {:>10} {:>11} {:>10} {:>10} {:>11}",
            "Scheme", "RD avg", "RD p99", "RD p99.9", "WR avg", "WR p99", "WR p99.9"
        );
        for scheme in Scheme::COMPARED {
            let r = run_mix(mix, scheme, quick);
            let [rd, wr] = r.latency;
            println!(
                "{:>9} {:>8.0}us {:>8.0}us {:>9.0}us {:>8.0}us {:>8.0}us {:>9.0}us",
                scheme.name(),
                rd.mean_us(),
                rd.p99_us(),
                rd.p999_us(),
                wr.mean_us(),
                wr.p99_us(),
                wr.p999_us(),
            );
        }
    }
}
