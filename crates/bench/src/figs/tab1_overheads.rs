//! Table 1: CPU overhead of the Gimbal switch vs vanilla SPDK.
//!
//! (a) per-path cycle costs (the model constants, in the paper's
//! 125-cycles-per-µs unit); (b) maximum 4 KB read IOPS against a NULL
//! device on 1 and 4 SmartNIC cores.

use crate::common::println_header;
use gimbal_fabric::{CmdId, IoType, NvmeCmd, Priority, SsdId, TenantId};
use gimbal_nic::CpuCost;
use gimbal_sim::{SimDuration, SimTime};
use gimbal_ssd::NullDevice;
use gimbal_switch::{FifoPolicy, Pipeline, PipelineConfig};

fn cmd(id: u64, issued: SimTime) -> NvmeCmd {
    NvmeCmd {
        id: CmdId(id),
        tenant: TenantId(0),
        ssd: SsdId(0),
        opcode: IoType::Read,
        lba: 0,
        len: 4096,
        priority: Priority::NORMAL,
        issued_at: issued,
        wal: None,
    }
}

/// Max NULL-device KIOPS with `cores` pipelines (one NULL device each),
/// under the given CPU cost model.
fn null_kiops(cost: CpuCost, cores: u32, quick: bool) -> f64 {
    let horizon = SimTime::ZERO
        + if quick {
            SimDuration::from_millis(20)
        } else {
            SimDuration::from_millis(100)
        };
    let cfg = PipelineConfig {
        cpu_cost: cost,
        null_device: true,
        cache: None,
        broker: None,
    };
    let mut pipes: Vec<Pipeline<NullDevice>> = (0..cores)
        .map(|i| {
            Pipeline::new(
                SsdId(i),
                NullDevice::new(),
                Box::new(FifoPolicy::new()),
                cfg.clone(),
            )
        })
        .collect();
    let mut id = 0u64;
    for p in &mut pipes {
        for _ in 0..64 {
            p.on_command(cmd(id, SimTime::ZERO), SimTime::ZERO);
            id += 1;
        }
    }
    let mut done = 0u64;
    loop {
        // Earliest-next pipeline steps first (simple round of the event loop).
        let next = pipes
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.next_event_at().map(|t| (t, i)))
            .min();
        let Some((t, i)) = next else { break };
        if t > horizon {
            break;
        }
        pipes[i].poll(t);
        for _ in pipes[i].take_outputs() {
            done += 1;
            pipes[i].on_command(cmd(id, t), t);
            id += 1;
        }
    }
    done as f64 / horizon.as_secs_f64() / 1e3
}

/// Run the table.
pub fn run(quick: bool) {
    println_header("Table 1a: per-IO CPU cycles (125 cycles = 1us)");
    println!("{:<28} {:>10} {:>10}", "", "Vanilla", "Gimbal");
    let rows = [
        (
            "1 worker (QD1)  submit",
            CpuCost::arm_vanilla_qd1().submit,
            CpuCost::arm_gimbal_qd1().submit,
        ),
        (
            "1 worker (QD1)  complete",
            CpuCost::arm_vanilla_qd1().complete,
            CpuCost::arm_gimbal_qd1().complete,
        ),
        (
            "16 workers (QD32) submit",
            CpuCost::arm_vanilla().submit,
            CpuCost::arm_gimbal().submit,
        ),
        (
            "16 workers (QD32) complete",
            CpuCost::arm_vanilla().complete,
            CpuCost::arm_gimbal().complete,
        ),
    ];
    for (label, v, g) in rows {
        println!(
            "{:<28} {:>10.0} {:>7.0} (+{:.1}%)",
            label,
            v,
            g,
            (g - v) / v * 100.0
        );
    }

    println_header("Table 1b: max 4KB read IOPS, NULL device");
    for (label, cores) in [("1 CPU core", 1u32), ("4 CPU cores", 4)] {
        let v = null_kiops(CpuCost::arm_vanilla(), cores, quick);
        let g = null_kiops(CpuCost::arm_gimbal(), cores, quick);
        println!(
            "{:<14} Vanilla {:>6.0} KIOPS   Gimbal {:>6.0} KIOPS ({:+.1}%)",
            label,
            v,
            g,
            (g - v) / v * 100.0
        );
    }

    println_header("§5.8: Xeon E5-2620 v4, NULL device (1 core)");
    let v = null_kiops(CpuCost::xeon_vanilla(), 1, quick);
    let g = null_kiops(CpuCost::xeon_gimbal(), 1, quick);
    println!(
        "Vanilla {:>6.0} KIOPS   Gimbal {:>6.0} KIOPS ({:+.1}%)",
        v,
        g,
        (g - v) / v * 100.0
    );
}
