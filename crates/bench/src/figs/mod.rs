//! One module per table/figure of the paper's evaluation. Each exposes
//! `run(quick: bool)`, printing the same rows/series the paper reports.

pub mod abl_bucket_cost;
pub mod abl_cache;
pub mod abl_slots;
pub mod abl_threshold;
pub mod fig02_unloaded_latency;
pub mod fig03_cores_throughput;
pub mod fig04_interference;
pub mod fig06_utilization;
pub mod fig07_fairness;
pub mod fig08_latency;
pub mod fig09_dynamic;
pub mod fig10_ycsb;
pub mod fig11_12_scalability;
pub mod fig13_virtual_view;
pub mod fig14_bathtub;
pub mod fig15_read_latency;
pub mod fig16_percost;
pub mod fig17_congestion;
pub mod fig18_threshold;
pub mod fig19_intensity;
pub mod fig20_iosize;
pub mod fig21_pattern;
pub mod fig22_23_mixed_latency;
pub mod gen_p3600;
pub mod tab1_overheads;
pub mod tab2_comparison;
