//! Figure 6: device utilization of the four schemes — aggregated bandwidth
//! and average latency of 16 identical workers, across SSD condition × IO
//! type.
//!
//! Paper shape: Gimbal ≈ FlashFQ on bandwidth everywhere; ReFlex leaves
//! clean-SSD bandwidth on the table (static worst-case model, ×2.4 reads /
//! ×6.6 writes); Parda underutilizes fragmented reads; Gimbal and Parda
//! keep latency low (flow control), FlashFQ/ReFlex let it blow up.

use crate::common::{default_ssd, durations, println_header, Region, CAP_BLOCKS};
use gimbal_fabric::IoType;
use gimbal_sim::stats::LatencySummary;
use gimbal_testbed::{Precondition, RunResult, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::FioSpec;

/// The four condition × type cases of Fig 6 (C-R, C-W, F-R, F-W): clean
/// uses 128 KB IOs, fragmented 4 KB (§5.2).
pub fn cases() -> [(&'static str, Precondition, IoType, u64); 4] {
    [
        ("C-R", Precondition::Clean, IoType::Read, 128 * 1024),
        ("C-W", Precondition::Clean, IoType::Write, 128 * 1024),
        ("F-R", Precondition::Fragmented, IoType::Read, 4096),
        ("F-W", Precondition::Fragmented, IoType::Write, 4096),
    ]
}

/// Run 16 identical workers of the given shape under a scheme.
pub fn run_case(
    scheme: Scheme,
    pre: Precondition,
    op: IoType,
    io_bytes: u64,
    quick: bool,
) -> RunResult {
    let n = 16u32;
    let read_ratio = if op == IoType::Read { 1.0 } else { 0.0 };
    let workers: Vec<WorkerSpec> = (0..n)
        .map(|i| {
            let r = Region::slice(i, n, CAP_BLOCKS);
            WorkerSpec::new(
                format!("w{i}"),
                FioSpec::paper_default(read_ratio, io_bytes, r.start, r.blocks),
            )
        })
        .collect();
    let (duration, warmup) = durations(quick);
    let cfg = TestbedConfig {
        scheme,
        ssd: default_ssd(),
        precondition: pre,
        duration,
        warmup,
        ..TestbedConfig::default()
    };
    Testbed::new(cfg, workers).run()
}

fn lat_of(res: &RunResult, op: IoType) -> LatencySummary {
    let [r, w] = res.group_latency(|_| true);
    if op == IoType::Read {
        r
    } else {
        w
    }
}

/// Run the experiment and print both panels.
pub fn run(quick: bool) {
    println_header("Figure 6: utilization — 16 identical workers per case");
    println!(
        "{:>6} {:>9} {:>12} {:>14}",
        "Case", "Scheme", "Agg MB/s", "Avg lat (us)"
    );
    for (label, pre, op, io) in cases() {
        for scheme in Scheme::COMPARED {
            let res = run_case(scheme, pre, op, io, quick);
            let bw = res.aggregate_bps(|_| true) / 1e6;
            let lat = lat_of(&res, op);
            println!(
                "{:>6} {:>9} {:>12.0} {:>14.0}",
                label,
                scheme.name(),
                bw,
                lat.mean_us()
            );
        }
    }
}
