//! §5.8 generalization: Gimbal on the Intel DC P3600 (MLC) profile.
//!
//! The paper re-runs the §5.3 fairness microbenchmark on a P3600 — 33.5 %
//! lower 128 KB read bandwidth, 35 % higher 4 KB random write — with only
//! `Thresh_max` retuned (3 ms), and reports f-Utils of 0.63/0.72 (clean
//! read/write) and 0.58/0.90 (fragmented read/write): Gimbal adapts to a
//! different device without re-engineering.

use crate::common::{durations, println_header, standalone_bw, Region};
use gimbal_core::Params;
use gimbal_ssd::{SsdConfig, SsdProfile};
use gimbal_testbed::{f_util, Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::{AccessPattern, FioSpec};

fn p3600_ssd() -> SsdConfig {
    SsdConfig {
        logical_capacity: 512 * 1024 * 1024,
        ..SsdConfig::profile(SsdProfile::P3600)
    }
}

const CAP: u64 = 512 * 1024 * 1024 / 4096;

fn rw_futils(pre: Precondition, io: u64, quick: bool) -> (f64, f64) {
    let n = 32u32;
    let mut workers = Vec::new();
    let mut specs = Vec::new();
    for i in 0..n {
        let r = Region::slice(i, n, CAP);
        let ratio = if i < n / 2 { 1.0 } else { 0.0 };
        let mut fio = FioSpec::paper_default(ratio, io, r.start, r.blocks);
        if io >= 128 * 1024 {
            fio.read_pattern = AccessPattern::Sequential;
            fio.write_pattern = AccessPattern::Random;
        }
        specs.push(fio);
        workers.push(WorkerSpec::new(
            if i < n / 2 { "read" } else { "write" },
            fio,
        ));
    }
    let (duration, warmup) = durations(quick);
    let cfg = TestbedConfig {
        scheme: Scheme::Gimbal,
        gimbal_params: Params::p3600(),
        ssd: p3600_ssd(),
        precondition: pre,
        duration,
        warmup,
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, workers).run();
    // f-Util against the P3600's own standalone capabilities.
    let read_alone = standalone_bw_p3600(specs[0], pre);
    let write_alone = standalone_bw_p3600(specs[(n - 1) as usize], pre);
    let rd = res.aggregate_bps(|l| l == "read") / f64::from(n / 2);
    let wr = res.aggregate_bps(|l| l == "write") / f64::from(n / 2);
    (f_util(rd, read_alone, n), f_util(wr, write_alone, n))
}

fn standalone_bw_p3600(mut fio: FioSpec, pre: Precondition) -> f64 {
    fio.queue_depth = fio.queue_depth.max(32);
    let cfg = TestbedConfig {
        scheme: Scheme::Vanilla,
        ssd: p3600_ssd(),
        precondition: pre,
        duration: gimbal_sim::SimDuration::from_millis(700),
        warmup: gimbal_sim::SimDuration::from_millis(150),
        ..TestbedConfig::default()
    };
    Testbed::new(cfg, vec![WorkerSpec::new("solo", fio)])
        .run()
        .workers[0]
        .bandwidth_bps()
}

/// Run the generalization study.
pub fn run(quick: bool) {
    println_header("§5.8 generalization: Gimbal on the Intel P3600 profile (Thresh_max = 3ms)");
    // Device sanity vs the DCT983 (paper: −33.5 % 128K read, +35 % 4K write).
    let d = standalone_bw(
        FioSpec::paper_default(1.0, 128 * 1024, 0, CAP),
        Precondition::Clean,
        quick,
    );
    let p = standalone_bw_p3600(
        FioSpec::paper_default(1.0, 128 * 1024, 0, CAP),
        Precondition::Clean,
    );
    println!(
        "128KB clean read: DCT983 {:.0} MB/s vs P3600 {:.0} MB/s ({:+.1}%)",
        d / 1e6,
        p / 1e6,
        (p - d) / d * 100.0
    );
    println!(
        "\n{:>14} {:>12} {:>12}",
        "Condition", "read f-Util", "write f-Util"
    );
    let (crd, cwr) = rw_futils(Precondition::Clean, 128 * 1024, quick);
    println!(
        "{:>14} {:>12.2} {:>12.2}  (paper: 0.63 / 0.72)",
        "Clean 128KB", crd, cwr
    );
    let (frd, fwr) = rw_futils(Precondition::Fragmented, 4096, quick);
    println!(
        "{:>14} {:>12.2} {:>12.2}  (paper: 0.58 / 0.90)",
        "Frag 4KB", frd, fwr
    );
}
