//! Figure 2: unloaded read/write latency vs IO size, server vs SmartNIC.
//!
//! One worker, queue depth 1, clean SSD; random reads and sequential writes
//! across 4 KB – 256 KB; Xeon vs ARM target cores. The paper's shape:
//! nearly identical latencies for small IOs (device time dominates), with
//! the SmartNIC adding ~20 % for ≥128 KB (per-byte CPU cost).

use crate::common::{default_ssd, println_header, Region, CAP_BLOCKS};
use gimbal_sim::SimDuration;
use gimbal_testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::{AccessPattern, FioSpec};

fn one_latency_us(io_kb: u64, read: bool, xeon: bool, quick: bool) -> f64 {
    let region = Region::slice(0, 1, CAP_BLOCKS);
    let fio = FioSpec {
        read_ratio: if read { 1.0 } else { 0.0 },
        io_bytes: io_kb * 1024,
        read_pattern: AccessPattern::Random,
        write_pattern: AccessPattern::Sequential,
        queue_depth: 1,
        rate_limit: None,
        burst: None,
        region_start: region.start,
        region_blocks: region.blocks,
    };
    let cfg = TestbedConfig {
        scheme: Scheme::Vanilla,
        ssd: default_ssd(),
        precondition: Precondition::Clean,
        xeon,
        duration: if quick {
            SimDuration::from_millis(150)
        } else {
            SimDuration::from_millis(500)
        },
        warmup: SimDuration::from_millis(20),
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, vec![WorkerSpec::new("qd1", fio)]).run();
    let w = &res.workers[0];
    if read {
        w.read_latency.mean_us()
    } else {
        w.write_latency.mean_us()
    }
}

/// Run the experiment and print the figure's series.
pub fn run(quick: bool) {
    println_header("Figure 2: unloaded latency vs IO size (QD1, clean SSD)");
    println!(
        "{:>8} {:>14} {:>16} {:>14} {:>16}",
        "IO (KB)", "Server-RND-RD", "SmartNIC-RND-RD", "Server-SEQ-WR", "SmartNIC-SEQ-WR"
    );
    for &kb in &[4u64, 8, 16, 32, 128, 256] {
        let srv_rd = one_latency_us(kb, true, true, quick);
        let nic_rd = one_latency_us(kb, true, false, quick);
        let srv_wr = one_latency_us(kb, false, true, quick);
        let nic_wr = one_latency_us(kb, false, false, quick);
        println!(
            "{:>8} {:>12.1}us {:>14.1}us {:>12.1}us {:>14.1}us",
            kb, srv_rd, nic_rd, srv_wr, nic_wr
        );
    }
}
