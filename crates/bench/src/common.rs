//! Shared experiment plumbing for the figure harness.

use gimbal_sim::SimDuration;
use gimbal_ssd::SsdConfig;
use gimbal_testbed::{Precondition, Scheme, Testbed, TestbedConfig, WorkerSpec};
use gimbal_workload::FioSpec;

/// Logical blocks of the default experiment SSD (512 MiB / 4 KiB).
pub const CAP_BLOCKS: u64 = 512 * 1024 * 1024 / 4096;

/// The default experiment SSD configuration (scaled-down DCT983).
pub fn default_ssd() -> SsdConfig {
    SsdConfig {
        logical_capacity: 512 * 1024 * 1024,
        ..SsdConfig::default()
    }
}

/// Disjoint worker regions: worker `i` of `n` gets an equal slice of the
/// LBA space (fio's per-job files).
#[derive(Clone, Copy, Debug)]
pub struct Region {
    /// First LBA.
    pub start: u64,
    /// Length in blocks.
    pub blocks: u64,
}

impl Region {
    /// Slice `i` of `n` over `cap` blocks.
    pub fn slice(i: u32, n: u32, cap: u64) -> Region {
        let per = cap / u64::from(n);
        Region {
            start: u64::from(i) * per,
            blocks: per,
        }
    }
}

/// Standalone maximum bandwidth (bytes/s) of one worker running exclusively
/// on the SSD — the denominator of the paper's f-Util metric (§5.1).
/// Measured on the vanilla (no-policy) target so it reflects the device.
pub fn standalone_bw(mut fio: FioSpec, pre: Precondition, quick: bool) -> f64 {
    // Boost the queue depth a little so a single worker can actually reach
    // the device maximum (fio's standalone runs do the same).
    fio.queue_depth = fio.queue_depth.max(32);
    // Short window: the paper's standalone numbers are per-condition peaks
    // measured right after preconditioning; a long sustained-write window
    // would drift a clean drive into GC and understate the denominator.
    let _ = quick;
    let cfg = TestbedConfig {
        scheme: Scheme::Vanilla,
        ssd: default_ssd(),
        precondition: pre,
        duration: SimDuration::from_millis(700),
        warmup: SimDuration::from_millis(150),
        ..TestbedConfig::default()
    };
    let res = Testbed::new(cfg, vec![WorkerSpec::new("standalone", fio)]).run();
    res.workers[0].bandwidth_bps()
}

/// Standard (duration, warmup) pair; quick mode shortens both but keeps the
/// warmup long enough for Gimbal's rate ramp (~0.4 s).
pub fn durations(quick: bool) -> (SimDuration, SimDuration) {
    if quick {
        (
            SimDuration::from_millis(1400),
            SimDuration::from_millis(700),
        )
    } else {
        (SimDuration::from_secs(3), SimDuration::from_millis(1000))
    }
}

/// Print a figure header.
pub fn println_header(title: &str) {
    println!();
    println!("==== {title} ====");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_cover() {
        let a = Region::slice(0, 4, CAP_BLOCKS);
        let b = Region::slice(1, 4, CAP_BLOCKS);
        assert_eq!(a.start + a.blocks, b.start);
        let last = Region::slice(3, 4, CAP_BLOCKS);
        assert!(last.start + last.blocks <= CAP_BLOCKS);
    }

    #[test]
    fn standalone_bw_sane_for_reads() {
        let fio = FioSpec::paper_default(1.0, 128 * 1024, 0, CAP_BLOCKS);
        let bw = standalone_bw(fio, Precondition::Clean, true);
        // 128 KB clean reads ≈ link limit 3.2 GB/s.
        assert!((2.0e9..3.5e9).contains(&bw), "standalone {bw}");
    }
}
