//! Regenerates the dynamic-threshold ablation at full scale.
//! Pass `--quick` for the shortened variant the bench harness uses.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    gimbal_bench::figs::abl_threshold::run(quick);
}
