//! Regenerates Figure 3 of the Gimbal paper at full scale.
//! Pass `--quick` for the shortened variant the bench harness uses.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    gimbal_bench::figs::fig03_cores_throughput::run(quick);
}
