//! Regenerates the §5.8 P3600 generalization study at full scale.
//! Pass `--quick` for the shortened variant the bench harness uses.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    gimbal_bench::figs::gen_p3600::run(quick);
}
