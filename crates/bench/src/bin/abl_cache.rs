//! Regenerates the NIC-DRAM cache-tier ablation at full scale.
//! Pass `--quick` for the shortened variant the bench harness uses.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    gimbal_bench::figs::abl_cache::run(quick);
}
