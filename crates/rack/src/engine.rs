//! The rack-scale event loop.
//!
//! N JBOF nodes, each `ssds_per_node` switch pipelines, behind one
//! deterministic ToR switch. Closed-loop clients issue logical IOs against
//! zone-replicated blobstore files; every logical read maps to one physical
//! NVMe command (plus reroutes), every logical write fans out to one command
//! per live replica.
//!
//! ## Capsule path
//!
//! Command: client port serialization + fabric propagation
//! ([`RdmaDelays::command_arrival`]) → ToR downlink serialization + link
//! latency ([`TorSwitch::to_node`]) → node. Completion: node port +
//! propagation ([`RdmaDelays::completion_arrival`]) → ToR uplink →
//! client. Node faults act at the crossings: a dead or partitioned node
//! swallows capsules in both directions (`tor_cmd_drops` / `tor_cpl_drops`),
//! a degraded link adds latency per crossing and is journaled as a
//! [`EventKind::LinkDegraded`] event.
//!
//! ## Escalation ladder
//!
//! Armed per command when faults are configured: timeout → retransmit
//! (attempt < `suspect_after`) → mark the node *suspect* and reroute the
//! read to a surviving replica → terminal typed error only when no live
//! replica holds the span. Writes never reroute (a write side that dies is
//! a degraded ack, §4.3); they retransmit until exhaustion. All of it runs
//! through [`RetryConfig::escalate`], so the ladder's order is unit-tested
//! where it lives.
//!
//! ## Determinism
//!
//! Single event queue, FIFO within a timestamp; all randomness from forked
//! [`SimRng`] streams; every cross-node routing decision is journaled under
//! the `rack.route` component so the divergence sanitizer can localize a
//! nondeterministic route to its tick.

use crate::config::RackConfig;
use crate::results::{RackClientResult, RackCounters, RackResult};
use gimbal_blobstore::{
    BackendId, Blobstore, HbaConfig, HierarchicalAllocator, RateLimiter, ReplicaHealth,
};
use gimbal_broker::BrokerHandle;
use gimbal_cores::{CoreScheduler, Quantum};
use gimbal_fabric::{
    CmdId, EscalationAction, IoType, NvmeCmd, NvmeCompletion, Port, Priority, RdmaDelays,
    RetryConfig, SsdId, TenantId, TorSwitch, CMD_CAPSULE_BYTES, RSP_CAPSULE_BYTES,
};
use gimbal_sim::collections::DetMap;
use gimbal_sim::journal::JournalHandle;
use gimbal_sim::{
    EventQueue, FaultInjector, FaultPlan, Histogram, IoArena, IoHandle, SimDuration, SimRng,
    SimTime,
};
use gimbal_ssd::FlashSsd;
use gimbal_switch::{ClientPolicy, Pipeline, PipelineConfig};
use gimbal_telemetry::{CapsuleKind, EventKind, TraceHandle, Tracer};
use gimbal_testbed::{FaultCounters, Precondition};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// One physical IO waiting behind a client's per-backend submission gate.
struct PendIo {
    logical: u64,
    backend: usize,
    lba: u64,
    blocks: u64,
    op: IoType,
}

/// One closed-loop client.
struct Client {
    /// Per-backend submission gates (credits for Gimbal, windows for Parda).
    gates: Vec<Box<dyn ClientPolicy>>,
    /// Outstanding physical commands per backend.
    outstanding: Vec<u32>,
    /// Gated per-backend submission queues.
    pending: Vec<VecDeque<PendIo>>,
    tx_port: Port,
    file: gimbal_blobstore::FileId,
    rng: SimRng,
    /// Open logical IOs (the closed loop's fill level).
    inflight: u32,
    read_hist: Histogram,
    write_hist: Histogram,
    ops_done: u64,
}

/// One open logical IO.
struct Logical {
    client: usize,
    offset: u64,
    blocks: u64,
    is_read: bool,
    started: SimTime,
    /// Physical commands still unresolved (queued or on the wire).
    pending: u32,
    ok_sides: u32,
    err_sides: u32,
    /// Write planned onto fewer replicas than configured.
    degraded: bool,
    /// Backends this read has been routed to (reroutes never revisit one).
    tried: Vec<u32>,
}

/// One live (non-terminal) physical command. Removed exactly once — at
/// completion delivery, final timeout, or abandonment for a reroute — which
/// is what makes the physical conservation audit exact.
struct Phys {
    logical: u64,
    backend: usize,
    attempt: u32,
    /// Whether any capsule copy reached the target pipeline.
    delivered: bool,
    /// Target-side cached completion for retransmit dedup.
    done_cpl: Option<NvmeCompletion>,
    cmd: NvmeCmd,
}

enum Ev {
    ClientStart(usize),
    DeliverCmd {
        backend: usize,
        cmd: NvmeCmd,
    },
    PipelineWake(usize),
    DeliverCpl {
        cpl: NvmeCompletion,
    },
    Timeout {
        cmd: u64,
        attempt: u32,
    },
    NodeDeath(usize),
    /// Broker settlement boundary (only scheduled when the broker is on):
    /// repays debts and forgives accounts on dead nodes' backends.
    BrokerEpoch,
    /// Core-scheduler rebalance boundary (only scheduled when stealing is
    /// on with a non-zero rebalance period): every node's scheduler
    /// re-derives home assignments from last epoch's per-pipeline load.
    CoresRebalance,
}

/// The rack experiment.
pub struct RackTestbed {
    cfg: RackConfig,
    /// Test-only nondeterminism injector: flip the first read-routing
    /// decision to a different live replica. Exists to prove the sanitizer
    /// localizes cross-node routing nondeterminism to its tick and the
    /// `rack.route` component.
    #[cfg(test)]
    pub(crate) perturb_first_route: bool,
}

impl RackTestbed {
    /// Create the experiment (panics on inconsistent configuration).
    pub fn new(cfg: RackConfig) -> Self {
        cfg.validate();
        RackTestbed {
            cfg,
            #[cfg(test)]
            perturb_first_route: false,
        }
    }

    /// Run it.
    pub fn run(self) -> RackResult {
        #[cfg_attr(not(test), allow(unused_mut))]
        let mut rt = Rt::build(self.cfg);
        #[cfg(test)]
        {
            rt.perturb_first_route = self.perturb_first_route;
        }
        rt.run()
    }
}

struct Rt {
    cfg: RackConfig,
    queue: EventQueue<Ev>,
    delays: RdmaDelays,
    tor: TorSwitch,
    pipelines: Vec<Pipeline<FlashSsd>>,
    node_ports: Vec<Port>,
    wake_at: Vec<SimTime>,
    /// Shared routing view: per-backend credit/outstanding/dead/suspect.
    /// Gating is per-client (`Client::gates`), so this limiter is disabled.
    router: RateLimiter,
    bs: Blobstore,
    clients: Vec<Client>,
    logical: DetMap<u64, Logical>,
    next_logical: u64,
    /// Live physical commands, by command id. The map holds arena handles;
    /// the arena recycles the `Phys` records themselves (incarnation-tagged,
    /// so a stale handle is a typed error instead of aliased state).
    phys: DetMap<u64, IoHandle>,
    phys_arena: IoArena<Phys>,
    next_cmd: u64,
    counters: FaultCounters,
    rack: RackCounters,
    /// `Some` only when the plan actually targets this rack: a plan whose
    /// every fault is aimed at absent nodes/SSDs runs exactly like
    /// `faults: None`, timers and all.
    active_plan: Option<FaultPlan>,
    injector: Option<FaultInjector>,
    retry: RetryConfig,
    node_dead: Vec<bool>,
    tracer: Option<Rc<RefCell<Tracer>>>,
    trace: TraceHandle,
    sanitizer: JournalHandle,
    /// Shared borrow ledger (`None` = broker off).
    broker: Option<BrokerHandle>,
    /// Per-node core schedulers, node-major (stealing never crosses the
    /// ToR). With `steal: None` each is an inert home-binding map.
    scheds: Vec<CoreScheduler>,
    end: SimTime,
    warm: SimTime,
    #[cfg(test)]
    perturb_first_route: bool,
    #[cfg(test)]
    perturb_done: bool,
}

impl Rt {
    fn build(cfg: RackConfig) -> Rt {
        let mut root_rng = SimRng::new(cfg.seed);
        let backends = cfg.backends() as usize;
        let nodes = cfg.nodes as usize;

        // A fault plan is "active" only if some target exists in this rack;
        // node faults aimed past `nodes` (or SSD faults past `backends`) are
        // inert, so such a plan must not even arm timers — that keeps the
        // run bit-identical to a fault-free one.
        let active_plan = cfg.faults.as_ref().map(|fc| &fc.plan).filter(|p| {
            p.cmd_loss_prob > 0.0
                || p.cpl_loss_prob > 0.0
                || !p.burst_windows.is_empty()
                || (0..backends).any(|i| p.ssd_spec(i).is_some())
                || (0..nodes).any(|n| p.node_spec(n).is_some())
        });
        let injector = active_plan.map(|p| FaultInjector::new(p.clone(), cfg.seed));
        let active_plan = active_plan.cloned();
        let retry = cfg.faults.as_ref().map(|fc| fc.retry).unwrap_or_default();

        let sanitizer = if cfg.sanitize {
            JournalHandle::enabled()
        } else {
            JournalHandle::disabled()
        };
        let (tracer, trace) = match &cfg.trace {
            Some(tc) => {
                let t = Rc::new(RefCell::new(Tracer::new(tc.clone())));
                let h = TraceHandle::attached(&t);
                (Some(t), h)
            }
            None => (None, TraceHandle::disabled()),
        };

        let broker = cfg
            .broker
            .as_ref()
            .map(|bc| BrokerHandle::new(bc.clone(), trace.clone()));
        let spn = cfg.ssds_per_node as usize;
        let scheds: Vec<CoreScheduler> = (0..nodes)
            .map(|_| CoreScheduler::new(spn, spn, cfg.steal.clone(), trace.clone()))
            .collect();
        let mut pipelines: Vec<Pipeline<FlashSsd>> = (0..backends)
            .map(|i| {
                let mut ssd = FlashSsd::new(cfg.ssd.clone(), root_rng.next_u64());
                match cfg.precondition {
                    Precondition::Clean => ssd.precondition_clean(),
                    Precondition::Fragmented => ssd.precondition_fragmented(),
                    Precondition::None => {}
                }
                if let Some(p) = &active_plan {
                    // Node-scoped GC storms are *correlated* device storms:
                    // fold them into every member SSD's stall windows so the
                    // device model both stalls and advertises `gc_busy`.
                    let mut spec = p.ssd_spec(i).cloned().unwrap_or_default();
                    if let Some(ns) = p.node_spec(cfg.node_of(i)) {
                        spec.stall_windows
                            .extend(ns.gc_storm_windows.iter().copied());
                    }
                    if !spec.is_noop() {
                        ssd.arm_faults(spec, FaultPlan::device_rng(cfg.seed, i));
                    }
                }
                let node_sched = &scheds[cfg.node_of(i)];
                Pipeline::with_core(
                    SsdId(i as u32),
                    ssd,
                    cfg.scheme.make_policy(SsdId(i as u32), cfg.gimbal_params),
                    PipelineConfig {
                        cpu_cost: cfg.scheme.cpu_cost(false),
                        null_device: false,
                        cache: None,
                        broker: broker.clone(),
                    },
                    node_sched.core_rc(node_sched.home(i % spn)),
                )
            })
            .collect();
        if trace.is_enabled() {
            for p in &mut pipelines {
                p.attach_trace(trace.clone());
            }
        }

        let router = RateLimiter::new(backends, cfg.gimbal_params.initial_credit_ios, false);

        let caps: Vec<u64> = (0..backends)
            .map(|_| cfg.ssd.logical_capacity / cfg.ssd.logical_page_bytes)
            .collect();
        let mut bs = Blobstore::new(
            HierarchicalAllocator::new(HbaConfig::default(), &caps),
            cfg.replicate,
        )
        .expect("validated in RackConfig::validate");

        let ssds_per_node = cfg.ssds_per_node;
        let clients: Vec<Client> = (0..cfg.clients as usize)
            .map(|i| {
                let file = bs
                    .create_file_zoned(
                        cfg.file_blocks,
                        |b| router.headroom(b) as f64,
                        |b| b.0 / ssds_per_node,
                    )
                    .expect("rack out of blobstore capacity — shrink file_blocks");
                Client {
                    gates: (0..backends).map(|_| cfg.scheme.make_client()).collect(),
                    outstanding: vec![0; backends],
                    pending: (0..backends).map(|_| VecDeque::new()).collect(),
                    tx_port: Port::new(cfg.fabric.port_bandwidth),
                    file,
                    rng: root_rng.fork(i as u64),
                    inflight: 0,
                    read_hist: Histogram::new(),
                    write_hist: Histogram::new(),
                    ops_done: 0,
                }
            })
            .collect();

        let mut queue = EventQueue::new();
        for i in 0..clients.len() {
            queue.push(SimTime::from_micros(i as u64 * 10), Ev::ClientStart(i));
        }
        if let Some(p) = &active_plan {
            for node in 0..nodes {
                if let Some(at) = p.node_spec(node).and_then(|s| s.die_at) {
                    queue.push(at, Ev::NodeDeath(node));
                }
            }
        }
        if let Some(bc) = &cfg.broker {
            queue.push(SimTime::ZERO + bc.epoch, Ev::BrokerEpoch);
        }
        if let Some(e) = scheds.first().and_then(CoreScheduler::rebalance_epoch) {
            queue.push(SimTime::ZERO + e, Ev::CoresRebalance);
        }

        Rt {
            delays: RdmaDelays::new(cfg.fabric),
            tor: TorSwitch::new(cfg.tor, nodes),
            node_ports: (0..backends)
                .map(|_| Port::new(cfg.fabric.port_bandwidth))
                .collect(),
            wake_at: vec![SimTime::MAX; backends],
            pipelines,
            router,
            bs,
            clients,
            logical: DetMap::new(),
            next_logical: 0,
            phys: DetMap::new(),
            phys_arena: IoArena::new(),
            next_cmd: 0,
            counters: FaultCounters::default(),
            rack: RackCounters::default(),
            active_plan,
            injector,
            retry,
            node_dead: vec![false; nodes],
            tracer,
            trace,
            sanitizer,
            broker,
            scheds,
            end: SimTime::ZERO + cfg.duration,
            warm: SimTime::ZERO + cfg.warmup,
            queue,
            cfg,
            #[cfg(test)]
            perturb_first_route: false,
            #[cfg(test)]
            perturb_done: false,
        }
    }

    fn armed(&self) -> bool {
        self.active_plan.is_some()
    }

    /// Whether `node`'s ToR link swallows capsules at `t` (death is
    /// permanent, partitions are windowed; both act in both directions).
    fn node_down(&self, node: usize, t: SimTime) -> bool {
        self.node_dead[node]
            || self
                .active_plan
                .as_ref()
                .and_then(|p| p.node_spec(node))
                .is_some_and(|s| s.dead(t) || s.partitioned(t))
    }

    /// Degraded-link penalty for a crossing of `node`'s link at `t`, with
    /// the counter and telemetry event it implies.
    fn link_extra(&mut self, node: usize, t: SimTime, ssd: SsdId, tenant: TenantId) -> SimDuration {
        let extra = self
            .active_plan
            .as_ref()
            .and_then(|p| p.node_spec(node))
            .and_then(|s| s.link_extra(t));
        match extra {
            Some(x) => {
                self.rack.link_degraded_crossings += 1;
                self.trace.record(
                    t,
                    ssd,
                    Some(tenant),
                    EventKind::LinkDegraded { node: node as u32 },
                );
                x
            }
            None => SimDuration::ZERO,
        }
    }

    /// Environment-sourced health of one backend, as the router sees it.
    fn backend_health(&self, b: BackendId, now: SimTime) -> ReplicaHealth {
        let node = self.cfg.node_of(b.index());
        let spec = self.active_plan.as_ref().and_then(|p| p.node_spec(node));
        ReplicaHealth {
            partitioned: spec.is_some_and(|s| s.dead(now) || s.partitioned(now)),
            // The GC signal is read straight off the device model, so
            // organic die-level collections steer exactly like injected
            // storms. The blind baseline reports "never busy".
            gc_busy: self.cfg.gc_aware_routing && self.pipelines[b.index()].device().gc_busy(now),
        }
    }

    /// Pick a replica among `cands` via the GC/failure-aware chooser, and
    /// journal the decision (`op` is "choose" or "reroute").
    fn route(&mut self, cands: &[BackendId], now: SimTime, op: &'static str) -> Option<BackendId> {
        let healths: Vec<ReplicaHealth> =
            cands.iter().map(|&b| self.backend_health(b, now)).collect();
        let chosen = self
            .router
            .choose_replica_aware(cands, |b| {
                healths[cands.iter().position(|&x| x == b).expect("candidate")]
            })
            .ok()?;
        #[allow(unused_mut)]
        let mut chosen = chosen;
        #[cfg(test)]
        if self.perturb_first_route && !self.perturb_done {
            if let Some(alt) =
                (0..cands.len()).find(|&j| j != chosen && !self.router.is_dead(cands[j]))
            {
                chosen = alt;
                self.perturb_done = true;
            }
        }
        let b = cands[chosen];
        self.sanitizer
            .record(now.as_nanos(), "rack.route", op, b.index() as u64);
        Some(b)
    }

    /// Keep client `i`'s closed loop full. Bounded per call so a rack with
    /// no live replicas produces a finite burst of typed errors per event
    /// instead of spinning.
    fn issue_logical(&mut self, i: usize, now: SimTime) {
        let io_blocks = self.cfg.io_blocks();
        let slots = self.cfg.file_blocks / io_blocks;
        let mut budget = self.cfg.queue_depth as usize * 2;
        while self.clients[i].inflight < self.cfg.queue_depth && budget > 0 {
            budget -= 1;
            let is_read = self.clients[i].rng.gen_bool(self.cfg.read_ratio);
            let offset = self.clients[i].rng.gen_below(slots) * io_blocks;
            let file = self.clients[i].file;
            let id = self.next_logical;
            self.next_logical += 1;
            self.rack.issued += 1;
            self.clients[i].inflight += 1;
            if is_read {
                let pair = self.bs.replicas_at(file, offset);
                let cands: Vec<BackendId> = if pair[0] == pair[1] {
                    vec![pair[0]]
                } else {
                    pair.to_vec()
                };
                let Some(b) = self.route(&cands, now, "choose") else {
                    // Every replica of this span is dead: typed error at
                    // issue, never a panic.
                    self.rack.failed_typed += 1;
                    self.clients[i].inflight -= 1;
                    continue;
                };
                let plan = self
                    .bs
                    .plan_read(file, offset, io_blocks, |pair| usize::from(pair[0] != b))[0];
                self.logical.insert(
                    id,
                    Logical {
                        client: i,
                        offset,
                        blocks: io_blocks,
                        is_read: true,
                        started: now,
                        pending: 1,
                        ok_sides: 0,
                        err_sides: 0,
                        degraded: false,
                        tried: vec![b.0],
                    },
                );
                self.clients[i].pending[plan.backend.index()].push_back(PendIo {
                    logical: id,
                    backend: plan.backend.index(),
                    lba: plan.lba,
                    blocks: plan.blocks,
                    op: IoType::Read,
                });
            } else {
                let router = &self.router;
                match self
                    .bs
                    .plan_write_degraded(file, offset, io_blocks, |b| router.is_dead(b))
                {
                    Err(_) => {
                        // No live replica can take the write.
                        self.rack.failed_typed += 1;
                        self.clients[i].inflight -= 1;
                    }
                    Ok(wp) => {
                        self.logical.insert(
                            id,
                            Logical {
                                client: i,
                                offset,
                                blocks: io_blocks,
                                is_read: false,
                                started: now,
                                pending: wp.plans.len() as u32,
                                ok_sides: 0,
                                err_sides: 0,
                                degraded: wp.degraded,
                                tried: vec![],
                            },
                        );
                        for p in wp.plans {
                            self.clients[i].pending[p.backend.index()].push_back(PendIo {
                                logical: id,
                                backend: p.backend.index(),
                                lba: p.lba,
                                blocks: p.blocks,
                                op: IoType::Write,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Drain client `i`'s per-backend pending queues through its gates onto
    /// the fabric.
    fn dispatch(&mut self, i: usize, now: SimTime) {
        for b in 0..self.clients[i].pending.len() {
            loop {
                if self.clients[i].pending[b].is_empty() {
                    break;
                }
                let outstanding = self.clients[i].outstanding[b];
                if !self.clients[i].gates[b].can_submit(outstanding, now) {
                    break;
                }
                let io = self.clients[i].pending[b].pop_front().expect("non-empty");
                self.submit_phys(i, io, now);
            }
        }
    }

    fn submit_phys(&mut self, i: usize, io: PendIo, now: SimTime) {
        let cmd = NvmeCmd {
            id: CmdId(self.next_cmd),
            tenant: TenantId(i as u32),
            ssd: SsdId(io.backend as u32),
            opcode: io.op,
            lba: io.lba,
            len: (io.blocks * 4096) as u32,
            priority: Priority::NORMAL,
            issued_at: now,
            wal: None,
        };
        self.next_cmd += 1;
        self.counters.submitted += 1;
        self.clients[i].outstanding[io.backend] += 1;
        self.clients[i].gates[io.backend].on_submit(now);
        self.router.on_submit(BackendId(io.backend as u32));
        self.sanitizer
            .record(now.as_nanos(), "rack.issue", "submit", cmd.id.0);
        let h = self.phys_arena.alloc(Phys {
            logical: io.logical,
            backend: io.backend,
            attempt: 0,
            delivered: false,
            done_cpl: None,
            cmd,
        });
        self.phys.insert(cmd.id.0, h);
        if self.armed() {
            self.queue.push(
                now + self.retry.timeout_for(0),
                Ev::Timeout {
                    cmd: cmd.id.0,
                    attempt: 0,
                },
            );
        }
        self.send_command(i, cmd, now);
    }

    /// Transmit (or retransmit) a command capsule: client port → ToR →
    /// node, subject to injected capsule loss.
    fn send_command(&mut self, i: usize, cmd: NvmeCmd, now: SimTime) {
        if let Some(inj) = self.injector.as_mut() {
            if inj.drop_command(now) {
                self.counters.cmd_capsules_dropped += 1;
                self.trace.record(
                    now,
                    cmd.ssd,
                    Some(cmd.tenant),
                    EventKind::FaultInjected {
                        capsule: CapsuleKind::Command,
                    },
                );
                return;
            }
        }
        let mut at_tor = self
            .delays
            .command_arrival(&mut self.clients[i].tx_port, now, &cmd);
        if cmd.opcode.is_write() {
            at_tor = self
                .delays
                .write_payload_fetched(&mut self.clients[i].tx_port, at_tor, &cmd);
        }
        let node = self.cfg.node_of(cmd.ssd.index());
        let extra = self.link_extra(node, at_tor, cmd.ssd, cmd.tenant);
        let bytes = CMD_CAPSULE_BYTES
            + if cmd.opcode.is_write() {
                u64::from(cmd.len)
            } else {
                0
            };
        let arrive = self.tor.to_node(node, at_tor, bytes, extra);
        self.queue.push(
            arrive,
            Ev::DeliverCmd {
                backend: cmd.ssd.index(),
                cmd,
            },
        );
    }

    /// Transmit a completion capsule: node port → ToR → client. A dead or
    /// partitioned node emits nothing.
    fn send_completion(&mut self, backend: usize, cpl: NvmeCompletion, cmd: NvmeCmd, at: SimTime) {
        let node = self.cfg.node_of(backend);
        if self.node_down(node, at) {
            self.rack.tor_cpl_drops += 1;
            return;
        }
        if let Some(inj) = self.injector.as_mut() {
            if inj.drop_completion(at) {
                self.counters.cpl_capsules_dropped += 1;
                self.trace.record(
                    at,
                    cmd.ssd,
                    Some(cmd.tenant),
                    EventKind::FaultInjected {
                        capsule: CapsuleKind::Completion,
                    },
                );
                return;
            }
        }
        let at_tor = self
            .delays
            .completion_arrival(&mut self.node_ports[backend], at, &cmd);
        let extra = self.link_extra(node, at_tor, cmd.ssd, cmd.tenant);
        let bytes = RSP_CAPSULE_BYTES
            + if cmd.opcode.is_write() {
                0
            } else {
                u64::from(cmd.len)
            };
        let arrive = self.tor.from_node(node, at_tor, bytes, extra);
        self.queue.push(arrive, Ev::DeliverCpl { cpl });
    }

    /// Poll one pipeline, emit its completions, reschedule its wake. Dead
    /// nodes are frozen: their pipelines never pump again, and whatever was
    /// in flight inside them is recovered initiator-side by the ladder.
    fn pump(&mut self, backend: usize, now: SimTime) {
        if self.node_dead[self.cfg.node_of(backend)] {
            return;
        }
        let q = self.begin_quantum(backend, now);
        self.sanitizer
            .record(now.as_nanos(), "switch.pipeline", "pump", backend as u64);
        self.pipelines[backend].poll(now);
        self.drain_broker_journal(now);
        for out in self.pipelines[backend].take_outputs() {
            self.sanitizer
                .record(now.as_nanos(), "switch.pipeline", "complete", out.cmd.id.0);
            let cpl = NvmeCompletion {
                id: out.cmd.id,
                tenant: out.cmd.tenant,
                ssd: out.cmd.ssd,
                opcode: out.cmd.opcode,
                len: out.cmd.len,
                status: out.status,
                credit: out.credit,
                issued_at: out.cmd.issued_at,
                completed_at: out.at,
            };
            if let Some(&h) = self.phys.get(&out.cmd.id.0) {
                self.phys_arena
                    .get_mut(h)
                    .expect("tracked handle is live")
                    .done_cpl = Some(cpl);
            }
            self.send_completion(backend, cpl, out.cmd, out.at);
        }
        if let Some(t) = self.pipelines[backend].next_event_at() {
            let t = t.max(now + SimDuration::from_nanos(1));
            if t < self.wake_at[backend] {
                self.wake_at[backend] = t;
                self.queue.push(t, Ev::PipelineWake(backend));
            }
        }
        self.end_quantum(backend, q);
    }

    /// Open a poll quantum for `backend` on whichever of its node's cores
    /// the scheduler picks, repointing the pipeline there and forwarding
    /// any steal decision into the journal *before* the quantum's own
    /// records — so a steal-order flip localizes to component `cores`.
    fn begin_quantum(&mut self, backend: usize, now: SimTime) -> Quantum {
        let node = self.cfg.node_of(backend);
        let local = backend % self.cfg.ssds_per_node as usize;
        let q = self.scheds[node].begin(local, now);
        let core = self.scheds[node].core_rc(q.core());
        self.pipelines[backend].set_core(core);
        self.drain_cores_journal(node, now);
        q
    }

    /// Close a poll quantum, attributing the CPU time it consumed.
    fn end_quantum(&mut self, backend: usize, q: Quantum) {
        let node = self.cfg.node_of(backend);
        self.scheds[node].end(backend % self.cfg.ssds_per_node as usize, q);
    }

    /// Forward one node scheduler's queued decisions into the divergence
    /// journal. Keys are offset to rack-global core/pipeline indices so
    /// same-named decisions on different nodes stay distinguishable.
    fn drain_cores_journal(&mut self, node: usize, now: SimTime) {
        let base = node as u64 * u64::from(self.cfg.ssds_per_node);
        for (op, key) in self.scheds[node].drain_journal() {
            self.sanitizer
                .record(now.as_nanos(), "cores", op, base + key);
        }
    }

    /// Mark a node suspect (idempotent while suspicion lasts).
    fn suspect_node(&mut self, node: usize, now: SimTime) {
        let first = BackendId((node as u32) * self.cfg.ssds_per_node);
        if self.router.is_suspect(first) {
            return;
        }
        for s in 0..self.cfg.ssds_per_node {
            self.router
                .mark_suspect(BackendId(node as u32 * self.cfg.ssds_per_node + s));
        }
        self.rack.nodes_suspected += 1;
        self.trace.record(
            now,
            SsdId(first.0),
            None,
            EventKind::NodeSuspected { node: node as u32 },
        );
        self.sanitizer
            .record(now.as_nanos(), "rack.route", "suspect", node as u64);
    }

    /// A completion arrived from `node`: it answered, so suspicion clears.
    fn clear_suspect_node(&mut self, node: usize) {
        let first = BackendId((node as u32) * self.cfg.ssds_per_node);
        if !self.router.is_suspect(first) {
            return;
        }
        for s in 0..self.cfg.ssds_per_node {
            self.router
                .clear_suspect(BackendId(node as u32 * self.cfg.ssds_per_node + s));
        }
    }

    /// Remove a physical command that timed out terminally or is being
    /// abandoned for a reroute, settling its client/gate/router state.
    fn abandon_phys(&mut self, cmd: u64, attempt: u32, now: SimTime) {
        let h = self.phys.remove(&cmd).expect("abandoning a tracked cmd");
        let p = self
            .phys_arena
            .free(h)
            .expect("tracked handle is live at abandon");
        self.counters.timed_out += 1;
        self.trace.record(
            now,
            p.cmd.ssd,
            Some(p.cmd.tenant),
            EventKind::TimedOut {
                cmd,
                attempts: attempt + 1,
            },
        );
        let i = p.cmd.tenant.index();
        self.clients[i].outstanding[p.backend] -= 1;
        self.clients[i].gates[p.backend].on_timeout(now);
        self.router.on_completion(BackendId(p.backend as u32), None);
        self.logical
            .get_mut(&p.logical)
            .expect("live logical")
            .pending -= 1;
    }

    /// Route an in-error read to an untried live replica. Returns false
    /// when none exists (the caller then finalizes the typed error).
    fn reroute_read(&mut self, lg_id: u64, from: usize, old_cmd: u64, now: SimTime) -> bool {
        let (client, offset, blocks) = {
            let lg = self.logical.get(&lg_id).expect("live logical");
            (lg.client, lg.offset, lg.blocks)
        };
        let file = self.clients[client].file;
        let pair = self.bs.replicas_at(file, offset);
        let mut cands: Vec<BackendId> = Vec::new();
        for b in [pair[0], pair[1]] {
            let tried = &self.logical.get(&lg_id).expect("live logical").tried;
            if !cands.contains(&b) && !tried.contains(&b.0) && !self.router.is_dead(b) {
                cands.push(b);
            }
        }
        if cands.is_empty() {
            return false;
        }
        let Some(b) = self.route(&cands, now, "reroute") else {
            return false;
        };
        self.rack.reroutes += 1;
        self.trace.record(
            now,
            SsdId(b.0),
            Some(TenantId(client as u32)),
            EventKind::Rerouted {
                cmd: old_cmd,
                from_node: self.cfg.node_of(from) as u32,
                to_node: self.cfg.node_of(b.index()) as u32,
            },
        );
        {
            let lg = self.logical.get_mut(&lg_id).expect("live logical");
            lg.tried.push(b.0);
            lg.pending += 1;
        }
        let plan = self
            .bs
            .plan_read(file, offset, blocks, |pair| usize::from(pair[0] != b))[0];
        self.clients[client].pending[plan.backend.index()].push_back(PendIo {
            logical: lg_id,
            backend: plan.backend.index(),
            lba: plan.lba,
            blocks: plan.blocks,
            op: IoType::Read,
        });
        self.dispatch(client, now);
        true
    }

    /// Forward queued broker ledger decisions into the divergence journal,
    /// stamped with the engine's current tick (keeps journal ticks monotone
    /// while preserving decision order).
    fn drain_broker_journal(&mut self, now: SimTime) {
        let Some(b) = &self.broker else { return };
        for (op, key) in b.drain_journal() {
            self.sanitizer.record(now.as_nanos(), "broker", op, key);
        }
    }

    /// One broker settlement boundary. Backends on dead or partitioned
    /// nodes drop out of the active set, so every account and debt touching
    /// them is forgiven — clients can't repay through a link that swallows
    /// capsules. Clients never stop at rack scale, so each live backend's
    /// active tenant set is all clients.
    fn broker_epoch(&mut self, now: SimTime) {
        let Some(broker) = self.broker.clone() else {
            return;
        };
        let mut active: Vec<(SsdId, Vec<TenantId>)> = Vec::new();
        for b in 0..self.pipelines.len() {
            if self.node_down(self.cfg.node_of(b), now) || self.pipelines[b].device().is_failed() {
                continue;
            }
            let tenants = (0..self.clients.len() as u32).map(TenantId).collect();
            active.push((SsdId(b as u32), tenants));
        }
        broker.settle_epoch(now, &active);
        broker.end_epoch();
        self.drain_broker_journal(now);
        // Settlement restores lender balances; parked requests may now
        // clear the gate.
        for b in 0..self.pipelines.len() {
            self.pump(b, now);
        }
        let epoch = self.cfg.broker.as_ref().expect("broker cfg").epoch;
        self.queue.push(now + epoch, Ev::BrokerEpoch);
    }

    fn record_ack(&mut self, lg: &Logical, now: SimTime) {
        let c = &mut self.clients[lg.client];
        c.inflight -= 1;
        if now >= self.warm && now < self.end {
            c.ops_done += 1;
            let lat = now.since(lg.started);
            if lg.is_read {
                c.read_hist.record_duration(lat);
            } else {
                c.write_hist.record_duration(lat);
            }
        }
    }

    fn finish_read_ok(&mut self, lg_id: u64, now: SimTime) {
        let lg = self.logical.remove(&lg_id).expect("live logical");
        self.rack.acked_ok += 1;
        self.record_ack(&lg, now);
    }

    fn finish_failed(&mut self, lg_id: u64, _now: SimTime) {
        let lg = self.logical.remove(&lg_id).expect("live logical");
        self.rack.failed_typed += 1;
        self.clients[lg.client].inflight -= 1;
    }

    fn finish_write(&mut self, lg_id: u64, now: SimTime) {
        let lg = self.logical.remove(&lg_id).expect("live logical");
        if lg.ok_sides > 0 {
            if lg.err_sides > 0 || lg.degraded {
                self.rack.acked_degraded += 1;
            } else {
                self.rack.acked_ok += 1;
            }
            self.record_ack(&lg, now);
        } else {
            self.rack.failed_typed += 1;
            self.clients[lg.client].inflight -= 1;
        }
    }

    fn run(mut self) -> RackResult {
        while let Some((now, ev)) = self.queue.pop() {
            if now > self.end {
                break;
            }
            if self.sanitizer.is_enabled() {
                let (component, op, key) = match &ev {
                    Ev::ClientStart(i) => ("rack.client", "start", *i as u64),
                    Ev::DeliverCmd { cmd, .. } => ("rack.fabric", "deliver_cmd", cmd.id.0),
                    Ev::PipelineWake(b) => ("rack.wake", "wake", *b as u64),
                    Ev::DeliverCpl { cpl } => ("rack.fabric", "deliver_cpl", cpl.id.0),
                    Ev::Timeout { cmd, .. } => ("rack.fault", "timeout", *cmd),
                    Ev::NodeDeath(n) => ("rack.node", "death", *n as u64),
                    Ev::BrokerEpoch => ("engine.broker", "epoch", 0),
                    Ev::CoresRebalance => ("engine.cores", "rebalance", 0),
                };
                self.sanitizer.record(now.as_nanos(), component, op, key);
            }
            match ev {
                Ev::ClientStart(i) => {
                    self.issue_logical(i, now);
                    self.dispatch(i, now);
                }
                Ev::BrokerEpoch => self.broker_epoch(now),
                Ev::CoresRebalance => {
                    for node in 0..self.scheds.len() {
                        self.scheds[node].rebalance(now);
                        self.drain_cores_journal(node, now);
                    }
                    if let Some(e) = self.scheds.first().and_then(CoreScheduler::rebalance_epoch) {
                        self.queue.push(now + e, Ev::CoresRebalance);
                    }
                }
                Ev::NodeDeath(node) => {
                    if self.node_dead[node] {
                        continue;
                    }
                    self.node_dead[node] = true;
                    for s in 0..self.cfg.ssds_per_node {
                        self.router
                            .mark_dead(BackendId(node as u32 * self.cfg.ssds_per_node + s));
                    }
                    self.trace.record(
                        now,
                        SsdId(node as u32 * self.cfg.ssds_per_node),
                        None,
                        EventKind::NodeDead { node: node as u32 },
                    );
                }
                Ev::DeliverCmd { backend, cmd } => {
                    let node = self.cfg.node_of(backend);
                    if self.node_down(node, now) {
                        self.rack.tor_cmd_drops += 1;
                        continue;
                    }
                    match self
                        .phys
                        .get(&cmd.id.0)
                        .copied()
                        .map(|h| self.phys_arena.get_mut(h).expect("tracked handle is live"))
                    {
                        // Initiator already abandoned it (rerouted or
                        // terminal): late replay, ignore.
                        None => self.counters.duplicate_cmds_ignored += 1,
                        Some(p) if p.delivered => match p.done_cpl {
                            Some(cpl) => {
                                self.counters.completions_resent += 1;
                                self.send_completion(backend, cpl, cmd, now);
                            }
                            None => self.counters.duplicate_cmds_ignored += 1,
                        },
                        Some(p) => {
                            p.delivered = true;
                            // Submit-path CPU cost is charged inside
                            // `on_command`, so it runs under its own quantum
                            // (same-tick `begin`s reuse one core decision).
                            let q = self.begin_quantum(backend, now);
                            self.pipelines[backend].on_command(cmd, now);
                            self.end_quantum(backend, q);
                            self.pump(backend, now);
                        }
                    }
                }
                Ev::PipelineWake(backend) => {
                    if self.wake_at[backend] == now {
                        self.wake_at[backend] = SimTime::MAX;
                        self.pump(backend, now);
                    }
                }
                Ev::DeliverCpl { cpl } => {
                    let Some(h) = self.phys.remove(&cpl.id.0) else {
                        self.counters.stale_completions_ignored += 1;
                        continue;
                    };
                    let p = self
                        .phys_arena
                        .free(h)
                        .expect("tracked handle is live at completion");
                    let i = cpl.tenant.index();
                    let b = p.backend;
                    self.clients[i].outstanding[b] -= 1;
                    self.clients[i].gates[b].on_completion(&cpl, now);
                    self.router.on_completion(BackendId(b as u32), cpl.credit);
                    let ok = cpl.status.is_success();
                    if ok {
                        self.counters.completed_ok += 1;
                        self.clear_suspect_node(self.cfg.node_of(b));
                    } else {
                        self.counters.completed_err += 1;
                        // The error completion is the client's first sight
                        // of a flash failure: hard-exclude the backend and
                        // recover via its replica (§4.3).
                        self.router.mark_dead(BackendId(b as u32));
                    }
                    let lg_id = p.logical;
                    let (is_read, pending_left) = {
                        let lg = self.logical.get_mut(&lg_id).expect("live logical");
                        lg.pending -= 1;
                        if !lg.is_read {
                            if ok {
                                lg.ok_sides += 1;
                            } else {
                                lg.err_sides += 1;
                            }
                        }
                        (lg.is_read, lg.pending)
                    };
                    if is_read {
                        if ok {
                            self.finish_read_ok(lg_id, now);
                        } else if !self.reroute_read(lg_id, b, cpl.id.0, now) {
                            self.finish_failed(lg_id, now);
                        }
                    } else if pending_left == 0 {
                        self.finish_write(lg_id, now);
                    }
                    self.issue_logical(i, now);
                    self.dispatch(i, now);
                }
                Ev::Timeout { cmd, attempt } => {
                    let Some(p) = self
                        .phys
                        .get(&cmd)
                        .map(|&h| self.phys_arena.get(h).expect("tracked handle is live"))
                    else {
                        continue; // resolved before the timer fired
                    };
                    if p.attempt != attempt {
                        continue; // superseded by a retransmission's timer
                    }
                    let (i, b, lg_id, pcmd) = (p.cmd.tenant.index(), p.backend, p.logical, p.cmd);
                    let can_reroute = {
                        let lg = self.logical.get(&lg_id).expect("live logical");
                        lg.is_read && {
                            let pair = self.bs.replicas_at(self.clients[i].file, lg.offset);
                            [pair[0], pair[1]]
                                .iter()
                                .any(|r| !lg.tried.contains(&r.0) && !self.router.is_dead(*r))
                        }
                    };
                    match self.retry.escalate(attempt, can_reroute) {
                        EscalationAction::Retransmit => {
                            let next = attempt + 1;
                            let h = *self.phys.get(&cmd).expect("tracked");
                            self.phys_arena
                                .get_mut(h)
                                .expect("tracked handle is live")
                                .attempt = next;
                            self.counters.retries += 1;
                            let t = self.retry.timeout_for(next);
                            self.trace.record(
                                now,
                                pcmd.ssd,
                                Some(pcmd.tenant),
                                EventKind::RetryScheduled {
                                    cmd,
                                    attempt: next,
                                    timeout_ns: t.as_nanos(),
                                },
                            );
                            self.queue.push(now + t, Ev::Timeout { cmd, attempt: next });
                            self.send_command(i, pcmd, now);
                        }
                        EscalationAction::SuspectAndReroute => {
                            self.abandon_phys(cmd, attempt, now);
                            self.suspect_node(self.cfg.node_of(b), now);
                            if !self.reroute_read(lg_id, b, cmd, now) {
                                self.finish_failed(lg_id, now);
                            }
                            self.issue_logical(i, now);
                            self.dispatch(i, now);
                        }
                        EscalationAction::Terminal => {
                            self.abandon_phys(cmd, attempt, now);
                            let (is_read, pending_left) = {
                                let lg = self.logical.get_mut(&lg_id).expect("live logical");
                                if !lg.is_read {
                                    lg.err_sides += 1;
                                }
                                (lg.is_read, lg.pending)
                            };
                            if is_read {
                                self.finish_failed(lg_id, now);
                            } else if pending_left == 0 {
                                self.finish_write(lg_id, now);
                            }
                            self.issue_logical(i, now);
                            self.dispatch(i, now);
                        }
                    }
                }
            }
        }

        self.counters.in_flight_at_end = self.phys.len() as u64;
        self.rack.in_flight_at_end = self.logical.len() as u64;
        debug_assert!(
            self.counters.conservation_holds(),
            "physical conservation violated: {:?}",
            self.counters
        );
        debug_assert!(
            self.rack.logical_conservation_holds(),
            "logical conservation violated: {:?}",
            self.rack
        );

        // Broker conservation must hold at every exit, including chaos
        // runs where debts were forgiven on node death.
        if let Some(b) = &self.broker {
            b.audit();
        }

        let nodes = self.cfg.nodes as usize;
        RackResult {
            clients: self
                .clients
                .iter()
                .map(|c| RackClientResult {
                    ops: c.ops_done,
                    read_latency: c.read_hist.summary(),
                    write_latency: c.write_hist.summary(),
                })
                .collect(),
            ssd_stats: self.pipelines.iter().map(|p| p.device().stats()).collect(),
            physical: self.counters,
            rack: self.rack,
            tor_bytes_down: (0..nodes).map(|n| self.tor.bytes_down(n)).collect(),
            tor_bytes_up: (0..nodes).map(|n| self.tor.bytes_up(n)).collect(),
            window: self.cfg.duration - self.cfg.warmup,
            trace: self.tracer.take().map(|t| t.borrow_mut().finish()),
            access_journal: self.sanitizer.snapshot(),
            broker: self.broker.as_ref().map(|b| b.stats()),
            // Collected only when stealing was configured, so steal-off
            // digests are bit-identical to pre-scheduler builds.
            cores: match self.cfg.steal {
                Some(_) => self.scheds.iter().map(CoreScheduler::stats).collect(),
                None => Vec::new(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gimbal_sim::journal::first_divergence;
    use gimbal_sim::FaultWindow;
    use gimbal_testbed::{FaultConfig, Scheme};

    fn quick(scheme: Scheme) -> RackConfig {
        RackConfig {
            scheme,
            duration: SimDuration::from_millis(30),
            warmup: SimDuration::from_millis(5),
            ..RackConfig::default()
        }
    }

    #[test]
    fn fault_free_rack_serves_and_balances() {
        for scheme in Scheme::COMPARED {
            let res = RackTestbed::new(quick(scheme)).run();
            let ops: u64 = res.clients.iter().map(|c| c.ops).sum();
            assert!(ops > 50, "{scheme:?}: only {ops} ops");
            assert!(res.conservation_audit_holds(), "{scheme:?}");
            assert_eq!(res.rack.failed_typed, 0, "{scheme:?}");
            assert_eq!(res.physical.timed_out, 0, "{scheme:?}");
            // Replicated writes touch more than one node.
            let nodes_written = (0..3)
                .filter(|&n| (0..2).any(|s| res.ssd_stats[n * 2 + s].writes > 0))
                .count();
            assert!(nodes_written >= 2, "{scheme:?}: {nodes_written}");
        }
    }

    #[test]
    fn plan_targeting_absent_nodes_is_bit_identical_to_fault_free() {
        let base = RackConfig {
            sanitize: true,
            ..quick(Scheme::Gimbal)
        };
        let clean = RackTestbed::new(base.clone()).run();
        let absent = RackTestbed::new(RackConfig {
            faults: Some(FaultConfig {
                // Node 7 does not exist in a 3-node rack: the plan is inert
                // and must not even arm timers.
                plan: FaultPlan::default()
                    .with_node_death(7, SimTime::from_micros(1))
                    .with_node_gc_storm(
                        9,
                        FaultWindow::new(SimTime::ZERO, SimTime::from_millis(5)),
                    ),
                retry: RetryConfig::default(),
            }),
            ..base
        })
        .run();
        assert_eq!(clean.stats_digest(), absent.stats_digest());
        assert_eq!(clean.access_digest(), absent.access_digest());
        assert_eq!(absent.physical.timed_out, 0);
    }

    /// The 2-node borrowing chaos smoke: broker on, node 1 dies mid-run.
    /// The ledger must keep borrowing on the surviving node, forgive every
    /// account and debt stranded on the dead one, conserve tokens end to
    /// end, and stay bit-identical across a sanitized double run.
    #[test]
    fn broker_chaos_node_death_forgives_and_conserves() {
        let cfg = RackConfig {
            nodes: 2,
            ssds_per_node: 2,
            sanitize: true,
            duration: SimDuration::from_millis(40),
            broker: Some(gimbal_broker::BrokerConfig {
                // Entitled share (capacity / clients) is far below one
                // active client's demand, so borrowing from idle peers is
                // the only way to keep moving.
                capacity_bps: 8 * 1024 * 1024,
                burst_bytes: 256 * 1024,
                epoch: SimDuration::from_millis(5),
                ..gimbal_broker::BrokerConfig::default()
            }),
            faults: Some(FaultConfig {
                plan: FaultPlan::default().with_node_death(1, SimTime::from_millis(13)),
                retry: RetryConfig::default(),
            }),
            ..quick(Scheme::Gimbal)
        };
        let a = RackTestbed::new(cfg.clone()).run();
        let b = RackTestbed::new(cfg).run();
        assert_eq!(a.stats_digest(), b.stats_digest());
        assert_eq!(a.access_digest(), b.access_digest());
        let bs = a.broker.as_ref().expect("broker stats");
        assert!(bs.borrow_events > 0, "no borrowing happened: {bs:?}");
        assert!(bs.conservation_holds(), "ledger conservation: {bs:?}");
        assert_eq!(bs.floor_violations, 0);
        assert!(a.conservation_audit_holds());
        let ops: u64 = a.clients.iter().map(|c| c.ops).sum();
        assert!(ops > 0, "rack made no progress under the broker gate");
    }

    /// Broker-off rack runs must be bit-identical to the pre-broker build:
    /// same stats digest, same journal, with or without the `broker: None`
    /// field ever being read.
    #[test]
    fn broker_off_rack_is_bit_identical() {
        let cfg = RackConfig {
            sanitize: true,
            ..quick(Scheme::Gimbal)
        };
        let a = RackTestbed::new(cfg.clone()).run();
        let b = RackTestbed::new(cfg).run();
        assert_eq!(a.stats_digest(), b.stats_digest());
        assert_eq!(a.access_digest(), b.access_digest());
        assert!(a.broker.is_none());
    }

    #[test]
    fn sanitizer_localizes_injected_route_nondeterminism() {
        let cfg = RackConfig {
            sanitize: true,
            read_ratio: 1.0,
            ..quick(Scheme::FlashFq)
        };
        let clean = RackTestbed::new(cfg.clone()).run();
        let mut perturbed = RackTestbed::new(cfg);
        perturbed.perturb_first_route = true;
        let perturbed = perturbed.run();
        let ja = clean.access_journal.as_ref().expect("sanitizer on");
        let jb = perturbed.access_journal.as_ref().expect("sanitizer on");
        let r = first_divergence(ja, jb).expect("perturbation must diverge");
        // The first routing decision happens when client 0 starts, at tick
        // 0, and the divergence must name the routing component — not some
        // downstream victim.
        assert_eq!(r.tick, 0, "{r}");
        assert_eq!(r.component(), "rack.route", "{r}");
    }
}
