//! # gimbal-rack
//!
//! The rack-scale testbed: N JBOF nodes — each a full storage engine
//! (switch pipeline + SSDs) — behind a deterministic top-of-rack switch
//! model, shared by a set of closed-loop clients running over the
//! replicated blobstore.
//!
//! The single-node engines answer "does the scheme keep tenants fair on one
//! JBOF"; this crate answers "does the *rack* keep serving when a whole
//! node dies". The moving parts:
//!
//! * [`engine`] — the multi-node event loop. Every capsule crosses the ToR
//!   ([`gimbal_fabric::TorSwitch`]) twice: initiator port → ToR downlink →
//!   node, and node uplink → ToR → initiator. Node-scoped faults
//!   ([`gimbal_sim::NodeFaultSpec`]) act at those crossings: a dead or
//!   partitioned node silently swallows capsules in both directions, a
//!   degraded link adds latency per crossing, and a node-scoped GC storm
//!   stalls every SSD in the node at once.
//! * **GC/failure-aware routing** — reads are steered by
//!   [`gimbal_blobstore::RateLimiter::choose_replica_aware`]: alive beats
//!   dead (hard), reachable beats partitioned, trusted beats suspect,
//!   idle beats GC-busy (soft), then credit headroom. The GC signal comes
//!   straight from the device model ([`gimbal_ssd::FlashSsd::gc_busy`]),
//!   so organic die-level collections and injected storms both steer.
//! * **Escalation ladder** — per-command timeout → retransmit (existing
//!   fabric retry) → mark-node-suspect → reroute to a surviving replica →
//!   terminal typed error only when no live replica holds the span
//!   ([`gimbal_fabric::RetryConfig::escalate`]).
//! * [`results`] — physical (per-capsule) *and* logical (per-application-IO)
//!   conservation counters; the rack audit holds when both balance: no
//!   acknowledged IO lost, no IO double-served.
//!
//! Determinism is inherited wholesale: same seed, same config → bit-identical
//! stats, trace, and state-access journal digests, and the divergence
//! sanitizer journals every cross-node routing decision (`rack.route`) so a
//! double-run mismatch names the tick and decision that diverged.

pub mod config;
pub mod engine;
pub mod results;

pub use config::RackConfig;
pub use engine::RackTestbed;
pub use results::{RackClientResult, RackCounters, RackResult};
