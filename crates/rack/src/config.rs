//! Rack experiment configuration.

use gimbal_broker::BrokerConfig;
use gimbal_core::Params;
use gimbal_cores::StealConfig;
use gimbal_fabric::{FabricConfig, TorConfig};
use gimbal_sim::SimDuration;
use gimbal_ssd::SsdConfig;
use gimbal_telemetry::TraceConfig;
use gimbal_testbed::{FaultConfig, Precondition, Scheme};

/// Configuration of a rack-scale experiment.
#[derive(Clone, Debug)]
pub struct RackConfig {
    /// Scheme running on every JBOF node's switch pipelines.
    pub scheme: Scheme,
    /// Gimbal parameters (used when `scheme == Scheme::Gimbal`).
    pub gimbal_params: Params,
    /// SSD model, identical across the rack.
    pub ssd: SsdConfig,
    /// JBOF node count behind the ToR.
    pub nodes: u32,
    /// SSDs (switch pipelines) per node.
    pub ssds_per_node: u32,
    /// Closed-loop clients, each with its own blobstore file.
    pub clients: u32,
    /// Outstanding logical IOs per client.
    pub queue_depth: u32,
    /// Fraction of logical IOs that are reads.
    pub read_ratio: f64,
    /// Logical IO size in bytes (multiple of 4 KiB, at most one micro blob).
    pub io_bytes: u64,
    /// Per-client file size in logical blocks.
    pub file_blocks: u64,
    /// Replicate files (primary + shadow on a *different node* — the zoned
    /// placement that makes node death survivable).
    pub replicate: bool,
    /// GC-aware read routing: when on, the replica chooser sees each
    /// backend's live GC state and steers reads away from devices
    /// mid-collection; when off, only death/partition/suspicion steer (the
    /// GC-blind baseline the A/B experiment compares against).
    pub gc_aware_routing: bool,
    /// SSD preconditioning.
    pub precondition: Precondition,
    /// Initiator-side fabric parameters (ports, propagation, inline cutoff).
    pub fabric: FabricConfig,
    /// ToR switch model (per-node link latency and bandwidth).
    pub tor: TorConfig,
    /// Run length.
    pub duration: SimDuration,
    /// Measurement starts here.
    pub warmup: SimDuration,
    /// Seed.
    pub seed: u64,
    /// Fault plan + retry/escalation policy. `None` (or a plan whose every
    /// target is absent from this rack) runs fault-free with no timers, so
    /// such runs are bit-identical to a `faults: None` run.
    pub faults: Option<FaultConfig>,
    /// Structured telemetry (`None` = off).
    pub trace: Option<TraceConfig>,
    /// Record the state-access journal for the divergence sanitizer.
    pub sanitize: bool,
    /// Inter-tenant token broker on every backend pipeline. `None` (the
    /// default) constructs no ledger and schedules no epoch events, so such
    /// a run is bit-identical to one on a build without broker support.
    /// Placement is ignored at rack scale (the blobstore owns data
    /// placement); only the borrow ledger runs.
    pub broker: Option<BrokerConfig>,
    /// Inter-pipeline work stealing on every node's reactor cores
    /// (gimbal-cores). Each node gets its own scheduler over its
    /// `ssds_per_node` cores; stealing never crosses the ToR — a node's
    /// cores live on its SmartNIC. `None` (the default) keeps the fixed
    /// 1:1 pipeline-to-core binding: the scheduler journals and traces
    /// nothing, schedules no rebalance events, and such a run is
    /// bit-identical to one on a build without the core scheduler.
    pub steal: Option<StealConfig>,
}

impl Default for RackConfig {
    fn default() -> Self {
        RackConfig {
            scheme: Scheme::Gimbal,
            gimbal_params: Params::default(),
            ssd: SsdConfig {
                logical_capacity: 256 * 1024 * 1024,
                ..SsdConfig::default()
            },
            nodes: 3,
            ssds_per_node: 2,
            clients: 4,
            queue_depth: 4,
            read_ratio: 0.7,
            io_bytes: 4096,
            file_blocks: 4096,
            replicate: true,
            gc_aware_routing: true,
            precondition: Precondition::Clean,
            fabric: FabricConfig::default(),
            tor: TorConfig::default(),
            duration: SimDuration::from_millis(60),
            warmup: SimDuration::from_millis(10),
            seed: 42,
            faults: None,
            trace: None,
            sanitize: false,
            broker: None,
            steal: None,
        }
    }
}

impl RackConfig {
    /// Total backends (SSDs across all nodes).
    pub fn backends(&self) -> u32 {
        self.nodes * self.ssds_per_node
    }

    /// The node owning backend `b` (backends are numbered node-major).
    pub fn node_of(&self, b: usize) -> usize {
        b / self.ssds_per_node as usize
    }

    /// Logical IO size in blocks.
    pub fn io_blocks(&self) -> u64 {
        self.io_bytes / 4096
    }

    /// Panic on inconsistent configuration.
    pub fn validate(&self) {
        self.ssd.validate();
        self.tor.validate();
        assert!(self.nodes >= 1, "need at least one node");
        assert!(self.ssds_per_node >= 1, "need at least one SSD per node");
        assert!(self.clients >= 1 && self.queue_depth >= 1);
        assert!(
            (0.0..=1.0).contains(&self.read_ratio),
            "read_ratio out of [0,1]"
        );
        assert!(
            self.io_bytes >= 4096 && self.io_bytes.is_multiple_of(4096),
            "io_bytes must be a positive multiple of 4 KiB"
        );
        // One logical IO must map to exactly one physical IO per replica
        // (micro blobs are the replication unit), so it may not straddle a
        // micro-blob boundary.
        assert!(
            64u64.is_multiple_of(self.io_blocks()),
            "io_bytes must divide the 256 KiB micro blob"
        );
        assert!(
            self.file_blocks >= self.io_blocks(),
            "file smaller than one IO"
        );
        assert!(
            !self.replicate || self.backends() >= 2,
            "replication needs at least two backends"
        );
        assert!(self.warmup <= self.duration, "warmup past the end");
        if let Some(fc) = &self.faults {
            fc.validate();
        }
        if let Some(bc) = &self.broker {
            bc.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        RackConfig::default().validate();
    }

    #[test]
    fn backend_to_node_mapping_is_node_major() {
        let cfg = RackConfig {
            nodes: 3,
            ssds_per_node: 2,
            ..RackConfig::default()
        };
        assert_eq!(cfg.backends(), 6);
        assert_eq!(cfg.node_of(0), 0);
        assert_eq!(cfg.node_of(1), 0);
        assert_eq!(cfg.node_of(2), 1);
        assert_eq!(cfg.node_of(5), 2);
    }

    #[test]
    #[should_panic(expected = "micro blob")]
    fn io_straddling_a_micro_is_rejected() {
        RackConfig {
            io_bytes: 48 * 4096,
            ..RackConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "two backends")]
    fn replication_needs_two_backends() {
        RackConfig {
            nodes: 1,
            ssds_per_node: 1,
            ..RackConfig::default()
        }
        .validate();
    }
}
