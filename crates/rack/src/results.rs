//! Rack run output: per-client measurements plus the two-level
//! conservation audit.
//!
//! The single-node engines prove *physical* conservation: every submitted
//! NVMe command reaches exactly one terminal state. The rack adds a second
//! ledger one level up — *logical* application IOs, which may be served by
//! several physical commands (write replication) or by a chain of them
//! (timeout → reroute). The rack audit holds only when both books balance,
//! which is exactly "no acknowledged IO lost, no IO double-served": a lost
//! IO would leave `issued` above the terminal buckets, and a double-served
//! one would push a terminal bucket above `issued`.

use gimbal_broker::BrokerStats;
use gimbal_cores::CoresStats;
use gimbal_sim::stats::LatencySummary;
use gimbal_sim::{AccessJournal, Digest, SimDuration};
use gimbal_ssd::SsdStats;
use gimbal_telemetry::RecordedTrace;
use gimbal_testbed::FaultCounters;

/// Measurements for one closed-loop client over the measured window.
#[derive(Clone, Debug)]
pub struct RackClientResult {
    /// Logical IOs acknowledged in the measured window.
    pub ops: u64,
    /// End-to-end read latency (issue → acknowledgement, reroutes included).
    pub read_latency: LatencySummary,
    /// End-to-end write latency (all replicas resolved).
    pub write_latency: LatencySummary,
}

/// Rack-level counters: the logical IO ledger plus ToR/escalation activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RackCounters {
    /// Logical IOs issued by clients.
    pub issued: u64,
    /// Logical IOs acknowledged with full redundancy.
    pub acked_ok: u64,
    /// Logical IOs acknowledged on fewer replicas than configured (a write
    /// side died or timed out; the data is durable but under-replicated).
    pub acked_degraded: u64,
    /// Logical IOs that ended in a typed error — every live replica was
    /// exhausted. Never a panic, never silence.
    pub failed_typed: u64,
    /// Logical IOs still open when the clock expired.
    pub in_flight_at_end: u64,
    /// Node-suspected transitions (entering suspicion; clearing is free).
    pub nodes_suspected: u64,
    /// Reads moved to a surviving replica by the escalation ladder or by an
    /// error completion.
    pub reroutes: u64,
    /// Command capsules swallowed by a dead or partitioned node's ToR port.
    pub tor_cmd_drops: u64,
    /// Completion capsules swallowed by a dead or partitioned node.
    pub tor_cpl_drops: u64,
    /// Capsule crossings that paid a degraded-link latency penalty.
    pub link_degraded_crossings: u64,
}

impl RackCounters {
    /// The logical conservation law: every issued IO lands in exactly one
    /// terminal bucket.
    pub fn logical_conservation_holds(&self) -> bool {
        self.issued
            == self.acked_ok + self.acked_degraded + self.failed_typed + self.in_flight_at_end
    }

    /// Fold every counter into a digest, field order fixed.
    pub fn fold_into(&self, d: &mut Digest) {
        for v in [
            self.issued,
            self.acked_ok,
            self.acked_degraded,
            self.failed_typed,
            self.in_flight_at_end,
            self.nodes_suspected,
            self.reroutes,
            self.tor_cmd_drops,
            self.tor_cpl_drops,
            self.link_degraded_crossings,
        ] {
            d.update_u64(v);
        }
    }
}

/// The complete output of one rack run.
#[derive(Clone, Debug)]
pub struct RackResult {
    /// Per-client measurements, in client order.
    pub clients: Vec<RackClientResult>,
    /// Per-backend SSD statistics, node-major order.
    pub ssd_stats: Vec<SsdStats>,
    /// Physical per-command counters (same ledger as the single-node
    /// engines; reroutes appear as a timeout plus a fresh submission).
    pub physical: FaultCounters,
    /// Logical and rack-level counters.
    pub rack: RackCounters,
    /// Bytes each node's ToR downlink carried.
    pub tor_bytes_down: Vec<u64>,
    /// Bytes each node's ToR uplink carried.
    pub tor_bytes_up: Vec<u64>,
    /// Measured window length.
    pub window: SimDuration,
    /// Recorded telemetry (`None` unless tracing was configured).
    pub trace: Option<RecordedTrace>,
    /// State-access journal (`None` unless the sanitizer was on).
    pub access_journal: Option<AccessJournal>,
    /// Broker ledger statistics (`None` unless the broker was configured).
    pub broker: Option<BrokerStats>,
    /// Per-node core-scheduler counters (empty unless
    /// [`crate::RackConfig::steal`] enabled work stealing — the digest then
    /// folds them in, so steal-off runs keep their pre-scheduler digests).
    pub cores: Vec<CoresStats>,
}

impl RackResult {
    /// The rack conservation audit: both the physical and the logical
    /// ledgers balance.
    pub fn conservation_audit_holds(&self) -> bool {
        self.physical.conservation_holds() && self.rack.logical_conservation_holds()
    }

    /// Digest of the run's aggregate statistics; two same-seed runs must
    /// agree bit for bit.
    pub fn stats_digest(&self) -> u64 {
        let mut d = Digest::new();
        for c in &self.clients {
            d.update_u64(c.ops);
            for s in [&c.read_latency, &c.write_latency] {
                d.update_u64(s.count)
                    .update_f64(s.mean_ns)
                    .update_u64(s.p50_ns)
                    .update_u64(s.p99_ns)
                    .update_u64(s.p999_ns)
                    .update_u64(s.max_ns);
            }
        }
        for s in &self.ssd_stats {
            d.update_u64(s.reads)
                .update_u64(s.writes)
                .update_u64(s.read_bytes)
                .update_u64(s.write_bytes)
                .update_u64(s.ftl.host_slot_writes)
                .update_u64(s.ftl.gc_slot_writes)
                .update_u64(s.ftl.erases)
                .update_u64(s.ftl.collections);
        }
        let p = &self.physical;
        for v in [
            p.submitted,
            p.completed_ok,
            p.completed_err,
            p.timed_out,
            p.in_flight_at_end,
            p.cmd_capsules_dropped,
            p.cpl_capsules_dropped,
            p.retries,
            p.completions_resent,
            p.duplicate_cmds_ignored,
            p.stale_completions_ignored,
        ] {
            d.update_u64(v);
        }
        self.rack.fold_into(&mut d);
        for v in self.tor_bytes_down.iter().chain(&self.tor_bytes_up) {
            d.update_u64(*v);
        }
        // Broker-off digests must match builds without broker support, so
        // the ledger folds in only when it ran.
        if let Some(b) = &self.broker {
            b.fold_into(&mut d);
        }
        // Folded only when work stealing ran, so steal-off digests are
        // bit-identical to pre-scheduler builds.
        for c in &self.cores {
            c.fold_into(&mut d);
        }
        d.value()
    }

    /// Digest of the recorded telemetry stream, `None` when tracing was off.
    pub fn trace_digest(&self) -> Option<u64> {
        self.trace.as_ref().map(RecordedTrace::digest)
    }

    /// Digest of the state-access journal, `None` when the sanitizer was
    /// off.
    pub fn access_digest(&self) -> Option<u64> {
        self.access_journal.as_ref().map(|j| j.digest())
    }

    /// Count-weighted mean read latency across clients, µs.
    pub fn mean_read_latency_us(&self) -> f64 {
        let (mut num, mut den) = (0.0, 0u64);
        for c in &self.clients {
            num += c.read_latency.mean_ns * c.read_latency.count as f64;
            den += c.read_latency.count;
        }
        if den == 0 {
            0.0
        } else {
            num / den as f64 / 1e3
        }
    }

    /// Count-weighted mean of per-client p99 read latencies, µs.
    pub fn p99_read_latency_us(&self) -> f64 {
        let (mut num, mut den) = (0.0, 0u64);
        for c in &self.clients {
            num += c.read_latency.p99_ns as f64 * c.read_latency.count as f64;
            den += c.read_latency.count;
        }
        if den == 0 {
            0.0
        } else {
            num / den as f64 / 1e3
        }
    }

    /// Total acknowledged logical IOs per second over the measured window.
    pub fn iops(&self) -> f64 {
        if self.window == SimDuration::ZERO {
            return 0.0;
        }
        let ops: u64 = self.clients.iter().map(|c| c.ops).sum();
        ops as f64 / self.window.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_conservation_balances_terminal_buckets() {
        let mut c = RackCounters {
            issued: 100,
            acked_ok: 80,
            acked_degraded: 10,
            failed_typed: 5,
            in_flight_at_end: 5,
            ..RackCounters::default()
        };
        assert!(c.logical_conservation_holds());
        c.acked_ok = 81; // one IO acknowledged twice
        assert!(!c.logical_conservation_holds());
        c.acked_ok = 80;
        c.in_flight_at_end = 4; // one IO vanished
        assert!(!c.logical_conservation_holds());
    }

    #[test]
    fn counter_digest_is_order_sensitive() {
        let a = RackCounters {
            issued: 1,
            acked_ok: 2,
            ..RackCounters::default()
        };
        let b = RackCounters {
            issued: 2,
            acked_ok: 1,
            ..RackCounters::default()
        };
        let (mut da, mut db) = (Digest::new(), Digest::new());
        a.fold_into(&mut da);
        b.fold_into(&mut db);
        assert_ne!(da.value(), db.value());
    }
}
