//! The hierarchical blob allocator (HBA, §4.3).
//!
//! Two levels: a **global** allocator divides each backend's capacity into
//! mega blobs (4 GB in the paper; scaled down by configuration here) and
//! tracks them with a bitmap; a **local** agent holds free lists of micro
//! blobs (256 KB) carved from allocated megas. A micro allocation is served
//! locally and only triggers the global level when the local pool for the
//! chosen backend is empty. Backend choice is load-aware: the caller passes
//! a scoring function (typically the credit view) and the allocator prefers
//! the highest-scoring backend that can serve the request.

use std::collections::VecDeque;

/// Identifies one remote SSD (a namespace behind some JBOF node).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BackendId(pub u32);

impl BackendId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A contiguous allocation on one backend. The paper's blob address is
/// `<NVMe transport identifier, start LBA, LBA amount, LBA sector size>`;
/// the sector size is globally 4 KiB in this model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlobAddr {
    /// The backend holding the blob.
    pub backend: BackendId,
    /// Starting LBA.
    pub lba: u64,
    /// Length in logical blocks.
    pub blocks: u64,
}

/// Allocator geometry.
#[derive(Clone, Copy, Debug)]
pub struct HbaConfig {
    /// Mega blob size in logical blocks (paper: 4 GB; default here 16 MiB
    /// to match the scaled-down SSDs).
    pub mega_blocks: u64,
    /// Micro blob size in logical blocks (paper: 256 KB = 64 blocks).
    pub micro_blocks: u64,
}

impl Default for HbaConfig {
    fn default() -> Self {
        HbaConfig {
            mega_blocks: 4096,
            micro_blocks: 64,
        }
    }
}

struct Backend {
    capacity_blocks: u64,
    mega_used: Vec<bool>,
    local_free: VecDeque<BlobAddr>,
}

/// The two-level allocator over a pool of backends.
pub struct HierarchicalAllocator {
    cfg: HbaConfig,
    backends: Vec<Backend>,
}

impl HierarchicalAllocator {
    /// Create an allocator over backends of the given capacities (blocks).
    pub fn new(cfg: HbaConfig, capacities: &[u64]) -> Self {
        assert!(cfg.micro_blocks > 0 && cfg.mega_blocks.is_multiple_of(cfg.micro_blocks));
        assert!(!capacities.is_empty());
        let backends = capacities
            .iter()
            .map(|&cap| {
                let megas = (cap / cfg.mega_blocks) as usize;
                assert!(megas > 0, "backend smaller than one mega blob");
                Backend {
                    capacity_blocks: cap,
                    mega_used: vec![false; megas],
                    local_free: VecDeque::new(),
                }
            })
            .collect();
        HierarchicalAllocator { cfg, backends }
    }

    /// Number of backends.
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    /// Micro blob size in blocks.
    pub fn micro_blocks(&self) -> u64 {
        self.cfg.micro_blocks
    }

    /// Free capacity (blocks) still allocatable on a backend.
    pub fn free_blocks(&self, b: BackendId) -> u64 {
        let be = &self.backends[b.index()];
        let free_megas = be.mega_used.iter().filter(|&&u| !u).count() as u64;
        free_megas * self.cfg.mega_blocks + be.local_free.len() as u64 * self.cfg.micro_blocks
    }

    /// Whether a backend can serve one more micro allocation.
    pub fn can_alloc(&self, b: BackendId) -> bool {
        let be = &self.backends[b.index()];
        !be.local_free.is_empty() || be.mega_used.iter().any(|&u| !u)
    }

    fn alloc_mega(&mut self, b: BackendId) -> bool {
        let cfg = self.cfg;
        let be = &mut self.backends[b.index()];
        let Some(idx) = be.mega_used.iter().position(|&u| !u) else {
            return false;
        };
        be.mega_used[idx] = true;
        let base = idx as u64 * cfg.mega_blocks;
        let micros = cfg.mega_blocks / cfg.micro_blocks;
        for m in 0..micros {
            be.local_free.push_back(BlobAddr {
                backend: b,
                lba: base + m * cfg.micro_blocks,
                blocks: cfg.micro_blocks,
            });
        }
        true
    }

    /// Allocate one micro blob on a specific backend.
    pub fn alloc_micro_on(&mut self, b: BackendId) -> Option<BlobAddr> {
        if self.backends[b.index()].local_free.is_empty() && !self.alloc_mega(b) {
            return None;
        }
        self.backends[b.index()].local_free.pop_front()
    }

    /// Allocate one micro blob on the highest-scoring backend (load-aware
    /// policy: "selecting the one with the maximum credit (i.e., the least
    /// load)"). `exclude` skips a backend (used for the shadow replica).
    pub fn alloc_micro<F: Fn(BackendId) -> f64>(
        &mut self,
        score: F,
        exclude: Option<BackendId>,
    ) -> Option<BlobAddr> {
        self.alloc_micro_where(score, |b| Some(b) != exclude)
    }

    /// [`Self::alloc_micro`] with an arbitrary eligibility predicate — the
    /// rack-scale shadow placement excludes the primary's entire *node*
    /// (fault-domain anti-affinity), not just its backend, so node death
    /// never takes both replicas of a micro with it.
    pub fn alloc_micro_where<F, P>(&mut self, score: F, eligible: P) -> Option<BlobAddr>
    where
        F: Fn(BackendId) -> f64,
        P: Fn(BackendId) -> bool,
    {
        // Ties on the load score (common right after startup, when every
        // backend reports the same credit) break toward the backend with
        // the most free space, which spreads data evenly instead of piling
        // everything onto one SSD.
        let best = (0..self.backends.len())
            .map(|i| BackendId(i as u32))
            .filter(|&b| eligible(b) && self.can_alloc(b))
            .max_by(|&a, &b| {
                score(a)
                    .partial_cmp(&score(b))
                    .unwrap()
                    .then_with(|| self.free_blocks(a).cmp(&self.free_blocks(b)))
            })?;
        self.alloc_micro_on(best)
    }

    /// Return a micro blob to its backend's local pool.
    pub fn free_micro(&mut self, addr: BlobAddr) {
        assert_eq!(addr.blocks, self.cfg.micro_blocks);
        assert!(addr.lba + addr.blocks <= self.backends[addr.backend.index()].capacity_blocks);
        self.backends[addr.backend.index()]
            .local_free
            .push_back(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hba(n_backends: usize) -> HierarchicalAllocator {
        // 4 megas of 4096 blocks per backend.
        HierarchicalAllocator::new(HbaConfig::default(), &vec![16384; n_backends])
    }

    #[test]
    fn micro_allocations_come_from_megas() {
        let mut a = hba(1);
        let m1 = a.alloc_micro_on(BackendId(0)).unwrap();
        let m2 = a.alloc_micro_on(BackendId(0)).unwrap();
        assert_eq!(m1.blocks, 64);
        assert_ne!(m1.lba, m2.lba);
        // One mega (4096 blocks) is now committed at the global level.
        assert_eq!(a.free_blocks(BackendId(0)), 16384 - 4096 + 4096 - 128);
    }

    #[test]
    fn mega_exhaustion_triggers_global_then_fails() {
        let mut a = hba(1);
        let total_micros = 16384 / 64;
        for _ in 0..total_micros {
            assert!(a.alloc_micro_on(BackendId(0)).is_some());
        }
        assert!(
            a.alloc_micro_on(BackendId(0)).is_none(),
            "capacity exhausted"
        );
        assert!(!a.can_alloc(BackendId(0)));
    }

    #[test]
    fn free_recycles() {
        let mut a = hba(1);
        let m = a.alloc_micro_on(BackendId(0)).unwrap();
        let before = a.free_blocks(BackendId(0));
        a.free_micro(m);
        assert_eq!(a.free_blocks(BackendId(0)), before + 64);
        // Full drain then refill works.
        let total = 16384 / 64;
        let all: Vec<_> = (0..total)
            .map(|_| a.alloc_micro_on(BackendId(0)).unwrap())
            .collect();
        assert!(a.alloc_micro_on(BackendId(0)).is_none());
        for m in all {
            a.free_micro(m);
        }
        assert!(a.alloc_micro_on(BackendId(0)).is_some());
    }

    #[test]
    fn load_aware_choice_prefers_high_score() {
        let mut a = hba(3);
        let scores = [1.0, 9.0, 3.0];
        let m = a.alloc_micro(|b| scores[b.index()], None).unwrap();
        assert_eq!(m.backend, BackendId(1));
        // Excluding the best falls back to the next.
        let m2 = a
            .alloc_micro(|b| scores[b.index()], Some(BackendId(1)))
            .unwrap();
        assert_eq!(m2.backend, BackendId(2));
    }

    #[test]
    fn predicate_exclusion_respects_fault_domains() {
        // Backends 0–1 are "node 0", 2–3 are "node 1"; excluding node 0
        // (the primary's fault domain) must land on node 1 even when node 0
        // scores higher.
        let mut a = hba(4);
        let scores = [9.0, 8.0, 2.0, 1.0];
        let m = a
            .alloc_micro_where(|b| scores[b.index()], |b| b.index() / 2 != 0)
            .unwrap();
        assert_eq!(m.backend, BackendId(2));
        // An unsatisfiable predicate is a clean None, not a panic.
        assert!(a.alloc_micro_where(|_| 1.0, |_| false).is_none());
    }

    #[test]
    fn distinct_lbas_across_all_allocations() {
        let mut a = hba(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let m = a.alloc_micro(|_| 1.0, None).unwrap();
            assert!(seen.insert((m.backend, m.lba)), "duplicate {m:?}");
        }
    }
}
