//! Typed errors for tenant-facing blobstore operations.
//!
//! Failure handling (§4.3) is part of the datapath contract: a dead replica
//! or an impossible configuration must surface as a value the caller can
//! route — retry on the shadow, degrade to single-replica, or refuse the
//! request — rather than tearing down the whole tenant with a panic.

use std::error::Error;
use std::fmt;

/// Errors surfaced by blobstore planning and replica selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlobError {
    /// A replica chooser was handed an empty replica set.
    NoReplicas,
    /// Every candidate replica's backend is marked failed.
    AllReplicasDead,
    /// Replication was requested over fewer than two backends.
    NeedTwoBackends {
        /// Backends actually available.
        backends: usize,
    },
    /// Both copies of a micro blob sit on failed backends (or the only copy
    /// does, unreplicated) — no replica can serve the span.
    DataUnavailable,
}

impl fmt::Display for BlobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlobError::NoReplicas => write!(f, "empty replica set"),
            BlobError::AllReplicasDead => {
                write!(f, "all candidate replicas are on failed backends")
            }
            BlobError::NeedTwoBackends { backends } => {
                write!(f, "replication needs 2+ backends, have {backends}")
            }
            BlobError::DataUnavailable => {
                write!(f, "no live replica holds the requested span")
            }
        }
    }
}

impl Error for BlobError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert_eq!(BlobError::NoReplicas.to_string(), "empty replica set");
        assert!(BlobError::NeedTwoBackends { backends: 1 }
            .to_string()
            .contains("have 1"));
    }
}
