//! Files over replicated micro blobs, and IO planning.
//!
//! A file is a sequence of micro-blob *pairs*: a primary and a shadow copy
//! on distinct backends (§4.3's replication for flash-failure tolerance).
//! Writes fan out to both copies and are "completed only when the two
//! writes finish"; reads go to one replica, chosen by the caller (the
//! credit-based load balancer).

use crate::allocator::{BackendId, BlobAddr, HierarchicalAllocator};
use crate::error::BlobError;
use gimbal_fabric::IoType;
use gimbal_sim::collections::DetMap;

/// A blobstore file handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

/// One block IO the engine must execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoPlan {
    /// Target backend.
    pub backend: BackendId,
    /// Starting LBA on that backend.
    pub lba: u64,
    /// Length in blocks.
    pub blocks: u64,
    /// Opcode.
    pub op: IoType,
}

/// A write plan together with its degradation status (§4.3 failure
/// handling).
#[derive(Clone, Debug)]
pub struct WritePlan {
    /// The IOs to execute.
    pub plans: Vec<IoPlan>,
    /// True when at least one micro lost a replica to a failed backend: the
    /// data lands on a single live copy and redundancy is reduced until
    /// re-replication.
    pub degraded: bool,
}

struct File {
    /// `[primary, shadow]` micro pairs, in file order. With replication
    /// disabled the shadow equals the primary.
    micros: Vec<[BlobAddr; 2]>,
    size_blocks: u64,
}

/// The blobstore: file namespace + allocation + IO planning.
pub struct Blobstore {
    alloc: HierarchicalAllocator,
    files: DetMap<FileId, File>,
    next_file: u64,
    replicate: bool,
}

impl Blobstore {
    /// Create a store over `alloc`. `replicate` enables primary+shadow
    /// pairs, which requires ≥ 2 backends — fewer is a configuration error
    /// surfaced to the caller, not a panic.
    pub fn new(alloc: HierarchicalAllocator, replicate: bool) -> Result<Self, BlobError> {
        if replicate && alloc.backend_count() < 2 {
            return Err(BlobError::NeedTwoBackends {
                backends: alloc.backend_count(),
            });
        }
        Ok(Blobstore {
            alloc,
            files: DetMap::new(),
            next_file: 0,
            replicate,
        })
    }

    /// Whether replication is on.
    pub fn replicated(&self) -> bool {
        self.replicate
    }

    /// Access the allocator (for capacity inspection).
    pub fn allocator(&self) -> &HierarchicalAllocator {
        &self.alloc
    }

    /// Create a file of `blocks` logical blocks. `score` is the load-aware
    /// backend preference (credit view). Returns `None` when the pool is
    /// out of space.
    pub fn create_file<F: Fn(BackendId) -> f64>(
        &mut self,
        blocks: u64,
        score: F,
    ) -> Option<FileId> {
        self.create_file_zoned(blocks, score, |b| b.index() as u32)
    }

    /// [`Self::create_file`] with explicit fault domains: `zone_of` maps a
    /// backend to its rack node, and each micro's shadow is forced onto a
    /// *different node* than the primary (falling back to a different
    /// backend on the same node only when no other node has space). With
    /// the default identity zoning every backend is its own domain and this
    /// is exactly the single-node `create_file`.
    pub fn create_file_zoned<F, Z>(&mut self, blocks: u64, score: F, zone_of: Z) -> Option<FileId>
    where
        F: Fn(BackendId) -> f64,
        Z: Fn(BackendId) -> u32,
    {
        let micro = self.alloc.micro_blocks();
        let n = blocks.div_ceil(micro).max(1);
        let mut micros = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let primary = self.alloc.alloc_micro(&score, None)?;
            let shadow = if self.replicate {
                let pzone = zone_of(primary.backend);
                match self
                    .alloc
                    .alloc_micro_where(&score, |b| zone_of(b) != pzone)
                {
                    Some(s) => s,
                    // No foreign-node space left: degrade to same-node,
                    // different-backend placement rather than failing the
                    // create (redundancy against device, not node, loss).
                    None => self
                        .alloc
                        .alloc_micro_where(&score, |b| b != primary.backend)?,
                }
            } else {
                primary
            };
            micros.push([primary, shadow]);
        }
        let id = FileId(self.next_file);
        self.next_file += 1;
        self.files.insert(
            id,
            File {
                micros,
                size_blocks: blocks,
            },
        );
        Some(id)
    }

    /// Delete a file, returning its blobs to the pool.
    pub fn delete_file(&mut self, id: FileId) {
        let f = self.files.remove(&id).expect("unknown file");
        for [p, s] in f.micros {
            self.alloc.free_micro(p);
            if self.replicate {
                self.alloc.free_micro(s);
            }
        }
    }

    /// File size in blocks.
    pub fn file_blocks(&self, id: FileId) -> u64 {
        self.files.get(&id).expect("live file").size_blocks
    }

    /// Number of live files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// The replica backends holding the micro at `offset_blocks`.
    pub fn replicas_at(&self, id: FileId, offset_blocks: u64) -> [BackendId; 2] {
        let f = self.files.get(&id).expect("live file");
        let micro = self.alloc.micro_blocks();
        let pair = f.micros[(offset_blocks / micro) as usize];
        [pair[0].backend, pair[1].backend]
    }

    fn span_plans(
        &self,
        id: FileId,
        offset: u64,
        blocks: u64,
        op: IoType,
        mut pick: impl FnMut(&[BlobAddr; 2]) -> Vec<BlobAddr>,
    ) -> Vec<IoPlan> {
        let f = self.files.get(&id).expect("live file");
        assert!(offset + blocks <= f.size_blocks, "IO beyond file size");
        let micro = self.alloc.micro_blocks();
        let mut plans = Vec::new();
        let mut cur = offset;
        let end = offset + blocks;
        while cur < end {
            let idx = (cur / micro) as usize;
            let within = cur % micro;
            let len = (micro - within).min(end - cur);
            for addr in pick(&f.micros[idx]) {
                plans.push(IoPlan {
                    backend: addr.backend,
                    lba: addr.lba + within,
                    blocks: len,
                    op,
                });
            }
            cur += len;
        }
        plans
    }

    /// Plan a write: one IO per touched micro per replica. The caller must
    /// treat the whole set as one logical write (complete when all
    /// complete).
    pub fn plan_write(&self, id: FileId, offset: u64, blocks: u64) -> Vec<IoPlan> {
        let replicate = self.replicate;
        self.span_plans(id, offset, blocks, IoType::Write, move |pair| {
            if replicate {
                vec![pair[0], pair[1]]
            } else {
                vec![pair[0]]
            }
        })
    }

    /// Plan a read; `choose` picks the replica index (0 = primary) per
    /// micro, typically [`crate::RateLimiter::choose_replica`].
    pub fn plan_read<C: Fn(&[BackendId; 2]) -> usize>(
        &self,
        id: FileId,
        offset: u64,
        blocks: u64,
        choose: C,
    ) -> Vec<IoPlan> {
        self.span_plans(id, offset, blocks, IoType::Read, move |pair| {
            let backends = [pair[0].backend, pair[1].backend];
            let pick = choose(&backends).min(1);
            vec![pair[pick]]
        })
    }

    /// Re-plan a read on the *other* replica after `avoid` errored or was
    /// marked failed: every touched micro is served by its copy that is not
    /// on `avoid`. Errs with [`BlobError::DataUnavailable`] when some micro
    /// has no such copy (unreplicated, or both replicas on `avoid`).
    pub fn plan_read_shadow(
        &self,
        id: FileId,
        offset: u64,
        blocks: u64,
        avoid: BackendId,
    ) -> Result<Vec<IoPlan>, BlobError> {
        let mut unservable = false;
        let plans = self.span_plans(id, offset, blocks, IoType::Read, |pair| {
            match pair.iter().find(|a| a.backend != avoid) {
                Some(&alt) => vec![alt],
                None => {
                    unservable = true;
                    vec![]
                }
            }
        });
        if unservable {
            return Err(BlobError::DataUnavailable);
        }
        Ok(plans)
    }

    /// Plan a write that skips failed backends (`dead` reports the failure
    /// view, typically [`crate::RateLimiter::is_dead`]): replicas on dead
    /// backends are dropped and the loss is surfaced via
    /// [`WritePlan::degraded`]. Errs with [`BlobError::DataUnavailable`]
    /// when a micro has no live replica left at all.
    pub fn plan_write_degraded<D: Fn(BackendId) -> bool>(
        &self,
        id: FileId,
        offset: u64,
        blocks: u64,
        dead: D,
    ) -> Result<WritePlan, BlobError> {
        let replicate = self.replicate;
        let mut degraded = false;
        let mut unservable = false;
        let plans = self.span_plans(id, offset, blocks, IoType::Write, |pair| {
            let want: &[BlobAddr] = if replicate { &pair[..] } else { &pair[..1] };
            let live: Vec<BlobAddr> = want.iter().copied().filter(|a| !dead(a.backend)).collect();
            if live.is_empty() {
                unservable = true;
            } else if live.len() < want.len() {
                degraded = true;
            }
            live
        });
        if unservable {
            return Err(BlobError::DataUnavailable);
        }
        Ok(WritePlan { plans, degraded })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::HbaConfig;

    fn store(replicate: bool, backends: usize) -> Blobstore {
        let alloc = HierarchicalAllocator::new(HbaConfig::default(), &vec![16384; backends]);
        Blobstore::new(alloc, replicate).expect("valid store config")
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut s = store(true, 3);
        let f = s.create_file(128, |_| 1.0).unwrap();
        assert_eq!(s.file_blocks(f), 128);
        let writes = s.plan_write(f, 0, 128);
        // 2 micros × 2 replicas.
        assert_eq!(writes.len(), 4);
        assert!(writes.iter().all(|p| p.op == IoType::Write));
        let reads = s.plan_read(f, 0, 128, |_| 0);
        assert_eq!(reads.len(), 2);
        assert!(reads.iter().all(|p| p.op == IoType::Read));
    }

    #[test]
    fn replicas_land_on_distinct_backends() {
        let mut s = store(true, 3);
        let f = s.create_file(64 * 10, |_| 1.0).unwrap();
        for off in (0..640).step_by(64) {
            let [p, sh] = s.replicas_at(f, off);
            assert_ne!(p, sh, "replica collision at {off}");
        }
    }

    #[test]
    fn zoned_replicas_land_on_distinct_nodes() {
        // 4 backends, 2 per node: every shadow must sit on the other node.
        let mut s = store(true, 4);
        let zone = |b: BackendId| (b.index() / 2) as u32;
        let f = s.create_file_zoned(64 * 8, |_| 1.0, zone).unwrap();
        for off in (0..64 * 8).step_by(64) {
            let [p, sh] = s.replicas_at(f, off);
            assert_ne!(zone(p), zone(sh), "node collision at {off}");
        }
    }

    #[test]
    fn zoned_create_degrades_to_same_node_when_the_other_is_full() {
        // Node 1 (backend 1) too small to hold shadows: the create must
        // still succeed with both copies on node 0's two backends.
        let alloc = HierarchicalAllocator::new(HbaConfig::default(), &[16384, 16384, 4096]);
        let mut s = Blobstore::new(alloc, true).unwrap();
        let zone = |b: BackendId| u32::from(b.index() == 2);
        // 4096 blocks = 1 mega = 64 micros on node 1; ask for more shadows
        // than it can hold.
        let f = s.create_file_zoned(64 * 128, |_| 1.0, zone).unwrap();
        let mut same_node_pairs = 0;
        for off in (0..64 * 128).step_by(64) {
            let [p, sh] = s.replicas_at(f, off);
            assert_ne!(p, sh, "replicas always on distinct backends");
            if zone(p) == zone(sh) {
                same_node_pairs += 1;
            }
        }
        assert!(same_node_pairs > 0, "overflow fell back to same-node");
    }

    #[test]
    fn unreplicated_store_writes_once() {
        let mut s = store(false, 1);
        let f = s.create_file(64, |_| 1.0).unwrap();
        assert_eq!(s.plan_write(f, 0, 64).len(), 1);
    }

    #[test]
    fn sub_micro_reads_are_offset_correctly() {
        let mut s = store(false, 1);
        let f = s.create_file(64, |_| 1.0).unwrap();
        let plans = s.plan_read(f, 10, 4, |_| 0);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].blocks, 4);
        assert_eq!(plans[0].lba % 64, 10);
    }

    #[test]
    fn spans_split_at_micro_boundaries() {
        let mut s = store(false, 1);
        let f = s.create_file(192, |_| 1.0).unwrap();
        let plans = s.plan_read(f, 60, 10, |_| 0);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].blocks, 4);
        assert_eq!(plans[1].blocks, 6);
    }

    #[test]
    fn read_chooser_picks_replica() {
        let mut s = store(true, 2);
        let f = s.create_file(64, |_| 1.0).unwrap();
        let primary = s.plan_read(f, 0, 64, |_| 0)[0].backend;
        let shadow = s.plan_read(f, 0, 64, |_| 1)[0].backend;
        assert_ne!(primary, shadow);
    }

    #[test]
    fn delete_returns_space() {
        let mut s = store(true, 2);
        let before: u64 = (0..2)
            .map(|i| s.allocator().free_blocks(BackendId(i)))
            .sum();
        let f = s.create_file(64 * 4, |_| 1.0).unwrap();
        s.delete_file(f);
        let after: u64 = (0..2)
            .map(|i| s.allocator().free_blocks(BackendId(i)))
            .sum();
        assert_eq!(before, after);
    }

    #[test]
    fn allocation_exhaustion_returns_none() {
        let mut s = store(false, 1);
        // 16384 blocks total = 256 micros.
        assert!(s.create_file(16384, |_| 1.0).is_some());
        assert!(s.create_file(64, |_| 1.0).is_none());
    }

    #[test]
    #[should_panic(expected = "beyond file size")]
    fn read_past_eof_panics() {
        let mut s = store(false, 1);
        let f = s.create_file(64, |_| 1.0).unwrap();
        s.plan_read(f, 60, 10, |_| 0);
    }

    #[test]
    fn replication_on_one_backend_is_an_error_not_a_panic() {
        let alloc = HierarchicalAllocator::new(HbaConfig::default(), &[16384]);
        let err = Blobstore::new(alloc, true).err();
        assert_eq!(err, Some(crate::BlobError::NeedTwoBackends { backends: 1 }));
    }

    #[test]
    fn shadow_replan_avoids_the_failed_backend() {
        let mut s = store(true, 2);
        let f = s.create_file(128, |_| 1.0).unwrap();
        let primary = s.plan_read(f, 0, 128, |_| 0);
        let failed = primary[0].backend;
        let replanned = s.plan_read_shadow(f, 0, 128, failed).unwrap();
        assert_eq!(replanned.len(), primary.len());
        assert!(replanned.iter().all(|p| p.backend != failed));
        // Same spans, different copies.
        for (a, b) in primary.iter().zip(&replanned) {
            assert_eq!(a.blocks, b.blocks);
            assert_eq!(a.op, b.op);
        }
    }

    #[test]
    fn shadow_replan_without_replication_reports_data_unavailable() {
        let mut s = store(false, 1);
        let f = s.create_file(64, |_| 1.0).unwrap();
        let only = s.plan_read(f, 0, 64, |_| 0)[0].backend;
        assert_eq!(
            s.plan_read_shadow(f, 0, 64, only),
            Err(crate::BlobError::DataUnavailable)
        );
    }

    #[test]
    fn degraded_write_drops_dead_replicas_and_surfaces_it() {
        let mut s = store(true, 2);
        let f = s.create_file(128, |_| 1.0).unwrap();
        // Healthy: both replicas, not degraded.
        let healthy = s.plan_write_degraded(f, 0, 128, |_| false).unwrap();
        assert_eq!(healthy.plans.len(), 4);
        assert!(!healthy.degraded);
        // Backend 0 dies: single-replica writes, surfaced as degraded.
        let dead = BackendId(0);
        let w = s.plan_write_degraded(f, 0, 128, |b| b == dead).unwrap();
        assert_eq!(w.plans.len(), 2);
        assert!(w.degraded);
        assert!(w.plans.iter().all(|p| p.backend != dead));
        // Everything dead: unservable.
        assert_eq!(
            s.plan_write_degraded(f, 0, 128, |_| true).err(),
            Some(crate::BlobError::DataUnavailable)
        );
    }
}
