//! The blobstore filesystem layer of §4.3: a hierarchical blob allocator
//! over a pool of NVMe-oF backends, with replication, a credit-driven IO
//! rate limiter, and a read load balancer.
//!
//! The paper runs RocksDB "over a blobstore file system in an NVMe-oF aware
//! environment"; this crate is that layer, kept purely *logical*: it decides
//! where data lives and which replica serves a read, and emits [`IoPlan`]s
//! that the driving engine executes against the simulated fabric/JBOF.
//!
//! * [`allocator`] — the hierarchical blob allocator (HBA): a global
//!   allocator hands out *mega blobs* (large contiguous chunks, bitmap
//!   tracked); a local agent splits them into *micro blobs* (256 KiB) and
//!   serves file allocations from its free pool, spilling back to the
//!   global level when empty. Mega/micro selection is load-aware: pick the
//!   backend with the most credit (§4.3).
//! * [`store`] — files as sequences of replicated micro blobs (primary +
//!   shadow on distinct backends); write plans fan out to both replicas,
//!   read plans pick a replica via a caller-supplied chooser.
//! * [`limiter`] — the credit-based rate limiter and per-backend load view
//!   used both for submission gating and replica choice.
//! * [`error`] — typed errors for tenant-facing operations: bad replica
//!   sets, impossible configurations, and spans with no live copy left.

pub mod allocator;
pub mod error;
pub mod limiter;
pub mod store;

pub use allocator::{BackendId, BlobAddr, HbaConfig, HierarchicalAllocator};
pub use error::BlobError;
pub use limiter::{RateLimiter, ReplicaHealth};
pub use store::{Blobstore, FileId, IoPlan, WritePlan};
