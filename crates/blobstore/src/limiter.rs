//! The credit-based IO rate limiter and per-backend load view (§4.3).
//!
//! With Gimbal at the target, every completion carries a credit grant; the
//! limiter tracks the latest grant and the outstanding count per backend.
//! "A read/write request is issued when there are enough credits;
//! otherwise, it is queued locally." The same credit numbers double as the
//! load signal for the read load balancer and the allocator's load-aware
//! backend choice ("we simply rely on the number of allocated credits to
//! decide the loading status on the target").

use crate::allocator::BackendId;
use crate::error::BlobError;
use gimbal_fabric::HealthScore;

#[derive(Clone, Copy, Debug)]
struct BackendState {
    credit: u32,
    outstanding: u32,
    dead: bool,
    /// Soft failure signal: the rack escalation ladder marked the backend's
    /// node suspect after repeated silent timeouts. Unlike `dead`, suspicion
    /// is reversible (a successful completion clears it) and only
    /// deprioritizes — a suspect backend still wins when it is the only
    /// live replica.
    suspect: bool,
}

/// Environment-sourced health of one backend, consulted by the
/// GC/partition-aware replica chooser. Both signals are *soft*: they reorder
/// the choice but never exclude a backend outright (only `dead` does that),
/// so a fully-degraded replica set still routes somewhere instead of
/// erroring while data remains reachable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicaHealth {
    /// The backend's node is currently partitioned from the ToR (capsules
    /// to it are being dropped); sending there wastes a full timeout.
    pub partitioned: bool,
    /// The backend's SSD reports an active GC window (injected storm or
    /// organic die-level GC occupancy); reads will queue behind copybacks.
    pub gc_busy: bool,
}

/// Per-backend credit tracking and submission gating.
#[derive(Clone, Debug)]
pub struct RateLimiter {
    states: Vec<BackendState>,
    /// When disabled (the "vanilla" client of Fig 13), every submission is
    /// allowed, but credits are still tracked for reporting.
    enabled: bool,
}

impl RateLimiter {
    /// Create a limiter over `backends` backends with an initial grant.
    pub fn new(backends: usize, initial_credit: u32, enabled: bool) -> Self {
        RateLimiter {
            states: vec![
                BackendState {
                    credit: initial_credit.max(1),
                    outstanding: 0,
                    dead: false,
                    suspect: false,
                };
                backends
            ],
            enabled,
        }
    }

    /// Whether flow control is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whether one more IO may be issued to `b`.
    pub fn can_submit(&self, b: BackendId) -> bool {
        let s = &self.states[b.index()];
        !self.enabled || s.outstanding < s.credit
    }

    /// Record a submission to `b`.
    pub fn on_submit(&mut self, b: BackendId) {
        self.states[b.index()].outstanding += 1;
    }

    /// Record a completion from `b`, with its piggybacked credit if any.
    pub fn on_completion(&mut self, b: BackendId, credit: Option<u32>) {
        let s = &mut self.states[b.index()];
        debug_assert!(s.outstanding > 0);
        s.outstanding = s.outstanding.saturating_sub(1);
        if let Some(c) = credit {
            s.credit = c.max(1);
        }
    }

    /// The latest credit grant for `b` (the load-balancing score; higher =
    /// more headroom).
    pub fn credit(&self, b: BackendId) -> u32 {
        self.states[b.index()].credit
    }

    /// Remaining submission headroom for `b` (credit − outstanding). A
    /// backend observed failing reports zero headroom, steering the load
    /// balancer and the allocator away from it.
    pub fn headroom(&self, b: BackendId) -> u32 {
        let s = &self.states[b.index()];
        if s.dead {
            0
        } else {
            s.credit.saturating_sub(s.outstanding)
        }
    }

    /// Mark a backend as failed (observed via `DeviceError` completions).
    /// Submissions to it remain allowed — they fail fast — but the replica
    /// chooser and allocation scores avoid it.
    pub fn mark_dead(&mut self, b: BackendId) {
        self.states[b.index()].dead = true;
    }

    /// Whether the backend has been marked failed.
    pub fn is_dead(&self, b: BackendId) -> bool {
        self.states[b.index()].dead
    }

    /// Mark a backend suspect (its node stopped answering; the escalation
    /// ladder is rerouting around it until it proves itself again).
    pub fn mark_suspect(&mut self, b: BackendId) {
        self.states[b.index()].suspect = true;
    }

    /// Clear suspicion (a completion arrived from the backend's node).
    pub fn clear_suspect(&mut self, b: BackendId) {
        self.states[b.index()].suspect = false;
    }

    /// Whether the backend is currently suspect.
    pub fn is_suspect(&self, b: BackendId) -> bool {
        self.states[b.index()].suspect
    }

    /// Outstanding IOs to `b`.
    pub fn outstanding(&self, b: BackendId) -> u32 {
        self.states[b.index()].outstanding
    }

    /// Pick the replica with the most headroom (the §4.3 read load
    /// balancer). Backends marked failed are excluded outright — a dead
    /// primary must not win a zero-headroom tie. Ties among live replicas
    /// go to the first. Equivalent to [`Self::choose_replica_aware`] with
    /// every backend reporting healthy.
    pub fn choose_replica(&self, replicas: &[BackendId]) -> Result<usize, BlobError> {
        self.choose_replica_aware(replicas, |_| ReplicaHealth::default())
    }

    /// The extended chooser: "alive, not partitioned, and not GC-busy"
    /// before headroom. The preference order is the shared lexicographic
    /// [`HealthScore`] — reachable, then not-suspect, then not-GC-busy (the
    /// RackBlox co-design: route reads away from devices mid-collection),
    /// then headroom — with remaining ties going to the first replica in
    /// order (the primary), so the choice is deterministic. Dead backends
    /// stay a hard exclusion; every soft signal only reorders live
    /// candidates, so a rack where *every* replica is GC-busy still serves
    /// reads.
    pub fn choose_replica_aware(
        &self,
        replicas: &[BackendId],
        health: impl Fn(BackendId) -> ReplicaHealth,
    ) -> Result<usize, BlobError> {
        if replicas.is_empty() {
            return Err(BlobError::NoReplicas);
        }
        let score = |b: BackendId| {
            let h = health(b);
            HealthScore::new(
                !h.partitioned,
                !self.is_suspect(b),
                !h.gc_busy,
                u64::from(self.headroom(b)),
            )
        };
        let mut best: Option<usize> = None;
        for (i, &b) in replicas.iter().enumerate() {
            if self.is_dead(b) {
                continue;
            }
            match best {
                Some(j) if score(replicas[j]) >= score(b) => {}
                _ => best = Some(i),
            }
        }
        best.ok_or(BlobError::AllReplicasDead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_by_credit() {
        let mut l = RateLimiter::new(2, 2, true);
        let b = BackendId(0);
        assert!(l.can_submit(b));
        l.on_submit(b);
        l.on_submit(b);
        assert!(!l.can_submit(b));
        l.on_completion(b, None);
        assert!(l.can_submit(b));
    }

    #[test]
    fn credit_updates_from_completions() {
        let mut l = RateLimiter::new(1, 2, true);
        let b = BackendId(0);
        l.on_submit(b);
        l.on_completion(b, Some(16));
        assert_eq!(l.credit(b), 16);
        assert_eq!(l.headroom(b), 16);
    }

    #[test]
    fn disabled_limiter_lets_everything_through() {
        let mut l = RateLimiter::new(1, 1, false);
        let b = BackendId(0);
        for _ in 0..100 {
            assert!(l.can_submit(b));
            l.on_submit(b);
        }
        assert_eq!(l.outstanding(b), 100);
    }

    #[test]
    fn replica_choice_prefers_headroom() {
        let mut l = RateLimiter::new(2, 8, true);
        // Backend 0 is busy; backend 1 idle.
        for _ in 0..6 {
            l.on_submit(BackendId(0));
        }
        assert_eq!(l.choose_replica(&[BackendId(0), BackendId(1)]), Ok(1));
        // Equal headroom → primary (index 0).
        let l2 = RateLimiter::new(2, 8, true);
        assert_eq!(l2.choose_replica(&[BackendId(0), BackendId(1)]), Ok(0));
    }

    #[test]
    fn replica_choice_excludes_dead_backends() {
        let mut l = RateLimiter::new(2, 8, true);
        // Saturate backend 1 so both report zero headroom; a dead primary
        // must still lose the tie to the live shadow.
        for _ in 0..8 {
            l.on_submit(BackendId(1));
        }
        l.mark_dead(BackendId(0));
        assert_eq!(l.choose_replica(&[BackendId(0), BackendId(1)]), Ok(1));
        l.mark_dead(BackendId(1));
        assert_eq!(
            l.choose_replica(&[BackendId(0), BackendId(1)]),
            Err(BlobError::AllReplicasDead)
        );
    }

    #[test]
    fn empty_replica_set_is_an_error_not_a_panic() {
        let l = RateLimiter::new(1, 8, true);
        assert_eq!(l.choose_replica(&[]), Err(BlobError::NoReplicas));
    }

    #[test]
    fn zero_headroom_tie_deprioritizes_gc_busy_backends() {
        // Both replicas report zero headroom (saturated); the old chooser
        // would send the read to the GC-busy primary on the first-wins tie.
        let mut l = RateLimiter::new(2, 4, true);
        for _ in 0..4 {
            l.on_submit(BackendId(0));
            l.on_submit(BackendId(1));
        }
        assert_eq!(l.headroom(BackendId(0)), 0);
        assert_eq!(l.headroom(BackendId(1)), 0);
        let gc0 = |b: BackendId| ReplicaHealth {
            gc_busy: b == BackendId(0),
            ..ReplicaHealth::default()
        };
        assert_eq!(
            l.choose_replica_aware(&[BackendId(0), BackendId(1)], gc0),
            Ok(1),
            "GC-busy primary loses the zero-headroom tie"
        );
    }

    #[test]
    fn replica_choice_tie_table() {
        // The full lexicographic preference table over two replicas with
        // equal headroom: partition > suspicion > GC-business > primary-
        // first. Each row is (health0, health1, suspect0, suspect1, winner).
        let h = |partitioned, gc_busy| ReplicaHealth {
            partitioned,
            gc_busy,
        };
        let healthy = h(false, false);
        let table: &[(ReplicaHealth, ReplicaHealth, bool, bool, usize)] = &[
            // All clear → primary wins the tie.
            (healthy, healthy, false, false, 0),
            // One soft signal flips the choice...
            (h(true, false), healthy, false, false, 1),
            (healthy, h(true, false), false, false, 0),
            (h(false, true), healthy, false, false, 1),
            (healthy, h(false, true), false, false, 0),
            (healthy, healthy, true, false, 1),
            (healthy, healthy, false, true, 0),
            // ...symmetric signals restore the primary-first tie...
            (h(false, true), h(false, true), false, false, 0),
            (h(true, true), h(true, true), true, true, 0),
            // ...and partition outranks suspicion outranks GC-business:
            // a reachable GC-busy replica beats a partitioned clean one,
            (h(true, false), h(false, true), false, false, 1),
            // a non-suspect GC-busy replica beats a suspect clean one,
            (h(false, true), healthy, false, true, 0),
            (healthy, h(false, true), true, false, 1),
            // and a suspect reachable replica beats a partitioned one.
            (h(true, false), healthy, false, true, 1),
        ];
        for (i, &(h0, h1, s0, s1, want)) in table.iter().enumerate() {
            let mut l = RateLimiter::new(2, 4, true);
            if s0 {
                l.mark_suspect(BackendId(0));
            }
            if s1 {
                l.mark_suspect(BackendId(1));
            }
            let health = move |b: BackendId| if b == BackendId(0) { h0 } else { h1 };
            assert_eq!(
                l.choose_replica_aware(&[BackendId(0), BackendId(1)], health),
                Ok(want),
                "tie-table row {i}"
            );
        }
    }

    #[test]
    fn headroom_outranks_nothing_but_breaks_equal_health() {
        // GC-business outranks headroom: an idle GC-busy backend loses to a
        // busy-but-collecting-free one.
        let mut l = RateLimiter::new(2, 8, true);
        for _ in 0..6 {
            l.on_submit(BackendId(1));
        }
        let gc0 = |b: BackendId| ReplicaHealth {
            gc_busy: b == BackendId(0),
            ..ReplicaHealth::default()
        };
        assert_eq!(
            l.choose_replica_aware(&[BackendId(0), BackendId(1)], gc0),
            Ok(1),
            "headroom 8 + GC loses to headroom 2 clean"
        );
        // With equal health, headroom still decides.
        assert_eq!(
            l.choose_replica_aware(&[BackendId(0), BackendId(1)], |_| ReplicaHealth::default()),
            Ok(0)
        );
    }

    #[test]
    fn suspect_backend_still_wins_when_it_is_the_only_live_replica() {
        let mut l = RateLimiter::new(2, 8, true);
        l.mark_dead(BackendId(1));
        l.mark_suspect(BackendId(0));
        assert_eq!(
            l.choose_replica_aware(&[BackendId(0), BackendId(1)], |_| ReplicaHealth {
                partitioned: true,
                gc_busy: true,
            }),
            Ok(0),
            "soft signals never exclude the last live replica"
        );
        l.clear_suspect(BackendId(0));
        assert!(!l.is_suspect(BackendId(0)));
    }

    #[test]
    fn plain_chooser_is_the_aware_chooser_with_healthy_backends() {
        let mut l = RateLimiter::new(2, 8, true);
        for _ in 0..3 {
            l.on_submit(BackendId(0));
        }
        let replicas = [BackendId(0), BackendId(1)];
        assert_eq!(
            l.choose_replica(&replicas),
            l.choose_replica_aware(&replicas, |_| ReplicaHealth::default())
        );
    }
}
