//! The credit-based IO rate limiter and per-backend load view (§4.3).
//!
//! With Gimbal at the target, every completion carries a credit grant; the
//! limiter tracks the latest grant and the outstanding count per backend.
//! "A read/write request is issued when there are enough credits;
//! otherwise, it is queued locally." The same credit numbers double as the
//! load signal for the read load balancer and the allocator's load-aware
//! backend choice ("we simply rely on the number of allocated credits to
//! decide the loading status on the target").

use crate::allocator::BackendId;
use crate::error::BlobError;

#[derive(Clone, Copy, Debug)]
struct BackendState {
    credit: u32,
    outstanding: u32,
    dead: bool,
}

/// Per-backend credit tracking and submission gating.
#[derive(Clone, Debug)]
pub struct RateLimiter {
    states: Vec<BackendState>,
    /// When disabled (the "vanilla" client of Fig 13), every submission is
    /// allowed, but credits are still tracked for reporting.
    enabled: bool,
}

impl RateLimiter {
    /// Create a limiter over `backends` backends with an initial grant.
    pub fn new(backends: usize, initial_credit: u32, enabled: bool) -> Self {
        RateLimiter {
            states: vec![
                BackendState {
                    credit: initial_credit.max(1),
                    outstanding: 0,
                    dead: false,
                };
                backends
            ],
            enabled,
        }
    }

    /// Whether flow control is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whether one more IO may be issued to `b`.
    pub fn can_submit(&self, b: BackendId) -> bool {
        let s = &self.states[b.index()];
        !self.enabled || s.outstanding < s.credit
    }

    /// Record a submission to `b`.
    pub fn on_submit(&mut self, b: BackendId) {
        self.states[b.index()].outstanding += 1;
    }

    /// Record a completion from `b`, with its piggybacked credit if any.
    pub fn on_completion(&mut self, b: BackendId, credit: Option<u32>) {
        let s = &mut self.states[b.index()];
        debug_assert!(s.outstanding > 0);
        s.outstanding = s.outstanding.saturating_sub(1);
        if let Some(c) = credit {
            s.credit = c.max(1);
        }
    }

    /// The latest credit grant for `b` (the load-balancing score; higher =
    /// more headroom).
    pub fn credit(&self, b: BackendId) -> u32 {
        self.states[b.index()].credit
    }

    /// Remaining submission headroom for `b` (credit − outstanding). A
    /// backend observed failing reports zero headroom, steering the load
    /// balancer and the allocator away from it.
    pub fn headroom(&self, b: BackendId) -> u32 {
        let s = &self.states[b.index()];
        if s.dead {
            0
        } else {
            s.credit.saturating_sub(s.outstanding)
        }
    }

    /// Mark a backend as failed (observed via `DeviceError` completions).
    /// Submissions to it remain allowed — they fail fast — but the replica
    /// chooser and allocation scores avoid it.
    pub fn mark_dead(&mut self, b: BackendId) {
        self.states[b.index()].dead = true;
    }

    /// Whether the backend has been marked failed.
    pub fn is_dead(&self, b: BackendId) -> bool {
        self.states[b.index()].dead
    }

    /// Outstanding IOs to `b`.
    pub fn outstanding(&self, b: BackendId) -> u32 {
        self.states[b.index()].outstanding
    }

    /// Pick the replica with the most headroom (the §4.3 read load
    /// balancer). Backends marked failed are excluded outright — a dead
    /// primary must not win a zero-headroom tie. Ties among live replicas
    /// go to the first.
    pub fn choose_replica(&self, replicas: &[BackendId]) -> Result<usize, BlobError> {
        if replicas.is_empty() {
            return Err(BlobError::NoReplicas);
        }
        let mut best: Option<usize> = None;
        for (i, &b) in replicas.iter().enumerate() {
            if self.is_dead(b) {
                continue;
            }
            match best {
                Some(j) if self.headroom(replicas[j]) >= self.headroom(b) => {}
                _ => best = Some(i),
            }
        }
        best.ok_or(BlobError::AllReplicasDead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_by_credit() {
        let mut l = RateLimiter::new(2, 2, true);
        let b = BackendId(0);
        assert!(l.can_submit(b));
        l.on_submit(b);
        l.on_submit(b);
        assert!(!l.can_submit(b));
        l.on_completion(b, None);
        assert!(l.can_submit(b));
    }

    #[test]
    fn credit_updates_from_completions() {
        let mut l = RateLimiter::new(1, 2, true);
        let b = BackendId(0);
        l.on_submit(b);
        l.on_completion(b, Some(16));
        assert_eq!(l.credit(b), 16);
        assert_eq!(l.headroom(b), 16);
    }

    #[test]
    fn disabled_limiter_lets_everything_through() {
        let mut l = RateLimiter::new(1, 1, false);
        let b = BackendId(0);
        for _ in 0..100 {
            assert!(l.can_submit(b));
            l.on_submit(b);
        }
        assert_eq!(l.outstanding(b), 100);
    }

    #[test]
    fn replica_choice_prefers_headroom() {
        let mut l = RateLimiter::new(2, 8, true);
        // Backend 0 is busy; backend 1 idle.
        for _ in 0..6 {
            l.on_submit(BackendId(0));
        }
        assert_eq!(l.choose_replica(&[BackendId(0), BackendId(1)]), Ok(1));
        // Equal headroom → primary (index 0).
        let l2 = RateLimiter::new(2, 8, true);
        assert_eq!(l2.choose_replica(&[BackendId(0), BackendId(1)]), Ok(0));
    }

    #[test]
    fn replica_choice_excludes_dead_backends() {
        let mut l = RateLimiter::new(2, 8, true);
        // Saturate backend 1 so both report zero headroom; a dead primary
        // must still lose the tie to the live shadow.
        for _ in 0..8 {
            l.on_submit(BackendId(1));
        }
        l.mark_dead(BackendId(0));
        assert_eq!(l.choose_replica(&[BackendId(0), BackendId(1)]), Ok(1));
        l.mark_dead(BackendId(1));
        assert_eq!(
            l.choose_replica(&[BackendId(0), BackendId(1)]),
            Err(BlobError::AllReplicasDead)
        );
    }

    #[test]
    fn empty_replica_set_is_an_error_not_a_panic() {
        let l = RateLimiter::new(1, 8, true);
        assert_eq!(l.choose_replica(&[]), Err(BlobError::NoReplicas));
    }
}
