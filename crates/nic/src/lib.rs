//! Host compute model: CPU cores and per-IO processing costs.
//!
//! The Stingray's ARM A72 cores (and the Xeon cores of a server JBOF) are
//! modeled as serial processors with busy-until horizons. Every NVMe-oF
//! request charges CPU *cycles* on the core that runs its pipeline — once at
//! submission (capsule parsing, scheduling, NVMe command construction) and
//! once at completion (CQE handling, response capsule construction). This is
//! the resource that makes SmartNIC JBOFs "wimpy" (§2.4): when cycles × IOPS
//! exceeds a core, added latency and lost bandwidth follow.
//!
//! Cycle accounting uses the paper's own unit from Table 1: **125 cycles =
//! 1 µs**. Reporting costs in these units lets the Table 1 reproduction print
//! directly comparable numbers.

use gimbal_sim::{SimDuration, SimTime};

/// The paper's cycle unit (Table 1: "125cycles=1usec").
pub const CYCLES_PER_US: f64 = 125.0;

/// Convert cycles to a duration.
pub fn cycles_to_duration(cycles: f64) -> SimDuration {
    let ns = (cycles / CYCLES_PER_US * 1000.0).round() as u64;
    SimDuration::from_nanos(ns)
}

/// A serial CPU core with a busy-until horizon. Work items queue FIFO.
#[derive(Clone, Debug)]
pub struct Core {
    busy_until: SimTime,
    busy_accum: SimDuration,
}

impl Core {
    /// A fresh, idle core.
    pub fn new() -> Self {
        Core {
            busy_until: SimTime::ZERO,
            busy_accum: SimDuration::ZERO,
        }
    }

    /// Execute `cycles` of work arriving at `now`; returns the instant the
    /// work finishes (after queueing behind earlier work).
    pub fn process(&mut self, now: SimTime, cycles: f64) -> SimTime {
        let dur = cycles_to_duration(cycles);
        let start = now.max(self.busy_until);
        let done = start + dur;
        self.busy_until = done;
        self.busy_accum += dur;
        done
    }

    /// The instant the core becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total busy time accumulated (for utilization reporting).
    pub fn busy_time(&self) -> SimDuration {
        self.busy_accum
    }

    /// Core utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            0.0
        } else {
            (self.busy_accum.as_secs_f64() / now.as_secs_f64()).min(1.0)
        }
    }
}

impl Default for Core {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-IO CPU costs of the NVMe-oF target software, in Table 1 cycle units.
///
/// `submit`/`complete` are the application-layer costs Table 1a reports; the
/// `transport` term is the RDMA/SPDK framework cost per IO (derived from the
/// NULL-device IOPS of Table 1b); `nvme_driver` is the extra cost of driving
/// a real NVMe SSD (doorbells, CQ polling) — zero in NULL-device runs;
/// `per_kb` models payload-dependent work (SGL segmentation, DMA setup),
/// which is what bends the large-IO curves of Fig 16.
#[derive(Clone, Copy, Debug)]
pub struct CpuCost {
    /// Application submit-path cycles.
    pub submit: f64,
    /// Application completion-path cycles.
    pub complete: f64,
    /// Transport/framework cycles per IO.
    pub transport: f64,
    /// NVMe driver cycles per IO against a real device.
    pub nvme_driver: f64,
    /// Additional cycles per KiB of payload.
    pub per_kb: f64,
}

impl CpuCost {
    /// Vanilla SPDK NVMe-oF target on a Stingray ARM A72 core, loaded
    /// (QD≈32) costs from Table 1a, calibrated so the NULL-device test
    /// reproduces Table 1b's 937 KIOPS/core.
    pub fn arm_vanilla() -> Self {
        CpuCost {
            submit: 21.0,
            complete: 17.0,
            // 937 KIOPS ⇒ 1.067 µs/IO ⇒ 133.4 cycles; minus submit+complete.
            transport: 95.4,
            // A real-SSD 4 KB read costs ~1.98 µs/IO on an ARM core (Fig 3:
            // 3 cores ≈ 1513 KIOPS) ⇒ +114 cycles of driver work.
            nvme_driver: 114.0,
            per_kb: 1.7,
        }
    }

    /// Gimbal on an ARM A72 core: Table 1a's loaded submit/complete costs.
    pub fn arm_gimbal() -> Self {
        CpuCost {
            submit: 30.0,
            complete: 25.0,
            ..Self::arm_vanilla()
        }
    }

    /// Unloaded (QD1) application costs, Table 1a's first block.
    pub fn arm_vanilla_qd1() -> Self {
        CpuCost {
            submit: 32.0,
            complete: 16.0,
            ..Self::arm_vanilla()
        }
    }

    /// Gimbal unloaded (QD1) costs.
    pub fn arm_gimbal_qd1() -> Self {
        CpuCost {
            submit: 52.0,
            complete: 22.0,
            ..Self::arm_vanilla()
        }
    }

    /// Vanilla SPDK on a Xeon E5-2620 v4 core (§5.8: 1533 KIOPS NULL-device
    /// ⇒ 0.652 µs/IO; Fig 3: ~757 KIOPS/core against a real SSD).
    pub fn xeon_vanilla() -> Self {
        CpuCost {
            submit: 13.0,
            complete: 10.0,
            transport: 58.5,
            nvme_driver: 83.6,
            per_kb: 1.0,
        }
    }

    /// Gimbal on a Xeon core (§5.8: 1368 KIOPS NULL device, −10.8 %).
    pub fn xeon_gimbal() -> Self {
        CpuCost {
            submit: 19.0,
            complete: 14.0,
            ..Self::xeon_vanilla()
        }
    }

    /// Total submit-path cycles for an IO of `bytes`.
    pub fn submit_cycles(&self, bytes: u64, null_device: bool) -> f64 {
        let driver = if null_device {
            0.0
        } else {
            self.nvme_driver * 0.6
        };
        self.submit + self.transport * 0.6 + driver + self.per_kb * (bytes as f64 / 1024.0) * 0.5
    }

    /// Total completion-path cycles for an IO of `bytes`.
    pub fn complete_cycles(&self, bytes: u64, null_device: bool) -> f64 {
        let driver = if null_device {
            0.0
        } else {
            self.nvme_driver * 0.4
        };
        self.complete + self.transport * 0.4 + driver + self.per_kb * (bytes as f64 / 1024.0) * 0.5
    }

    /// Total per-IO cycles (submit + complete paths).
    pub fn total_cycles(&self, bytes: u64, null_device: bool) -> f64 {
        self.submit_cycles(bytes, null_device) + self.complete_cycles(bytes, null_device)
    }

    /// Theoretical per-core IOPS ceiling for `bytes`-sized IOs.
    pub fn core_iops_limit(&self, bytes: u64, null_device: bool) -> f64 {
        let us_per_io = self.total_cycles(bytes, null_device) / CYCLES_PER_US;
        1e6 / us_per_io
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_conversion_matches_table1_unit() {
        assert_eq!(cycles_to_duration(125.0), SimDuration::from_micros(1));
        assert_eq!(cycles_to_duration(62.5), SimDuration::from_nanos(500));
    }

    #[test]
    fn core_serializes_work() {
        let mut c = Core::new();
        let t1 = c.process(SimTime::ZERO, 125.0);
        assert_eq!(t1, SimTime::from_micros(1));
        let t2 = c.process(SimTime::ZERO, 125.0);
        assert_eq!(t2, SimTime::from_micros(2), "queues behind first");
        let t3 = c.process(SimTime::from_micros(10), 125.0);
        assert_eq!(t3, SimTime::from_micros(11), "idle gap not charged");
        assert_eq!(c.busy_time(), SimDuration::from_micros(3));
    }

    #[test]
    fn utilization_bounded() {
        let mut c = Core::new();
        c.process(SimTime::ZERO, 1250.0);
        let u = c.utilization(SimTime::from_micros(20));
        assert!((u - 0.5).abs() < 0.01);
        assert_eq!(Core::new().utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn null_device_iops_reproduce_table_1b() {
        // Table 1b: vanilla 937 KIOPS, Gimbal 821 KIOPS on one ARM core.
        let v = CpuCost::arm_vanilla().core_iops_limit(4096, true);
        let g = CpuCost::arm_gimbal().core_iops_limit(4096, true);
        assert!((v / 1e3 - 937.0).abs() < 60.0, "vanilla {v}");
        assert!((g / 1e3 - 821.0).abs() < 60.0, "gimbal {g}");
        let drop = (v - g) / v * 100.0;
        assert!((5.0..20.0).contains(&drop), "drop {drop}% (paper: 12.4%)");
    }

    #[test]
    fn real_device_costs_more_cpu_than_null() {
        let c = CpuCost::arm_vanilla();
        assert!(c.core_iops_limit(4096, false) < c.core_iops_limit(4096, true));
        // ~505 KIOPS/core against a real SSD (Fig 3 shape).
        let real = c.core_iops_limit(4096, false) / 1e3;
        assert!((400.0..600.0).contains(&real), "real-SSD IOPS/core {real}");
    }

    #[test]
    fn xeon_outpaces_arm() {
        let x = CpuCost::xeon_vanilla().core_iops_limit(4096, false);
        let a = CpuCost::arm_vanilla().core_iops_limit(4096, false);
        assert!(x > a * 1.3, "xeon {x} vs arm {a}");
        // §5.8: Xeon NULL device 1533 vs 1368 KIOPS (−10.8 %).
        let xv = CpuCost::xeon_vanilla().core_iops_limit(4096, true) / 1e3;
        let xg = CpuCost::xeon_gimbal().core_iops_limit(4096, true) / 1e3;
        assert!((xv - 1533.0).abs() < 120.0, "xeon vanilla {xv}");
        assert!(xg < xv, "gimbal adds overhead");
    }

    #[test]
    fn large_ios_cost_more() {
        let c = CpuCost::arm_vanilla();
        let small = c.total_cycles(4096, false);
        let big = c.total_cycles(128 * 1024, false);
        assert!(
            big > small + 100.0,
            "per-KB term should matter: {small} {big}"
        );
    }
}
