//! The multi-tenancy scheme under test and its component factories.

use gimbal_baselines::{FlashFqPolicy, PardaClient, ReflexPolicy};
use gimbal_cache::{AdmissionPolicy, CacheConfig, WritePolicy};
use gimbal_core::{CreditClient, GimbalPolicy, Params};
use gimbal_fabric::SsdId;
use gimbal_nic::CpuCost;
use gimbal_switch::{ClientPolicy, FifoPolicy, SwitchPolicy, UnlimitedClient};

/// Build the NIC-DRAM cache tier configuration shared by the CLI and the
/// bench binaries. `mb == 0` disables the cache entirely (`None`), which is
/// bit-identical to a build without cache support; the cache tier composes
/// with every [`Scheme`] because it sits ahead of the policy in the pipeline.
pub fn cache_tier(mb: u64, policy: AdmissionPolicy) -> Option<CacheConfig> {
    cache_tier_wb(mb, policy, WritePolicy::Through)
}

/// [`cache_tier`] with an explicit write policy: `WritePolicy::Back` arms the
/// write-back tier (DRAM-cost write acks + the deterministic flusher), while
/// `WritePolicy::Through` is bit-identical to [`cache_tier`].
pub fn cache_tier_wb(mb: u64, policy: AdmissionPolicy, write: WritePolicy) -> Option<CacheConfig> {
    (mb > 0).then(|| CacheConfig {
        policy,
        write_policy: write,
        ..CacheConfig::for_mb(mb)
    })
}

/// Which multi-tenancy mechanism the JBOF runs (§5.1's comparison set plus
/// the plain vanilla target used for the characterization experiments).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Plain SPDK NVMe-oF target: FIFO, no isolation (Figs 2–4, 19–23).
    Vanilla,
    /// ReFlex-style static token model + DRR at the target.
    Reflex,
    /// PARDA-style client-side latency-window control, FIFO target.
    Parda,
    /// FlashFQ-style SFQ(D) at the target.
    FlashFq,
    /// The Gimbal storage switch.
    Gimbal,
}

impl Scheme {
    /// The four schemes compared throughout §5.
    pub const COMPARED: [Scheme; 4] = [
        Scheme::Reflex,
        Scheme::FlashFq,
        Scheme::Parda,
        Scheme::Gimbal,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Vanilla => "Vanilla",
            Scheme::Reflex => "ReFlex",
            Scheme::Parda => "Parda",
            Scheme::FlashFq => "FlashFQ",
            Scheme::Gimbal => "Gimbal",
        }
    }

    /// Build the target-side policy for one SSD pipeline.
    pub fn make_policy(self, ssd: SsdId, gimbal_params: Params) -> Box<dyn SwitchPolicy> {
        match self {
            Scheme::Vanilla | Scheme::Parda => Box::new(FifoPolicy::new()),
            Scheme::Reflex => Box::new(ReflexPolicy::default()),
            Scheme::FlashFq => Box::new(FlashFqPolicy::default()),
            Scheme::Gimbal => Box::new(GimbalPolicy::new(ssd, gimbal_params)),
        }
    }

    /// Build the client-side submission gate for one worker.
    pub fn make_client(self) -> Box<dyn ClientPolicy> {
        match self {
            Scheme::Vanilla | Scheme::Reflex | Scheme::FlashFq => Box::new(UnlimitedClient),
            Scheme::Parda => Box::new(PardaClient::default()),
            Scheme::Gimbal => Box::new(CreditClient::default()),
        }
    }

    /// The per-IO CPU cost of the target software for this scheme.
    pub fn cpu_cost(self, xeon: bool) -> CpuCost {
        match (self, xeon) {
            (Scheme::Gimbal, false) => CpuCost::arm_gimbal(),
            (Scheme::Gimbal, true) => CpuCost::xeon_gimbal(),
            (_, false) => CpuCost::arm_vanilla(),
            (_, true) => CpuCost::xeon_vanilla(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factories_produce_the_right_components() {
        for s in [
            Scheme::Vanilla,
            Scheme::Reflex,
            Scheme::Parda,
            Scheme::FlashFq,
            Scheme::Gimbal,
        ] {
            let p = s.make_policy(SsdId(0), Params::default());
            let c = s.make_client();
            match s {
                Scheme::Vanilla => {
                    assert_eq!(p.name(), "fifo");
                    assert_eq!(c.name(), "unlimited");
                }
                Scheme::Reflex => {
                    assert_eq!(p.name(), "reflex");
                    assert_eq!(c.name(), "unlimited");
                }
                Scheme::Parda => {
                    assert_eq!(p.name(), "fifo");
                    assert_eq!(c.name(), "parda");
                }
                Scheme::FlashFq => {
                    assert_eq!(p.name(), "flashfq");
                    assert_eq!(c.name(), "unlimited");
                }
                Scheme::Gimbal => {
                    assert_eq!(p.name(), "gimbal");
                    assert_eq!(c.name(), "gimbal-credit");
                }
            }
        }
    }

    #[test]
    fn cache_tier_disables_at_zero_capacity() {
        assert!(cache_tier(0, AdmissionPolicy::Always).is_none());
        let c = cache_tier(16, AdmissionPolicy::Never).expect("nonzero capacity");
        assert_eq!(c.capacity_bytes, 16 * 1024 * 1024);
        assert_eq!(c.policy, AdmissionPolicy::Never);
        c.validate();
    }

    #[test]
    fn gimbal_costs_more_cpu_than_vanilla() {
        let g = Scheme::Gimbal.cpu_cost(false);
        let v = Scheme::Vanilla.cpu_cost(false);
        assert!(g.total_cycles(4096, true) > v.total_cycles(4096, true));
    }
}
