//! Experiment orchestration: a full client ↔ fabric ↔ JBOF testbed in
//! virtual time.
//!
//! This crate reproduces the paper's evaluation rig (§5.1): client servers
//! running fio-like workers, a 100 Gbps RDMA fabric, and a Stingray-style
//! JBOF whose per-SSD pipelines run one of the five schemes (vanilla FIFO,
//! ReFlex, Parda, FlashFQ, Gimbal). The engine is a deterministic
//! discrete-event loop; every figure binary in `gimbal-bench` is a thin
//! wrapper over [`Testbed::run`].
//!
//! * [`scheme`] — the scheme selector and its policy/client/CPU factories;
//! * [`config`] — testbed and worker specifications;
//! * [`engine`] — the event loop;
//! * [`results`] — per-worker and per-SSD measurements, f-Util computation
//!   (§5.1's fairness metric) and reporting helpers.

pub mod config;
pub mod engine;
pub mod kv;
pub mod oracle;
pub mod results;
pub mod scheme;

pub use config::{FaultConfig, Precondition, TestbedConfig, WorkerSpec};
pub use engine::Testbed;
pub use gimbal_broker::{BrokerConfig, BrokerMode, BrokerStats};
pub use gimbal_cache::{
    AdmissionPolicy, CacheConfig, CacheStats, DurabilityEvent, FlushIo, StagedWriteLoss,
    WriteBackStats, WritePolicy, FLUSH_ID_BASE, LOSS_EVENT_CMD,
};
pub use kv::{KvInstanceResult, KvRunResult, KvTestbed, KvTestbedConfig};
pub use oracle::{check_journal, check_kv_run, check_run, OracleReport};
pub use results::{
    f_util, jain_index, utilization_deviation, FaultCounters, GimbalTrace, RunResult,
    SubmissionRecord, WorkerResult,
};
pub use scheme::{cache_tier, cache_tier_wb, Scheme};
