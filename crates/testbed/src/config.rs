//! Testbed and worker specifications.

use crate::scheme::Scheme;
use gimbal_broker::BrokerConfig;
use gimbal_cache::CacheConfig;
use gimbal_core::Params;
use gimbal_cores::StealConfig;
use gimbal_fabric::{FabricConfig, Priority, RetryConfig};
use gimbal_sim::{FaultPlan, SimDuration, SimTime};
use gimbal_ssd::SsdConfig;
use gimbal_telemetry::TraceConfig;
use gimbal_workload::FioSpec;

/// Fault injection for a run: the plan of what goes wrong, and the
/// initiator-side retry policy that recovers from it.
#[derive(Clone, Debug, Default)]
pub struct FaultConfig {
    /// What gets injected (capsule loss, SSD errors/stalls/death).
    pub plan: FaultPlan,
    /// Initiator timeout/backoff/retry policy for lost capsules.
    pub retry: RetryConfig,
}

impl FaultConfig {
    /// Validate both halves.
    pub fn validate(&self) {
        self.plan.validate();
        self.retry.validate();
    }
}

/// SSD preconditioning state (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precondition {
    /// 128 KiB sequential writes: everything mapped, perfectly striped,
    /// ample free blocks.
    Clean,
    /// Hours of 4 KiB random writes: random placement, dead space, free
    /// blocks at the GC watermark.
    Fragmented,
    /// Fresh device, nothing mapped (unit tests only).
    None,
}

/// One fio worker in an experiment.
#[derive(Clone, Debug)]
pub struct WorkerSpec {
    /// Label for grouped reporting ("4KB-RD", "victim", ...).
    pub label: String,
    /// The stream shape.
    pub fio: FioSpec,
    /// Index of the SSD this worker targets.
    pub ssd: u32,
    /// Priority tag carried on its commands.
    pub priority: Priority,
    /// When the worker starts issuing.
    pub start: SimTime,
    /// When it stops issuing (`None` = runs to the end).
    pub stop: Option<SimTime>,
}

impl WorkerSpec {
    /// A worker running for the whole experiment on SSD 0.
    pub fn new(label: impl Into<String>, fio: FioSpec) -> Self {
        WorkerSpec {
            label: label.into(),
            fio,
            ssd: 0,
            priority: Priority::NORMAL,
            start: SimTime::ZERO,
            stop: None,
        }
    }

    /// Builder: target SSD index.
    pub fn on_ssd(mut self, ssd: u32) -> Self {
        self.ssd = ssd;
        self
    }

    /// Builder: priority tag.
    pub fn with_priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Builder: active interval.
    pub fn active(mut self, start: SimTime, stop: Option<SimTime>) -> Self {
        self.start = start;
        self.stop = stop;
        self
    }
}

/// Full experiment configuration.
#[derive(Clone, Debug)]
pub struct TestbedConfig {
    /// Multi-tenancy scheme at the JBOF.
    pub scheme: Scheme,
    /// Gimbal parameters (ignored by other schemes).
    pub gimbal_params: Params,
    /// SSD model configuration (same for every SSD in the node).
    pub ssd: SsdConfig,
    /// Number of SSDs in the JBOF.
    pub num_ssds: u32,
    /// Preconditioning applied to every SSD.
    pub precondition: Precondition,
    /// SmartNIC/host cores at the target; pipelines are assigned
    /// round-robin (§4.1 uses one core per SSD).
    pub cores: u32,
    /// Model Xeon (server JBOF) instead of ARM cores.
    pub xeon: bool,
    /// Fabric parameters.
    pub fabric: FabricConfig,
    /// Virtual-time length of the run.
    pub duration: SimDuration,
    /// Stats ignored before this instant (device warm-up, rate ramp).
    pub warmup: SimDuration,
    /// Extra per-IO submit-path cost in µs (the Fig 16 sweep).
    pub added_per_io_us: f64,
    /// Record per-worker bandwidth / Gimbal-internals time series at this
    /// interval.
    pub sample_interval: Option<SimDuration>,
    /// Experiment seed; every stochastic stream derives from it.
    pub seed: u64,
    /// Record every command submission into
    /// [`crate::results::RunResult::submissions`] (determinism audits; off
    /// by default — a long run submits millions of commands).
    pub record_submissions: bool,
    /// Fault injection plan and retry policy. `None` (the default) runs
    /// fault-free and consumes no fault randomness: such a run is
    /// bit-identical to one on a build without fault support.
    pub faults: Option<FaultConfig>,
    /// Structured telemetry recording. `None` (the default) keeps every
    /// record site behind a disabled handle: no events, no allocations, and
    /// run digests bit-identical to a build without telemetry.
    pub trace: Option<TraceConfig>,
    /// NIC-DRAM cache tier per SSD pipeline. `None` (the default) — or a
    /// zero-capacity config — constructs no cache: such a run is
    /// bit-identical to one on a build without cache support.
    pub cache: Option<CacheConfig>,
    /// Divergence sanitizer: record a state-access journal
    /// ([`gimbal_sim::journal`]) of every engine decision, digestible and
    /// comparable across a double run. `false` (the default) keeps every
    /// record site behind a disabled handle, so unsanitized runs are
    /// bit-identical to builds without the journal.
    pub sanitize: bool,
    /// Inter-tenant token broker (borrow ledger + optional placement).
    /// `None` (the default) constructs no ledger and schedules no epoch
    /// events: such a run is bit-identical to one on a build without broker
    /// support.
    pub broker: Option<BrokerConfig>,
    /// Maximum command capsules coalesced into one pipeline quantum when
    /// they arrive at the same instant on the same SSD: one scheduler
    /// decision and one pump per batch instead of per IO. `1` (the default)
    /// executes every arrival in its own quantum — bit-identical to
    /// pre-batching builds. Batching only engages on fault-free runs (replay
    /// dedup can turn an arrival into a resend mid-batch) and closes early
    /// whenever the pipeline has other work due at the batch instant, so an
    /// intermediate completion interleaves exactly as the unbatched engine
    /// would.
    pub batch: u32,
    /// Inter-pipeline work stealing across reactor cores (gimbal-cores).
    /// `None` (the default) keeps the fixed home binding: every quantum
    /// runs on its pipeline's home core (`ssd % cores`), the scheduler
    /// journals and traces nothing, and no rebalance events are scheduled
    /// — such a run is bit-identical to one on a build without the core
    /// scheduler.
    pub steal: Option<StealConfig>,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            scheme: Scheme::Gimbal,
            gimbal_params: Params::default(),
            ssd: SsdConfig {
                logical_capacity: 512 * 1024 * 1024,
                ..SsdConfig::default()
            },
            num_ssds: 1,
            precondition: Precondition::Clean,
            cores: 1,
            xeon: false,
            fabric: FabricConfig::default(),
            duration: SimDuration::from_secs(2),
            warmup: SimDuration::from_millis(500),
            added_per_io_us: 0.0,
            sample_interval: None,
            seed: 42,
            record_submissions: false,
            faults: None,
            trace: None,
            cache: None,
            sanitize: false,
            broker: None,
            batch: 1,
            steal: None,
        }
    }
}

impl TestbedConfig {
    /// Validate basic consistency.
    pub fn validate(&self) {
        assert!(self.num_ssds >= 1);
        assert!(self.cores >= 1);
        assert!(self.batch >= 1, "batch of 0 would coalesce nothing");
        assert!(self.warmup < self.duration);
        self.ssd.validate();
        self.gimbal_params.validate();
        if let Some(f) = &self.faults {
            f.validate();
        }
        if let Some(t) = &self.trace {
            t.validate();
        }
        if let Some(c) = &self.cache {
            c.validate();
        }
        if let Some(b) = &self.broker {
            b.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gimbal_workload::FioSpec;

    #[test]
    fn worker_builder() {
        let w = WorkerSpec::new("w", FioSpec::paper_default(1.0, 4096, 0, 1 << 16))
            .on_ssd(2)
            .with_priority(Priority::HIGH)
            .active(SimTime::from_secs(1), Some(SimTime::from_secs(2)));
        assert_eq!(w.ssd, 2);
        assert_eq!(w.priority, Priority::HIGH);
        assert_eq!(w.start, SimTime::from_secs(1));
    }

    #[test]
    fn default_config_is_valid() {
        TestbedConfig::default().validate();
    }
}
