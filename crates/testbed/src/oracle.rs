//! The crash-consistency oracle for the write-back cache tier.
//!
//! The cache journals every durability-relevant transition as a
//! [`DurabilityEvent`] in virtual-time order. The oracle replays that
//! journal against a *shadow model* — an independent dirty-set built only
//! from `Dirtied` / `Cleaned` / `Superseded` / `Lost` transitions — and
//! proves, for every injected device death or simulated power loss, that
//!
//! * **no silent loss**: every acked-but-unflushed (shadow-dirty) line was
//!   surfaced in the `Lost` run that follows the marker, and
//! * **no phantom loss**: every surfaced `Lost` line really was shadow-dirty
//!   (nothing durable or never-acked was reported lost), and
//! * the surfaced [`StagedWriteLoss`] records aggregate to exactly the
//!   journal's per-tenant loss counts, and
//! * every flushed prefix respects WAL ordering: per tenant, first-issue
//!   flush writes carry non-decreasing WAL tags (retries after a transient
//!   `Requeued` are exempt — they legitimately re-issue an older tag), and
//! * end-of-run line conservation holds and matches [`WriteBackStats`]:
//!   `dirtied == cleaned + superseded + lost + residual_dirty`.
//!
//! Violations panic with a diagnostic; the durability and chaos suites run
//! the oracle over every fault plan.

use crate::kv::KvRunResult;
use crate::results::RunResult;
use gimbal_cache::{DurabilityEvent, StagedWriteLoss, WriteBackStats, LOSS_EVENT_CMD};
use gimbal_fabric::TenantId;
use gimbal_sim::collections::{DetMap, DetSet};

/// What the oracle verified over one SSD cache's journal. All checks have
/// already passed when a report is returned; the counts let tests assert
/// the run exercised real write-back activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleReport {
    /// Journal entries replayed.
    pub events: usize,
    /// Write commands acknowledged at DRAM cost.
    pub acked_cmds: u64,
    /// Clean→dirty transitions observed.
    pub dirtied: u64,
    /// Lines made durable by a successful flush.
    pub cleaned: u64,
    /// Dirty lines superseded on flash by later pass-through writes.
    pub superseded: u64,
    /// Dirty lines surfaced as losses across every marker.
    pub lost: u64,
    /// Lines still shadow-dirty when the run ended (in DRAM, unflushed).
    pub residual_dirty: u64,
    /// Power-loss plus device-death markers replayed.
    pub loss_markers: u32,
    /// First-issue WAL flush writes whose tag ordering was verified.
    pub wal_flushes_checked: u64,
}

/// Replay one SSD cache's journal against the shadow model and panic on any
/// crash-consistency violation. `ssd` indexes the cache; `losses` is the
/// run's full loss record set (filtered internally to this SSD's
/// dirty-tagged records); `stats` is the same cache's counter snapshot.
pub fn check_journal(
    ssd: usize,
    journal: &[DurabilityEvent],
    losses: &[StagedWriteLoss],
    stats: &WriteBackStats,
) -> OracleReport {
    // Shadow dirty set: line → owner. Built exclusively from journal
    // transitions, never from cache internals.
    let mut shadow: DetMap<u64, TenantId> = DetMap::new();
    // Per-tenant highest WAL tag seen on a first-issue flush.
    let mut last_wal: DetMap<TenantId, u64> = DetMap::new();
    // Lines whose last flush was requeued: their next issue is a retry and
    // may legitimately carry a tag below a later line's already-issued tag.
    let mut retrying: DetSet<u64> = DetSet::new();
    // Per-tenant lines surfaced as lost, to reconcile against the typed
    // StagedWriteLoss records.
    let mut lost_per_tenant: DetMap<TenantId, u64> = DetMap::new();
    // Set between a PowerLoss/DeviceDeath marker and the end of its `Lost`
    // run; the shadow must be empty when the run closes.
    let mut draining = false;

    let mut rep = OracleReport {
        events: journal.len(),
        ..OracleReport::default()
    };

    for (i, ev) in journal.iter().enumerate() {
        // A marker's `Lost` run ends at the first event of any other kind;
        // at that boundary every shadow-dirty line must have surfaced.
        if draining && !matches!(ev, DurabilityEvent::Lost { .. }) {
            assert!(
                shadow.is_empty(),
                "oracle[ssd {ssd}]: silent loss — {} dirty lines not surfaced \
                 after the loss marker (journal index {i})",
                shadow.len()
            );
            draining = false;
        }
        match *ev {
            DurabilityEvent::Acked { .. } => rep.acked_cmds += 1,
            DurabilityEvent::Dirtied { line, tenant, .. } => {
                assert!(
                    shadow.insert(line, tenant).is_none(),
                    "oracle[ssd {ssd}]: Dirtied for already-dirty line {line} \
                     (journal index {i})"
                );
                rep.dirtied += 1;
            }
            DurabilityEvent::FlushIssued {
                line, tenant, wal, ..
            } => {
                assert!(
                    shadow.contains_key(&line),
                    "oracle[ssd {ssd}]: flush issued for non-dirty line {line} \
                     (journal index {i})"
                );
                let retry = retrying.remove(&line);
                if let Some(w) = wal {
                    if !retry {
                        if let Some(&prev) = last_wal.get(&tenant) {
                            assert!(
                                w >= prev,
                                "oracle[ssd {ssd}]: WAL order violated for tenant \
                                 {} — flush tag {w} after {prev} (journal index {i})",
                                tenant.index()
                            );
                        }
                        last_wal.insert(tenant, w);
                        rep.wal_flushes_checked += 1;
                    }
                }
            }
            DurabilityEvent::Cleaned { line, .. } => {
                assert!(
                    shadow.remove(&line).is_some(),
                    "oracle[ssd {ssd}]: Cleaned for non-dirty line {line} \
                     (journal index {i})"
                );
                retrying.remove(&line);
                rep.cleaned += 1;
            }
            DurabilityEvent::Requeued { line, .. } => {
                assert!(
                    shadow.contains_key(&line),
                    "oracle[ssd {ssd}]: Requeued for non-dirty line {line} \
                     (journal index {i})"
                );
                retrying.insert(line);
            }
            DurabilityEvent::Superseded { line, .. } => {
                assert!(
                    shadow.remove(&line).is_some(),
                    "oracle[ssd {ssd}]: Superseded for non-dirty line {line} \
                     (journal index {i})"
                );
                retrying.remove(&line);
                rep.superseded += 1;
            }
            DurabilityEvent::Lost { line, tenant, .. } => {
                assert!(
                    draining,
                    "oracle[ssd {ssd}]: Lost outside a loss marker's run \
                     (journal index {i})"
                );
                assert!(
                    shadow.remove(&line).is_some(),
                    "oracle[ssd {ssd}]: phantom loss — line {line} surfaced as \
                     lost but was not dirty (journal index {i})"
                );
                retrying.remove(&line);
                *lost_per_tenant.get_or_insert_with(tenant, || 0) += 1;
                rep.lost += 1;
            }
            DurabilityEvent::PassThrough { .. } => {}
            DurabilityEvent::PowerLoss { .. } | DurabilityEvent::DeviceDeath { .. } => {
                draining = true;
                rep.loss_markers += 1;
            }
        }
    }
    if draining {
        assert!(
            shadow.is_empty(),
            "oracle[ssd {ssd}]: silent loss — {} dirty lines not surfaced at \
             end of journal",
            shadow.len()
        );
    }
    rep.residual_dirty = shadow.len() as u64;

    // The typed StagedWriteLoss records must aggregate to exactly the
    // journal's per-tenant loss counts: no silent loss (a journaled loss
    // with no record), no phantom loss (a record the journal cannot back).
    let mut surfaced: DetMap<TenantId, u64> = DetMap::new();
    for l in losses.iter().filter(|l| l.ssd.index() == ssd && l.dirty) {
        assert_eq!(
            l.cmd, LOSS_EVENT_CMD,
            "oracle[ssd {ssd}]: dirty-tagged loss record without the loss \
             sentinel cmd"
        );
        *surfaced.get_or_insert_with(l.tenant, || 0) += u64::from(l.lines_lost);
    }
    for (t, n) in lost_per_tenant.iter() {
        assert_eq!(
            surfaced.get(t).copied().unwrap_or(0),
            *n,
            "oracle[ssd {ssd}]: tenant {} lost {n} lines per journal but the \
             surfaced records disagree",
            t.index()
        );
    }
    for (t, n) in surfaced.iter() {
        assert_eq!(
            lost_per_tenant.get(t).copied().unwrap_or(0),
            *n,
            "oracle[ssd {ssd}]: tenant {} surfaced {n} lost lines the journal \
             cannot back",
            t.index()
        );
    }

    // End-of-run conservation, from the journal alone and cross-checked
    // against the cache's own counters.
    assert_eq!(
        rep.dirtied,
        rep.cleaned + rep.superseded + rep.lost + rep.residual_dirty,
        "oracle[ssd {ssd}]: journal line conservation violated"
    );
    assert_eq!(
        (
            stats.acked_lines,
            stats.flushed_lines,
            stats.superseded_lines,
            stats.lost_lines,
            stats.dirty_lines,
        ),
        (
            rep.dirtied,
            rep.cleaned,
            rep.superseded,
            rep.lost,
            rep.residual_dirty,
        ),
        "oracle[ssd {ssd}]: WriteBackStats disagree with the journal replay"
    );
    rep
}

/// Run the oracle over every write-back cache of a fio-testbed run. Returns
/// one report per SSD; panics on any violation. Empty when the run was not
/// write-back.
pub fn check_run(res: &RunResult) -> Vec<OracleReport> {
    res.write_back
        .iter()
        .zip(&res.journals)
        .enumerate()
        .map(|(ssd, (stats, journal))| check_journal(ssd, journal, &res.cache_losses, stats))
        .collect()
}

/// Run the oracle over every write-back cache of a KV-testbed run.
pub fn check_kv_run(res: &KvRunResult) -> Vec<OracleReport> {
    res.write_back
        .iter()
        .zip(&res.journals)
        .enumerate()
        .map(|(ssd, (stats, journal))| check_journal(ssd, journal, &res.cache_losses, stats))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gimbal_fabric::SsdId;
    use gimbal_sim::SimTime;

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    fn dirtied(line: u64, wal: Option<u64>) -> DurabilityEvent {
        DurabilityEvent::Dirtied {
            line,
            tenant: TenantId(0),
            wal,
            at: t0(),
        }
    }

    fn cleaned(line: u64) -> DurabilityEvent {
        DurabilityEvent::Cleaned {
            line,
            tenant: TenantId(0),
            at: t0(),
        }
    }

    fn issued(line: u64, wal: Option<u64>) -> DurabilityEvent {
        DurabilityEvent::FlushIssued {
            id: 1 << 63,
            line,
            tenant: TenantId(0),
            wal,
            at: t0(),
        }
    }

    fn lost(line: u64) -> DurabilityEvent {
        DurabilityEvent::Lost {
            line,
            tenant: TenantId(0),
            wal: None,
            at: t0(),
        }
    }

    fn stats(dirtied: u64, cleaned: u64, lost: u64, dirty: u64) -> WriteBackStats {
        WriteBackStats {
            acked_lines: dirtied,
            flushed_lines: cleaned,
            lost_lines: lost,
            dirty_lines: dirty,
            ..WriteBackStats::default()
        }
    }

    fn loss_record(lines: u32) -> StagedWriteLoss {
        StagedWriteLoss {
            cmd: LOSS_EVENT_CMD,
            tenant: TenantId(0),
            ssd: SsdId(0),
            lines_lost: lines,
            at: t0(),
            dirty: true,
        }
    }

    #[test]
    fn clean_journal_passes() {
        let j = vec![
            dirtied(1, None),
            dirtied(2, Some(7)),
            issued(2, Some(7)),
            cleaned(2),
            issued(1, None),
            cleaned(1),
        ];
        let rep = check_journal(0, &j, &[], &stats(2, 2, 0, 0));
        assert_eq!(rep.dirtied, 2);
        assert_eq!(rep.cleaned, 2);
        assert_eq!(rep.wal_flushes_checked, 1);
    }

    #[test]
    fn exact_loss_accounting_passes() {
        let j = vec![
            dirtied(1, None),
            dirtied(2, None),
            DurabilityEvent::PowerLoss { at: t0() },
            lost(1),
            lost(2),
        ];
        let rep = check_journal(0, &j, &[loss_record(2)], &stats(2, 0, 2, 0));
        assert_eq!(rep.lost, 2);
        assert_eq!(rep.loss_markers, 1);
    }

    #[test]
    #[should_panic(expected = "silent loss")]
    fn silent_loss_is_caught() {
        // Two dirty lines, only one surfaced after the marker.
        let j = vec![
            dirtied(1, None),
            dirtied(2, None),
            DurabilityEvent::PowerLoss { at: t0() },
            lost(1),
        ];
        check_journal(0, &j, &[loss_record(1)], &stats(2, 0, 1, 1));
    }

    #[test]
    #[should_panic(expected = "phantom loss")]
    fn phantom_loss_is_caught() {
        // Line 3 was never dirtied but is reported lost.
        let j = vec![
            dirtied(1, None),
            DurabilityEvent::PowerLoss { at: t0() },
            lost(3),
        ];
        check_journal(0, &j, &[loss_record(1)], &stats(1, 0, 1, 0));
    }

    #[test]
    #[should_panic(expected = "WAL order violated")]
    fn wal_reorder_is_caught() {
        let j = vec![
            dirtied(1, Some(9)),
            dirtied(2, Some(4)),
            issued(1, Some(9)),
            issued(2, Some(4)),
        ];
        check_journal(0, &j, &[], &stats(2, 0, 0, 2));
    }

    #[test]
    fn requeued_retry_may_reissue_an_older_tag() {
        let j = vec![
            dirtied(1, Some(4)),
            dirtied(2, Some(9)),
            issued(1, Some(4)),
            issued(2, Some(9)),
            DurabilityEvent::Requeued {
                line: 1,
                tenant: TenantId(0),
                wal: Some(4),
                at: t0(),
            },
            issued(1, Some(4)), // retry: tag 4 after tag 9 is legitimate
            cleaned(1),
            cleaned(2),
        ];
        let rep = check_journal(0, &j, &[], &stats(2, 2, 0, 0));
        assert_eq!(rep.cleaned, 2);
    }

    #[test]
    #[should_panic(expected = "records disagree")]
    fn missing_surfaced_record_is_caught() {
        let j = vec![
            dirtied(1, None),
            DurabilityEvent::DeviceDeath { at: t0() },
            lost(1),
        ];
        check_journal(0, &j, &[], &stats(1, 0, 1, 0));
    }
}
