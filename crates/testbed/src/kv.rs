//! The application-level testbed: YCSB over LSM stores over the blobstore
//! over NVMe-oF (§4.3 / §5.6, Figs 10–13).
//!
//! Multiple DB instances share a pool of JBOF nodes. Each instance runs a
//! closed loop of YCSB operations against its own [`gimbal_lsm_kv::LsmKv`];
//! the store's IO plans flow through per-backend submission queues gated by
//! the client-side flow control (credits for Gimbal, windows for Parda),
//! across the fabric, into the per-SSD switch pipelines.

use crate::config::Precondition;
use crate::results::GimbalTrace;
use crate::scheme::Scheme;
use gimbal_baselines::PardaClient;
use gimbal_blobstore::{BackendId, Blobstore, HbaConfig, HierarchicalAllocator, RateLimiter};
use gimbal_core::Params;
use gimbal_fabric::{
    CmdId, FabricConfig, NvmeCmd, NvmeCompletion, Port, RdmaDelays, SsdId, TenantId,
};
use gimbal_lsm_kv::{IoCtx, LsmConfig, LsmKv, LsmStats, StepOutput, TaggedIo};
use gimbal_sim::collections::DetMap;
use gimbal_sim::stats::LatencySummary;
use gimbal_sim::{EventQueue, Histogram, SimDuration, SimRng, SimTime};
use gimbal_ssd::{FlashSsd, SsdConfig, SsdStats};
use gimbal_switch::{ClientPolicy, Pipeline, PipelineConfig};
use gimbal_workload::{KvOp, YcsbMix, YcsbWorkload};
use std::collections::VecDeque;

/// Configuration of a KV-store experiment.
#[derive(Clone, Debug)]
pub struct KvTestbedConfig {
    /// Scheme at the JBOFs.
    pub scheme: Scheme,
    /// Gimbal parameters.
    pub gimbal_params: Params,
    /// SSD model.
    pub ssd: SsdConfig,
    /// JBOF node count (3 in Fig 10).
    pub num_nodes: u32,
    /// SSDs per node (4 on the Stingray).
    pub ssds_per_node: u32,
    /// DB instances.
    pub instances: u32,
    /// Preloaded records per instance (paper: 10 M 1 KB pairs; scaled down
    /// with the SSD capacity).
    pub records_per_instance: u64,
    /// YCSB mix.
    pub mix: YcsbMix,
    /// Outstanding operations per instance (closed loop).
    pub ops_concurrency: u32,
    /// LSM tuning.
    pub lsm: LsmConfig,
    /// Replicate files (primary + shadow, §4.3).
    pub replicate: bool,
    /// Client-side IO rate limiter (credit flow control) enabled.
    pub flow_control: bool,
    /// Read load balancer enabled.
    pub load_balance: bool,
    /// SSD preconditioning (§5.6 runs on fragmented SSDs).
    pub precondition: Precondition,
    /// Fabric parameters.
    pub fabric: FabricConfig,
    /// Run length.
    pub duration: SimDuration,
    /// Measurement starts here.
    pub warmup: SimDuration,
    /// Seed.
    pub seed: u64,
    /// Record Gimbal control traces at this interval.
    pub sample_interval: Option<SimDuration>,
    /// Inject a permanent flash failure: backend index + instant.
    pub fail_backend_at: Option<(u32, SimDuration)>,
    /// Simulated NIC power loss at this offset: every backend cache is
    /// cleared cold and write-back dirty lines surface as typed losses the
    /// crash-consistency oracle accounts for exactly.
    pub power_loss_at: Option<SimDuration>,
    /// NIC-DRAM cache tier per backend pipeline. `None` (the default) — or a
    /// zero-capacity config — constructs no cache: such a run is
    /// bit-identical to one on a build without cache support.
    pub cache: Option<gimbal_cache::CacheConfig>,
}

impl Default for KvTestbedConfig {
    fn default() -> Self {
        KvTestbedConfig {
            scheme: Scheme::Gimbal,
            gimbal_params: Params::default(),
            ssd: SsdConfig {
                logical_capacity: 512 * 1024 * 1024,
                ..SsdConfig::default()
            },
            num_nodes: 1,
            ssds_per_node: 2,
            instances: 4,
            records_per_instance: 20_000,
            mix: YcsbMix::A,
            ops_concurrency: 4,
            lsm: LsmConfig::default(),
            replicate: true,
            flow_control: true,
            load_balance: true,
            precondition: Precondition::Fragmented,
            fabric: FabricConfig::default(),
            duration: SimDuration::from_secs(2),
            warmup: SimDuration::from_millis(500),
            seed: 42,
            sample_interval: None,
            fail_backend_at: None,
            power_loss_at: None,
            cache: None,
        }
    }
}

impl KvTestbedConfig {
    /// Total backends (SSDs across nodes).
    pub fn backends(&self) -> u32 {
        self.num_nodes * self.ssds_per_node
    }
}

/// Per-instance measurements.
#[derive(Clone, Debug)]
pub struct KvInstanceResult {
    /// Operations completed in the measured window.
    pub ops: u64,
    /// Read-op latency (YCSB read operations end-to-end).
    pub read_latency: LatencySummary,
    /// Write-op latency (updates / inserts / RMW).
    pub write_latency: LatencySummary,
    /// LSM internals.
    pub lsm: LsmStats,
}

/// Output of a KV experiment.
#[derive(Clone, Debug)]
pub struct KvRunResult {
    /// Per-instance results.
    pub instances: Vec<KvInstanceResult>,
    /// Per-backend SSD statistics.
    pub ssd_stats: Vec<SsdStats>,
    /// Gimbal control traces per backend (populated when `sample_interval`
    /// is set and the scheme is Gimbal).
    pub gimbal_traces: Vec<GimbalTrace>,
    /// Per-backend cache statistics (empty when no cache is configured).
    pub cache: Vec<gimbal_cache::CacheStats>,
    /// Typed staged-write-loss records across backends, in pipeline order
    /// (empty without a cache).
    pub cache_losses: Vec<gimbal_cache::StagedWriteLoss>,
    /// Per-backend write-back counters (populated only under
    /// `WritePolicy::Back`).
    pub write_back: Vec<gimbal_cache::WriteBackStats>,
    /// Per-backend durability journals (same gating as `write_back`): the
    /// streams the crash-consistency oracle replays.
    pub journals: Vec<Vec<gimbal_cache::DurabilityEvent>>,
    /// Measured window length.
    pub window: SimDuration,
}

impl KvRunResult {
    /// Aggregate operation throughput, KIOPS.
    pub fn total_kiops(&self) -> f64 {
        let ops: u64 = self.instances.iter().map(|i| i.ops).sum();
        ops as f64 / self.window.as_secs_f64() / 1e3
    }

    /// Mean of per-instance average read latencies, µs.
    pub fn avg_read_latency_us(&self) -> f64 {
        let xs: Vec<f64> = self
            .instances
            .iter()
            .filter(|i| i.read_latency.count > 0)
            .map(|i| i.read_latency.mean_us())
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    }

    /// Mean of per-instance p99.9 read latencies, µs.
    pub fn p999_read_latency_us(&self) -> f64 {
        let xs: Vec<f64> = self
            .instances
            .iter()
            .filter(|i| i.read_latency.count > 0)
            .map(|i| i.read_latency.p999_us())
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    }

    /// Aggregate cache hit ratio over all backends (0.0 when no cache ran).
    pub fn cache_hit_ratio(&self) -> f64 {
        let hits: u64 = self.cache.iter().map(|c| c.hits).sum();
        let lookups: u64 = self.cache.iter().map(|c| c.lookups()).sum();
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }
}

enum Ev {
    Sample,
    FailBackend(usize),
    PowerLoss,
    InstanceStart(usize),
    KvPump(usize),
    DeliverCmd {
        backend: usize,
        cmd: NvmeCmd,
    },
    PipelineWake(usize),
    DeliverCpl {
        instance: usize,
        cpl: NvmeCompletion,
    },
}

struct OpTicket {
    started: SimTime,
    is_read: bool,
}

struct Instance {
    kv: LsmKv,
    workload: YcsbWorkload,
    lim: RateLimiter,
    parda: Option<Vec<PardaClient>>,
    tx_port: Port,
    /// Per-backend pending queues, one per priority level so bulk
    /// flush/compaction bursts never head-of-line-block point reads at the
    /// client (the §4.3 "application-specific IO scheduler" the virtual
    /// view enables).
    pending: Vec<[VecDeque<TaggedIo>; 3]>,
    /// Outstanding LOW-priority (bulk background) IOs per backend; capped so
    /// a flush/compaction burst trickles out instead of monopolizing the
    /// tenant's virtual slots and credits (§4.3's IO rate limiter).
    low_outstanding: Vec<u32>,
    ops_inflight: DetMap<u64, OpTicket>,
    read_hist: Histogram,
    write_hist: Histogram,
    ops_done: u64,
}

impl Instance {
    fn gate_allows(&mut self, backend: usize, now: SimTime) -> bool {
        if let Some(parda) = &mut self.parda {
            parda[backend].can_submit(self.lim.outstanding(BackendId(backend as u32)), now)
        } else {
            self.lim.can_submit(BackendId(backend as u32))
        }
    }
}

/// The KV experiment engine.
pub struct KvTestbed {
    cfg: KvTestbedConfig,
}

impl KvTestbed {
    /// Create the experiment.
    pub fn new(cfg: KvTestbedConfig) -> Self {
        cfg.ssd.validate();
        assert!(cfg.instances >= 1 && cfg.backends() >= 1);
        assert!(!cfg.replicate || cfg.backends() >= 2);
        KvTestbed { cfg }
    }

    /// Run it.
    pub fn run(self) -> KvRunResult {
        let cfg = self.cfg;
        let mut root_rng = SimRng::new(cfg.seed);
        let backends = cfg.backends() as usize;
        let delays = RdmaDelays::new(cfg.fabric);

        // JBOF pipelines, one core each (§4.1).
        let mut pipelines: Vec<Pipeline<FlashSsd>> = (0..backends)
            .map(|i| {
                let mut ssd = FlashSsd::new(cfg.ssd.clone(), root_rng.next_u64());
                match cfg.precondition {
                    Precondition::Clean => ssd.precondition_clean(),
                    Precondition::Fragmented => ssd.precondition_fragmented(),
                    Precondition::None => {}
                }
                Pipeline::new(
                    SsdId(i as u32),
                    ssd,
                    cfg.scheme.make_policy(SsdId(i as u32), cfg.gimbal_params),
                    PipelineConfig {
                        cpu_cost: cfg.scheme.cpu_cost(false),
                        null_device: false,
                        cache: cfg.cache.clone(),
                        broker: None,
                    },
                )
            })
            .collect();
        let mut target_ports: Vec<Port> = (0..backends)
            .map(|_| Port::new(cfg.fabric.port_bandwidth))
            .collect();

        // Shared blobstore over all backends.
        let caps: Vec<u64> = (0..backends)
            .map(|_| cfg.ssd.logical_capacity / cfg.ssd.logical_page_bytes)
            .collect();
        // Backend count was validated in `KvTestbed::new`.
        let mut bs = Blobstore::new(
            HierarchicalAllocator::new(HbaConfig::default(), &caps),
            cfg.replicate,
        )
        .expect("validated in KvTestbed::new");

        // Instances, preloaded.
        let initial_credit = cfg.gimbal_params.initial_credit_ios;
        let mut instances: Vec<Instance> = (0..cfg.instances as usize)
            .map(|i| {
                let mut kv = LsmKv::new(cfg.lsm, root_rng.next_u64());
                let lim = RateLimiter::new(
                    backends,
                    initial_credit,
                    cfg.flow_control && cfg.scheme == Scheme::Gimbal,
                );
                {
                    let mut ctx = IoCtx {
                        bs: &mut bs,
                        lim: &lim,
                        load_balance: cfg.load_balance,
                    };
                    kv.load(cfg.records_per_instance, &mut ctx);
                }
                Instance {
                    kv,
                    workload: YcsbWorkload::new(
                        cfg.mix,
                        cfg.records_per_instance,
                        root_rng.fork(i as u64),
                    ),
                    lim,
                    parda: if cfg.scheme == Scheme::Parda {
                        Some((0..backends).map(|_| PardaClient::default()).collect())
                    } else {
                        None
                    },
                    tx_port: Port::new(cfg.fabric.port_bandwidth),
                    pending: (0..backends).map(|_| Default::default()).collect(),
                    low_outstanding: vec![0; backends],
                    ops_inflight: DetMap::new(),
                    read_hist: Histogram::new(),
                    write_hist: Histogram::new(),
                    ops_done: 0,
                }
            })
            .collect();

        // --- event loop state ---
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let mut wake_at = vec![SimTime::MAX; backends];
        let mut next_cmd: u64 = 0;
        // cmd id → (instance, kv io tag, is-low-priority)
        let mut cmd_map: DetMap<u64, (usize, u64, bool)> = DetMap::new();

        let end = SimTime::ZERO + cfg.duration;
        let warm = SimTime::ZERO + cfg.warmup;
        let pump_step = SimDuration::from_micros(200);

        for i in 0..instances.len() {
            let start = (i as u64).saturating_mul(10);
            queue.push(SimTime::from_micros(start), Ev::InstanceStart(i));
        }
        let mut traces: Vec<GimbalTrace> = (0..backends).map(|_| GimbalTrace::default()).collect();
        if let Some(step) = cfg.sample_interval {
            queue.push(SimTime::ZERO + step, Ev::Sample);
        }
        if let Some((b, at)) = cfg.fail_backend_at {
            assert!((b as usize) < backends, "failing a missing backend");
            queue.push(SimTime::ZERO + at, Ev::FailBackend(b as usize));
        }
        if let Some(at) = cfg.power_loss_at {
            queue.push(SimTime::ZERO + at, Ev::PowerLoss);
        }

        // Helper macro-ish closures are impossible with the borrows involved,
        // so the loop body is written out long-hand.
        while let Some((now, ev)) = queue.pop() {
            if now > end {
                break;
            }
            match ev {
                Ev::FailBackend(b) => {
                    pipelines[b].device_mut().inject_failure();
                }
                Ev::PowerLoss => {
                    for b in 0..backends {
                        pipelines[b].power_loss(now);
                        Self::pump_pipeline(
                            &mut pipelines,
                            &mut target_ports,
                            &mut wake_at,
                            &delays,
                            &mut queue,
                            &cmd_map,
                            b,
                            now,
                        );
                    }
                }
                Ev::Sample => {
                    for (b, p) in pipelines.iter().enumerate() {
                        if let Some(g) = p
                            .policy()
                            .as_any()
                            .downcast_ref::<gimbal_core::GimbalPolicy>()
                        {
                            let tr = &mut traces[b];
                            tr.target_rate.push(now, g.target_rate());
                            tr.write_cost.push(now, g.current_write_cost());
                            let rm = g.monitor(gimbal_fabric::IoType::Read);
                            tr.read_ewma_us.push(now, rm.ewma_ns() / 1e3);
                            tr.read_thresh_us.push(now, rm.thresh_ns() / 1e3);
                            let wm = g.monitor(gimbal_fabric::IoType::Write);
                            tr.write_ewma_us.push(now, wm.ewma_ns() / 1e3);
                            tr.write_thresh_us.push(now, wm.thresh_ns() / 1e3);
                        }
                    }
                    if let Some(step) = cfg.sample_interval {
                        queue.push(now + step, Ev::Sample);
                    }
                }
                Ev::InstanceStart(i) => {
                    Self::top_up_ops(&cfg, &mut instances, &mut bs, i, now);
                    Self::dispatch_all(
                        &cfg,
                        &mut instances,
                        &delays,
                        &mut queue,
                        &mut cmd_map,
                        &mut next_cmd,
                        i,
                        now,
                    );
                    queue.push(now + pump_step, Ev::KvPump(i));
                }
                Ev::KvPump(i) => {
                    let out = {
                        let inst = &mut instances[i];
                        let mut ctx = IoCtx {
                            bs: &mut bs,
                            lim: &inst.lim,
                            load_balance: cfg.load_balance,
                        };
                        inst.kv.pump(now, &mut ctx)
                    };
                    Self::absorb(&cfg, &mut instances, i, out, now, warm, end);
                    Self::top_up_ops(&cfg, &mut instances, &mut bs, i, now);
                    Self::dispatch_all(
                        &cfg,
                        &mut instances,
                        &delays,
                        &mut queue,
                        &mut cmd_map,
                        &mut next_cmd,
                        i,
                        now,
                    );
                    queue.push(now + pump_step, Ev::KvPump(i));
                }
                Ev::DeliverCmd { backend, cmd } => {
                    pipelines[backend].on_command(cmd, now);
                    Self::pump_pipeline(
                        &mut pipelines,
                        &mut target_ports,
                        &mut wake_at,
                        &delays,
                        &mut queue,
                        &cmd_map,
                        backend,
                        now,
                    );
                }
                Ev::PipelineWake(backend) => {
                    if wake_at[backend] != now {
                        continue; // stale, superseded wake
                    }
                    wake_at[backend] = SimTime::MAX;
                    Self::pump_pipeline(
                        &mut pipelines,
                        &mut target_ports,
                        &mut wake_at,
                        &delays,
                        &mut queue,
                        &cmd_map,
                        backend,
                        now,
                    );
                }
                Ev::DeliverCpl { instance: i, cpl } => {
                    let (_, kv_tag, was_low) = cmd_map.remove(&cpl.id.0).expect("known cmd");
                    let backend = cpl.ssd.index();
                    let out = {
                        let inst = &mut instances[i];
                        if was_low {
                            inst.low_outstanding[backend] =
                                inst.low_outstanding[backend].saturating_sub(1);
                        }
                        inst.lim
                            .on_completion(BackendId(backend as u32), cpl.credit);
                        if let Some(parda) = &mut inst.parda {
                            parda[backend].on_completion(&cpl, now);
                        }
                        if !cpl.status.is_success() {
                            // The client learns about the flash failure from
                            // the error completion: avoid the backend from
                            // now on and recover the IO via its replica.
                            inst.lim.mark_dead(BackendId(backend as u32));
                        }
                        let mut ctx = IoCtx {
                            bs: &mut bs,
                            lim: &inst.lim,
                            load_balance: cfg.load_balance,
                        };
                        if cpl.status.is_success() {
                            inst.kv.io_done(kv_tag, now, &mut ctx)
                        } else {
                            inst.kv.io_failed(kv_tag, now, &mut ctx)
                        }
                    };
                    Self::absorb(&cfg, &mut instances, i, out, now, warm, end);
                    Self::top_up_ops(&cfg, &mut instances, &mut bs, i, now);
                    Self::dispatch_all(
                        &cfg,
                        &mut instances,
                        &delays,
                        &mut queue,
                        &mut cmd_map,
                        &mut next_cmd,
                        i,
                        now,
                    );
                }
            }
        }

        let window = cfg.duration - cfg.warmup;
        let results = instances
            .iter()
            .map(|inst| KvInstanceResult {
                ops: inst.ops_done,
                read_latency: inst.read_hist.summary(),
                write_latency: inst.write_hist.summary(),
                lsm: inst.kv.stats(),
            })
            .collect();
        let mut write_back = Vec::new();
        let mut journals = Vec::new();
        for p in &pipelines {
            if let Some(c) = p
                .cache()
                .filter(|c| c.write_policy() == gimbal_cache::WritePolicy::Back)
            {
                let wb = c.write_back_stats();
                debug_assert!(
                    wb.conservation_holds(),
                    "write-back line conservation violated: {wb:?}"
                );
                write_back.push(wb);
                journals.push(c.journal().to_vec());
            }
        }
        KvRunResult {
            instances: results,
            ssd_stats: pipelines.iter().map(|p| p.device().stats()).collect(),
            gimbal_traces: traces,
            cache: pipelines.iter().filter_map(|p| p.cache_stats()).collect(),
            cache_losses: pipelines
                .iter()
                .flat_map(|p| p.cache_losses().iter().copied())
                .collect(),
            write_back,
            journals,
            window,
        }
    }

    /// Record finished ops and enqueue new IOs from a step output.
    fn absorb(
        _cfg: &KvTestbedConfig,
        instances: &mut [Instance],
        i: usize,
        out: StepOutput,
        now: SimTime,
        warm: SimTime,
        end: SimTime,
    ) {
        let inst = &mut instances[i];
        for op in out.finished {
            if let Some(ticket) = inst.ops_inflight.remove(&op) {
                if now >= warm && now < end {
                    inst.ops_done += 1;
                    let lat = now.since(ticket.started);
                    if ticket.is_read {
                        inst.read_hist.record_duration(lat);
                    } else {
                        inst.write_hist.record_duration(lat);
                    }
                }
            }
        }
        for io in out.ios {
            let lvl = usize::from(io.priority.0).min(2);
            inst.pending[io.plan.backend.index()][lvl].push_back(io);
        }
    }

    /// Keep the closed loop full: begin new YCSB ops up to the concurrency
    /// target.
    fn top_up_ops(
        cfg: &KvTestbedConfig,
        instances: &mut [Instance],
        bs: &mut Blobstore,
        i: usize,
        now: SimTime,
    ) {
        let warm = SimTime::ZERO + cfg.warmup;
        let end = SimTime::ZERO + cfg.duration;
        loop {
            let inst = &mut instances[i];
            if inst.ops_inflight.len() >= cfg.ops_concurrency as usize {
                break;
            }
            let op = inst.workload.next_op();
            let is_read = matches!(op, KvOp::Read(_));
            let (id, out) = {
                let mut ctx = IoCtx {
                    bs,
                    lim: &inst.lim,
                    load_balance: cfg.load_balance,
                };
                inst.kv.begin_op(op, now, &mut ctx)
            };
            inst.ops_inflight.insert(
                id,
                OpTicket {
                    started: now,
                    is_read,
                },
            );
            Self::absorb(cfg, instances, i, out, now, warm, end);
        }
    }

    /// Drain an instance's per-backend pending queues through its gate onto
    /// the fabric.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_all(
        _cfg: &KvTestbedConfig,
        instances: &mut [Instance],
        delays: &RdmaDelays,
        queue: &mut EventQueue<Ev>,
        cmd_map: &mut DetMap<u64, (usize, u64, bool)>,
        next_cmd: &mut u64,
        i: usize,
        now: SimTime,
    ) {
        let inst = &mut instances[i];
        for backend in 0..inst.pending.len() {
            const MAX_LOW_OUTSTANDING: u32 = 2;
            while let Some(lvl) = (0..3).find(|&l| {
                !inst.pending[backend][l].is_empty()
                    && (l < 2 || inst.low_outstanding[backend] < MAX_LOW_OUTSTANDING)
            }) {
                if !inst.gate_allows(backend, now) {
                    break;
                }
                let io = inst.pending[backend][lvl].pop_front().unwrap();
                if lvl == 2 {
                    inst.low_outstanding[backend] += 1;
                }
                let cmd = NvmeCmd {
                    id: CmdId(*next_cmd),
                    tenant: TenantId(i as u32),
                    ssd: SsdId(backend as u32),
                    opcode: io.plan.op,
                    lba: io.plan.lba,
                    len: (io.plan.blocks * 4096) as u32,
                    priority: io.priority,
                    issued_at: now,
                    wal: io.wal_seq,
                };
                *next_cmd += 1;
                cmd_map.insert(cmd.id.0, (i, io.tag, lvl == 2));
                inst.lim.on_submit(BackendId(backend as u32));
                let mut arrive = delays.command_arrival(&mut inst.tx_port, now, &cmd);
                if cmd.opcode.is_write() {
                    arrive = delays.write_payload_fetched(&mut inst.tx_port, arrive, &cmd);
                }
                queue.push(arrive, Ev::DeliverCmd { backend, cmd });
            }
        }
    }

    /// Poll a pipeline, send completion capsules back, reschedule its wake.
    #[allow(clippy::too_many_arguments)]
    fn pump_pipeline(
        pipelines: &mut [Pipeline<FlashSsd>],
        target_ports: &mut [Port],
        wake_at: &mut [SimTime],
        delays: &RdmaDelays,
        queue: &mut EventQueue<Ev>,
        cmd_map: &DetMap<u64, (usize, u64, bool)>,
        backend: usize,
        now: SimTime,
    ) {
        pipelines[backend].poll(now);
        for out in pipelines[backend].take_outputs() {
            let (instance, _, _) = *cmd_map.get(&out.cmd.id.0).expect("tracked cmd");
            let cpl = NvmeCompletion {
                id: out.cmd.id,
                tenant: out.cmd.tenant,
                ssd: out.cmd.ssd,
                opcode: out.cmd.opcode,
                len: out.cmd.len,
                status: out.status,
                credit: out.credit,
                issued_at: out.cmd.issued_at,
                completed_at: out.at,
            };
            let arrive = delays.completion_arrival(&mut target_ports[backend], out.at, &out.cmd);
            queue.push(arrive, Ev::DeliverCpl { instance, cpl });
        }
        if let Some(t) = pipelines[backend].next_event_at() {
            let t = t.max(now + SimDuration::from_nanos(1));
            if t < wake_at[backend] {
                wake_at[backend] = t;
                queue.push(t, Ev::PipelineWake(backend));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(scheme: Scheme, mix: YcsbMix) -> KvTestbedConfig {
        KvTestbedConfig {
            scheme,
            mix,
            instances: 3,
            num_nodes: 1,
            ssds_per_node: 2,
            records_per_instance: 10_000,
            duration: SimDuration::from_millis(700),
            warmup: SimDuration::from_millis(200),
            ..KvTestbedConfig::default()
        }
    }

    #[test]
    fn ycsb_c_reads_flow_end_to_end() {
        let res = KvTestbed::new(quick_cfg(Scheme::Gimbal, YcsbMix::C)).run();
        let total: u64 = res.instances.iter().map(|i| i.ops).sum();
        assert!(total > 5_000, "ops {total}");
        assert!(res.total_kiops() > 10.0);
        let lat = res.avg_read_latency_us();
        assert!(lat > 10.0 && lat < 5_000.0, "read latency {lat}us");
        // Read-only: no flushes or compactions.
        for i in &res.instances {
            assert_eq!(i.lsm.flushes, 0);
        }
    }

    #[test]
    fn ycsb_a_exercises_flush_and_compaction() {
        // FlashFQ (work-conserving, no pacing ramp) drives enough update
        // volume in a short test to exercise flush + compaction machinery.
        let mut cfg = quick_cfg(Scheme::FlashFq, YcsbMix::A);
        cfg.duration = SimDuration::from_millis(1500);
        // Small memtable so flushes happen within the short run.
        cfg.lsm.memtable_bytes = 256 * 1024;
        cfg.lsm.level_base_bytes = 1024 * 1024;
        let res = KvTestbed::new(cfg).run();
        let flushes: u64 = res.instances.iter().map(|i| i.lsm.flushes).sum();
        assert!(flushes > 0, "flushes {flushes}");
        let total: u64 = res.instances.iter().map(|i| i.ops).sum();
        assert!(total > 1_000, "ops {total}");
        // Writes reached the devices.
        let writes: u64 = res.ssd_stats.iter().map(|s| s.writes).sum();
        assert!(writes > 0);
    }

    #[test]
    fn schemes_all_run_ycsb_b() {
        // Gimbal's target rate ramps from a conservative initial value
        // (§3.3); at this tiny offered load (3 instances × 4 ops) it stays
        // deliberately paced, so its floor is lower here.
        for (scheme, floor) in [
            (Scheme::Reflex, 500),
            (Scheme::Parda, 500),
            (Scheme::FlashFq, 500),
            (Scheme::Gimbal, 250),
        ] {
            let res = KvTestbed::new(quick_cfg(scheme, YcsbMix::B)).run();
            let total: u64 = res.instances.iter().map(|i| i.ops).sum();
            assert!(total > floor, "{:?}: ops {total}", scheme);
        }
    }

    #[test]
    fn flash_failure_fails_over_to_replicas() {
        let mut cfg = quick_cfg(Scheme::Gimbal, YcsbMix::B);
        cfg.duration = SimDuration::from_millis(1200);
        cfg.fail_backend_at = Some((0, SimDuration::from_millis(500)));
        let res = KvTestbed::new(cfg).run();
        let total: u64 = res.instances.iter().map(|i| i.ops).sum();
        assert!(total > 500, "ops continued after the failure: {total}");
        let retries: u64 = res
            .instances
            .iter()
            .map(|i| i.lsm.failed_read_retries)
            .sum();
        assert!(retries > 0, "reads failed over to the surviving replica");
        // Sanity: the failed backend stopped doing useful work while the
        // survivor kept serving.
        assert!(res.ssd_stats[1].reads > 0);
    }

    #[test]
    fn replication_writes_hit_two_backends() {
        let mut cfg = quick_cfg(Scheme::FlashFq, YcsbMix::A);
        cfg.lsm.memtable_bytes = 256 * 1024;
        let res = KvTestbed::new(cfg).run();
        let with_writes = res.ssd_stats.iter().filter(|s| s.writes > 0).count();
        assert!(
            with_writes >= 2,
            "replicated writes on {with_writes} backends"
        );
    }
}
