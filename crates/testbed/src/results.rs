//! Experiment measurements and the paper's evaluation metrics.

use gimbal_broker::BrokerStats;
use gimbal_cache::{CacheStats, DurabilityEvent, StagedWriteLoss, WriteBackStats};
use gimbal_cores::CoresStats;
use gimbal_sim::stats::LatencySummary;
use gimbal_sim::{Digest, SimDuration, TimeSeries};
use gimbal_ssd::SsdStats;
use gimbal_telemetry::RecordedTrace;

/// One NVMe command submission, recorded at creation time when
/// [`crate::TestbedConfig::record_submissions`] is on. The sequence of these
/// records is the engine's externally visible schedule: two runs are
/// behaviorally identical iff their submission traces match byte for byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubmissionRecord {
    /// Virtual time of submission, nanoseconds.
    pub at_ns: u64,
    /// Command id (globally unique, monotone).
    pub cmd: u64,
    /// Issuing tenant (worker index).
    pub tenant: u32,
    /// Opcode: 0 = read, 1 = write.
    pub opcode: u8,
    /// Logical block address.
    pub lba: u64,
    /// Payload length in bytes.
    pub len: u32,
}

impl SubmissionRecord {
    /// Fold this record into a digest, field order fixed.
    pub fn fold_into(&self, d: &mut Digest) {
        d.update_u64(self.at_ns)
            .update_u64(self.cmd)
            .update_u64(u64::from(self.tenant))
            .update(&[self.opcode])
            .update_u64(self.lba)
            .update_u64(u64::from(self.len));
    }
}

/// Measurements for one worker over its measured window.
#[derive(Clone, Debug)]
pub struct WorkerResult {
    /// The worker's label from its spec.
    pub label: String,
    /// Completed operations in the measured window.
    pub ops: u64,
    /// Completed payload bytes in the measured window.
    pub bytes: u64,
    /// Length of the worker's measured window.
    pub window: SimDuration,
    /// End-to-end read latency distribution.
    pub read_latency: LatencySummary,
    /// End-to-end write latency distribution.
    pub write_latency: LatencySummary,
    /// Bandwidth time series (if sampling was enabled).
    pub series: TimeSeries,
}

impl WorkerResult {
    /// Mean bandwidth over the measured window, bytes/second.
    pub fn bandwidth_bps(&self) -> f64 {
        if self.window == SimDuration::ZERO {
            0.0
        } else {
            self.bytes as f64 / self.window.as_secs_f64()
        }
    }

    /// Mean bandwidth in MB/s (the paper's reporting unit).
    pub fn bandwidth_mbps(&self) -> f64 {
        self.bandwidth_bps() / 1e6
    }

    /// Completed operations per second.
    pub fn iops(&self) -> f64 {
        if self.window == SimDuration::ZERO {
            0.0
        } else {
            self.ops as f64 / self.window.as_secs_f64()
        }
    }
}

/// Time series of Gimbal's internal control state for one SSD (Figs 9, 18).
#[derive(Clone, Debug, Default)]
pub struct GimbalTrace {
    /// Target submission rate, bytes/second.
    pub target_rate: TimeSeries,
    /// Dynamic write cost.
    pub write_cost: TimeSeries,
    /// Read EWMA latency, µs.
    pub read_ewma_us: TimeSeries,
    /// Read dynamic threshold, µs.
    pub read_thresh_us: TimeSeries,
    /// Write EWMA latency, µs.
    pub write_ewma_us: TimeSeries,
    /// Write dynamic threshold, µs.
    pub write_thresh_us: TimeSeries,
}

/// Sampled per-SSD device-level series (Figs 9, 17): smoothed raw device
/// latency per op type and aggregate completion bandwidth.
#[derive(Clone, Debug, Default)]
pub struct DeviceSeries {
    /// EWMA of device read latency, µs.
    pub read_lat_us: TimeSeries,
    /// EWMA of device write latency, µs.
    pub write_lat_us: TimeSeries,
    /// Completion bandwidth, bytes/second.
    pub bandwidth_bps: TimeSeries,
}

/// Per-run fault-handling counters, populated whether or not a
/// [`crate::FaultConfig`] is armed (all zero on a fault-free run). The
/// conservation audit over these counters is the end-to-end correctness
/// check for the failure paths: every submitted command reaches exactly one
/// terminal state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Commands submitted by workers.
    pub submitted: u64,
    /// Commands whose completion arrived with a success status.
    pub completed_ok: u64,
    /// Commands whose completion arrived with an error status (injected
    /// transient errors, dead devices, buffer overruns...).
    pub completed_err: u64,
    /// Commands abandoned after exhausting every retransmission.
    pub timed_out: u64,
    /// Commands still in flight when the run's clock expired (a run ends at
    /// a wall, not a drain; these are accounted, not lost).
    pub in_flight_at_end: u64,
    /// Command capsules dropped by the fault injector.
    pub cmd_capsules_dropped: u64,
    /// Completion capsules dropped by the fault injector.
    pub cpl_capsules_dropped: u64,
    /// Command retransmissions after a timer fired.
    pub retries: u64,
    /// Cached completions resent for retransmitted, already-executed
    /// commands (target-side dedup).
    pub completions_resent: u64,
    /// Replayed command capsules the target recognized and dropped.
    pub duplicate_cmds_ignored: u64,
    /// Completions for commands the initiator had already timed out.
    pub stale_completions_ignored: u64,
    /// Completions served from the NIC-DRAM cache without touching the
    /// device. A *service-source* counter, not a terminal bucket: a
    /// cache-served command still lands in `completed_ok` (or, when its
    /// completion capsule is lost and retries exhaust, `timed_out`), so the
    /// conservation law is unchanged — this counter proves the audit covers
    /// completions the SSD never saw.
    pub cache_served: u64,
}

impl FaultCounters {
    /// The conservation law: every submission lands in exactly one of the
    /// four terminal buckets. Cache-served completions are `completed_ok`
    /// like any other — `cache_served` only attributes their service source
    /// — so the equation needs no cache term.
    pub fn conservation_holds(&self) -> bool {
        self.submitted
            == self.completed_ok + self.completed_err + self.timed_out + self.in_flight_at_end
    }
}

/// The complete output of one testbed run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Per-worker measurements, in spec order.
    pub workers: Vec<WorkerResult>,
    /// Per-SSD device statistics.
    pub ssd_stats: Vec<SsdStats>,
    /// Per-SSD device-level latency summaries `[read, write]` (raw service
    /// latency at the device, the signal Gimbal's CC observes).
    pub device_latency: Vec<[LatencySummary; 2]>,
    /// Gimbal control traces per SSD (empty for other schemes or when
    /// sampling is off).
    pub gimbal_traces: Vec<GimbalTrace>,
    /// Per-SSD device-latency/bandwidth series (empty when sampling is off).
    pub device_series: Vec<DeviceSeries>,
    /// Every command submission in order (empty unless
    /// `record_submissions` was set in the config).
    pub submissions: Vec<SubmissionRecord>,
    /// Fault-handling counters and the conservation audit inputs.
    pub faults: FaultCounters,
    /// Recorded telemetry (`None` unless [`crate::TestbedConfig::trace`] was
    /// set).
    pub trace: Option<RecordedTrace>,
    /// Per-SSD cache counters (empty unless [`crate::TestbedConfig::cache`]
    /// configured a cache — the digest then folds them in, so cache-off runs
    /// keep their pre-cache digests).
    pub cache: Vec<CacheStats>,
    /// Typed records of staged write data dropped on failed device writes,
    /// across all SSDs in pipeline order (empty without a cache).
    pub cache_losses: Vec<StagedWriteLoss>,
    /// Per-SSD write-back counters, indexed like `cache`. Populated only
    /// when the cache tier ran `WritePolicy::Back`, so write-through runs
    /// keep their pre-write-back digests bit for bit.
    pub write_back: Vec<WriteBackStats>,
    /// Per-SSD durability journals (same gating as `write_back`): the
    /// event streams the crash-consistency oracle replays.
    pub journals: Vec<Vec<DurabilityEvent>>,
    /// The state-access journal recorded by the divergence sanitizer
    /// (`None` unless [`crate::TestbedConfig::sanitize`] was set). Feed two
    /// of these to [`gimbal_sim::journal::first_divergence`] to localize a
    /// double-run mismatch to its first divergent tick.
    pub access_journal: Option<gimbal_sim::AccessJournal>,
    /// Broker ledger counters (`None` unless
    /// [`crate::TestbedConfig::broker`] configured a ledger — the digest
    /// then folds them in, so broker-off runs keep their pre-broker
    /// digests).
    pub broker: Option<BrokerStats>,
    /// Core-scheduler counters (`None` unless
    /// [`crate::TestbedConfig::steal`] enabled work stealing — the digest
    /// then folds them in, so steal-off runs keep their pre-scheduler
    /// digests).
    pub cores: Option<CoresStats>,
    /// Total events the engine popped from its queue, including
    /// batch-coalesced command deliveries. Perf instrumentation only (the
    /// `--scale` bench divides it by wall-clock): deliberately **never**
    /// folded into any digest, so identical simulations compare equal
    /// regardless of how the harness was driven.
    pub events_processed: u64,
}

impl RunResult {
    /// Digest of the full submission trace (requires `record_submissions`).
    pub fn submission_digest(&self) -> u64 {
        let mut d = Digest::new();
        for r in &self.submissions {
            r.fold_into(&mut d);
        }
        d.value()
    }

    /// Digest of the recorded telemetry stream, `None` when tracing was off.
    /// Deterministic: two same-seed traced runs must agree bit for bit.
    pub fn trace_digest(&self) -> Option<u64> {
        self.trace.as_ref().map(RecordedTrace::digest)
    }

    /// Digest of the state-access journal, `None` when the sanitizer was
    /// off. Two same-seed sanitized runs must agree bit for bit; when they
    /// do not, [`gimbal_sim::journal::first_divergence`] names the first
    /// divergent tick.
    pub fn access_digest(&self) -> Option<u64> {
        self.access_journal.as_ref().map(|j| j.digest())
    }

    /// Digest of the run's aggregate statistics: per-worker counters and
    /// latency summaries plus per-SSD device counters. Two runs with the
    /// same seed must produce the same value, bit for bit — floats are
    /// folded by exact bit pattern, not approximate value.
    pub fn stats_digest(&self) -> u64 {
        let mut d = Digest::new();
        for w in &self.workers {
            d.update(w.label.as_bytes())
                .update_u64(w.ops)
                .update_u64(w.bytes)
                .update_u64(w.window.as_nanos());
            for s in [&w.read_latency, &w.write_latency] {
                d.update_u64(s.count)
                    .update_f64(s.mean_ns)
                    .update_u64(s.p50_ns)
                    .update_u64(s.p99_ns)
                    .update_u64(s.p999_ns)
                    .update_u64(s.max_ns);
            }
        }
        for s in &self.ssd_stats {
            d.update_u64(s.reads)
                .update_u64(s.writes)
                .update_u64(s.read_bytes)
                .update_u64(s.write_bytes)
                .update_u64(s.buffer_read_hits)
                .update_u64(s.nand_read_chunks)
                .update_u64(s.buffer_stalls)
                .update_u64(s.ftl.host_slot_writes)
                .update_u64(s.ftl.gc_slot_writes)
                .update_u64(s.ftl.erases)
                .update_u64(s.ftl.collections);
        }
        // Folded only when a cache ran, so cache-off digests are
        // bit-identical to pre-cache builds.
        if !self.cache.is_empty() {
            for c in &self.cache {
                c.fold_into(&mut d);
            }
            d.update_u64(self.cache_losses.len() as u64);
            for l in &self.cache_losses {
                l.fold_into(&mut d);
            }
        }
        // Folded only under `WritePolicy::Back`, so write-through runs keep
        // their pre-write-back digests bit for bit.
        if !self.write_back.is_empty() {
            for wb in &self.write_back {
                wb.fold_into(&mut d);
            }
            for j in &self.journals {
                d.update_u64(j.len() as u64);
                for e in j {
                    e.fold_into(&mut d);
                }
            }
        }
        // Folded only when a broker ran, so broker-off digests are
        // bit-identical to pre-broker builds.
        if let Some(b) = &self.broker {
            b.fold_into(&mut d);
        }
        // Folded only when work stealing ran, so steal-off digests are
        // bit-identical to pre-scheduler builds.
        if let Some(c) = &self.cores {
            c.fold_into(&mut d);
        }
        d.value()
    }

    /// Aggregate cache hit ratio across all SSDs (0 when no cache ran).
    pub fn cache_hit_ratio(&self) -> f64 {
        let hits: u64 = self.cache.iter().map(|c| c.hits).sum();
        let lookups: u64 = self.cache.iter().map(|c| c.lookups()).sum();
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }

    /// Aggregated bandwidth (bytes/s) of workers whose label satisfies the
    /// predicate.
    pub fn aggregate_bps<F: Fn(&str) -> bool>(&self, pred: F) -> f64 {
        self.workers
            .iter()
            .filter(|w| pred(&w.label))
            .map(|w| w.bandwidth_bps())
            .sum()
    }

    /// Merge the latency summaries of workers matching the predicate into a
    /// (reads, writes) pair of flat-weighted means over percentiles. For
    /// identical workers this is a faithful view of the group.
    pub fn group_latency<F: Fn(&str) -> bool>(&self, pred: F) -> [LatencySummary; 2] {
        let mut out = [LatencySummary::default(); 2];
        for (idx, pick) in [true, false].iter().enumerate() {
            let sums: Vec<&LatencySummary> = self
                .workers
                .iter()
                .filter(|w| pred(&w.label))
                .map(|w| {
                    if *pick {
                        &w.read_latency
                    } else {
                        &w.write_latency
                    }
                })
                .filter(|s| s.count > 0)
                .collect();
            if sums.is_empty() {
                continue;
            }
            let n = sums.len() as f64;
            out[idx] = LatencySummary {
                count: sums.iter().map(|s| s.count).sum(),
                mean_ns: sums.iter().map(|s| s.mean_ns).sum::<f64>() / n,
                p50_ns: (sums.iter().map(|s| s.p50_ns).sum::<u64>() as f64 / n) as u64,
                p99_ns: (sums.iter().map(|s| s.p99_ns).sum::<u64>() as f64 / n) as u64,
                p999_ns: (sums.iter().map(|s| s.p999_ns).sum::<u64>() as f64 / n) as u64,
                max_ns: sums.iter().map(|s| s.max_ns).max().unwrap_or(0),
            };
        }
        out
    }
}

/// The paper's fairness metric (§5.1):
///
/// ```text
/// f-Util(i) = per_worker_bw(i) / (standalone_max_bw(i) / total_workers)
/// ```
///
/// 1.0 is the ideal (each worker gets exactly its fair share of its own
/// standalone capability).
pub fn f_util(worker_bps: f64, standalone_max_bps: f64, total_workers: u32) -> f64 {
    assert!(standalone_max_bps > 0.0 && total_workers > 0);
    worker_bps / (standalone_max_bps / f64::from(total_workers))
}

/// Utilization deviation (§5.3): `|actual − ideal| / ideal` with ideal = 1.
pub fn utilization_deviation(f_util: f64) -> f64 {
    (f_util - 1.0).abs()
}

/// Jain's fairness index over per-tenant allocations:
/// `(Σx)² / (n · Σx²)`. 1.0 means perfectly equal shares; `1/n` means one
/// tenant took everything. An empty (or all-zero) allocation vector reports
/// 1.0 — a system serving nobody is trivially fair.
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq > 0.0 {
        sum * sum / (xs.len() as f64 * sq)
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_util_ideal_is_one() {
        // 16 workers, standalone 1600 MB/s, each achieving 100 MB/s.
        let f = f_util(100e6, 1600e6, 16);
        assert!((f - 1.0).abs() < 1e-9);
        assert!(utilization_deviation(f) < 1e-9);
    }

    #[test]
    fn f_util_scales_linearly() {
        assert!((f_util(200e6, 1600e6, 16) - 2.0).abs() < 1e-9);
        assert!((f_util(50e6, 1600e6, 16) - 0.5).abs() < 1e-9);
        assert!((utilization_deviation(0.5) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn jain_index_spans_equal_to_monopoly() {
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // Mild skew sits strictly between the extremes.
        let j = jain_index(&[2.0, 1.0, 1.0, 1.0]);
        assert!(j > 0.25 && j < 1.0, "skewed index {j}");
        assert!((jain_index(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conservation_audit_balances_terminal_states() {
        let mut f = FaultCounters {
            submitted: 100,
            completed_ok: 90,
            completed_err: 4,
            timed_out: 3,
            in_flight_at_end: 3,
            ..FaultCounters::default()
        };
        assert!(f.conservation_holds());
        f.in_flight_at_end = 2; // one command vanished
        assert!(!f.conservation_holds());
    }

    #[test]
    fn worker_result_rates() {
        let w = WorkerResult {
            label: "x".into(),
            ops: 1000,
            bytes: 4_096_000,
            window: SimDuration::from_secs(2),
            read_latency: LatencySummary::default(),
            write_latency: LatencySummary::default(),
            series: TimeSeries::new(),
        };
        assert!((w.iops() - 500.0).abs() < 1e-9);
        assert!((w.bandwidth_mbps() - 2.048).abs() < 1e-9);
    }
}
