//! The deterministic event loop wiring workers, fabric, and pipelines.

use crate::config::{Precondition, TestbedConfig, WorkerSpec};
use crate::results::{
    DeviceSeries, FaultCounters, GimbalTrace, RunResult, SubmissionRecord, WorkerResult,
};
use gimbal_broker::{BrokerHandle, SsdTelemetry};
use gimbal_core::GimbalPolicy;
use gimbal_cores::{CoreScheduler, Quantum};
use gimbal_fabric::{
    CmdId, IoType, NvmeCmd, NvmeCompletion, Port, RdmaDelays, RetryConfig, SsdId, TenantId,
};
use gimbal_sim::journal::JournalHandle;
use gimbal_sim::stats::LatencySummary;
use gimbal_sim::{
    DetMap, EventQueue, FaultInjector, FaultPlan, Histogram, IoArena, IoHandle, Meter, SimDuration,
    SimRng, SimTime, TimeSeries,
};
use gimbal_ssd::FlashSsd;
use gimbal_switch::{ClientPolicy, Pipeline, PipelineConfig};
use gimbal_telemetry::{CapsuleKind, EventKind, TraceHandle, Tracer};
use std::cell::RefCell;
use std::rc::Rc;

enum Ev {
    WorkerStart(usize),
    TryIssue(usize),
    DeliverCmd {
        ssd: usize,
        cmd: NvmeCmd,
    },
    PipelineWake(usize),
    DeliverCpl {
        worker: usize,
        cpl: NvmeCompletion,
    },
    /// Retransmission timer for command `cmd`, armed for transmission
    /// `attempt`. Only pushed when fault injection is configured.
    Timeout {
        cmd: u64,
        attempt: u32,
    },
    /// Simulated NIC power loss ([`FaultPlan::power_loss_at`]): every
    /// pipeline's NIC-DRAM cache is cleared cold and acked-but-unflushed
    /// write-back lines surface as [`gimbal_cache::StagedWriteLoss`].
    PowerLoss,
    /// Broker settlement boundary: debts repay, departures forgive, and the
    /// placement layer (when enabled) migrates tenants. Only scheduled when
    /// [`TestbedConfig::broker`] is set, so broker-off runs see no event.
    BrokerEpoch,
    /// Core-scheduler rebalance boundary: home assignments move per the
    /// epoch's per-pipeline cycle consumption. Only scheduled when
    /// [`TestbedConfig::steal`] is set with a non-zero rebalance period, so
    /// steal-off runs see no event.
    CoresRebalance,
    Sample,
}

/// What a freshly arrived command capsule should do at the target.
enum CmdAction {
    /// First arrival: execute it.
    Execute,
    /// Replay of a command still executing (or already abandoned): ignore.
    Duplicate,
    /// Replay of a finished command: resend the cached completion.
    Resend(NvmeCompletion),
}

/// Fault-handling runtime, present only when [`TestbedConfig::faults`] is
/// set. Fault-off runs never touch this state, so they stay bit-identical
/// to builds without fault support.
struct FaultRt {
    injector: FaultInjector,
    retry: RetryConfig,
    /// Live (non-terminal) commands by id. The entry is removed exactly
    /// once — at completion delivery or at final timeout — which is what
    /// makes the conservation audit exact. Values are handles into
    /// [`Self::arena`]; the map stays the deterministic index while the
    /// records themselves recycle.
    tracked: DetMap<u64, IoHandle>,
    /// Arena-recycled [`CmdTrack`] storage: freed records are reused by
    /// later commands, with incarnation tags catching any stale access.
    arena: IoArena<CmdTrack>,
}

/// Per-command bookkeeping while fault injection is armed.
struct CmdTrack {
    cmd: NvmeCmd,
    worker: usize,
    ssd: usize,
    /// Latest transmission attempt (0 = original); timers carry the attempt
    /// they were armed for, so superseded timers die on arrival.
    attempt: u32,
    /// Whether any capsule copy has reached the target pipeline.
    delivered: bool,
    /// Completion cached "at the target" for replay dedup: a retransmitted
    /// command whose IO already finished elicits this instead of a second
    /// execution.
    done_cpl: Option<NvmeCompletion>,
}

struct Worker {
    spec: WorkerSpec,
    stream: gimbal_workload::FioStream,
    client: Box<dyn ClientPolicy>,
    tx_port: Port,
    outstanding: u32,
    started: bool,
    retry_pending: bool,
    read_hist: Histogram,
    write_hist: Histogram,
    ops: u64,
    bytes: u64,
    meter: Meter,
    series: TimeSeries,
}

/// A configured experiment, ready to run.
pub struct Testbed {
    cfg: TestbedConfig,
    specs: Vec<WorkerSpec>,
}

impl Testbed {
    /// Create a testbed with the given workers.
    pub fn new(cfg: TestbedConfig, workers: Vec<WorkerSpec>) -> Self {
        cfg.validate();
        assert!(!workers.is_empty(), "no workers");
        for w in &workers {
            assert!(
                (w.ssd as usize) < cfg.num_ssds as usize,
                "worker on missing SSD"
            );
            w.fio.validate();
            assert!(
                w.fio.region_start + w.fio.region_blocks
                    <= cfg.ssd.logical_capacity / cfg.ssd.logical_page_bytes,
                "worker region exceeds SSD capacity"
            );
        }
        Testbed {
            cfg,
            specs: workers,
        }
    }

    /// Run the experiment to completion and collect results.
    pub fn run(self) -> RunResult {
        Engine::build(self.cfg, self.specs).run()
    }
}

struct Engine {
    cfg: TestbedConfig,
    queue: EventQueue<Ev>,
    workers: Vec<Worker>,
    pipelines: Vec<Pipeline<FlashSsd>>,
    target_ports: Vec<Port>,
    delays: RdmaDelays,
    /// Earliest scheduled wake per pipeline (avoids event storms).
    wake_at: Vec<SimTime>,
    next_cmd: u64,
    device_hist: Vec<[Histogram; 2]>,
    traces: Vec<GimbalTrace>,
    /// Smoothed raw device latency per SSD and op type, fed in `pump`.
    dev_lat_ewma: Vec<[gimbal_sim::Ewma; 2]>,
    dev_meter: Vec<Meter>,
    device_series: Vec<DeviceSeries>,
    /// Submission trace, populated when `cfg.record_submissions` is set.
    submissions: Vec<SubmissionRecord>,
    /// Fault injection state (`None` = fault-free run).
    faults: Option<FaultRt>,
    /// Always-on command accounting; all zeros except `submitted` /
    /// `completed_ok` / `in_flight_at_end` when faults are off.
    counters: FaultCounters,
    /// The event recorder backing every [`TraceHandle`] in the run
    /// (`None` = tracing off; handles stay disabled and record nothing).
    tracer: Option<Rc<RefCell<Tracer>>>,
    /// The engine's own handle for fabric-path events (fault injections,
    /// retransmissions, timeouts, credit flow).
    trace: TraceHandle,
    /// Divergence sanitizer handle ([`TestbedConfig::sanitize`]); disabled
    /// by default, so record sites cost one `None` branch.
    sanitizer: JournalHandle,
    /// Shared broker ledger (`None` = broker off; pipelines then carry no
    /// gate and no epoch events are scheduled).
    broker: Option<BrokerHandle>,
    /// Total events popped from the event queue, including batch-coalesced
    /// command deliveries. Pure perf instrumentation (the `--scale` bench's
    /// events/sec numerator); never folded into digests.
    events_processed: u64,
    /// Recycled telemetry sample buffer: device latencies collected during
    /// one pump, flushed in a single [`TraceHandle::observe_many`] call.
    obs_buf: Vec<(TenantId, u64)>,
    /// The node's reactor-core scheduler (gimbal-cores). Owns every core;
    /// each pipeline quantum runs on the core it assigns. With
    /// [`TestbedConfig::steal`] unset it always assigns the home core and
    /// records nothing, preserving the pre-scheduler 1:1 behavior.
    sched: CoreScheduler,
    /// Test-only injected nondeterminism: pump pipelines in reverse order
    /// at [`Ev::PowerLoss`]. Exists to prove the sanitizer localizes a real
    /// ordering bug to its exact tick and component.
    #[cfg(test)]
    perturb_powerloss_pump: bool,
}

impl Engine {
    fn build(cfg: TestbedConfig, specs: Vec<WorkerSpec>) -> Engine {
        let mut root_rng = SimRng::new(cfg.seed);
        let mut cpu_cost = cfg.scheme.cpu_cost(cfg.xeon);
        cpu_cost.submit += cfg.added_per_io_us * gimbal_nic::CYCLES_PER_US;

        let sanitizer = if cfg.sanitize {
            JournalHandle::enabled()
        } else {
            JournalHandle::disabled()
        };
        let (tracer, trace) = match &cfg.trace {
            Some(tc) => {
                let t = Rc::new(RefCell::new(Tracer::new(tc.clone())));
                let h = TraceHandle::attached(&t);
                (Some(t), h)
            }
            None => (None, TraceHandle::disabled()),
        };

        let broker = cfg
            .broker
            .as_ref()
            .map(|bc| BrokerHandle::new(bc.clone(), trace.clone()));
        // The node's cores, owned by the scheduler. Homes are assigned
        // round-robin (§4.1: one per SSD when cores ≥ SSDs), exactly the
        // binding pipelines had when they owned their cores directly.
        let sched = CoreScheduler::new(
            cfg.cores as usize,
            cfg.num_ssds as usize,
            cfg.steal.clone(),
            trace.clone(),
        );
        let mut pipelines: Vec<Pipeline<FlashSsd>> = (0..cfg.num_ssds)
            .map(|i| {
                let mut ssd = FlashSsd::new(cfg.ssd.clone(), root_rng.next_u64());
                match cfg.precondition {
                    Precondition::Clean => ssd.precondition_clean(),
                    Precondition::Fragmented => ssd.precondition_fragmented(),
                    Precondition::None => {}
                }
                if let Some(fc) = &cfg.faults {
                    if let Some(spec) = fc.plan.ssd_spec(i as usize) {
                        ssd.arm_faults(spec.clone(), FaultPlan::device_rng(cfg.seed, i as usize));
                    }
                }
                Pipeline::with_core(
                    SsdId(i),
                    ssd,
                    cfg.scheme.make_policy(SsdId(i), cfg.gimbal_params),
                    PipelineConfig {
                        cpu_cost,
                        null_device: false,
                        cache: cfg.cache.clone(),
                        broker: broker.clone(),
                    },
                    sched.core_rc(sched.home(i as usize)),
                )
            })
            .collect();
        if trace.is_enabled() {
            for p in &mut pipelines {
                p.attach_trace(trace.clone());
            }
        }

        let workers: Vec<Worker> = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| Worker {
                stream: gimbal_workload::FioStream::new(spec.fio, root_rng.fork(i as u64)),
                client: cfg.scheme.make_client(),
                tx_port: Port::new(cfg.fabric.port_bandwidth),
                outstanding: 0,
                started: false,
                retry_pending: false,
                read_hist: Histogram::new(),
                write_hist: Histogram::new(),
                ops: 0,
                bytes: 0,
                meter: Meter::new(SimDuration::from_millis(10), 10),
                series: TimeSeries::new(),
                spec,
            })
            .collect();

        let target_ports = (0..cfg.num_ssds)
            .map(|_| Port::new(cfg.fabric.port_bandwidth))
            .collect();
        let device_hist = (0..cfg.num_ssds)
            .map(|_| [Histogram::new(), Histogram::new()])
            .collect();
        let traces = (0..cfg.num_ssds).map(|_| GimbalTrace::default()).collect();
        let dev_lat_ewma = (0..cfg.num_ssds)
            .map(|_| [gimbal_sim::Ewma::new(0.2), gimbal_sim::Ewma::new(0.2)])
            .collect();
        let dev_meter = (0..cfg.num_ssds)
            .map(|_| Meter::new(SimDuration::from_millis(10), 10))
            .collect();
        let device_series = (0..cfg.num_ssds).map(|_| DeviceSeries::default()).collect();
        let faults = cfg.faults.as_ref().map(|fc| FaultRt {
            injector: FaultInjector::new(fc.plan.clone(), cfg.seed),
            retry: fc.retry,
            tracked: DetMap::new(),
            arena: IoArena::new(),
        });

        Engine {
            delays: RdmaDelays::new(cfg.fabric),
            wake_at: vec![SimTime::MAX; cfg.num_ssds as usize],
            queue: EventQueue::new(),
            next_cmd: 0,
            workers,
            pipelines,
            target_ports,
            device_hist,
            traces,
            dev_lat_ewma,
            dev_meter,
            device_series,
            submissions: Vec::new(),
            faults,
            counters: FaultCounters::default(),
            events_processed: 0,
            obs_buf: Vec::new(),
            tracer,
            trace,
            sanitizer,
            broker,
            sched,
            #[cfg(test)]
            perturb_powerloss_pump: false,
            cfg,
        }
    }

    fn duration(&self) -> SimTime {
        SimTime::ZERO + self.cfg.duration
    }

    /// Whether an instant falls inside a worker's measured window.
    fn in_window(&self, w: usize, at: SimTime) -> bool {
        let spec = &self.workers[w].spec;
        let lo = spec.start.max(SimTime::ZERO + self.cfg.warmup);
        let hi = spec.stop.unwrap_or(SimTime::MAX).min(self.duration());
        at >= lo && at < hi
    }

    fn measured_window(&self, w: usize) -> SimDuration {
        let spec = &self.workers[w].spec;
        let lo = spec.start.max(SimTime::ZERO + self.cfg.warmup);
        let hi = spec.stop.unwrap_or(self.duration()).min(self.duration());
        if hi > lo {
            hi.since(lo)
        } else {
            SimDuration::ZERO
        }
    }

    fn try_issue(&mut self, wi: usize, now: SimTime) {
        let stop = self.workers[wi].spec.stop.unwrap_or(SimTime::MAX);
        if !self.workers[wi].started || now >= stop || now >= self.duration() {
            return;
        }
        loop {
            let w = &mut self.workers[wi];
            if w.outstanding >= w.spec.fio.queue_depth {
                break;
            }
            if !w.client.can_submit(w.outstanding, now) {
                break; // resumed by the next completion
            }
            match w.stream.rate_gate(now) {
                Ok(()) => {}
                Err(at) => {
                    if !w.retry_pending {
                        w.retry_pending = true;
                        self.queue.push(at, Ev::TryIssue(wi));
                    }
                    break;
                }
            }
            let io = w.stream.next_io(now);
            let cmd = NvmeCmd {
                id: CmdId(self.next_cmd),
                tenant: TenantId(wi as u32),
                ssd: SsdId(w.spec.ssd),
                opcode: io.op,
                lba: io.lba,
                len: io.len as u32,
                priority: w.spec.priority,
                issued_at: now,
                wal: None,
            };
            self.next_cmd += 1;
            self.sanitizer
                .record(now.as_nanos(), "engine.issue", "submit", cmd.id.0);
            if self.cfg.record_submissions {
                self.submissions.push(SubmissionRecord {
                    at_ns: now.as_nanos(),
                    cmd: cmd.id.0,
                    tenant: cmd.tenant.0,
                    opcode: if cmd.opcode.is_write() { 1 } else { 0 },
                    lba: cmd.lba,
                    len: cmd.len,
                });
            }
            w.outstanding += 1;
            w.client.on_submit(now);
            self.counters.submitted += 1;
            // Fabric: capsule, then payload fetch for non-inlined writes.
            let ssd = w.spec.ssd as usize;
            let mut arrive = self.delays.command_arrival(&mut w.tx_port, now, &cmd);
            if cmd.opcode.is_write() {
                arrive = self
                    .delays
                    .write_payload_fetched(&mut w.tx_port, arrive, &cmd);
            }
            if let Some(f) = self.faults.as_mut() {
                let h = f.arena.alloc(CmdTrack {
                    cmd,
                    worker: wi,
                    ssd,
                    attempt: 0,
                    delivered: false,
                    done_cpl: None,
                });
                f.tracked.insert(cmd.id.0, h);
                self.queue.push(
                    now + f.retry.timeout_for(0),
                    Ev::Timeout {
                        cmd: cmd.id.0,
                        attempt: 0,
                    },
                );
                if f.injector.drop_command(now) {
                    // Lost in the fabric: the timer retransmits.
                    self.counters.cmd_capsules_dropped += 1;
                    self.trace.record(
                        now,
                        cmd.ssd,
                        Some(cmd.tenant),
                        EventKind::FaultInjected {
                            capsule: CapsuleKind::Command,
                        },
                    );
                    continue;
                }
            }
            self.queue.push(arrive, Ev::DeliverCmd { ssd, cmd });
        }
    }

    /// Transmit a completion capsule from the target's port, subject to
    /// completion-loss injection. `at` is the instant the capsule leaves.
    fn send_completion(&mut self, ssd: usize, cmd: &NvmeCmd, cpl: NvmeCompletion, at: SimTime) {
        let arrive = self
            .delays
            .completion_arrival(&mut self.target_ports[ssd], at, cmd);
        if let Some(f) = self.faults.as_mut() {
            if f.injector.drop_completion(at) {
                self.counters.cpl_capsules_dropped += 1;
                self.trace.record(
                    at,
                    cmd.ssd,
                    Some(cmd.tenant),
                    EventKind::FaultInjected {
                        capsule: CapsuleKind::Completion,
                    },
                );
                return;
            }
        }
        self.queue.push(
            arrive,
            Ev::DeliverCpl {
                worker: cmd.tenant.index(),
                cpl,
            },
        );
    }

    /// Open a poll quantum for `ssd`: the scheduler picks the executing
    /// core (home, or an idle thief when stealing is on), the pipeline is
    /// repointed at it, and any steal decision is stamped into the
    /// divergence journal ahead of the quantum's own records. Re-entry at
    /// the same tick reuses the decision, so the command-arrival charge and
    /// the pump that follows land on one core.
    fn begin_quantum(&mut self, ssd: usize, now: SimTime) -> Quantum {
        let q = self.sched.begin(ssd, now);
        let core = self.sched.core_rc(q.core());
        self.pipelines[ssd].set_core(core);
        self.drain_cores_journal(now);
        q
    }

    /// Forward queued core-scheduler decisions (steals, home moves) into
    /// the divergence journal under component `cores`. Empty — and free —
    /// when stealing is off.
    fn drain_cores_journal(&mut self, now: SimTime) {
        for (op, key) in self.sched.drain_journal() {
            self.sanitizer.record(now.as_nanos(), "cores", op, key);
        }
    }

    /// Poll a pipeline, route its completion capsules, reschedule its wake.
    fn pump(&mut self, ssd: usize, now: SimTime) {
        let q = self.begin_quantum(ssd, now);
        self.sanitizer
            .record(now.as_nanos(), "switch.pipeline", "pump", ssd as u64);
        self.pipelines[ssd].poll(now);
        self.drain_broker_journal(now);
        for out in self.pipelines[ssd].take_outputs() {
            // Journal at `now` (the poll step), not `out.at`: ticks must be
            // monotone and the capsule's departure lies in the future.
            self.sanitizer
                .record(now.as_nanos(), "switch.pipeline", "complete", out.cmd.id.0);
            if out.served_from_cache {
                // The SSD never saw this read: its DRAM-copy latency must
                // not pollute the device-latency signals (histograms, the
                // EWMA Gimbal-style monitors sample, the device meter).
                self.counters.cache_served += 1;
            } else {
                let lat_ns = out.device_latency.as_nanos();
                self.device_hist[ssd][out.cmd.opcode.index()].record(lat_ns);
                if self.trace.is_enabled() {
                    // Buffered for one observe_many flush after the loop:
                    // one tracer borrow per pump instead of one per IO.
                    // Samples keep their order, so digests are unchanged.
                    self.obs_buf.push((out.cmd.tenant, lat_ns));
                }
                self.dev_lat_ewma[ssd][out.cmd.opcode.index()].update(lat_ns as f64 / 1e3);
                self.dev_meter[ssd].record(now, out.cmd.len_bytes());
            }
            let cpl = NvmeCompletion {
                id: out.cmd.id,
                tenant: out.cmd.tenant,
                ssd: out.cmd.ssd,
                opcode: out.cmd.opcode,
                len: out.cmd.len,
                status: out.status,
                credit: out.credit,
                issued_at: out.cmd.issued_at,
                completed_at: out.at,
            };
            if let Some(f) = self.faults.as_mut() {
                // Cache for replay dedup. A missing entry means the
                // initiator already abandoned the command; the capsule
                // still travels and is ignored on arrival.
                if let Some(&h) = f.tracked.get(&cpl.id.0) {
                    f.arena.get_mut(h).expect("tracked handle is live").done_cpl = Some(cpl);
                }
            }
            self.send_completion(ssd, &out.cmd, cpl, out.at);
        }
        if !self.obs_buf.is_empty() {
            self.trace.observe_many("device_latency_ns", &self.obs_buf);
            self.obs_buf.clear();
        }
        if let Some(t) = self.pipelines[ssd].next_event_at() {
            let t = t.max(now + SimDuration::from_nanos(1));
            // Only schedule a wake if no earlier one is already pending;
            // that wake's pump will reschedule as needed.
            if t < self.wake_at[ssd] {
                self.wake_at[ssd] = t;
                self.queue.push(t, Ev::PipelineWake(ssd));
            }
        }
        self.sched.end(ssd, q);
    }

    fn sample(&mut self, now: SimTime) {
        for w in &mut self.workers {
            let bps = w.meter.rate_bytes_per_sec(now);
            w.series.push(now, bps);
        }
        for i in 0..self.pipelines.len() {
            let ds = &mut self.device_series[i];
            if let Some(r) = self.dev_lat_ewma[i][0].get() {
                ds.read_lat_us.push(now, r);
            }
            if let Some(w) = self.dev_lat_ewma[i][1].get() {
                ds.write_lat_us.push(now, w);
            }
            ds.bandwidth_bps
                .push(now, self.dev_meter[i].rate_bytes_per_sec(now));
        }
        for (i, p) in self.pipelines.iter().enumerate() {
            if let Some(g) = p.policy().as_any().downcast_ref::<GimbalPolicy>() {
                let tr = &mut self.traces[i];
                tr.target_rate.push(now, g.target_rate());
                tr.write_cost.push(now, g.current_write_cost());
                let rm = g.monitor(IoType::Read);
                tr.read_ewma_us.push(now, rm.ewma_ns() / 1e3);
                tr.read_thresh_us.push(now, rm.thresh_ns() / 1e3);
                let wm = g.monitor(IoType::Write);
                tr.write_ewma_us.push(now, wm.ewma_ns() / 1e3);
                tr.write_thresh_us.push(now, wm.thresh_ns() / 1e3);
            }
        }
    }

    /// Forward queued broker ledger decisions into the divergence journal.
    /// The ledger cannot see the event tick from inside a pipeline poll, so
    /// it queues records and the engine stamps them here — keeping journal
    /// ticks monotone while preserving decision order.
    fn drain_broker_journal(&mut self, now: SimTime) {
        let Some(b) = &self.broker else { return };
        for (op, key) in b.drain_journal() {
            self.sanitizer.record(now.as_nanos(), "broker", op, key);
        }
    }

    /// One broker settlement boundary: repay all debts, forgive departures
    /// (stopped workers, failed SSDs), optionally migrate tenants per the
    /// placement planner, then pump every pipeline — settlement restores
    /// lender balances, so parked requests may now clear the gate.
    fn broker_epoch(&mut self, now: SimTime) {
        let Some(broker) = self.broker.clone() else {
            return;
        };
        // Active tenant sets per live SSD. A failed SSD drops out entirely,
        // so every account and debt touching it is forgiven at settlement.
        let mut active: Vec<(SsdId, Vec<TenantId>)> = Vec::new();
        for ssd in 0..self.pipelines.len() {
            if self.pipelines[ssd].device().is_failed() {
                continue;
            }
            let mut tenants: Vec<TenantId> = Vec::new();
            for (wi, w) in self.workers.iter().enumerate() {
                if w.spec.ssd as usize == ssd && w.spec.stop.is_none_or(|s| now < s) {
                    tenants.push(TenantId(wi as u32));
                }
            }
            active.push((SsdId(ssd as u32), tenants));
        }
        broker.settle_epoch(now, &active);
        if self.cfg.broker.as_ref().is_some_and(|b| b.placement) {
            let telem = self.ssd_telemetry(now);
            for m in broker.plan_migrations(&telem) {
                broker.apply_migration(&m, now);
                // The worker's future commands target the new SSD; the
                // in-flight tail drains at the old one.
                self.workers[m.tenant.index()].spec.ssd = m.to.0;
            }
        }
        broker.end_epoch();
        self.drain_broker_journal(now);
        for ssd in 0..self.pipelines.len() {
            self.pump(ssd, now);
        }
        let epoch = self.cfg.broker.as_ref().expect("broker cfg").epoch;
        self.queue.push(now + epoch, Ev::BrokerEpoch);
    }

    /// Interference telemetry per SSD for the placement planner: liveness
    /// and GC state from the device; congestion and write cost from the
    /// Gimbal latency monitors when that policy runs (neutral defaults for
    /// the baseline schemes).
    fn ssd_telemetry(&self, now: SimTime) -> Vec<SsdTelemetry> {
        self.pipelines
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let (congested, write_cost_milli) =
                    match p.policy().as_any().downcast_ref::<GimbalPolicy>() {
                        Some(g) => {
                            let rm = g.monitor(IoType::Read);
                            let wm = g.monitor(IoType::Write);
                            let congested =
                                rm.ewma_ns() > rm.thresh_ns() || wm.ewma_ns() > wm.thresh_ns();
                            let wc = (g.current_write_cost() * 1000.0) as u64;
                            (congested, wc.max(1000))
                        }
                        None => (false, 1000),
                    };
                SsdTelemetry {
                    ssd: SsdId(i as u32),
                    alive: !p.device().is_failed(),
                    gc_busy: p.device().gc_busy(now),
                    congested,
                    write_cost_milli,
                }
            })
            .collect()
    }

    fn run(mut self) -> RunResult {
        for i in 0..self.workers.len() {
            let at = self.workers[i].spec.start;
            self.queue.push(at, Ev::WorkerStart(i));
        }
        if let Some(step) = self.cfg.sample_interval {
            self.queue.push(SimTime::ZERO + step, Ev::Sample);
        }
        if let Some(at) = self.cfg.faults.as_ref().and_then(|f| f.plan.power_loss_at) {
            self.queue.push(at, Ev::PowerLoss);
        }
        if let Some(bc) = &self.cfg.broker {
            self.queue.push(SimTime::ZERO + bc.epoch, Ev::BrokerEpoch);
        }
        if let Some(e) = self.sched.rebalance_epoch() {
            self.queue.push(SimTime::ZERO + e, Ev::CoresRebalance);
        }
        let end = self.duration();
        let debug = std::env::var("GIMBAL_ENGINE_DEBUG").is_ok(); // lint: allow(ambient-time-env, owner=testbed, expires=2028-08-01) — debug tracing toggle only, never affects simulation state
        let mut last_report = 0u64;
        while let Some((now, ev)) = self.queue.pop() {
            if now > end {
                break;
            }
            self.events_processed += 1;
            if debug && now.as_nanos() / 100_000_000 != last_report {
                last_report = now.as_nanos() / 100_000_000;
                eprintln!(
                    "t={now} queue={} pipes={:?} outs={:?}",
                    self.queue.len(),
                    self.pipelines
                        .iter()
                        .map(|p| p.in_progress())
                        .collect::<Vec<_>>(),
                    self.workers
                        .iter()
                        .map(|w| w.outstanding)
                        .collect::<Vec<_>>(),
                );
            }
            if self.sanitizer.is_enabled() {
                let (component, op, key) = match &ev {
                    Ev::WorkerStart(i) => ("engine.worker", "start", *i as u64),
                    Ev::TryIssue(i) => ("engine.worker", "try_issue", *i as u64),
                    Ev::DeliverCmd { cmd, .. } => ("engine.fabric", "deliver_cmd", cmd.id.0),
                    Ev::PipelineWake(ssd) => ("engine.wake", "wake", *ssd as u64),
                    Ev::DeliverCpl { cpl, .. } => ("engine.fabric", "deliver_cpl", cpl.id.0),
                    Ev::Timeout { cmd, .. } => ("engine.fault", "timeout", *cmd),
                    Ev::PowerLoss => ("engine.fault", "power_loss", 0),
                    Ev::BrokerEpoch => ("engine.broker", "epoch", 0),
                    Ev::CoresRebalance => ("engine.cores", "rebalance", 0),
                    Ev::Sample => ("engine.sample", "sample", 0),
                };
                self.sanitizer.record(now.as_nanos(), component, op, key);
            }
            match ev {
                Ev::WorkerStart(i) => {
                    self.workers[i].started = true;
                    self.try_issue(i, now);
                }
                Ev::TryIssue(i) => {
                    self.workers[i].retry_pending = false;
                    self.try_issue(i, now);
                }
                Ev::DeliverCmd { ssd, cmd } => {
                    let action = match self.faults.as_mut() {
                        None => CmdAction::Execute,
                        Some(f) => match f.tracked.get(&cmd.id.0).copied() {
                            // Initiator already gave up on it: late replay.
                            None => CmdAction::Duplicate,
                            Some(h) => {
                                let t = f.arena.get_mut(h).expect("tracked handle is live");
                                match t.done_cpl {
                                    Some(cpl) => CmdAction::Resend(cpl),
                                    None if t.delivered => CmdAction::Duplicate,
                                    None => {
                                        t.delivered = true;
                                        CmdAction::Execute
                                    }
                                }
                            }
                        },
                    };
                    match action {
                        CmdAction::Execute => {
                            // The submit-path CPU charge must land on the
                            // quantum's core, so the scheduler decides
                            // before the command enters the pipeline; the
                            // pump below re-enters the same quantum.
                            let q = self.begin_quantum(ssd, now);
                            self.pipelines[ssd].on_command(cmd, now);
                            // Batched submission: coalesce the immediately
                            // following same-instant arrivals for this SSD
                            // into the open quantum — one scheduler decision
                            // and one pump per batch instead of per IO. Only
                            // fault-free (replay dedup can turn an arrival
                            // into a resend mid-batch), and only while the
                            // pipeline has nothing else due at `now`: an
                            // intermediate completion must interleave
                            // exactly as the unbatched engine would.
                            if self.cfg.batch > 1 && self.faults.is_none() {
                                let mut n = 1;
                                while n < self.cfg.batch
                                    && self.pipelines[ssd].next_event_at().is_none_or(|t| t > now)
                                {
                                    let Some(ev) = self.queue.pop_if_at(
                                        now,
                                        |e| matches!(e, Ev::DeliverCmd { ssd: s, .. } if *s == ssd),
                                    ) else {
                                        break;
                                    };
                                    let Ev::DeliverCmd { cmd, .. } = ev else {
                                        unreachable!("pop_if_at matched DeliverCmd")
                                    };
                                    self.events_processed += 1;
                                    self.sanitizer.record(
                                        now.as_nanos(),
                                        "engine.fabric",
                                        "deliver_cmd",
                                        cmd.id.0,
                                    );
                                    self.pipelines[ssd].on_command(cmd, now);
                                    n += 1;
                                }
                            }
                            self.sched.end(ssd, q);
                            self.pump(ssd, now);
                        }
                        CmdAction::Duplicate => self.counters.duplicate_cmds_ignored += 1,
                        CmdAction::Resend(cpl) => {
                            self.counters.completions_resent += 1;
                            self.send_completion(ssd, &cmd, cpl, now);
                        }
                    }
                }
                Ev::PipelineWake(ssd) => {
                    // Only the currently armed wake may pump; superseded
                    // (stale) wakes die here, otherwise they would respawn
                    // forever and flood the queue.
                    if self.wake_at[ssd] == now {
                        self.wake_at[ssd] = SimTime::MAX;
                        self.pump(ssd, now);
                    }
                }
                Ev::DeliverCpl { worker, cpl } => {
                    if let Some(f) = self.faults.as_mut() {
                        match f.tracked.remove(&cpl.id.0) {
                            None => {
                                // The command was already abandoned (final
                                // timeout): its outstanding slot is gone.
                                self.counters.stale_completions_ignored += 1;
                                continue;
                            }
                            Some(h) => {
                                // Terminal: recycle the record (the freed
                                // handle goes stale atomically).
                                f.arena.free(h).expect("tracked handle is live");
                            }
                        }
                    }
                    {
                        let in_window = self.in_window(worker, now);
                        let w = &mut self.workers[worker];
                        w.outstanding -= 1;
                        // Even error completions reach the client: they
                        // carry the credit grant that re-syncs §3.6 flow
                        // control after losses.
                        w.client.on_completion(&cpl, now);
                        if let Some(credit) = cpl.credit {
                            self.trace.record(
                                now,
                                cpl.ssd,
                                Some(cpl.tenant),
                                EventKind::CreditGranted { credit },
                            );
                        }
                        if cpl.status.is_success() {
                            self.counters.completed_ok += 1;
                            w.meter.record(now, u64::from(cpl.len));
                            if in_window {
                                w.ops += 1;
                                w.bytes += u64::from(cpl.len);
                                let e2e = now.since(cpl.issued_at);
                                match cpl.opcode {
                                    IoType::Read => w.read_hist.record_duration(e2e),
                                    IoType::Write => w.write_hist.record_duration(e2e),
                                }
                            }
                        } else {
                            // Failed IOs move no payload: they are
                            // accounted, not measured as throughput.
                            self.counters.completed_err += 1;
                        }
                    }
                    self.try_issue(worker, now);
                }
                Ev::Timeout { cmd, attempt } => {
                    let Some(f) = self.faults.as_mut() else {
                        continue;
                    };
                    let (track_cmd, worker, ssd, cur_attempt) = match f.tracked.get(&cmd).copied() {
                        None => continue, // already terminal
                        Some(h) => {
                            let t = f.arena.get(h).expect("tracked handle is live");
                            if t.attempt != attempt {
                                continue; // superseded timer
                            }
                            (t.cmd, t.worker, t.ssd, t.attempt)
                        }
                    };
                    if f.retry.exhausted(cur_attempt) {
                        // Out of retries: the command errors out
                        // client-side. Its grant is presumed lost, so the
                        // client shrinks its window (re-synced by the next
                        // surviving completion).
                        if let Some(h) = f.tracked.remove(&cmd) {
                            f.arena.free(h).expect("tracked handle is live");
                        }
                        self.counters.timed_out += 1;
                        self.trace.record(
                            now,
                            track_cmd.ssd,
                            Some(track_cmd.tenant),
                            EventKind::TimedOut {
                                cmd,
                                attempts: cur_attempt,
                            },
                        );
                        let w = &mut self.workers[worker];
                        w.outstanding -= 1;
                        let before = w.client.allowance();
                        w.client.on_timeout(now);
                        let after = w.client.allowance();
                        if after != before {
                            self.trace.record(
                                now,
                                track_cmd.ssd,
                                Some(track_cmd.tenant),
                                EventKind::CreditHalved { before, after },
                            );
                        }
                        self.try_issue(worker, now);
                        continue;
                    }
                    let next = cur_attempt + 1;
                    if let Some(&h) = f.tracked.get(&cmd) {
                        f.arena.get_mut(h).expect("tracked handle is live").attempt = next;
                    }
                    self.counters.retries += 1;
                    let deadline = now + f.retry.timeout_for(next);
                    self.trace.record(
                        now,
                        track_cmd.ssd,
                        Some(track_cmd.tenant),
                        EventKind::RetryScheduled {
                            cmd,
                            attempt: next,
                            timeout_ns: deadline.since(now).as_nanos(),
                        },
                    );
                    self.queue
                        .push(deadline, Ev::Timeout { cmd, attempt: next });
                    // Retransmit through the worker's port; the target
                    // dedups replays and resends cached completions.
                    let w = &mut self.workers[worker];
                    let mut arrive = self.delays.command_arrival(&mut w.tx_port, now, &track_cmd);
                    if track_cmd.opcode.is_write() {
                        arrive =
                            self.delays
                                .write_payload_fetched(&mut w.tx_port, arrive, &track_cmd);
                    }
                    if let Some(f) = self.faults.as_mut() {
                        if f.injector.drop_command(now) {
                            self.counters.cmd_capsules_dropped += 1;
                            self.trace.record(
                                now,
                                track_cmd.ssd,
                                Some(track_cmd.tenant),
                                EventKind::FaultInjected {
                                    capsule: CapsuleKind::Command,
                                },
                            );
                            continue;
                        }
                    }
                    self.queue.push(
                        arrive,
                        Ev::DeliverCmd {
                            ssd,
                            cmd: track_cmd,
                        },
                    );
                }
                Ev::PowerLoss => {
                    #[allow(unused_mut)]
                    let mut order: Vec<usize> = (0..self.pipelines.len()).collect();
                    #[cfg(test)]
                    if self.perturb_powerloss_pump {
                        order.reverse();
                    }
                    for ssd in order {
                        self.pipelines[ssd].power_loss(now);
                        self.pump(ssd, now);
                    }
                }
                Ev::BrokerEpoch => self.broker_epoch(now),
                Ev::CoresRebalance => {
                    self.sched.rebalance(now);
                    self.drain_cores_journal(now);
                    if let Some(e) = self.sched.rebalance_epoch() {
                        self.queue.push(now + e, Ev::CoresRebalance);
                    }
                }
                Ev::Sample => {
                    self.sample(now);
                    if let Some(step) = self.cfg.sample_interval {
                        self.queue.push(now + step, Ev::Sample);
                    }
                }
            }
        }

        // Commands still on the wire or in a device when the clock ran out.
        self.counters.in_flight_at_end =
            self.workers.iter().map(|w| u64::from(w.outstanding)).sum();
        debug_assert!(
            self.counters.conservation_holds(),
            "command conservation violated: {:?}",
            self.counters
        );

        // Export fabric-port utilization counters as whole-run gauges.
        if self.trace.is_enabled() {
            let (mut ib, mut im) = (0u64, 0u64);
            for w in &self.workers {
                ib += w.tx_port.bytes_sent();
                im += w.tx_port.messages_sent();
            }
            let (mut tb, mut tm) = (0u64, 0u64);
            for p in &self.target_ports {
                tb += p.bytes_sent();
                tm += p.messages_sent();
            }
            self.trace.set_gauge("initiator_bytes_sent", ib as f64);
            self.trace.set_gauge("initiator_messages_sent", im as f64);
            self.trace.set_gauge("target_bytes_sent", tb as f64);
            self.trace.set_gauge("target_messages_sent", tm as f64);
        }
        let trace = self.tracer.take().map(|t| t.borrow_mut().finish());

        let windows: Vec<SimDuration> = (0..self.workers.len())
            .map(|i| self.measured_window(i))
            .collect();
        let workers = self
            .workers
            .into_iter()
            .zip(windows)
            .map(|(w, window)| WorkerResult {
                label: w.spec.label,
                ops: w.ops,
                bytes: w.bytes,
                window,
                read_latency: w.read_hist.summary(),
                write_latency: w.write_hist.summary(),
                series: w.series,
            })
            .collect();
        let ssd_stats = self.pipelines.iter().map(|p| p.device().stats()).collect();
        let device_latency: Vec<[LatencySummary; 2]> = self
            .device_hist
            .iter()
            .map(|h| [h[0].summary(), h[1].summary()])
            .collect();
        // Per-SSD cache counters and typed staged-loss records, in pipeline
        // order; both stay empty on cache-off runs so digests are untouched.
        let cache: Vec<gimbal_cache::CacheStats> = self
            .pipelines
            .iter()
            .filter_map(|p| p.cache_stats())
            .collect();
        let cache_losses: Vec<gimbal_cache::StagedWriteLoss> = self
            .pipelines
            .iter()
            .flat_map(|p| p.cache_losses().iter().copied())
            .collect();
        // Write-back counters and durability journals, only under
        // `WritePolicy::Back` so write-through results stay bit-identical.
        let mut write_back = Vec::new();
        let mut journals = Vec::new();
        for p in &self.pipelines {
            if let Some(c) = p
                .cache()
                .filter(|c| c.write_policy() == gimbal_cache::WritePolicy::Back)
            {
                let wb = c.write_back_stats();
                debug_assert!(
                    wb.conservation_holds(),
                    "write-back line conservation violated: {wb:?}"
                );
                write_back.push(wb);
                journals.push(c.journal().to_vec());
            }
        }
        // Broker conservation must hold at every exit, not only in tests.
        if let Some(b) = &self.broker {
            b.audit();
        }
        let broker = self.broker.as_ref().map(|b| b.stats());
        // Scheduler counters exist only when stealing was configured, so
        // steal-off digests are bit-identical to pre-scheduler builds.
        let cores = self.cfg.steal.as_ref().map(|_| self.sched.stats());
        let access_journal = self.sanitizer.snapshot();
        RunResult {
            workers,
            ssd_stats,
            device_latency,
            gimbal_traces: self.traces,
            device_series: self.device_series,
            submissions: self.submissions,
            faults: self.counters,
            trace,
            cache,
            cache_losses,
            write_back,
            journals,
            access_journal,
            broker,
            cores,
            events_processed: self.events_processed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FaultConfig;
    use crate::scheme::Scheme;
    use gimbal_cores::StealConfig;
    use gimbal_sim::journal::first_divergence;
    use gimbal_workload::FioSpec;

    fn region(i: u32, n: u32, cap_blocks: u64) -> (u64, u64) {
        let per = cap_blocks / u64::from(n);
        (u64::from(i) * per, per)
    }

    fn base_cfg(scheme: Scheme, pre: Precondition) -> TestbedConfig {
        TestbedConfig {
            scheme,
            precondition: pre,
            duration: SimDuration::from_millis(800),
            warmup: SimDuration::from_millis(300),
            ..TestbedConfig::default()
        }
    }

    fn workers(n: u32, read_ratio: f64, io: u64, cap_blocks: u64) -> Vec<WorkerSpec> {
        (0..n)
            .map(|i| {
                let (start, blocks) = region(i, n, cap_blocks);
                WorkerSpec::new(
                    format!("w{i}"),
                    FioSpec::paper_default(read_ratio, io, start, blocks),
                )
            })
            .collect()
    }

    const CAP_BLOCKS: u64 = 512 * 1024 * 1024 / 4096;

    #[test]
    fn vanilla_single_reader_saturates_reads() {
        let cfg = base_cfg(Scheme::Vanilla, Precondition::Clean);
        let res = Testbed::new(cfg, workers(1, 1.0, 128 * 1024, CAP_BLOCKS)).run();
        let w = &res.workers[0];
        // One QD4 128 KB reader: decent but sub-peak bandwidth.
        assert!(
            w.bandwidth_mbps() > 1200.0,
            "128K QD4 reader: {:.0} MB/s",
            w.bandwidth_mbps()
        );
        assert!(w.read_latency.count > 1000);
        assert!(w.write_latency.count == 0);
    }

    #[test]
    fn gimbal_multi_tenant_read_fairness() {
        let cfg = TestbedConfig {
            duration: SimDuration::from_secs(2),
            warmup: SimDuration::from_millis(800),
            ..base_cfg(Scheme::Gimbal, Precondition::Fragmented)
        };
        let res = Testbed::new(cfg, workers(4, 1.0, 4096, CAP_BLOCKS)).run();
        let bws: Vec<f64> = res.workers.iter().map(|w| w.bandwidth_mbps()).collect();
        let total: f64 = bws.iter().sum();
        assert!(total > 800.0, "aggregate 4K read {total:.0} MB/s");
        let min = bws.iter().cloned().fold(f64::MAX, f64::min);
        let max = bws.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.35, "fair split: {bws:?}");
    }

    #[test]
    fn parda_clients_window_down_under_contention() {
        let cfg = base_cfg(Scheme::Parda, Precondition::Fragmented);
        let res = Testbed::new(cfg, workers(8, 1.0, 4096, CAP_BLOCKS)).run();
        let total: f64 = res.workers.iter().map(|w| w.bandwidth_mbps()).sum();
        assert!(total > 100.0, "parda makes progress: {total:.0} MB/s");
        // End-to-end p99 stays bounded (client-side backpressure).
        for w in &res.workers {
            assert!(
                w.read_latency.p99_us() < 5_000.0,
                "{}: p99 {:.0}us",
                w.label,
                w.read_latency.p99_us()
            );
        }
    }

    #[test]
    fn dynamic_worker_windows_are_honored() {
        let cfg = TestbedConfig {
            sample_interval: Some(SimDuration::from_millis(50)),
            ..base_cfg(Scheme::Gimbal, Precondition::Clean)
        };
        let cap = CAP_BLOCKS;
        let late = WorkerSpec::new("late", FioSpec::paper_default(1.0, 4096, 0, cap / 2))
            .active(SimTime::from_millis(400), None);
        let early = WorkerSpec::new("early", FioSpec::paper_default(1.0, 4096, cap / 2, cap / 2))
            .active(SimTime::ZERO, Some(SimTime::from_millis(400)));
        let res = Testbed::new(cfg, vec![late, early]).run();
        // Early worker only has 300→400 ms in window; late has 400→800 ms.
        assert!(res.workers[0].ops > 0);
        assert!(res.workers[1].ops > 0);
        assert!(res.workers[0].window > res.workers[1].window);
        assert!(!res.workers[0].series.is_empty());
    }

    #[test]
    fn gimbal_traces_are_recorded_when_sampling() {
        let cfg = TestbedConfig {
            sample_interval: Some(SimDuration::from_millis(20)),
            ..base_cfg(Scheme::Gimbal, Precondition::Clean)
        };
        let res = Testbed::new(cfg, workers(2, 1.0, 128 * 1024, CAP_BLOCKS)).run();
        let tr = &res.gimbal_traces[0];
        assert!(!tr.target_rate.is_empty());
        assert!(!tr.read_thresh_us.is_empty());
        // Threshold stays within [Thresh_min, Thresh_max].
        for &(_, v) in tr.read_thresh_us.points() {
            assert!((250.0..=1500.0).contains(&v), "thresh {v}us");
        }
        // Write cost is 9 throughout a read-only run.
        for &(_, v) in tr.write_cost.points() {
            assert_eq!(v, 9.0);
        }
    }

    #[test]
    fn non_gimbal_schemes_have_empty_traces() {
        let cfg = TestbedConfig {
            sample_interval: Some(SimDuration::from_millis(50)),
            ..base_cfg(Scheme::FlashFq, Precondition::Clean)
        };
        let res = Testbed::new(cfg, workers(1, 1.0, 4096, CAP_BLOCKS)).run();
        assert!(res.gimbal_traces[0].target_rate.is_empty());
        assert!(!res.workers[0].series.is_empty());
    }

    #[test]
    fn device_stats_reflect_write_amplification() {
        let cfg = TestbedConfig {
            duration: SimDuration::from_millis(600),
            ..base_cfg(Scheme::Vanilla, Precondition::Fragmented)
        };
        let res = Testbed::new(cfg, workers(4, 0.0, 4096, CAP_BLOCKS)).run();
        assert!(
            res.ssd_stats[0].write_amplification() > 1.5,
            "WA {:.2}",
            res.ssd_stats[0].write_amplification()
        );
        assert!(
            res.device_latency[0][1].count > 0,
            "write latencies observed"
        );
    }

    #[test]
    #[should_panic(expected = "missing SSD")]
    fn rejects_worker_on_missing_ssd() {
        let cfg = base_cfg(Scheme::Vanilla, Precondition::None);
        let w = WorkerSpec::new("w", FioSpec::paper_default(1.0, 4096, 0, 1024)).on_ssd(3);
        Testbed::new(cfg, vec![w]);
    }

    /// Injected nondeterminism, localized: reversing the pipeline pump
    /// order at the power-loss tick is exactly the class of bug the
    /// sanitizer exists for. The comparator must name the power-loss tick
    /// itself (not any later symptom) and the pipeline pump entry where the
    /// orders first differ.
    #[test]
    fn sanitizer_localizes_injected_pump_order_nondeterminism() {
        let loss_at = SimTime::ZERO + SimDuration::from_millis(200);
        let cfg = TestbedConfig {
            num_ssds: 2,
            cores: 2,
            sanitize: true,
            duration: SimDuration::from_millis(400),
            warmup: SimDuration::from_millis(100),
            faults: Some(FaultConfig {
                plan: FaultPlan {
                    power_loss_at: Some(loss_at),
                    ..FaultPlan::default()
                },
                retry: RetryConfig::default(),
            }),
            ..base_cfg(Scheme::Gimbal, Precondition::Clean)
        };
        let run = |perturb: bool| {
            let mut specs = workers(2, 0.5, 4096, CAP_BLOCKS);
            specs[1].ssd = 1;
            let mut e = Engine::build(cfg.clone(), specs);
            e.perturb_powerloss_pump = perturb;
            e.run()
        };

        // Control: two clean runs agree entry for entry.
        let a = run(false);
        let a2 = run(false);
        let ja = a.access_journal.as_ref().expect("sanitize was on");
        assert!(!ja.is_empty(), "journal recorded nothing");
        assert_eq!(
            first_divergence(ja, a2.access_journal.as_ref().unwrap()),
            None
        );
        assert_eq!(a.access_digest(), a2.access_digest());

        // Perturbed run: first divergence is the pump-order swap at the
        // power-loss tick, naming the pipeline component and the swapped
        // SSD keys.
        let b = run(true);
        let jb = b.access_journal.as_ref().expect("sanitize was on");
        let r = first_divergence(ja, jb).expect("perturbation must diverge");
        assert_eq!(r.tick, loss_at.as_nanos(), "wrong divergence tick: {r}");
        assert_eq!(r.component(), "switch.pipeline");
        let ea = r.a.expect("entry in clean run");
        let eb = r.b.expect("entry in perturbed run");
        assert_eq!(ea.op, "pump");
        assert_eq!(eb.op, "pump");
        assert_eq!((ea.key, eb.key), (0, 1), "pump order swap: {r}");
    }

    /// Three tenants share one SSD under the broker: a heavy 128 KiB reader
    /// plus two late-starting (hence idle, lendable) tenants. The heavy
    /// tenant must overdraw its entitled third and borrow.
    fn broker_cfg_and_workers(bc: gimbal_broker::BrokerConfig) -> (TestbedConfig, Vec<WorkerSpec>) {
        let cfg = TestbedConfig {
            duration: SimDuration::from_millis(400),
            warmup: SimDuration::from_millis(100),
            broker: Some(bc),
            ..base_cfg(Scheme::Gimbal, Precondition::Clean)
        };
        let per = CAP_BLOCKS / 3;
        let mut specs = vec![WorkerSpec::new(
            "heavy",
            FioSpec::paper_default(1.0, 128 * 1024, 0, per),
        )];
        for i in 1..3u64 {
            specs.push(
                WorkerSpec::new(
                    format!("idle{i}"),
                    FioSpec::paper_default(1.0, 4096, i * per, per),
                )
                .active(SimTime::from_millis(350), None),
            );
        }
        (cfg, specs)
    }

    #[test]
    fn broker_heavy_tenant_borrows_and_ledger_conserves() {
        let (cfg, specs) = broker_cfg_and_workers(gimbal_broker::BrokerConfig::default());
        let res = Testbed::new(cfg, specs).run();
        let b = res.broker.as_ref().expect("broker stats present");
        assert!(b.charged_bytes > 0, "gate charged nothing: {b:?}");
        assert!(b.borrow_events > 0, "heavy tenant never borrowed: {b:?}");
        assert!(b.epochs > 0, "no settlement ran: {b:?}");
        assert!(b.conservation_holds(), "ledger conservation: {b:?}");
        assert_eq!(b.floor_violations, 0);
        // The heavy reader still moves real traffic through the gate.
        assert!(res.workers[0].bandwidth_mbps() > 100.0);
    }

    /// Injected nondeterminism in the broker, localized: flipping the
    /// deterministic lexicographic lender scan is exactly the class of bug
    /// the ledger journal exists for. The comparator must blame the broker
    /// component's first borrow decision, naming the swapped lender keys.
    #[test]
    fn sanitizer_localizes_injected_lender_order_flip() {
        let run = |perturb: bool| {
            let bc = gimbal_broker::BrokerConfig {
                perturb_lender_order: perturb,
                ..gimbal_broker::BrokerConfig::default()
            };
            let (mut cfg, specs) = broker_cfg_and_workers(bc);
            cfg.sanitize = true;
            Engine::build(cfg, specs).run()
        };

        // Control: two clean broker runs agree entry for entry.
        let a = run(false);
        let a2 = run(false);
        let ja = a.access_journal.as_ref().expect("sanitize was on");
        assert!(
            a.broker.as_ref().expect("broker stats").borrow_events > 0,
            "clean run must borrow for the flip to matter"
        );
        assert_eq!(
            first_divergence(ja, a2.access_journal.as_ref().unwrap()),
            None
        );
        assert_eq!(a.access_digest(), a2.access_digest());

        // Perturbed run: the first divergence is the lender pick itself.
        let b = run(true);
        let jb = b.access_journal.as_ref().expect("sanitize was on");
        let r = first_divergence(ja, jb).expect("lender flip must diverge");
        assert_eq!(r.component(), "broker", "wrong component: {r}");
        let ea = r.a.expect("entry in clean run");
        let eb = r.b.expect("entry in perturbed run");
        assert_eq!(ea.op, "borrow");
        assert_eq!(eb.op, "borrow");
        assert_ne!(ea.key, eb.key, "lender keys must differ: {r}");
    }

    /// Skewed placement designed to exercise stealing: four SSDs over three
    /// cores (homes 0,1,2,0) with the only active workers on SSDs 0 and 3 —
    /// both homed on core 0 — so cores 1 and 2 sit idle and eligible to
    /// steal. Three cores matter: a two-core ring has a single thief
    /// candidate, which a ring-order flip cannot change.
    fn steal_cfg_and_workers(steal: StealConfig) -> (TestbedConfig, Vec<WorkerSpec>) {
        let cfg = TestbedConfig {
            num_ssds: 4,
            cores: 3,
            sanitize: true,
            duration: SimDuration::from_millis(400),
            warmup: SimDuration::from_millis(100),
            steal: Some(steal),
            ..base_cfg(Scheme::Gimbal, Precondition::Clean)
        };
        let specs = vec![
            WorkerSpec::new("hot0", FioSpec::paper_default(1.0, 4096, 0, CAP_BLOCKS)),
            WorkerSpec::new("hot3", FioSpec::paper_default(1.0, 4096, 0, CAP_BLOCKS)).on_ssd(3),
        ];
        (cfg, specs)
    }

    #[test]
    fn steal_on_double_runs_are_bit_identical() {
        let run = || {
            let (cfg, specs) = steal_cfg_and_workers(StealConfig::default());
            Engine::build(cfg, specs).run()
        };
        let a = run();
        let b = run();
        let ca = a.cores.as_ref().expect("cores stats present");
        assert!(ca.steals > 0, "skewed mix must steal: {ca:?}");
        assert_eq!(a.stats_digest(), b.stats_digest());
        assert_eq!(a.access_digest(), b.access_digest());
        assert_eq!(
            first_divergence(
                a.access_journal.as_ref().unwrap(),
                b.access_journal.as_ref().unwrap()
            ),
            None
        );
    }

    /// Injected nondeterminism in the core scheduler, localized: reversing
    /// the fixed-order steal ring is exactly the class of bug the scheduler
    /// journal exists for. The comparator must blame the cores component's
    /// first steal decision, naming the divergent thief core ids.
    #[test]
    fn sanitizer_localizes_injected_steal_order_flip() {
        let run = |perturb: bool| {
            let (cfg, specs) = steal_cfg_and_workers(StealConfig {
                perturb_steal_order: perturb,
                ..StealConfig::default()
            });
            Engine::build(cfg, specs).run()
        };

        // Control: two clean stealing runs agree entry for entry.
        let a = run(false);
        let a2 = run(false);
        let ja = a.access_journal.as_ref().expect("sanitize was on");
        assert!(
            a.cores.as_ref().expect("cores stats").steals > 0,
            "clean run must steal for the flip to matter"
        );
        assert_eq!(
            first_divergence(ja, a2.access_journal.as_ref().unwrap()),
            None
        );
        assert_eq!(a.access_digest(), a2.access_digest());

        // Perturbed run: the first divergence is the thief pick itself.
        let b = run(true);
        let jb = b.access_journal.as_ref().expect("sanitize was on");
        let r = first_divergence(ja, jb).expect("steal-ring flip must diverge");
        assert_eq!(r.component(), "cores", "wrong component: {r}");
        let ea = r.a.expect("entry in clean run");
        let eb = r.b.expect("entry in perturbed run");
        assert_eq!(ea.op, "steal");
        assert_eq!(eb.op, "steal");
        assert_ne!(ea.key, eb.key, "thief keys must differ: {r}");
    }
}
