//! A stable, platform-independent digest for determinism checks.
//!
//! `std::hash::DefaultHasher` is seeded per process and explicitly not
//! stable across releases, so it cannot certify that two runs produced
//! byte-identical state. [`Digest`] is FNV-1a over 64 bits: tiny, fully
//! specified, and stable forever — exactly what the double-run determinism
//! tests and the `gimbal-lint` machine output need.

/// An incremental FNV-1a (64-bit) digest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Digest(u64);

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Default for Digest {
    fn default() -> Self {
        Digest(FNV_OFFSET)
    }
}

impl Digest {
    /// Start a fresh digest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold raw bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Fold a `u64` (little-endian) into the digest.
    pub fn update_u64(&mut self, v: u64) -> &mut Self {
        self.update(&v.to_le_bytes())
    }

    /// Fold an `f64` by its exact bit pattern.
    pub fn update_f64(&mut self, v: f64) -> &mut Self {
        self.update_u64(v.to_bits())
    }

    /// The current 64-bit digest value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // FNV-1a test vectors: empty input and "a".
        assert_eq!(Digest::new().value(), 0xcbf29ce484222325);
        assert_eq!(Digest::new().update(b"a").value(), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut a = Digest::new();
        a.update(b"hello ").update(b"world");
        let mut b = Digest::new();
        b.update(b"hello world");
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn u64_and_f64_feed_exact_bits() {
        let mut a = Digest::new();
        a.update_u64(0x0102030405060708);
        let mut b = Digest::new();
        b.update(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.value(), b.value());
        let mut c = Digest::new();
        c.update_f64(1.5);
        let mut d = Digest::new();
        d.update_u64(1.5f64.to_bits());
        assert_eq!(c.value(), d.value());
    }
}
