//! Seeded, deterministic fault injection (§3.6 / §4.3 failure handling).
//!
//! A [`FaultPlan`] declares *what can go wrong* during a run: fabric capsule
//! loss (per-message probability plus burst windows in which every capsule
//! dies), per-SSD transient IO errors, GC-storm latency stalls, and permanent
//! device failure at a fixed instant. A [`FaultInjector`] turns the plan into
//! concrete per-event decisions using dedicated [`SimRng`] streams, so
//!
//! * the fault schedule is reproducible per seed (chaos runs are replayable
//!   bit-for-bit), and
//! * fault draws never perturb the workload or device RNG streams — the same
//!   workload unfolds whether or not faults fire.
//!
//! Probabilistic draws only happen when the corresponding probability is
//! non-zero, so an all-zero plan consumes no randomness at all and a run with
//! `FaultPlan::default()` is byte-identical to a fault-free run.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// RNG stream for fabric-level capsule-loss draws.
const FABRIC_FAULT_STREAM: u64 = 0xFA17;
/// RNG stream base for per-SSD fault draws (offset by SSD index).
const SSD_FAULT_STREAM: u64 = 0xFA17_0100;

/// A half-open window `[start, end)` of virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultWindow {
    /// First instant inside the window.
    pub start: SimTime,
    /// First instant after the window.
    pub end: SimTime,
}

impl FaultWindow {
    /// Build a window; `end` must not precede `start`.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(end >= start, "window ends before it starts");
        FaultWindow { start, end }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }
}

/// Fault specification for one SSD.
#[derive(Clone, Debug, Default)]
pub struct SsdFaultSpec {
    /// Probability that a submitted command fails with a transient device
    /// error (completes with an error status at controller latency).
    pub transient_error_prob: f64,
    /// GC-storm windows: commands submitted inside a window are not serviced
    /// until the window closes, inflating their latency by the remaining
    /// window span (the stall the congestion controller must survive).
    pub stall_windows: Vec<FaultWindow>,
    /// Permanent device death: at and after this instant every command
    /// completes with an error, fast (the §4.3 replication scenario).
    pub fail_at: Option<SimTime>,
}

impl SsdFaultSpec {
    /// Whether this spec injects nothing.
    pub fn is_noop(&self) -> bool {
        // lint: allow(float-eq, owner=sim, expires=2028-08-01) — exact zero is the configured "off" sentinel, not a computed value
        self.transient_error_prob == 0.0 && self.stall_windows.is_empty() && self.fail_at.is_none()
    }

    /// Panic on out-of-range probabilities.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.transient_error_prob),
            "transient_error_prob out of [0,1]"
        );
    }

    /// If `now` falls inside a stall window, the instant the storm clears.
    pub fn stall_release(&self, now: SimTime) -> Option<SimTime> {
        self.stall_windows
            .iter()
            .filter(|w| w.contains(now))
            .map(|w| w.end)
            .max()
    }
}

/// Fault specification for one rack node (a whole JBOF behind one ToR port).
///
/// Node faults compose with the per-SSD specs: a node-scoped GC storm is a
/// *correlated* storm — it stalls every SSD inside the node at once — while
/// [`SsdFaultSpec::stall_windows`] stalls one device. Node death and
/// partitions act at the ToR link, so in-flight capsules in either direction
/// are lost and only the initiator-side retry ladder recovers the IOs.
#[derive(Clone, Debug, Default)]
pub struct NodeFaultSpec {
    /// Whole-node death: at and after this instant the node falls silent —
    /// capsules to and from it are dropped at the ToR and its pipelines stop
    /// being pumped (the rack-scale §4.3 replication scenario).
    pub die_at: Option<SimTime>,
    /// Link-degradation windows: capsules crossing the node's ToR link
    /// inside a window incur [`Self::degrade_extra`] additional one-way
    /// latency (a flapping optic, an incast-throttled uplink).
    pub degrade_windows: Vec<FaultWindow>,
    /// Extra one-way latency applied inside [`Self::degrade_windows`].
    pub degrade_extra: SimDuration,
    /// Partition windows: every capsule to or from the node is dropped while
    /// a window is open; the node itself keeps running (split brain, not
    /// death — it comes back).
    pub partition_windows: Vec<FaultWindow>,
    /// Correlated GC-storm windows: every SSD inside the node stalls for the
    /// window, and the node advertises itself GC-busy to the routing layer.
    pub gc_storm_windows: Vec<FaultWindow>,
}

impl NodeFaultSpec {
    /// Whether this spec injects nothing.
    pub fn is_noop(&self) -> bool {
        self.die_at.is_none()
            && self.partition_windows.is_empty()
            && self.gc_storm_windows.is_empty()
            && (self.degrade_windows.is_empty() || self.degrade_extra == SimDuration::ZERO)
    }

    /// Panic on a degenerate spec.
    pub fn validate(&self) {
        if !self.degrade_windows.is_empty() {
            assert!(
                self.degrade_extra > SimDuration::ZERO,
                "degrade windows without extra latency"
            );
        }
    }

    /// Whether the node is dead at `t`.
    pub fn dead(&self, t: SimTime) -> bool {
        self.die_at.is_some_and(|d| t >= d)
    }

    /// Whether the node is partitioned from the ToR at `t`.
    pub fn partitioned(&self, t: SimTime) -> bool {
        self.partition_windows.iter().any(|w| w.contains(t))
    }

    /// Extra one-way link latency for a capsule crossing at `t`, if the
    /// link is degraded then.
    pub fn link_extra(&self, t: SimTime) -> Option<SimDuration> {
        (self.degrade_extra > SimDuration::ZERO
            && self.degrade_windows.iter().any(|w| w.contains(t)))
        .then_some(self.degrade_extra)
    }

    /// Whether a correlated GC storm covers `t`.
    pub fn gc_storm(&self, t: SimTime) -> bool {
        self.gc_storm_windows.iter().any(|w| w.contains(t))
    }
}

/// The full fault plan for a run. `Default` is the empty (fault-free) plan.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Probability an individual command capsule is lost in the fabric.
    pub cmd_loss_prob: f64,
    /// Probability an individual completion capsule is lost in the fabric.
    pub cpl_loss_prob: f64,
    /// Burst-loss windows: every capsule transmitted inside one is dropped
    /// (a fabric brown-out, deterministic regardless of the RNG).
    pub burst_windows: Vec<FaultWindow>,
    /// Per-SSD fault specs, indexed by SSD; missing entries are fault-free.
    pub ssd: Vec<SsdFaultSpec>,
    /// Per-node fault specs, indexed by rack node; missing entries are
    /// fault-free. Single-node engines ignore these entirely, so a plan whose
    /// node faults target absent nodes is equivalent to one without them.
    pub nodes: Vec<NodeFaultSpec>,
    /// Simulated NIC power loss at this instant: every byte of NIC DRAM —
    /// cache lines, and in particular write-back dirty lines — vanishes.
    /// The SSDs and the rest of the testbed keep running, so the run
    /// surfaces exactly what acked-but-unflushed data was lost. The
    /// crash-consistency oracle checks that accounting.
    pub power_loss_at: Option<SimTime>,
}

impl FaultPlan {
    /// Whether the plan injects nothing at all.
    pub fn is_noop(&self) -> bool {
        // lint: allow(float-eq, owner=sim, expires=2028-08-01) — exact zero is the configured "off" sentinel, not a computed value
        self.cmd_loss_prob == 0.0
            // lint: allow(float-eq, owner=sim, expires=2028-08-01) — exact zero is the configured "off" sentinel, not a computed value
            && self.cpl_loss_prob == 0.0
            && self.burst_windows.is_empty()
            && self.ssd.iter().all(SsdFaultSpec::is_noop)
            && self.nodes.iter().all(NodeFaultSpec::is_noop)
            && self.power_loss_at.is_none()
    }

    /// Panic on out-of-range probabilities.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.cmd_loss_prob),
            "cmd_loss_prob out of [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.cpl_loss_prob),
            "cpl_loss_prob out of [0,1]"
        );
        for s in &self.ssd {
            s.validate();
        }
        for n in &self.nodes {
            n.validate();
        }
    }

    /// The fault spec for SSD `i` (empty spec when the plan has none).
    pub fn ssd_spec(&self, i: usize) -> Option<&SsdFaultSpec> {
        self.ssd.get(i).filter(|s| !s.is_noop())
    }

    /// The fault spec for rack node `i` (empty spec when the plan has none).
    pub fn node_spec(&self, i: usize) -> Option<&NodeFaultSpec> {
        self.nodes.get(i).filter(|n| !n.is_noop())
    }

    fn node_mut(&mut self, node: usize) -> &mut NodeFaultSpec {
        if self.nodes.len() <= node {
            self.nodes.resize(node + 1, NodeFaultSpec::default());
        }
        &mut self.nodes[node]
    }

    /// Builder: add a fabric burst-loss window.
    pub fn with_burst_window(mut self, w: FaultWindow) -> Self {
        self.burst_windows.push(w);
        self
    }

    /// Builder: kill node `node` at `at` (intermediate entries pad fault-free).
    pub fn with_node_death(mut self, node: usize, at: SimTime) -> Self {
        self.node_mut(node).die_at = Some(at);
        self
    }

    /// Builder: partition node `node` from the ToR during `w`.
    pub fn with_node_partition(mut self, node: usize, w: FaultWindow) -> Self {
        self.node_mut(node).partition_windows.push(w);
        self
    }

    /// Builder: correlated GC storm on every SSD of node `node` during `w`.
    pub fn with_node_gc_storm(mut self, node: usize, w: FaultWindow) -> Self {
        self.node_mut(node).gc_storm_windows.push(w);
        self
    }

    /// Builder: degrade node `node`'s ToR link by `extra` one-way during `w`.
    pub fn with_node_degrade(mut self, node: usize, w: FaultWindow, extra: SimDuration) -> Self {
        let spec = self.node_mut(node);
        spec.degrade_windows.push(w);
        spec.degrade_extra = extra;
        self
    }

    /// The dedicated RNG for SSD `i`'s fault draws. Device-internal faults
    /// draw from this stream so they never disturb the device's timing RNG.
    pub fn device_rng(seed: u64, ssd: usize) -> SimRng {
        SimRng::with_stream(seed, SSD_FAULT_STREAM + ssd as u64)
    }
}

/// Turns a [`FaultPlan`] into deterministic per-capsule decisions for the
/// fabric, and counts what it injected.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
    /// Command capsules dropped so far.
    pub cmd_drops: u64,
    /// Completion capsules dropped so far.
    pub cpl_drops: u64,
}

impl FaultInjector {
    /// Build an injector over `plan`; all fabric draws come from a dedicated
    /// stream of `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        plan.validate();
        FaultInjector {
            plan,
            rng: SimRng::with_stream(seed, FABRIC_FAULT_STREAM),
            cmd_drops: 0,
            cpl_drops: 0,
        }
    }

    /// The plan in effect.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn in_burst(&self, now: SimTime) -> bool {
        self.plan.burst_windows.iter().any(|w| w.contains(now))
    }

    /// Whether the command capsule transmitted at `now` is lost.
    pub fn drop_command(&mut self, now: SimTime) -> bool {
        let dropped = self.in_burst(now)
            || (self.plan.cmd_loss_prob > 0.0 && self.rng.gen_bool(self.plan.cmd_loss_prob));
        if dropped {
            self.cmd_drops += 1;
        }
        dropped
    }

    /// Whether the completion capsule transmitted at `now` is lost.
    pub fn drop_completion(&mut self, now: SimTime) -> bool {
        let dropped = self.in_burst(now)
            || (self.plan.cpl_loss_prob > 0.0 && self.rng.gen_bool(self.plan.cpl_loss_prob));
        if dropped {
            self.cpl_drops += 1;
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn default_plan_is_noop_and_draws_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::default(), 1);
        assert!(inj.plan().is_noop());
        for i in 0..1000 {
            assert!(!inj.drop_command(t(i)));
            assert!(!inj.drop_completion(t(i)));
        }
        assert_eq!(inj.cmd_drops + inj.cpl_drops, 0);
    }

    #[test]
    fn burst_window_drops_everything_inside_only() {
        let plan = FaultPlan {
            burst_windows: vec![FaultWindow::new(t(100), t(200))],
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, 1);
        assert!(!inj.drop_command(t(99)));
        assert!(inj.drop_command(t(100)));
        assert!(inj.drop_completion(t(199)));
        assert!(!inj.drop_completion(t(200)), "half-open window");
        assert_eq!(inj.cmd_drops, 1);
        assert_eq!(inj.cpl_drops, 1);
    }

    #[test]
    fn probabilistic_loss_is_seed_deterministic_and_near_rate() {
        let plan = FaultPlan {
            cmd_loss_prob: 0.1,
            ..FaultPlan::default()
        };
        let run = |seed| {
            let mut inj = FaultInjector::new(plan.clone(), seed);
            (0..10_000)
                .map(|i| inj.drop_command(t(i)))
                .collect::<Vec<_>>()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same drops");
        assert_ne!(a, run(8), "different seed diverges");
        let drops = a.iter().filter(|&&d| d).count();
        assert!((800..1200).contains(&drops), "~10% loss: {drops}");
    }

    #[test]
    fn stall_release_returns_latest_covering_window_end() {
        let spec = SsdFaultSpec {
            stall_windows: vec![
                FaultWindow::new(t(0), t(50)),
                FaultWindow::new(t(40), t(90)),
            ],
            ..SsdFaultSpec::default()
        };
        assert_eq!(spec.stall_release(t(45)), Some(t(90)));
        assert_eq!(spec.stall_release(t(10)), Some(t(50)));
        assert_eq!(spec.stall_release(t(90)), None);
    }

    #[test]
    fn ssd_spec_lookup_skips_noop_entries() {
        let plan = FaultPlan {
            ssd: vec![
                SsdFaultSpec::default(),
                SsdFaultSpec {
                    fail_at: Some(t(5)),
                    ..SsdFaultSpec::default()
                },
            ],
            ..FaultPlan::default()
        };
        assert!(plan.ssd_spec(0).is_none());
        assert!(plan.ssd_spec(1).is_some());
        assert!(plan.ssd_spec(2).is_none());
        assert!(!plan.is_noop());
    }

    #[test]
    fn overlapping_burst_windows_drop_each_capsule_once() {
        // Two windows covering the same instant must not double-count a drop
        // or consume extra randomness: `in_burst` is a pure any() predicate.
        let plan = FaultPlan::default()
            .with_burst_window(FaultWindow::new(t(100), t(300)))
            .with_burst_window(FaultWindow::new(t(200), t(400)));
        let mut inj = FaultInjector::new(plan, 1);
        assert!(inj.drop_command(t(250)), "inside both windows");
        assert_eq!(inj.cmd_drops, 1, "one capsule, one drop");
        assert!(inj.drop_command(t(350)), "inside the second only");
        assert!(!inj.drop_command(t(400)), "half-open upper edge");
        assert_eq!(inj.cmd_drops, 2);
    }

    #[test]
    fn node_death_at_tick_zero_is_dead_from_the_first_instant() {
        let plan = FaultPlan::default().with_node_death(0, SimTime::ZERO);
        let spec = plan.node_spec(0).expect("node 0 has a spec");
        assert!(spec.dead(SimTime::ZERO), "die_at == t covers tick 0");
        assert!(spec.dead(t(1_000_000)));
        assert!(!plan.is_noop());
        plan.validate();
    }

    #[test]
    fn node_spec_lookup_skips_noop_and_absent_entries() {
        // Builders pad intermediate nodes with fault-free specs; lookups on
        // the padding and past the end both report "no faults", so a plan
        // whose node faults target absent nodes injects nothing at runtime.
        let plan = FaultPlan::default().with_node_death(2, t(5));
        assert_eq!(plan.nodes.len(), 3);
        assert!(plan.node_spec(0).is_none(), "padding entry is noop");
        assert!(plan.node_spec(1).is_none());
        assert!(plan.node_spec(2).is_some());
        assert!(plan.node_spec(7).is_none(), "past the end");
        assert!(!plan.is_noop());
    }

    #[test]
    fn node_fault_predicates_follow_their_windows() {
        let plan = FaultPlan::default()
            .with_node_partition(0, FaultWindow::new(t(10), t(20)))
            .with_node_gc_storm(0, FaultWindow::new(t(30), t(40)))
            .with_node_degrade(
                0,
                FaultWindow::new(t(50), t(60)),
                SimDuration::from_micros(7),
            );
        let spec = plan.node_spec(0).unwrap();
        assert!(spec.partitioned(t(10)) && !spec.partitioned(t(20)));
        assert!(spec.gc_storm(t(35)) && !spec.gc_storm(t(29)));
        assert_eq!(spec.link_extra(t(55)), Some(SimDuration::from_micros(7)));
        assert_eq!(spec.link_extra(t(45)), None);
        assert!(!spec.dead(t(1_000_000)));
        plan.validate();
    }

    #[test]
    fn noop_node_spec_requires_real_degradation() {
        // Degrade windows with zero extra latency inject nothing.
        let spec = NodeFaultSpec {
            degrade_windows: vec![FaultWindow::new(t(0), t(10))],
            degrade_extra: SimDuration::ZERO,
            ..NodeFaultSpec::default()
        };
        assert!(spec.is_noop());
        assert_eq!(spec.link_extra(t(5)), None);
        let plan = FaultPlan {
            nodes: vec![spec],
            ..FaultPlan::default()
        };
        assert!(plan.is_noop(), "noop node specs keep the plan noop");
    }

    #[test]
    #[should_panic(expected = "degrade windows without extra latency")]
    fn validate_rejects_degrade_without_extra() {
        NodeFaultSpec {
            degrade_windows: vec![FaultWindow::new(t(0), t(10))],
            degrade_extra: SimDuration::ZERO,
            ..NodeFaultSpec::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn validate_rejects_bad_probability() {
        FaultPlan {
            cmd_loss_prob: 1.5,
            ..FaultPlan::default()
        }
        .validate();
    }
}
