//! Deterministic discrete-event simulation kernel for the Gimbal reproduction.
//!
//! Everything in this workspace runs on *virtual time*: a nanosecond-resolution
//! [`SimTime`] clock advanced by an [`EventQueue`]. Components are synchronous,
//! poll-based state machines (in the style of `smoltcp`) — they never spawn
//! threads or sleep; instead they report the next instant at which they need to
//! run, and the orchestrator drives them.
//!
//! The kernel provides:
//!
//! * [`time`] — the [`SimTime`] instant and [`SimDuration`] span newtypes;
//! * [`queue`] — a stable (FIFO-within-timestamp) event queue;
//! * [`rng`] — a small, fast, fully deterministic PRNG ([`rng::SimRng`]);
//! * [`fault`] — seeded fault-injection plans (capsule loss, SSD errors,
//!   stalls, device death) on dedicated RNG streams;
//! * [`stats`] — latency histograms, EWMA filters, throughput meters and time
//!   series used by every experiment;
//! * [`token_bucket`] — the token-bucket primitive underlying Gimbal's rate
//!   pacing engine (§3.3 of the paper).
//!
//! Determinism is a hard invariant: given the same seed and configuration,
//! every simulation in this workspace produces byte-identical results. This is
//! what lets the benchmark harness regenerate each figure of the paper
//! reproducibly.

pub mod arena;
pub mod cast;
pub mod collections;
pub mod digest;
pub mod fault;
pub mod journal;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod token_bucket;

pub use arena::{ArenaError, IoArena, IoHandle};
pub use collections::{DetMap, DetSet};
pub use digest::Digest;
pub use fault::{FaultInjector, FaultPlan, FaultWindow, NodeFaultSpec, SsdFaultSpec};
pub use journal::{first_divergence, AccessJournal, DivergenceReport, JournalHandle};
pub use queue::{EventQueue, HeapEventQueue};
pub use rng::SimRng;
pub use stats::{Ewma, Histogram, Meter, TimeSeries};
pub use time::{SimDuration, SimTime};
pub use token_bucket::TokenBucket;
