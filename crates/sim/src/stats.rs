//! Measurement primitives shared by every experiment: latency histograms,
//! EWMA filters, windowed throughput meters, and time series recorders.
//!
//! The histogram is an HDR-style log-linear histogram: values are bucketed by
//! power-of-two magnitude with 64 linear sub-buckets per magnitude, giving a
//! worst-case relative error below ~1.6% across the full `u64` range — plenty
//! for latency percentiles spanning microseconds to seconds.

use crate::time::{SimDuration, SimTime};
use std::fmt;

/// Number of linear sub-buckets per power-of-two magnitude (must be a power
/// of two). 64 sub-buckets ⇒ ≤1/64 relative quantization error.
const SUB_BUCKETS: u64 = 64;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// An HDR-style log-linear histogram of `u64` samples.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        // 64 magnitudes × SUB_BUCKETS sub-buckets covers all of u64.
        Histogram {
            counts: vec![0; (64 - SUB_BITS as usize + 1) * SUB_BUCKETS as usize],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS {
            return value as usize;
        }
        let magnitude = 63 - value.leading_zeros(); // >= SUB_BITS
        let bucket = magnitude - SUB_BITS + 1;
        let sub = (value >> (magnitude - SUB_BITS)) - SUB_BUCKETS;
        (u64::from(bucket) * SUB_BUCKETS + sub) as usize
    }

    /// Representative (upper-edge) value of bucket `idx`.
    fn value_of(idx: usize) -> u64 {
        let idx = idx as u64;
        let bucket = idx >> SUB_BITS;
        let sub = idx & (SUB_BUCKETS - 1);
        if bucket == 0 {
            sub
        } else {
            (sub + SUB_BUCKETS) << (bucket - 1)
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index_of(value)] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record a [`SimDuration`] sample in nanoseconds.
    #[inline]
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean of all samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]` (e.g. 0.999 for p99.9).
    ///
    /// Returns the representative value of the bucket containing the
    /// quantile's rank; 0 if the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::value_of(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Reset to empty without deallocating.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Convenience summary with the percentiles the paper reports.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.total,
            mean_ns: self.mean(),
            p50_ns: self.quantile(0.50),
            p99_ns: self.quantile(0.99),
            p999_ns: self.quantile(0.999),
            max_ns: self.max(),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.total)
            .field("mean", &self.mean())
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max)
            .finish()
    }
}

/// The latency percentiles reported throughout the paper's evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Mean, nanoseconds.
    pub mean_ns: f64,
    /// Median, nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile, nanoseconds.
    pub p999_ns: u64,
    /// Maximum, nanoseconds.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Mean in microseconds (the paper's reporting unit).
    pub fn mean_us(&self) -> f64 {
        self.mean_ns / 1e3
    }
    /// p99 in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.p99_ns as f64 / 1e3
    }
    /// p99.9 in microseconds.
    pub fn p999_us(&self) -> f64 {
        self.p999_ns as f64 / 1e3
    }
}

/// Exponentially weighted moving average, the filter Gimbal's congestion
/// control applies to completion latencies (§3.2: `ewma = (1-α)·ewma + α·x`).
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create a filter with smoothing factor `alpha` in `(0, 1]`. The paper
    /// uses `α_D = 2⁻¹`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha {alpha} out of (0,1]");
        Ewma { alpha, value: None }
    }

    /// Feed one observation; returns the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => (1.0 - self.alpha) * prev + self.alpha * x,
        };
        self.value = Some(v);
        v
    }

    /// Current average, or `default` if nothing has been observed yet.
    pub fn get_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Current average, if any observation has been made.
    pub fn get(&self) -> Option<f64> {
        self.value
    }

    /// Forget all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// A windowed throughput meter: counts bytes/ops in a ring of time buckets so
/// a *recent* rate can be queried at any instant.
///
/// Gimbal's rate controller needs the current *completion rate* when entering
/// the overloaded state (§3.3, Algorithm 1 line 4); the experiments need
/// per-interval bandwidth series (Fig 9). Both are served by this meter.
#[derive(Clone, Debug)]
pub struct Meter {
    bucket_width: SimDuration,
    buckets_bytes: Vec<u64>,
    buckets_ops: Vec<u64>,
    /// Absolute index of the bucket currently being filled.
    cur_bucket: u64,
    total_bytes: u64,
    total_ops: u64,
}

impl Meter {
    /// Create a meter whose sliding window is `buckets × bucket_width` long.
    pub fn new(bucket_width: SimDuration, buckets: usize) -> Self {
        assert!(bucket_width > SimDuration::ZERO && buckets >= 2);
        Meter {
            bucket_width,
            buckets_bytes: vec![0; buckets],
            buckets_ops: vec![0; buckets],
            cur_bucket: 0,
            total_bytes: 0,
            total_ops: 0,
        }
    }

    /// A meter with the defaults used by the congestion controller: 10 ms
    /// buckets over a 100 ms window.
    pub fn default_rate_meter() -> Self {
        Meter::new(SimDuration::from_millis(10), 10)
    }

    fn advance_to(&mut self, now: SimTime) {
        let abs = now.as_nanos() / self.bucket_width.as_nanos();
        if abs > self.cur_bucket {
            let n = self.buckets_bytes.len() as u64;
            let steps = (abs - self.cur_bucket).min(n);
            for i in 0..steps {
                let idx = ((self.cur_bucket + 1 + i) % n) as usize;
                self.buckets_bytes[idx] = 0;
                self.buckets_ops[idx] = 0;
            }
            self.cur_bucket = abs;
        }
    }

    /// Record an event of `bytes` at instant `now`.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        self.advance_to(now);
        let idx = (self.cur_bucket % self.buckets_bytes.len() as u64) as usize;
        self.buckets_bytes[idx] += bytes;
        self.buckets_ops[idx] += 1;
        self.total_bytes += bytes;
        self.total_ops += 1;
    }

    /// Bytes/second over the sliding window ending at `now`.
    pub fn rate_bytes_per_sec(&mut self, now: SimTime) -> f64 {
        self.advance_to(now);
        let window = self.bucket_width * self.buckets_bytes.len() as u64;
        let bytes: u64 = self.buckets_bytes.iter().sum();
        bytes as f64 / window.as_secs_f64()
    }

    /// Operations/second over the sliding window ending at `now`.
    pub fn rate_ops_per_sec(&mut self, now: SimTime) -> f64 {
        self.advance_to(now);
        let window = self.bucket_width * self.buckets_ops.len() as u64;
        let ops: u64 = self.buckets_ops.iter().sum();
        ops as f64 / window.as_secs_f64()
    }

    /// Total bytes recorded since creation.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total operations recorded since creation.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }
}

/// A timestamped series of measurements, used for the timeline figures
/// (Fig 9 worker bandwidth, Fig 17 latency impulse, Fig 18 threshold trace).
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Create an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a point. Timestamps should be non-decreasing.
    pub fn push(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(t, _)| t <= at),
            "time series must be appended in order"
        );
        self.points.push((at, value));
    }

    /// All recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of values within `[from, to)`.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Down-sample to one mean point per `step`, for compact figure output.
    pub fn resample(&self, step: SimDuration) -> TimeSeries {
        let mut out = TimeSeries::new();
        if self.points.is_empty() {
            return out;
        }
        let end = self.points.last().unwrap().0;
        let mut t = SimTime::ZERO;
        while t <= end {
            if let Some(m) = self.mean_in(t, t + step) {
                out.push(t + step, m);
            }
            t += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_summarizes() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 0.001);
        let p50 = h.quantile(0.5);
        assert!((490..=510).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((975..=1000).contains(&p99), "p99={p99}");
    }

    #[test]
    fn histogram_relative_error_is_bounded() {
        let mut h = Histogram::new();
        for exp in 0..40u32 {
            let v = 3u64 << exp;
            h.clear();
            h.record(v);
            let q = h.quantile(1.0);
            let err = (q as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 64.0 + 1e-9, "v={v} q={q} err={err}");
        }
    }

    #[test]
    fn histogram_extremes() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        (0..500).for_each(|v| a.record(v));
        (500..1000).for_each(|v| b.record(v));
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        assert_eq!(a.max(), 999);
        assert!((a.mean() - 499.5).abs() < 0.001);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn ewma_matches_the_papers_formula() {
        // α = 1/2, observations 100 then 200: 100, then 150.
        let mut e = Ewma::new(0.5);
        assert_eq!(e.update(100.0), 100.0);
        assert_eq!(e.update(200.0), 150.0);
        assert_eq!(e.update(200.0), 175.0);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.25);
        for _ in 0..100 {
            e.update(42.0);
        }
        assert!((e.get().unwrap() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn meter_measures_steady_rate() {
        let mut m = Meter::new(SimDuration::from_millis(10), 10);
        // 1 MB every ms for 200 ms = 1 GB/s.
        for i in 0..200u64 {
            m.record(SimTime::from_millis(i), 1_000_000);
        }
        let r = m.rate_bytes_per_sec(SimTime::from_millis(200));
        assert!(
            (r - 1e9).abs() / 1e9 < 0.15,
            "rate {r} should be about 1 GB/s"
        );
    }

    #[test]
    fn meter_forgets_old_traffic() {
        let mut m = Meter::new(SimDuration::from_millis(10), 10);
        m.record(SimTime::from_millis(1), 100_000_000);
        // Long silence: the burst should age out of the window.
        let r = m.rate_bytes_per_sec(SimTime::from_secs(2));
        assert_eq!(r, 0.0);
        assert_eq!(m.total_bytes(), 100_000_000);
    }

    #[test]
    fn timeseries_resample() {
        let mut ts = TimeSeries::new();
        for i in 0..100u64 {
            ts.push(SimTime::from_millis(i), i as f64);
        }
        let rs = ts.resample(SimDuration::from_millis(10));
        assert_eq!(rs.len(), 10);
        // First window covers values 0..10 → mean 4.5.
        assert!((rs.points()[0].1 - 4.5).abs() < 1e-9);
    }
}
