//! Token bucket primitive.
//!
//! Two usage styles are supported, both needed by the workspace:
//!
//! * **Self-refilling** ([`TokenBucket::with_rate`] + [`TokenBucket::refill`]):
//!   tokens accrue continuously at a byte rate, capped at the bucket size.
//!   Used for client-side rate limiting in workloads (Fig 9's 200/60 MB/s
//!   caps) and the blobstore rate limiter.
//! * **Externally fed** ([`TokenBucket::deposit`]): the caller distributes
//!   tokens explicitly and receives back any overflow beyond the cap. This is
//!   what Gimbal's *dual* token bucket needs (§3.3 / Algorithm 4): tokens are
//!   generated from the target rate, split between the read and write buckets
//!   in cost proportion, and overflow transfers to the sibling bucket.

use crate::time::{SimDuration, SimTime};

/// A byte-denominated token bucket.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    tokens: f64,
    capacity: f64,
    /// Refill rate in bytes/second for self-refilling buckets; 0 if fed
    /// externally.
    rate: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// A bucket refilled continuously at `bytes_per_sec`, holding at most
    /// `capacity` bytes of tokens. Starts full.
    pub fn with_rate(bytes_per_sec: f64, capacity: u64) -> Self {
        assert!(bytes_per_sec >= 0.0 && capacity > 0);
        TokenBucket {
            tokens: capacity as f64,
            capacity: capacity as f64,
            rate: bytes_per_sec,
            last_refill: SimTime::ZERO,
        }
    }

    /// An externally fed bucket (no internal refill). Starts full so the
    /// first IO after idle is never delayed.
    pub fn external(capacity: u64) -> Self {
        assert!(capacity > 0);
        TokenBucket {
            tokens: capacity as f64,
            capacity: capacity as f64,
            rate: 0.0,
            last_refill: SimTime::ZERO,
        }
    }

    /// Accrue tokens for the time elapsed since the last refill. No-op for
    /// externally fed buckets.
    pub fn refill(&mut self, now: SimTime) {
        if self.rate > 0.0 && now > self.last_refill {
            let dt = now.since(self.last_refill).as_secs_f64();
            self.tokens = (self.tokens + self.rate * dt).min(self.capacity);
        }
        self.last_refill = self.last_refill.max(now);
    }

    /// Change the refill rate of a self-refilling bucket (tokens accrued so
    /// far are kept).
    pub fn set_rate(&mut self, now: SimTime, bytes_per_sec: f64) {
        self.refill(now);
        self.rate = bytes_per_sec.max(0.0);
    }

    /// Deposit `amount` tokens, returning the overflow that did not fit.
    pub fn deposit(&mut self, amount: f64) -> f64 {
        let space = self.capacity - self.tokens;
        if amount <= space {
            self.tokens += amount;
            0.0
        } else {
            self.tokens = self.capacity;
            amount - space
        }
    }

    /// Current token count (bytes).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Bucket capacity (bytes).
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Whether `size` bytes could be consumed right now.
    pub fn can_consume(&self, size: u64) -> bool {
        self.tokens >= size as f64
    }

    /// Consume `size` bytes of tokens if available. Returns whether the
    /// consumption happened.
    pub fn try_consume(&mut self, size: u64) -> bool {
        if self.can_consume(size) {
            self.tokens -= size as f64;
            true
        } else {
            false
        }
    }

    /// Discard all tokens (Algorithm 1: on entering the *overloaded* state
    /// Gimbal "discards the remaining tokens in the buckets to avoid a bursty
    /// submission").
    pub fn discard(&mut self) {
        self.tokens = 0.0;
    }

    /// For a self-refilling bucket: the earliest instant at which `size`
    /// tokens will be available, or `None` if they already are / never will.
    pub fn time_until_available(&self, now: SimTime, size: u64) -> Option<SimTime> {
        if self.can_consume(size) {
            return None;
        }
        if self.rate <= 0.0 || size as f64 > self.capacity {
            return None;
        }
        let deficit = size as f64 - self.tokens;
        let secs = deficit / self.rate;
        Some(now + SimDuration::from_secs_f64(secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_refill_accrues_linearly() {
        let mut b = TokenBucket::with_rate(1_000_000.0, 10_000); // 1 MB/s, 10 KB cap
        assert!(b.try_consume(10_000));
        assert!(!b.can_consume(1));
        // 5 ms at 1 MB/s = 5000 bytes.
        b.refill(SimTime::from_millis(5));
        assert!((b.tokens() - 5_000.0).abs() < 1.0);
        assert!(b.try_consume(5_000));
    }

    #[test]
    fn refill_caps_at_capacity() {
        let mut b = TokenBucket::with_rate(1e9, 1_000);
        b.refill(SimTime::from_secs(10));
        assert_eq!(b.tokens(), 1_000.0);
    }

    #[test]
    fn deposit_returns_overflow() {
        let mut b = TokenBucket::external(1_000);
        assert!(b.try_consume(1_000));
        assert_eq!(b.deposit(600.0), 0.0);
        assert_eq!(b.deposit(600.0), 200.0);
        assert_eq!(b.tokens(), 1_000.0);
    }

    #[test]
    fn discard_empties() {
        let mut b = TokenBucket::external(1_000);
        b.discard();
        assert_eq!(b.tokens(), 0.0);
        assert!(!b.can_consume(1));
    }

    #[test]
    fn consume_failure_leaves_tokens() {
        let mut b = TokenBucket::external(1_000);
        assert!(!b.try_consume(2_000));
        assert_eq!(b.tokens(), 1_000.0);
    }

    #[test]
    fn time_until_available() {
        let mut b = TokenBucket::with_rate(1_000_000.0, 100_000);
        b.refill(SimTime::ZERO);
        assert!(b.try_consume(100_000));
        let now = SimTime::ZERO;
        let at = b.time_until_available(now, 50_000).unwrap();
        assert_eq!(at.as_nanos(), 50_000_000); // 50 ms at 1 MB/s
        assert!(b.time_until_available(now, 200_000).is_none(), "over cap");
        b.refill(at);
        assert!(b.time_until_available(at, 50_000).is_none());
    }

    #[test]
    fn set_rate_preserves_accrued_tokens() {
        let mut b = TokenBucket::with_rate(1_000_000.0, 1_000_000);
        b.discard();
        b.refill(SimTime::ZERO);
        b.set_rate(SimTime::from_millis(100), 2_000_000.0); // accrued 100 KB first
        assert!((b.tokens() - 100_000.0).abs() < 1.0);
        b.refill(SimTime::from_millis(200)); // +200 KB at the new rate
        assert!((b.tokens() - 300_000.0).abs() < 1.0);
    }
}
