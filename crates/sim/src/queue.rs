//! The event queue at the heart of the discrete-event simulator.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs ordered by time.
//! Events scheduled for the same instant pop in **insertion order** (a
//! monotonically increasing sequence number breaks ties), which makes the
//! simulation fully deterministic even when many events collide on one
//! timestamp — a common situation when components schedule "immediately".
//!
//! Internally the queue is a **hierarchical timer wheel** in the radix-heap
//! formulation: 11 levels of 64 slots, 6 bits of the nanosecond timestamp per
//! level, covering the full `u64` range with no overflow list. An entry lives
//! at the level of the highest bit in which its timestamp differs from the
//! wheel origin (`elapsed`, which tracks the causality watermark), so the
//! common short-horizon events of a self-clocked simulation land at level 0
//! and pop in O(1); far-future entries cascade down level by level as the
//! origin advances past their upper digits. Draining a level-0 slot sorts the
//! slot by sequence number, which restores global FIFO order for same-instant
//! events regardless of how many cascades they rode through — the wheel
//! reproduces the exact `(time, seq)` pop order of the binary heap it
//! replaced. That heap survives as [`HeapEventQueue`], the equivalence oracle
//! used by the wheel-vs-heap property tests.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Bits of the timestamp consumed per wheel level.
const BITS: usize = 6;
/// Slots per level (`2^BITS`).
const SLOTS_PER_LEVEL: usize = 64;
/// Levels needed to cover a full `u64` of nanoseconds (`ceil(64 / 6)`).
const LEVELS: usize = 11;
/// Mask of one level's digit.
const SLOT_MASK: u64 = (SLOTS_PER_LEVEL as u64) - 1;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The wheel level of timestamp `at` relative to the wheel origin: the index
/// of the 6-bit digit holding the highest bit where they differ (0 when they
/// agree, i.e. the entry is due now).
#[inline]
fn level_of(at: u64, origin: u64) -> usize {
    let diff = at ^ origin;
    if diff == 0 {
        0
    } else {
        (63 - diff.leading_zeros() as usize) / BITS
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// ```
/// use gimbal_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(5), "later");
/// q.push(SimTime::from_micros(1), "first");
/// q.push(SimTime::from_micros(5), "even later"); // same instant: FIFO
///
/// assert_eq!(q.pop(), Some((SimTime::from_micros(1), "first")));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(5), "later")));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(5), "even later")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// `LEVELS * SLOTS_PER_LEVEL` buckets, level-major. Empty `Vec`s do not
    /// allocate, so the idle wheel costs 704 pointers-worth of metadata.
    slots: Vec<Vec<Entry<E>>>,
    /// One bit per slot and level; the lowest set bit of the lowest non-zero
    /// level is the next slot to drain.
    occupancy: [u64; LEVELS],
    /// Entries at the earliest pending instant, already in seq (FIFO) order.
    /// Same-instant pushes append here directly, which keeps the order exact
    /// without re-sorting.
    current: VecDeque<Entry<E>>,
    /// Wheel origin in nanoseconds. Every pending entry is `>= elapsed`, and
    /// an entry at level L shares all digits above L with `elapsed`. Equal to
    /// the watermark whenever the queue is at rest between pops.
    elapsed: u64,
    len: usize,
    next_seq: u64,
    /// Timestamp of the most recently popped event; pushes earlier than this
    /// indicate a causality bug and panic in debug builds.
    watermark: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..LEVELS * SLOTS_PER_LEVEL).map(|_| Vec::new()).collect(),
            occupancy: [0; LEVELS],
            current: VecDeque::new(),
            elapsed: 0,
            len: 0,
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Schedule `event` to fire at instant `at`.
    ///
    /// Scheduling in the past (before the last popped timestamp) is a
    /// causality violation; it panics in debug builds and is clamped to the
    /// watermark in release builds.
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.watermark,
            "event scheduled at {at} before current time {}",
            self.watermark
        );
        let at = at.max(self.watermark);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let entry = Entry { at, seq, event };
        if let Some(front) = self.current.front() {
            if at == front.at {
                // Same instant as the staged batch: the monotone seq keeps
                // the deque sorted.
                self.current.push_back(entry);
                return;
            }
            if at < front.at {
                // Only reachable through a declined [`Self::pop_if_at`] at a
                // future instant (contract violation, debug-asserted there);
                // keep release builds correct by slotting the entry into the
                // staged batch in (time, seq) order.
                let pos = self
                    .current
                    .iter()
                    .position(|e| e.at > at)
                    .unwrap_or(self.current.len());
                self.current.insert(pos, entry);
                return;
            }
        }
        self.insert_wheel(entry);
    }

    /// Remove and return the earliest event, advancing the causality watermark.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if let Some(e) = self.current.pop_front() {
                self.len -= 1;
                self.watermark = e.at;
                self.elapsed = self.elapsed.max(e.at.as_nanos());
                return Some((e.at, e.event));
            }
            if !self.load_next_batch() {
                return None;
            }
        }
    }

    /// Pop the head event only if it is due exactly at `at` **and** `pred`
    /// accepts it; otherwise leave the queue untouched and return `None`.
    ///
    /// This is the batching hook: an engine handling an event at `now` can
    /// coalesce the immediately-following same-instant events without
    /// re-entering its dispatch loop. Callers must only pass the instant they
    /// are currently processing (`at == now`); declining at a *future*
    /// instant would let later pushes land before the staged batch, which is
    /// a causality error (debug-asserted in [`Self::push`]).
    pub fn pop_if_at<F: FnOnce(&E) -> bool>(&mut self, at: SimTime, pred: F) -> Option<E> {
        if self.peek_time() != Some(at) {
            return None;
        }
        if self.current.is_empty() && !self.load_next_batch() {
            return None;
        }
        let front = self.current.front()?;
        if front.at != at || !pred(&front.event) {
            return None;
        }
        let e = self.current.pop_front()?;
        self.len -= 1;
        self.watermark = e.at;
        self.elapsed = self.elapsed.max(e.at.as_nanos());
        Some(e.event)
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(front) = self.current.front() {
            return Some(front.at);
        }
        let (level, slot) = self.lowest_occupied()?;
        if level == 0 {
            // A level-0 slot holds exactly one absolute instant.
            Some(SimTime::from_nanos(
                (self.elapsed & !SLOT_MASK) | slot as u64,
            ))
        } else {
            // The global minimum lives in this slot; scan it.
            self.slots[level * SLOTS_PER_LEVEL + slot]
                .iter()
                .map(|e| e.at)
                .min()
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current simulation watermark (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.watermark
    }

    /// Drop all pending events without firing them.
    pub fn clear(&mut self) {
        for v in &mut self.slots {
            v.clear();
        }
        self.occupancy = [0; LEVELS];
        self.current.clear();
        self.len = 0;
        // The origin may have run ahead of the watermark while a batch was
        // staged; rewind so post-clear pushes (>= watermark) place correctly.
        self.elapsed = self.watermark.as_nanos();
    }

    /// Lowest non-empty (level, slot), i.e. where the next batch drains from.
    fn lowest_occupied(&self) -> Option<(usize, usize)> {
        self.occupancy
            .iter()
            .enumerate()
            .find(|(_, &occ)| occ != 0)
            .map(|(level, &occ)| (level, occ.trailing_zeros() as usize))
    }

    /// File an entry into the wheel relative to the current origin.
    fn insert_wheel(&mut self, entry: Entry<E>) {
        let at = entry.at.as_nanos();
        let level = level_of(at, self.elapsed);
        let slot = ((at >> (level * BITS)) & SLOT_MASK) as usize;
        self.occupancy[level] |= 1 << slot;
        self.slots[level * SLOTS_PER_LEVEL + slot].push(entry);
    }

    /// Stage the earliest pending instant's entries into `current`, in seq
    /// order, cascading upper levels down as needed. Returns `false` when
    /// the wheel is empty. On success the origin sits exactly at the staged
    /// instant.
    fn load_next_batch(&mut self) -> bool {
        loop {
            let Some((level, slot)) = self.lowest_occupied() else {
                return false;
            };
            let idx = level * SLOTS_PER_LEVEL + slot;
            let mut drained = std::mem::take(&mut self.slots[idx]);
            self.occupancy[level] &= !(1u64 << slot);
            if level == 0 {
                // This slot is a single instant: sort by seq to undo any
                // interleaving that cascades introduced, and stage it.
                self.elapsed = (self.elapsed & !SLOT_MASK) | slot as u64;
                drained.sort_unstable_by_key(|e| e.seq);
                self.current.extend(drained.drain(..));
                self.slots[idx] = drained; // keep the allocation
                return true;
            }
            // Cascade: the global minimum lives in this slot, so the origin
            // may jump to the slot's first instant (digit `level` := slot,
            // lower digits zeroed). Every drained entry re-files strictly
            // below `level` relative to the new origin.
            let shift = level * BITS;
            let keep_above = u64::MAX.checked_shl((shift + BITS) as u32).unwrap_or(0);
            self.elapsed = (self.elapsed & keep_above) | ((slot as u64) << shift);
            for entry in drained.drain(..) {
                self.insert_wheel(entry);
            }
            self.slots[idx] = drained;
        }
    }
}

/// The binary-heap event queue the timer wheel replaced, kept verbatim as
/// the **equivalence oracle**: the wheel must reproduce this queue's exact
/// `(time, seq)` pop order on any push/pop stream. Property tests drive both
/// from shared `SimRng` streams and assert identical sequences; nothing in
/// the engines uses this type.
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    watermark: SimTime,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Schedule `event` to fire at instant `at` (same contract as
    /// [`EventQueue::push`]).
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.watermark,
            "event scheduled at {at} before current time {}",
            self.watermark
        );
        let at = at.max(self.watermark);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the earliest event, advancing the causality watermark.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.watermark = entry.at;
        Some((entry.at, entry.event))
    }

    /// Pop the head only if due exactly at `at` and accepted by `pred` (same
    /// contract as [`EventQueue::pop_if_at`]).
    pub fn pop_if_at<F: FnOnce(&E) -> bool>(&mut self, at: SimTime, pred: F) -> Option<E> {
        let head = self.heap.peek()?;
        if head.at != at || !pred(&head.event) {
            return None;
        }
        self.pop().map(|(_, e)| e)
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current simulation watermark (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.watermark
    }

    /// Drop all pending events without firing them.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn watermark_tracks_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    #[cfg(debug_assertions)]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), ());
        q.pop();
        q.push(SimTime::from_micros(5), ());
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(3), 'a');
        q.push(SimTime::from_micros(1), 'b');
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(1)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_deterministic() {
        // Simulates a self-clocked workload: each pop schedules a successor.
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 0u32);
        let mut seen = Vec::new();
        while let Some((t, id)) = q.pop() {
            seen.push(id);
            if seen.len() >= 50 {
                break;
            }
            q.push(t + SimDuration::from_nanos(u64::from(id % 3)), id + 1);
        }
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_and_overflow_cascades_pop_in_order() {
        // One entry per wheel level, including the top (bit 63) digits, plus
        // the absolute maximum timestamp: every cascade path gets exercised.
        let mut q = EventQueue::new();
        let mut times: Vec<u64> = (0..11).map(|lvl| 1u64 << (6 * lvl)).collect();
        times.push(u64::MAX);
        times.push(u64::MAX - 1);
        times.push(0);
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        times.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.as_nanos())).collect();
        assert_eq!(popped, times);
        assert_eq!(q.now(), SimTime::from_nanos(u64::MAX));
    }

    #[test]
    fn same_instant_fifo_survives_cascades() {
        // Two batches at the same far-future instant, pushed on either side
        // of an interleaved near-term pop: the cascade must not reorder them.
        let far = SimTime::from_millis(77);
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(far, i);
        }
        q.push(SimTime::from_nanos(5), 100);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(5), 100)));
        for i in 10..20 {
            q.push(far, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn pop_if_at_takes_matching_head_only() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(2);
        q.push(t, 1u32);
        q.push(t, 2u32);
        q.push(SimTime::from_micros(3), 3u32);
        // Wrong instant: untouched.
        assert_eq!(q.pop_if_at(SimTime::from_micros(1), |_| true), None);
        // Predicate declines: untouched.
        assert_eq!(q.pop_if_at(t, |&e| e == 9), None);
        assert_eq!(q.pop_if_at(t, |&e| e == 1), Some(1));
        assert_eq!(q.pop_if_at(t, |&e| e == 2), Some(2));
        // Head moved to a later instant: declined.
        assert_eq!(q.pop_if_at(t, |_| true), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_micros(3), 3)));
    }

    /// In-crate oracle: random streams with same-tick collisions and
    /// pop-interleaved pushes produce identical sequences from the wheel and
    /// the heap. (The heavier cross-crate version lives in
    /// `tests/properties.rs`.)
    #[test]
    fn wheel_matches_heap_on_random_streams() {
        let mut rng = SimRng::new(0xA11CE);
        for _ in 0..50 {
            let mut wheel = EventQueue::new();
            let mut heap = HeapEventQueue::new();
            let mut base = 0u64;
            for _ in 0..400 {
                if rng.gen_bool(0.6) {
                    let jump = match rng.gen_below(4) {
                        0 => rng.gen_below(4),                   // same-tick collisions
                        1 => rng.gen_below(1 << 10),             // near future
                        2 => rng.gen_below(1 << 30),             // mid future
                        _ => rng.next_u64() >> rng.gen_below(8), // far future
                    };
                    let at = SimTime::from_nanos(base.saturating_add(jump));
                    let tag = rng.next_u64();
                    wheel.push(at, tag);
                    heap.push(at, tag);
                } else {
                    let got = wheel.pop();
                    assert_eq!(got, heap.pop());
                    if let Some((t, _)) = got {
                        base = t.as_nanos();
                    }
                }
                assert_eq!(wheel.len(), heap.len());
                assert_eq!(wheel.peek_time(), heap.peek_time());
            }
            while let Some(got) = wheel.pop() {
                assert_eq!(Some(got), heap.pop());
            }
            assert!(heap.pop().is_none());
        }
    }

    #[test]
    fn heap_oracle_matches_original_contract() {
        let mut q = HeapEventQueue::new();
        q.push(SimTime::from_micros(5), "later");
        q.push(SimTime::from_micros(1), "first");
        q.push(SimTime::from_micros(5), "even later");
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(1)));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_micros(1), "first")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(5), "later")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(5), "even later")));
        assert_eq!(q.now(), SimTime::from_micros(5));
        assert_eq!(q.pop(), None);
    }
}
