//! The event queue at the heart of the discrete-event simulator.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs ordered by time.
//! Events scheduled for the same instant pop in **insertion order** (a
//! monotonically increasing sequence number breaks ties), which makes the
//! simulation fully deterministic even when many events collide on one
//! timestamp — a common situation when components schedule "immediately".

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// ```
/// use gimbal_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(5), "later");
/// q.push(SimTime::from_micros(1), "first");
/// q.push(SimTime::from_micros(5), "even later"); // same instant: FIFO
///
/// assert_eq!(q.pop(), Some((SimTime::from_micros(1), "first")));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(5), "later")));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(5), "even later")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Timestamp of the most recently popped event; pushes earlier than this
    /// indicate a causality bug and panic in debug builds.
    watermark: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Schedule `event` to fire at instant `at`.
    ///
    /// Scheduling in the past (before the last popped timestamp) is a
    /// causality violation; it panics in debug builds and is clamped to the
    /// watermark in release builds.
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.watermark,
            "event scheduled at {at} before current time {}",
            self.watermark
        );
        let at = at.max(self.watermark);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the earliest event, advancing the causality watermark.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.watermark = entry.at;
        Some((entry.at, entry.event))
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current simulation watermark (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.watermark
    }

    /// Drop all pending events without firing them.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn watermark_tracks_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    #[cfg(debug_assertions)]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), ());
        q.pop();
        q.push(SimTime::from_micros(5), ());
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(3), 'a');
        q.push(SimTime::from_micros(1), 'b');
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(1)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_deterministic() {
        // Simulates a self-clocked workload: each pop schedules a successor.
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 0u32);
        let mut seen = Vec::new();
        while let Some((t, id)) = q.pop() {
            seen.push(id);
            if seen.len() >= 50 {
                break;
            }
            q.push(t + SimDuration::from_nanos(u64::from(id % 3)), id + 1);
        }
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }
}
