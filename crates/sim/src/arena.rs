//! Incarnation-tagged slab arena for per-IO state.
//!
//! The engines track every in-flight command in a record (`CmdTrack` in the
//! testbed, `Phys` in the rack) that used to be heap-allocated per IO inside
//! a map. At millions of IOs per run that is an allocation and a free on the
//! hot path for every command. [`IoArena`] recycles the records through a
//! free list instead: a freed slot is reused by the next allocation, and an
//! **incarnation counter** per slot — mirroring the cache's
//! incarnation-tagged lines — makes every [`IoHandle`] unique across the
//! slot's lifetimes. Accessing a slot through a stale handle (one whose
//! incarnation the slot has since outlived) is a *typed* error, never a
//! silent read of the next tenant's state.
//!
//! Determinism: slot assignment depends only on the alloc/free sequence
//! (LIFO free list), so a double run allocates identical handles. Iteration
//! over live records is never exposed — engines keep their own deterministic
//! index (`DetMap<id, IoHandle>`) and the arena is pure storage.

/// Handle to a live arena record: slot index plus the slot incarnation at
/// allocation time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IoHandle {
    index: u32,
    incarnation: u32,
}

impl IoHandle {
    /// The slot index (stable for the record's lifetime).
    pub fn index(self) -> u32 {
        self.index
    }

    /// The slot incarnation this handle was issued under.
    pub fn incarnation(self) -> u32 {
        self.incarnation
    }
}

/// Typed access failure: the handle no longer names a live record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArenaError {
    /// The slot has been freed and reallocated since this handle was issued
    /// (handle incarnation < slot incarnation), or the handle predates a
    /// reset.
    Stale,
    /// The slot is currently on the free list: the record was freed and not
    /// yet reused.
    Vacant,
}

impl std::fmt::Display for ArenaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArenaError::Stale => write!(f, "stale arena handle (slot was recycled)"),
            ArenaError::Vacant => write!(f, "vacant arena slot (record already freed)"),
        }
    }
}

struct Slot<T> {
    /// Bumped on every free, so recycled slots never honor old handles.
    incarnation: u32,
    value: Option<T>,
}

/// A free-list slab of per-IO records keyed by incarnation.
pub struct IoArena<T> {
    slots: Vec<Slot<T>>,
    /// LIFO free list of slot indices (deterministic reuse order).
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for IoArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> IoArena<T> {
    /// Create an empty arena.
    pub fn new() -> Self {
        IoArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Store `value`, reusing the most recently freed slot if one exists.
    /// The returned handle is distinct from every handle ever issued for
    /// this arena (no ID aliasing while in flight).
    pub fn alloc(&mut self, value: T) -> IoHandle {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none(), "free list pointed at a live slot");
            slot.value = Some(value);
            return IoHandle {
                index,
                incarnation: slot.incarnation,
            };
        }
        let index = u32::try_from(self.slots.len()).expect("arena exceeds u32 slots");
        self.slots.push(Slot {
            incarnation: 0,
            value: Some(value),
        });
        IoHandle {
            index,
            incarnation: 0,
        }
    }

    /// Release the record behind `h`, returning it and bumping the slot's
    /// incarnation so `h` (and any copy of it) goes stale immediately.
    pub fn free(&mut self, h: IoHandle) -> Result<T, ArenaError> {
        let slot = self.check(h)?;
        let value = slot.value.take().ok_or(ArenaError::Vacant)?;
        slot.incarnation = slot.incarnation.wrapping_add(1);
        self.live -= 1;
        self.free.push(h.index);
        Ok(value)
    }

    /// Shared access to a live record.
    pub fn get(&self, h: IoHandle) -> Result<&T, ArenaError> {
        let slot = self.slots.get(h.index as usize).ok_or(ArenaError::Stale)?;
        if slot.incarnation != h.incarnation {
            return Err(ArenaError::Stale);
        }
        slot.value.as_ref().ok_or(ArenaError::Vacant)
    }

    /// Exclusive access to a live record.
    pub fn get_mut(&mut self, h: IoHandle) -> Result<&mut T, ArenaError> {
        let slot = self.check(h)?;
        slot.value.as_mut().ok_or(ArenaError::Vacant)
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no records are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + recyclable).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn check(&mut self, h: IoHandle) -> Result<&mut Slot<T>, ArenaError> {
        let slot = self
            .slots
            .get_mut(h.index as usize)
            .ok_or(ArenaError::Stale)?;
        if slot.incarnation != h.incarnation {
            return Err(ArenaError::Stale);
        }
        Ok(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_free_round_trip() {
        let mut a = IoArena::new();
        let h = a.alloc(41);
        *a.get_mut(h).expect("live") += 1;
        assert_eq!(a.get(h), Ok(&42));
        assert_eq!(a.len(), 1);
        assert_eq!(a.free(h), Ok(42));
        assert!(a.is_empty());
    }

    #[test]
    fn stale_handle_is_a_typed_error() {
        let mut a = IoArena::new();
        let h1 = a.alloc("first");
        a.free(h1).expect("live");
        let h2 = a.alloc("second");
        // Same slot, new incarnation: the old handle must not see the new
        // tenant's record.
        assert_eq!(h1.index(), h2.index());
        assert_ne!(h1, h2);
        assert_eq!(a.get(h1), Err(ArenaError::Stale));
        assert_eq!(a.free(h1), Err(ArenaError::Stale));
        assert_eq!(a.get(h2), Ok(&"second"));
    }

    #[test]
    fn double_free_is_a_typed_error() {
        let mut a = IoArena::new();
        let h = a.alloc(1u8);
        assert_eq!(a.free(h), Ok(1));
        // The incarnation bump makes a double free Stale, not Vacant — the
        // handle died with the record.
        assert_eq!(a.free(h), Err(ArenaError::Stale));
        assert_eq!(a.get(h), Err(ArenaError::Stale));
    }

    #[test]
    fn recycles_lifo_and_grows_when_drained() {
        let mut a = IoArena::new();
        let h0 = a.alloc(0);
        let h1 = a.alloc(1);
        assert_eq!((h0.index(), h1.index()), (0, 1));
        a.free(h0).expect("live");
        a.free(h1).expect("live");
        // LIFO reuse: last freed comes back first, deterministically.
        let h2 = a.alloc(2);
        let h3 = a.alloc(3);
        assert_eq!((h2.index(), h3.index()), (1, 0));
        let h4 = a.alloc(4);
        assert_eq!(h4.index(), 2);
        assert_eq!(a.capacity(), 3);
        assert_eq!(a.len(), 3);
    }
}
