//! Explicit narrowing-conversion helpers.
//!
//! Accounting and credit state (slot counts, queue depths, virtual-slot
//! budgets) flows between `usize` collection sizes, `u64` accumulators and
//! the `u32` fields carried in events and telemetry. A bare `value as u32`
//! silently truncates when the invariant ("this never exceeds 4 billion")
//! is wrong, and the D7 lint forbids it in accounting paths. These helpers
//! make the policy explicit: truncation panics in debug builds and
//! saturates in release builds, so a broken invariant surfaces in tests
//! instead of corrupting fairness arithmetic.

/// Narrow a `usize` (collection size, slot index) to `u32`.
///
/// Debug builds panic on truncation; release builds saturate at
/// `u32::MAX`.
#[inline]
pub fn usize_to_u32(v: usize) -> u32 {
    debug_assert!(v <= u32::MAX as usize, "usize->u32 truncation: {v}");
    u32::try_from(v).unwrap_or(u32::MAX)
}

/// Narrow a `u64` accumulator to `u32`.
///
/// Debug builds panic on truncation; release builds saturate at
/// `u32::MAX`.
#[inline]
pub fn u64_to_u32(v: u64) -> u32 {
    debug_assert!(v <= u64::from(u32::MAX), "u64->u32 truncation: {v}");
    u32::try_from(v).unwrap_or(u32::MAX)
}

/// Narrow a `u64` to `u16` (e.g. compact wire/log encodings).
///
/// Debug builds panic on truncation; release builds saturate at
/// `u16::MAX`.
#[inline]
pub fn u64_to_u16(v: u64) -> u16 {
    debug_assert!(v <= u64::from(u16::MAX), "u64->u16 truncation: {v}");
    u16::try_from(v).unwrap_or(u16::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_pass_through() {
        assert_eq!(usize_to_u32(0), 0);
        assert_eq!(usize_to_u32(4_000_000_000), 4_000_000_000);
        assert_eq!(u64_to_u32(u64::from(u32::MAX)), u32::MAX);
        assert_eq!(u64_to_u16(65_535), u16::MAX);
    }

    #[test]
    #[should_panic(expected = "truncation")]
    fn debug_truncation_panics() {
        let _ = u64_to_u32(u64::from(u32::MAX) + 1);
    }
}
