//! Virtual time: nanosecond-resolution instants and durations.
//!
//! [`SimTime`] is an absolute instant since the start of the simulation and
//! [`SimDuration`] a span between instants. Both are thin `u64` newtypes with
//! saturating/panicking arithmetic chosen to surface logic errors early: an
//! instant minus an earlier instant is fine, the reverse panics in debug
//! builds (and saturates in release, which keeps long experiments alive).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as "never" for wake-up times.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000))
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000_000))
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, truncating.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds (for reporting; not used in simulation logic).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            self.0 >= earlier.0,
            "SimTime::since: earlier={} is after self={}",
            earlier,
            self
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative duration {s}");
        let ns = (s * 1e9).round() as u64;
        SimDuration(ns)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, truncating.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span needed to move `bytes` at `bytes_per_sec` (rounded up to 1 ns).
    ///
    /// Used throughout the SSD and fabric models for serialization delays.
    #[inline]
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "zero bandwidth");
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }

    /// Saturating multiplication by an integer factor.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Human-readable nanosecond formatting used by both newtypes.
fn fmt_ns(ns: u64) -> String {
    if ns == u64::MAX {
        "∞".to_string()
    } else if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(5);
        assert_eq!((t + d).as_micros(), 15);
        assert_eq!((t - d).as_micros(), 5);
        assert_eq!(((t + d) - t).as_micros(), 5);
        assert_eq!((d + d).as_micros(), 10);
        assert_eq!((d * 3).as_micros(), 15);
        assert_eq!((d / 5).as_micros(), 1);
    }

    #[test]
    fn since_saturates_in_release() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert_eq!(b.since(a).as_micros(), 1);
    }

    #[test]
    fn for_bytes_serialization_delay() {
        // 4 KB at 1 GB/s = ~4096 ns.
        let d = SimDuration::for_bytes(4096, 1_000_000_000);
        assert_eq!(d.as_nanos(), 4096);
        // Rounds up: 1 byte at 3 GB/s is 1 ns, never 0.
        let d = SimDuration::for_bytes(1, 3_000_000_000);
        assert_eq!(d.as_nanos(), 1);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", SimTime::from_nanos(u64::MAX)), "t+∞");
    }

    #[test]
    fn saturating_behavior() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimDuration::MAX.saturating_mul(2), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_nanos(1) - SimDuration::from_nanos(2),
            SimDuration::ZERO
        );
    }
}
