//! Deterministic, insertion-ordered map and set.
//!
//! `std::collections::HashMap`/`HashSet` randomize their iteration order per
//! process (by design, via a random `RandomState` seed), so any simulation
//! state that is *iterated* — scheduler tenant tables, WAL groups, memtables —
//! silently breaks the "one seed pins down the whole run" invariant the
//! workspace is built on. [`DetMap`] and [`DetSet`] are drop-in replacements
//! whose iteration order is the *insertion order* (re-insertion of a live key
//! keeps its original position), independent of hasher seeds and platforms.
//!
//! Design: a slab of `Option<(K, V)>` entries in insertion order plus a
//! hash index from key to slab position. Lookup/insert/remove are O(1)
//! amortized; removal leaves a tombstone that iteration skips, and the slab
//! compacts itself whenever tombstones outnumber live entries, keeping
//! iteration O(live) amortized. The interior `HashMap` is used purely as an
//! index — it is never iterated — so its random ordering cannot leak into
//! simulation behaviour.

use std::collections::HashMap; // lint: allow(unordered-map, owner=sim, expires=2028-08-01) — index only, never iterated; order comes from the slab
use std::hash::Hash;

/// A deterministic insertion-ordered map.
#[derive(Clone, Debug)]
pub struct DetMap<K, V> {
    /// Entries in insertion order; `None` marks a removed entry.
    slab: Vec<Option<(K, V)>>,
    /// Key → slab position.
    index: HashMap<K, usize>, // lint: allow(unordered-map, owner=sim, expires=2028-08-01) — index only, never iterated
}

impl<K, V> Default for DetMap<K, V> {
    fn default() -> Self {
        DetMap {
            slab: Vec::new(),
            index: HashMap::new(), // lint: allow(unordered-map, owner=sim, expires=2028-08-01) — index only, never iterated
        }
    }
}

impl<K: Eq + Hash + Clone, V> DetMap<K, V> {
    /// Create an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create with capacity for `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        DetMap {
            slab: Vec::with_capacity(n),
            index: HashMap::with_capacity(n), // lint: allow(unordered-map, owner=sim, expires=2028-08-01) — index only, never iterated
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Insert, returning the previous value if the key was present. A live
    /// key keeps its insertion-order position; a new key goes to the back.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if let Some(&pos) = self.index.get(&key) {
            let slot = self.slab[pos].as_mut().expect("index points at live slot");
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.index.insert(key.clone(), self.slab.len());
        self.slab.push(Some((key, value)));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let &pos = self.index.get(key)?;
        self.slab[pos].as_ref().map(|(_, v)| v)
    }

    /// Look up a key, mutably.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let &pos = self.index.get(key)?;
        self.slab[pos].as_mut().map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Remove a key, returning its value. Iteration order of the remaining
    /// entries is unchanged.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let pos = self.index.remove(key)?;
        let (_, v) = self.slab[pos].take().expect("index points at live slot");
        self.maybe_compact();
        Some(v)
    }

    /// Get the value for `key`, inserting one built by `make` if absent.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&mut self, key: K, make: F) -> &mut V {
        let pos = match self.index.get(&key) {
            Some(&pos) => pos,
            None => {
                let pos = self.slab.len();
                self.index.insert(key.clone(), pos);
                self.slab.push(Some((key, make())));
                pos
            }
        };
        self.slab[pos].as_mut().map(|(_, v)| v).expect("live slot")
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.slab.clear();
        self.index.clear();
    }

    /// Iterate `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slab
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (k, v)))
    }

    /// Iterate pairs in insertion order, values mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> {
        self.slab
            .iter_mut()
            .filter_map(|s| s.as_mut().map(|(k, v)| (&*k, v)))
    }

    /// Iterate keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterate values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// Iterate values mutably, in insertion order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.iter_mut().map(|(_, v)| v)
    }

    /// Keep only the entries satisfying the predicate (in order).
    pub fn retain<F: FnMut(&K, &mut V) -> bool>(&mut self, mut pred: F) {
        for slot in &mut self.slab {
            if let Some((k, v)) = slot {
                if !pred(k, v) {
                    self.index.remove(k);
                    *slot = None;
                }
            }
        }
        self.maybe_compact();
    }

    /// Compact the slab once tombstones dominate, keeping iteration O(live).
    fn maybe_compact(&mut self) {
        if self.slab.len() >= 8 && self.index.len() * 2 < self.slab.len() {
            self.slab.retain(Option::is_some);
            for (pos, slot) in self.slab.iter().enumerate() {
                let (k, _) = slot.as_ref().expect("compacted");
                *self.index.get_mut(k).expect("indexed") = pos;
            }
        }
    }
}

impl<K: Eq + Hash + Clone, V> FromIterator<(K, V)> for DetMap<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut m = DetMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<K: Eq + Hash + Clone, V> Extend<(K, V)> for DetMap<K, V> {
    fn extend<T: IntoIterator<Item = (K, V)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

/// Owning iterator over a [`DetMap`], in insertion order.
pub struct IntoIter<K, V>(std::iter::Flatten<std::vec::IntoIter<Option<(K, V)>>>);

impl<K, V> Iterator for IntoIter<K, V> {
    type Item = (K, V);
    fn next(&mut self) -> Option<(K, V)> {
        self.0.next()
    }
}

impl<K: Eq + Hash + Clone, V> IntoIterator for DetMap<K, V> {
    type Item = (K, V);
    type IntoIter = IntoIter<K, V>;
    fn into_iter(self) -> IntoIter<K, V> {
        IntoIter(self.slab.into_iter().flatten())
    }
}

/// A deterministic insertion-ordered set.
#[derive(Clone, Debug, Default)]
pub struct DetSet<T> {
    map: DetMap<T, ()>,
}

impl<T: Eq + Hash + Clone> DetSet<T> {
    /// Create an empty set.
    pub fn new() -> Self {
        DetSet { map: DetMap::new() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Insert; returns whether the element was newly added.
    pub fn insert(&mut self, value: T) -> bool {
        self.map.insert(value, ()).is_none()
    }

    /// Whether the element is present.
    pub fn contains(&self, value: &T) -> bool {
        self.map.contains_key(value)
    }

    /// Remove; returns whether the element was present.
    pub fn remove(&mut self, value: &T) -> bool {
        self.map.remove(value).is_some()
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Iterate elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.map.keys()
    }
}

impl<T: Eq + Hash + Clone> FromIterator<T> for DetSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut s = DetSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl<T: Eq + Hash + Clone> Extend<T> for DetSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a, T: Eq + Hash + Copy> Extend<&'a T> for DetSet<T> {
    fn extend<I: IntoIterator<Item = &'a T>>(&mut self, iter: I) {
        for &v in iter {
            self.insert(v);
        }
    }
}

/// Owning iterator over a [`DetSet`], in insertion order.
pub struct SetIntoIter<T>(IntoIter<T, ()>);

impl<T> Iterator for SetIntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.0.next().map(|(k, ())| k)
    }
}

impl<T: Eq + Hash + Clone> IntoIterator for DetSet<T> {
    type Item = T;
    type IntoIter = SetIntoIter<T>;
    fn into_iter(self) -> SetIntoIter<T> {
        SetIntoIter(self.map.into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_follows_insertion_order() {
        let mut m = DetMap::new();
        for k in [5u64, 1, 9, 3, 7] {
            m.insert(k, k * 10);
        }
        let keys: Vec<u64> = m.keys().copied().collect();
        assert_eq!(keys, vec![5, 1, 9, 3, 7]);
        let vals: Vec<u64> = m.values().copied().collect();
        assert_eq!(vals, vec![50, 10, 90, 30, 70]);
    }

    #[test]
    fn reinsertion_keeps_position_removal_preserves_order() {
        let mut m = DetMap::new();
        for k in [1u32, 2, 3, 4] {
            m.insert(k, 0);
        }
        assert_eq!(m.insert(2, 99), Some(0), "overwrite returns old value");
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert_eq!(m.remove(&3), Some(0));
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec![1, 2, 4]);
        // New key goes to the back.
        m.insert(3, 1);
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec![1, 2, 4, 3]);
    }

    #[test]
    fn compaction_preserves_order_and_lookups() {
        let mut m = DetMap::new();
        for k in 0u64..100 {
            m.insert(k, k);
        }
        for k in 0u64..90 {
            assert_eq!(m.remove(&k), Some(k));
        }
        assert_eq!(m.len(), 10);
        assert_eq!(
            m.keys().copied().collect::<Vec<_>>(),
            (90..100).collect::<Vec<_>>()
        );
        for k in 90u64..100 {
            assert_eq!(m.get(&k), Some(&k));
        }
        // Slab must have compacted: insert after heavy removal still works.
        m.insert(1000, 1);
        assert_eq!(m.keys().last(), Some(&1000));
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let mut m: DetMap<u8, Vec<u8>> = DetMap::new();
        m.get_or_insert_with(1, Vec::new).push(10);
        m.get_or_insert_with(1, || panic!("must not rebuild"))
            .push(11);
        assert_eq!(m.get(&1), Some(&vec![10, 11]));
    }

    #[test]
    fn retain_filters_in_order() {
        let mut m: DetMap<u32, u32> = (0..10).map(|k| (k, k)).collect();
        m.retain(|k, _| k % 3 == 0);
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec![0, 3, 6, 9]);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn set_order_and_membership() {
        let mut s = DetSet::new();
        for v in [3u64, 1, 4, 1, 5, 9, 2, 6] {
            s.insert(v);
        }
        assert_eq!(
            s.iter().copied().collect::<Vec<_>>(),
            vec![3, 1, 4, 5, 9, 2, 6]
        );
        assert!(s.contains(&5));
        assert!(s.remove(&4));
        assert!(!s.remove(&4));
        assert_eq!(
            s.iter().copied().collect::<Vec<_>>(),
            vec![3, 1, 5, 9, 2, 6]
        );
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn order_is_identical_across_instances() {
        // The property HashMap lacks: two maps built the same way iterate
        // the same way, every time, in every process.
        let build = || {
            let mut m = DetMap::new();
            let mut x = 1u64;
            for _ in 0..500 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                m.insert(x >> 33, x);
            }
            for k in (0..500).step_by(3) {
                m.remove(&k);
            }
            m.keys().copied().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
