//! Deterministic pseudo-random number generation.
//!
//! [`SimRng`] is a PCG-XSH-RR 64/32 generator: small state, excellent
//! statistical quality for simulation purposes, and — critically —
//! platform-independent and fully reproducible from a seed. Every stochastic
//! component in the workspace (workload arrival jitter, zipfian key draws,
//! FTL victim tie-breaks) derives its stream from one of these, so a single
//! experiment seed pins down the entire simulation.
//!
//! We deliberately do not use `rand::thread_rng` anywhere in simulation code.

/// A deterministic PCG32 random number generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl SimRng {
    /// Create a generator from a seed. Two generators with the same seed
    /// produce identical streams on every platform.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0xda3e39cb94b95bdb)
    }

    /// Create a generator on an explicit stream. Different streams from the
    /// same seed are statistically independent; used to give each component
    /// its own stream so adding a draw in one place cannot perturb another.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = SimRng {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Derive an independent child generator; handy for giving each tenant or
    /// worker its own stream from an experiment-level seed.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let seed = self.next_u64() ^ salt.wrapping_mul(0x9e3779b97f4a7c15);
        SimRng::with_stream(seed, salt.wrapping_add(1))
    }

    /// Next 32 uniformly distributed bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    #[inline]
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below(0)");
        // Widening-multiply rejection sampling (unbiased).
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.gen_below(hi - lo)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// arrival processes in open-loop workloads).
    #[inline]
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Avoid ln(0); gen_f64 is in [0,1) so 1-u is in (0,1].
        -mean * (1.0 - self.gen_f64()).ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        &slice[self.gen_below(slice.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 3, "streams should be effectively independent");
    }

    #[test]
    fn gen_below_bounds_and_coverage() {
        let mut rng = SimRng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gen_f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SimRng::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_exp_has_requested_mean() {
        let mut rng = SimRng::new(5);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.gen_exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean} too far from 3.0");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::new(11);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 3);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn known_first_value_pins_the_algorithm() {
        // Golden value: changing the PCG implementation silently would break
        // reproducibility of every recorded experiment, so pin it.
        let mut rng = SimRng::new(0);
        let first = rng.next_u32();
        let mut again = SimRng::new(0);
        assert_eq!(first, again.next_u32());
    }

    #[test]
    fn with_stream_pairs_are_uncorrelated() {
        // Every pair of distinct streams from the same seed must look
        // independent: few positional collisions over a shared prefix, and
        // no collisions at all in their leading values across many streams.
        let seed = 0xd15_c0de;
        for s1 in 0..8u64 {
            for s2 in (s1 + 1)..8u64 {
                let mut a = SimRng::with_stream(seed, s1);
                let mut b = SimRng::with_stream(seed, s2);
                let same = (0..1000).filter(|_| a.next_u32() == b.next_u32()).count();
                assert!(
                    same < 5,
                    "streams {s1}/{s2}: {same} positional collisions in 1000"
                );
            }
        }
        let firsts: Vec<u64> = (0..64)
            .map(|s| SimRng::with_stream(seed, s).next_u64())
            .collect();
        let mut uniq = firsts.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), firsts.len(), "streams share leading values");
    }

    #[test]
    fn with_stream_is_reproducible_per_stream() {
        let mut a = SimRng::with_stream(99, 7);
        let mut b = SimRng::with_stream(99, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn clone_replays_identically() {
        // A cloned RNG must continue exactly like its original — this is
        // what lets a component snapshot and replay its entropy stream.
        let mut orig = SimRng::with_stream(0xfeed, 3);
        for _ in 0..37 {
            orig.next_u64(); // advance to an arbitrary mid-stream state
        }
        let mut replay = orig.clone();
        let from_orig: Vec<u64> = (0..200).map(|_| orig.next_u64()).collect();
        let from_clone: Vec<u64> = (0..200).map(|_| replay.next_u64()).collect();
        assert_eq!(from_orig, from_clone);
        // And the derived generators agree too.
        let mut c1 = orig.fork(5);
        let mut c2 = replay.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
    }
}
