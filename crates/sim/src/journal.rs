//! Divergence sanitizer: a flag-gated state-access journal.
//!
//! Determinism bugs are easy to assert (`digest_a == digest_b`) and painful
//! to localize: by the time the final digest differs, millions of events have
//! passed and the first bad decision is long gone. The [`AccessJournal`]
//! records a `(tick, component, key, op)` tuple for every state access a
//! component chooses to report, folds each record into a running [`Digest`],
//! and checkpoints the cumulative digest once per tick. Given two journals
//! from a double run, [`first_divergence`] binary-searches the checkpoint
//! sequence to the first tick whose *prefix* digest differs, then replays
//! that tick's entries side by side to name the exact component, key, and
//! operation where the runs parted ways.
//!
//! The journal is reached through a [`JournalHandle`], the same clonable
//! `Option<Rc<RefCell<..>>>` shape as the telemetry `TraceHandle`: the
//! default handle is disabled and every record call reduces to one `None`
//! branch, so runs with the sanitizer off are bit-identical to runs built
//! before it existed.

use std::cell::RefCell;
use std::rc::Rc;

use crate::digest::Digest;

/// One recorded state access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// Virtual-time tick (nanoseconds) of the poll step that made the access.
    pub tick: u64,
    /// The component that owns the state (e.g. `"switch.pipeline"`).
    pub component: &'static str,
    /// The operation performed (e.g. `"pop"`, `"credit"`, `"evict"`).
    pub op: &'static str,
    /// The key touched — tenant id, slot index, LPN, whatever identifies the
    /// state within the component.
    pub key: u64,
}

impl JournalEntry {
    fn fold_into(&self, d: &mut Digest) {
        d.update_u64(self.tick);
        d.update(self.component.as_bytes());
        d.update(&[0]); // separator: ("ab","c") must differ from ("a","bc")
        d.update(self.op.as_bytes());
        d.update(&[0]);
        d.update_u64(self.key);
    }
}

/// Cumulative digest checkpoint at the end of one tick.
#[derive(Clone, Copy, Debug)]
struct Checkpoint {
    tick: u64,
    /// Digest over every entry with `entry.tick <= tick`.
    cumulative: u64,
}

/// The state-access journal for one simulation run.
#[derive(Clone, Debug, Default)]
pub struct AccessJournal {
    entries: Vec<JournalEntry>,
    checkpoints: Vec<Checkpoint>,
    running: Digest,
}

impl AccessJournal {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one access. `tick` values must be non-decreasing — the journal
    /// is fed from a monotone poll loop.
    pub fn record(&mut self, tick: u64, component: &'static str, op: &'static str, key: u64) {
        debug_assert!(
            self.entries.last().is_none_or(|e| e.tick <= tick),
            "journal ticks must be non-decreasing"
        );
        // Close the previous tick's checkpoint when time advances.
        if let Some(last) = self.entries.last() {
            if last.tick < tick {
                self.push_checkpoint(last.tick);
            }
        }
        let entry = JournalEntry {
            tick,
            component,
            op,
            key,
        };
        entry.fold_into(&mut self.running);
        self.entries.push(entry);
    }

    fn push_checkpoint(&mut self, tick: u64) {
        self.checkpoints.push(Checkpoint {
            tick,
            cumulative: self.running.value(),
        });
    }

    /// Every entry recorded so far, in record order (test suites assert on
    /// which components decided what; the comparator itself uses
    /// [`first_divergence`]).
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Total entries recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Digest over every entry recorded so far (includes the still-open
    /// tick). Two deterministic runs must agree on this value.
    pub fn digest(&self) -> u64 {
        self.running.value()
    }

    /// Cumulative digest over all entries with `entry.tick <= tick`.
    fn prefix_digest(&self, tick: u64) -> u64 {
        // Last closed checkpoint at or before `tick`…
        let idx = self.checkpoints.partition_point(|c| c.tick <= tick);
        let closed = if idx == 0 {
            Digest::new().value()
        } else {
            self.checkpoints[idx - 1].cumulative
        };
        // …plus the still-open tail if it falls inside the prefix.
        match self.entries.last() {
            Some(last) if last.tick <= tick && self.checkpoints.len() == idx => {
                self.running.value()
            }
            _ => closed,
        }
    }

    /// All entries recorded at exactly `tick`.
    fn entries_at(&self, tick: u64) -> &[JournalEntry] {
        let lo = self.entries.partition_point(|e| e.tick < tick);
        let hi = self.entries.partition_point(|e| e.tick <= tick);
        &self.entries[lo..hi]
    }

    /// Every distinct tick that recorded at least one entry, ascending.
    fn ticks(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.checkpoints.iter().map(|c| c.tick).collect();
        if let Some(last) = self.entries.last() {
            if out.last() != Some(&last.tick) {
                out.push(last.tick);
            }
        }
        out
    }
}

/// Where and how two journals first disagree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DivergenceReport {
    /// First tick whose prefix digests differ.
    pub tick: u64,
    /// Index within that tick's entry list of the first mismatch.
    pub entry_index: usize,
    /// The entry run A recorded at that position, if any.
    pub a: Option<JournalEntry>,
    /// The entry run B recorded at that position, if any.
    pub b: Option<JournalEntry>,
}

impl DivergenceReport {
    /// The component implicated by the first mismatching entry.
    pub fn component(&self) -> &'static str {
        self.a.or(self.b).map_or("<none>", |e| e.component)
    }

    /// The key implicated by the first mismatching entry (run A wins ties).
    pub fn key(&self) -> Option<u64> {
        self.a.or(self.b).map(|e| e.key)
    }
}

impl std::fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "first divergence at tick {} entry {}: run A {:?}, run B {:?}",
            self.tick, self.entry_index, self.a, self.b
        )
    }
}

/// Machine-readable (JSON) form of a [`DivergenceReport`].
pub fn report_json(r: &DivergenceReport) -> String {
    fn ent(e: Option<JournalEntry>) -> String {
        match e {
            None => "null".to_owned(),
            Some(e) => format!(
                "{{\"tick\":{},\"component\":\"{}\",\"op\":\"{}\",\"key\":{}}}",
                e.tick, e.component, e.op, e.key
            ),
        }
    }
    format!(
        "{{\"tick\":{},\"entry_index\":{},\"component\":\"{}\",\"a\":{},\"b\":{}}}",
        r.tick,
        r.entry_index,
        r.component(),
        ent(r.a),
        ent(r.b)
    )
}

/// Compare two journals from a double run. Returns `None` when they are
/// identical; otherwise binary-searches the per-tick cumulative digests for
/// the first divergent tick and names the first mismatching entry within it.
pub fn first_divergence(a: &AccessJournal, b: &AccessJournal) -> Option<DivergenceReport> {
    if a.digest() == b.digest() && a.len() == b.len() {
        return None;
    }

    // Union of every tick either run recorded, ascending.
    let ta = a.ticks();
    let tb = b.ticks();
    let mut ticks: Vec<u64> = Vec::with_capacity(ta.len() + tb.len());
    let (mut i, mut j) = (0, 0);
    while i < ta.len() || j < tb.len() {
        match (ta.get(i), tb.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                ticks.push(x);
                i += 1;
                j += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                ticks.push(x);
                i += 1;
            }
            (Some(_), Some(&y)) => {
                ticks.push(y);
                j += 1;
            }
            (Some(&x), None) => {
                ticks.push(x);
                i += 1;
            }
            (None, Some(&y)) => {
                ticks.push(y);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }

    // Binary search: prefix digests agree up to some tick index, then
    // disagree forever after (a 64-bit FNV re-collision after divergence is
    // negligible, and the linear-scan oracle in the tests guards the
    // assumption). `partition_point` finds the first disagreeing index.
    let first_bad = ticks.partition_point(|&t| a.prefix_digest(t) == b.prefix_digest(t));
    let tick = match ticks.get(first_bad) {
        Some(&t) => t,
        // Digest/len mismatch but every prefix agrees — can only happen on
        // an empty tick union (both journals empty is excluded above).
        None => *ticks.last()?,
    };

    let ea = a.entries_at(tick);
    let eb = b.entries_at(tick);
    let entry_index = ea
        .iter()
        .zip(eb.iter())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| ea.len().min(eb.len()));
    Some(DivergenceReport {
        tick,
        entry_index,
        a: ea.get(entry_index).copied(),
        b: eb.get(entry_index).copied(),
    })
}

/// A cheap, clonable recording handle. `Default` is disabled: record calls
/// reduce to a single `None` branch and touch no memory.
#[derive(Clone, Default)]
pub struct JournalHandle {
    inner: Option<Rc<RefCell<AccessJournal>>>,
}

impl std::fmt::Debug for JournalHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "JournalHandle(enabled)"
        } else {
            "JournalHandle(disabled)"
        })
    }
}

impl JournalHandle {
    /// The disabled handle (same as `Default`).
    pub fn disabled() -> Self {
        JournalHandle::default()
    }

    /// A fresh enabled handle backed by its own journal.
    pub fn enabled() -> Self {
        JournalHandle {
            inner: Some(Rc::new(RefCell::new(AccessJournal::new()))),
        }
    }

    /// A handle feeding the shared journal.
    pub fn attached(journal: &Rc<RefCell<AccessJournal>>) -> Self {
        JournalHandle {
            inner: Some(Rc::clone(journal)),
        }
    }

    /// Whether records reach a journal.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one access; no-op when disabled.
    #[inline]
    pub fn record(&self, tick: u64, component: &'static str, op: &'static str, key: u64) {
        if let Some(j) = &self.inner {
            j.borrow_mut().record(tick, component, op, key);
        }
    }

    /// Digest of the underlying journal, or `None` when disabled.
    pub fn digest(&self) -> Option<u64> {
        self.inner.as_ref().map(|j| j.borrow().digest())
    }

    /// Snapshot the underlying journal, or `None` when disabled.
    pub fn snapshot(&self) -> Option<AccessJournal> {
        self.inner.as_ref().map(|j| j.borrow().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(j: &mut AccessJournal, script: &[(u64, &'static str, &'static str, u64)]) {
        for &(t, c, o, k) in script {
            j.record(t, c, o, k);
        }
    }

    /// Linear-scan oracle: first tick whose entry slices differ.
    fn linear_first_divergent_tick(a: &AccessJournal, b: &AccessJournal) -> Option<u64> {
        let mut ticks: Vec<u64> = a.ticks();
        ticks.extend(b.ticks());
        ticks.sort_unstable();
        ticks.dedup();
        ticks
            .into_iter()
            .find(|&t| a.entries_at(t) != b.entries_at(t))
    }

    #[test]
    fn identical_journals_have_no_divergence() {
        let script = [
            (10, "switch", "pop", 1),
            (10, "switch", "push", 2),
            (20, "ssd", "submit", 7),
            (35, "cache", "evict", 3),
        ];
        let mut a = AccessJournal::new();
        let mut b = AccessJournal::new();
        feed(&mut a, &script);
        feed(&mut b, &script);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(first_divergence(&a, &b), None);
    }

    #[test]
    fn divergent_key_is_localized_to_exact_tick_and_entry() {
        let mut a = AccessJournal::new();
        let mut b = AccessJournal::new();
        feed(
            &mut a,
            &[
                (10, "switch", "pop", 1),
                (20, "ssd", "submit", 7),
                (20, "ssd", "submit", 8),
                (30, "cache", "evict", 3),
            ],
        );
        feed(
            &mut b,
            &[
                (10, "switch", "pop", 1),
                (20, "ssd", "submit", 7),
                (20, "ssd", "submit", 9),  // diverges here
                (30, "cache", "evict", 4), // downstream noise, must not win
            ],
        );
        let r = first_divergence(&a, &b).expect("journals differ");
        assert_eq!(r.tick, 20);
        assert_eq!(r.entry_index, 1);
        assert_eq!(r.component(), "ssd");
        assert_eq!(r.key(), Some(8));
        assert_eq!(r.b.unwrap().key, 9);
        assert_eq!(Some(r.tick), linear_first_divergent_tick(&a, &b));
    }

    #[test]
    fn missing_entry_reports_shorter_run() {
        let mut a = AccessJournal::new();
        let mut b = AccessJournal::new();
        feed(&mut a, &[(5, "nic", "dma", 1), (5, "nic", "dma", 2)]);
        feed(&mut b, &[(5, "nic", "dma", 1)]);
        let r = first_divergence(&a, &b).expect("journals differ");
        assert_eq!(r.tick, 5);
        assert_eq!(r.entry_index, 1);
        assert_eq!(r.a.unwrap().key, 2);
        assert_eq!(r.b, None);
    }

    #[test]
    fn tick_present_in_only_one_run() {
        let mut a = AccessJournal::new();
        let mut b = AccessJournal::new();
        feed(&mut a, &[(5, "nic", "dma", 1), (9, "ssd", "gc", 4)]);
        feed(&mut b, &[(5, "nic", "dma", 1)]);
        let r = first_divergence(&a, &b).expect("journals differ");
        assert_eq!(r.tick, 9);
        assert_eq!(r.component(), "ssd");
        assert_eq!(Some(r.tick), linear_first_divergent_tick(&a, &b));
    }

    #[test]
    fn binary_search_matches_linear_scan_on_long_journals() {
        // Same long prefix, one flipped key deep inside; binary search must
        // land exactly where the linear oracle does.
        for flip_at in [0usize, 1, 63, 500, 999] {
            let mut a = AccessJournal::new();
            let mut b = AccessJournal::new();
            for i in 0..1000u64 {
                let tick = i * 3 + 7;
                a.record(tick, "switch", "pop", i);
                let key = if i as usize == flip_at {
                    i + 1_000_000
                } else {
                    i
                };
                b.record(tick, "switch", "pop", key);
            }
            let r = first_divergence(&a, &b).expect("journals differ");
            assert_eq!(
                Some(r.tick),
                linear_first_divergent_tick(&a, &b),
                "flip_at={flip_at}"
            );
            assert_eq!(r.tick, flip_at as u64 * 3 + 7);
        }
    }

    #[test]
    fn disabled_handle_is_free_and_silent() {
        let h = JournalHandle::disabled();
        h.record(1, "x", "y", 2);
        assert!(!h.is_enabled());
        assert_eq!(h.digest(), None);
        assert!(h.snapshot().is_none());
    }

    #[test]
    fn enabled_handle_shares_one_journal_across_clones() {
        let h = JournalHandle::enabled();
        let h2 = h.clone();
        h.record(1, "a", "op", 1);
        h2.record(2, "b", "op", 2);
        let snap = h.snapshot().unwrap();
        assert_eq!(snap.len(), 2);
        assert_eq!(h.digest(), h2.digest());
    }

    #[test]
    fn report_json_shape() {
        let mut a = AccessJournal::new();
        let mut b = AccessJournal::new();
        feed(&mut a, &[(5, "nic", "dma", 1)]);
        feed(&mut b, &[(5, "nic", "dma", 2)]);
        let r = first_divergence(&a, &b).unwrap();
        let json = report_json(&r);
        assert!(json.contains("\"tick\":5"));
        assert!(json.contains("\"component\":\"nic\""));
        assert!(json.contains("\"key\":1"));
        assert!(json.contains("\"key\":2"));
    }
}
