//! # gimbal-cache
//!
//! A deterministic, multi-tenant DRAM cache tier for the SmartNIC.
//!
//! Gimbal (§3) arbitrates *SSD* bandwidth among tenants but leaves the
//! Stingray's on-NIC DRAM unused as a data tier. This crate adds a read
//! cache with write staging that sits in the per-SSD switch pipeline ahead
//! of the scheduling policy:
//!
//! * **Read hits** complete from NIC DRAM. The pipeline charges hit-path
//!   CPU cycles and a small DRAM-copy latency; the SSD — and therefore
//!   Alg. 1's latency/rate accounting — is bypassed entirely.
//! * **Read misses** go to the device as before and *fill on completion*,
//!   subject to an admission controller coupled to a congestion classifier
//!   over observed device latency (NetCAS-style): admit aggressively while
//!   `Congested`/`Overloaded` to shed SSD load, admit only re-referenced
//!   (ghost-hit) lines in the avoidance band, and bypass entirely when the
//!   device is clean so the hit path costs nothing.
//! * **Writes** are write-through: covered lines are updated in place and
//!   marked dirty until the device write completes; partially covered lines
//!   are invalidated. A failed device write with staged lines surfaces a
//!   typed [`StagedWriteLoss`] — never silent loss.
//!
//! Capacity is partitioned per tenant with cost-weighted shares mirroring
//! the §3.5 DRR weights, so one tenant's working set cannot evict everyone
//! else's. Eviction is a deterministic segmented FIFO (small probation
//! segment + main segment with second chance) plus a per-tenant ghost queue
//! remembering recently evicted line ids. All state lives in
//! [`DetMap`]/[`DetSet`]/`VecDeque` — iteration order is insertion order,
//! so a run is a pure function of the submitted command sequence and the
//! cache folds into [`Digest`] for the double-run determinism checks.

use std::collections::VecDeque;

use gimbal_fabric::{NvmeCmd, Priority, SsdId, TenantId, BLOCK_SIZE};
use gimbal_sim::collections::{DetMap, DetSet};
use gimbal_sim::{Digest, SimDuration, SimTime};
use gimbal_telemetry::{CongState, EventKind, TraceHandle};

/// Miss-fill admission policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Fill every read miss (classic cache).
    Always,
    /// Couple admission to the congestion classifier: fill everything while
    /// the device is `Congested`/`Overloaded`, fill only ghost-queue hits in
    /// the avoidance band, bypass when `Underutilized`.
    CongestionAware,
    /// Never fill (the cache only stages writes); hits can still occur on
    /// lines staged by writes of resident lines, i.e. effectively none.
    Never,
}

impl AdmissionPolicy {
    /// Interned label (CLI, exports).
    pub const fn name(self) -> &'static str {
        match self {
            AdmissionPolicy::Always => "always",
            AdmissionPolicy::CongestionAware => "congestion",
            AdmissionPolicy::Never => "never",
        }
    }

    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Option<AdmissionPolicy> {
        match s {
            "always" => Some(AdmissionPolicy::Always),
            "congestion" | "congestion-aware" => Some(AdmissionPolicy::CongestionAware),
            "never" | "bypass" => Some(AdmissionPolicy::Never),
            _ => None,
        }
    }

    /// Stable rank for digest folding.
    const fn rank(self) -> u64 {
        match self {
            AdmissionPolicy::Always => 0,
            AdmissionPolicy::CongestionAware => 1,
            AdmissionPolicy::Never => 2,
        }
    }
}

/// Cache configuration, carried by `PipelineConfig`/`TestbedConfig`.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Total NIC-DRAM capacity dedicated to this SSD's cache, in bytes.
    /// Zero means the pipeline constructs no cache at all, which is
    /// bit-identical to running without one.
    pub capacity_bytes: u64,
    /// Cache-line size in bytes; a positive multiple of [`BLOCK_SIZE`].
    pub line_bytes: u32,
    /// DRAM-copy latency charged on a hit before completion CPU cycles.
    pub hit_latency: SimDuration,
    /// Miss-fill admission policy.
    pub policy: AdmissionPolicy,
    /// Per-priority capacity weights, mirroring the §3.5 DRR weights:
    /// index 0 = `Priority::HIGH`. A tenant's share of lines is
    /// `weight / sum(weights of registered tenants)`.
    pub priority_weights: [u32; Priority::LEVELS],
    /// Target share of a tenant's partition held by the small (probation)
    /// segment, in percent.
    pub small_percent: u32,
    /// Ghost-queue capacity as a percentage of the tenant's line budget.
    pub ghost_percent: u32,
    /// EWMA smoothing factor for the congestion classifier.
    pub ewma_alpha: f64,
    /// Classifier floor: EWMA device read latency below this is
    /// `Underutilized`.
    pub thresh_min: SimDuration,
    /// Classifier ceiling: EWMA at or above this is `Overloaded`.
    pub thresh_max: SimDuration,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 64 * 1024 * 1024,
            line_bytes: BLOCK_SIZE as u32,
            hit_latency: SimDuration::from_micros(2),
            policy: AdmissionPolicy::CongestionAware,
            priority_weights: [4, 2, 1],
            small_percent: 10,
            ghost_percent: 100,
            ewma_alpha: 0.125,
            thresh_min: SimDuration::from_micros(250),
            thresh_max: SimDuration::from_micros(1500),
        }
    }
}

impl CacheConfig {
    /// A default-policy cache of `mb` mebibytes (CLI convenience).
    pub fn for_mb(mb: u64) -> Self {
        CacheConfig {
            capacity_bytes: mb * 1024 * 1024,
            ..CacheConfig::default()
        }
    }

    /// Whether a pipeline should construct a cache at all.
    pub fn enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// Panic on a degenerate configuration.
    pub fn validate(&self) {
        assert!(
            self.line_bytes > 0 && u64::from(self.line_bytes) % BLOCK_SIZE == 0,
            "cache line must be a positive multiple of the 4 KiB block"
        );
        assert!(
            self.hit_latency > SimDuration::ZERO,
            "hit latency must be positive"
        );
        assert!(
            (1..=90).contains(&self.small_percent),
            "small segment share must be in 1..=90 percent"
        );
        assert!(
            self.ghost_percent <= 400,
            "ghost queue beyond 4x the partition is pointless"
        );
        assert!(
            self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0,
            "EWMA alpha must be in (0, 1]"
        );
        assert!(
            self.thresh_min < self.thresh_max,
            "classifier floor must sit below the ceiling"
        );
    }

    /// Total line slots this configuration provides.
    pub fn capacity_lines(&self) -> u64 {
        self.capacity_bytes / u64::from(self.line_bytes)
    }
}

/// A failed device write that had lines staged in the cache: the staged
/// copies were dropped and the initiator must treat the write as failed.
/// Typed so chaos tests can assert that no staged data is lost silently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StagedWriteLoss {
    /// Raw id of the failed write command.
    pub cmd: u64,
    /// Tenant that issued the write.
    pub tenant: TenantId,
    /// SSD whose device write failed.
    pub ssd: SsdId,
    /// Dirty lines invalidated.
    pub lines_lost: u32,
    /// Virtual-time instant of the failed completion.
    pub at: SimTime,
}

impl StagedWriteLoss {
    /// Fold into a digest, field order fixed.
    pub fn fold_into(&self, d: &mut Digest) {
        d.update_u64(self.cmd);
        d.update_u64(self.tenant.index() as u64);
        d.update_u64(self.ssd.index() as u64);
        d.update_u64(u64::from(self.lines_lost));
        d.update_u64(self.at.as_nanos());
    }
}

/// Counters describing one SSD cache's activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads served entirely from DRAM.
    pub hits: u64,
    /// Reads sent to the device (at least one line missing).
    pub misses: u64,
    /// Lines filled on miss completions.
    pub fills: u64,
    /// Lines evicted for capacity (small-segment and main-segment).
    pub evictions: u64,
    /// Lines invalidated by partially covering writes.
    pub invalidations: u64,
    /// Lines updated in place by fully covering writes (write staging).
    pub staged: u64,
    /// Dirty lines dropped because the device write failed.
    pub staged_losses: u64,
    /// Fills whose line id was found in the ghost queue.
    pub ghost_hits: u64,
    /// Miss completions not admitted by the policy.
    pub bypassed: u64,
    /// Congestion-classifier regime changes (admission law toggles).
    pub admit_toggles: u64,
    /// Lines resident at snapshot time.
    pub resident_lines: u64,
}

impl CacheStats {
    /// Total read lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of read lookups served from DRAM (0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Fold every counter into `d`, field order fixed.
    pub fn fold_into(&self, d: &mut Digest) {
        for v in [
            self.hits,
            self.misses,
            self.fills,
            self.evictions,
            self.invalidations,
            self.staged,
            self.staged_losses,
            self.ghost_hits,
            self.bypassed,
            self.admit_toggles,
            self.resident_lines,
        ] {
            d.update_u64(v);
        }
    }
}

/// Which FIFO segment a resident line belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Segment {
    /// Probation: newly admitted lines; one touch promotes to main.
    Small,
    /// Protected: promoted or ghost-hit lines; evicted with second chance.
    Main,
}

/// One resident cache line.
#[derive(Clone, Copy, Debug)]
struct Line {
    tenant: TenantId,
    seg: Segment,
    /// Distinguishes this residency from stale FIFO entries left behind by
    /// an earlier life of the same line id (queues are cleaned lazily).
    incarnation: u64,
    accessed: bool,
    /// Staged by a write whose device copy has not completed yet.
    dirty: bool,
}

/// Per-tenant partition: budget, segment FIFOs, and the ghost queue.
#[derive(Debug)]
struct TenantPart {
    weight: u32,
    budget_lines: u64,
    resident_small: u64,
    resident_main: u64,
    /// (line id, incarnation); entries whose incarnation no longer matches
    /// the line table are stale and skipped on pop.
    small: VecDeque<(u64, u64)>,
    main: VecDeque<(u64, u64)>,
    ghost_set: DetSet<u64>,
    ghost_fifo: VecDeque<u64>,
}

impl TenantPart {
    fn resident(&self) -> u64 {
        self.resident_small + self.resident_main
    }
}

/// The per-SSD cache: line table, per-tenant partitions, congestion
/// classifier, and counters. Owned by the switch pipeline.
#[derive(Debug)]
pub struct SsdCache {
    cfg: CacheConfig,
    ssd: SsdId,
    cap_lines: u64,
    line_blocks: u64,
    lines: DetMap<u64, Line>,
    tenants: DetMap<TenantId, TenantPart>,
    total_weight: u64,
    next_incarnation: u64,
    // Congestion classifier over device read latency (µs).
    ewma_us: f64,
    thresh_us: f64,
    state: CongState,
    seen_sample: bool,
    stats: CacheStats,
    losses: Vec<StagedWriteLoss>,
    trace: TraceHandle,
}

impl SsdCache {
    /// Build a cache for `ssd`. The configuration must be enabled
    /// (`capacity_bytes > 0`); the pipeline skips construction otherwise so
    /// a zero-capacity config is bit-identical to no cache at all.
    pub fn new(ssd: SsdId, cfg: CacheConfig) -> Self {
        cfg.validate();
        assert!(cfg.enabled(), "construct no cache for zero capacity");
        let cap_lines = cfg.capacity_lines().max(1);
        let line_blocks = u64::from(cfg.line_bytes) / BLOCK_SIZE;
        let thresh_us = cfg.thresh_max.as_micros_f64();
        SsdCache {
            cfg,
            ssd,
            cap_lines,
            line_blocks,
            lines: DetMap::new(),
            tenants: DetMap::new(),
            total_weight: 0,
            next_incarnation: 0,
            ewma_us: 0.0,
            thresh_us,
            state: CongState::Underutilized,
            seen_sample: false,
            stats: CacheStats::default(),
            losses: Vec::new(),
            trace: TraceHandle::disabled(),
        }
    }

    /// Attach a telemetry handle; cache events are stamped with the SSD id.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// The DRAM-copy latency the pipeline charges on a hit.
    pub fn hit_latency(&self) -> SimDuration {
        self.cfg.hit_latency
    }

    /// Current congestion regime of the admission classifier.
    pub fn congestion_state(&self) -> CongState {
        self.state
    }

    /// Snapshot of the counters, with `resident_lines` filled in.
    pub fn stats(&self) -> CacheStats {
        let mut s = self.stats;
        s.resident_lines = self.lines.len() as u64;
        s
    }

    /// Typed records of staged data dropped on failed device writes.
    pub fn losses(&self) -> &[StagedWriteLoss] {
        &self.losses
    }

    /// The line-id range `[start, end)` a command touches.
    fn line_range(&self, cmd: &NvmeCmd) -> (u64, u64) {
        let start = cmd.lba / self.line_blocks;
        let end = cmd.lba_end().div_ceil(self.line_blocks);
        (start, end)
    }

    /// Lazily register a tenant and re-split capacity cost-weighted across
    /// all registered tenants (§3.5 weights). Shrinking an existing
    /// partition takes effect lazily at that tenant's next fill.
    fn register_tenant(&mut self, tenant: TenantId, prio: Priority) {
        if self.tenants.contains_key(&tenant) {
            return;
        }
        let idx = (prio.0 as usize).min(Priority::LEVELS - 1);
        let w = self.cfg.priority_weights[idx].max(1);
        self.total_weight += u64::from(w);
        self.tenants.insert(
            tenant,
            TenantPart {
                weight: w,
                budget_lines: 0,
                resident_small: 0,
                resident_main: 0,
                small: VecDeque::new(),
                main: VecDeque::new(),
                ghost_set: DetSet::new(),
                ghost_fifo: VecDeque::new(),
            },
        );
        let (cap, total) = (self.cap_lines, self.total_weight);
        for p in self.tenants.values_mut() {
            p.budget_lines = (cap * u64::from(p.weight) / total).max(1);
        }
    }

    /// Read lookup. On a full hit every touched line is marked accessed and
    /// the command can complete from DRAM; any missing line makes the whole
    /// read a miss (it goes to the device and may fill on completion).
    pub fn try_read_hit(&mut self, cmd: &NvmeCmd, now: SimTime) -> bool {
        self.register_tenant(cmd.tenant, cmd.priority);
        let (s, e) = self.line_range(cmd);
        let mut missing = 0u32;
        for l in s..e {
            match self.lines.get_mut(&l) {
                Some(line) => line.accessed = true,
                None => missing += 1,
            }
        }
        if missing == 0 {
            self.stats.hits += 1;
            self.trace.record(
                now,
                self.ssd,
                Some(cmd.tenant),
                EventKind::CacheHit {
                    lines: (e - s) as u32,
                },
            );
            true
        } else {
            self.stats.misses += 1;
            self.trace.record(
                now,
                self.ssd,
                Some(cmd.tenant),
                EventKind::CacheMiss {
                    lines_missing: missing,
                },
            );
            false
        }
    }

    /// Stage a write-through: fully covered resident lines are updated in
    /// place and marked dirty until [`Self::on_write_completion`]; partially
    /// covered resident lines are invalidated (their DRAM copy would be
    /// stale). Writes never allocate lines.
    pub fn stage_write(&mut self, cmd: &NvmeCmd, now: SimTime) {
        self.register_tenant(cmd.tenant, cmd.priority);
        let (s, e) = self.line_range(cmd);
        for l in s..e {
            let covered =
                l * self.line_blocks >= cmd.lba && (l + 1) * self.line_blocks <= cmd.lba_end();
            if covered {
                if let Some(line) = self.lines.get_mut(&l) {
                    line.dirty = true;
                    line.accessed = true;
                    self.stats.staged += 1;
                }
            } else if self.lines.contains_key(&l) {
                self.invalidate_line(l, now);
            }
        }
    }

    /// A device write completed. Success commits staged lines (clears
    /// dirty); failure drops them and surfaces a typed [`StagedWriteLoss`].
    pub fn on_write_completion(&mut self, cmd: &NvmeCmd, failed: bool, now: SimTime) {
        let (s, e) = self.line_range(cmd);
        if !failed {
            for l in s..e {
                if let Some(line) = self.lines.get_mut(&l) {
                    line.dirty = false;
                }
            }
            return;
        }
        let mut lost = 0u32;
        for l in s..e {
            if self.lines.get(&l).is_some_and(|line| line.dirty) {
                self.invalidate_line(l, now);
                lost += 1;
            }
        }
        if lost > 0 {
            self.stats.staged_losses += u64::from(lost);
            self.losses.push(StagedWriteLoss {
                cmd: cmd.id.0,
                tenant: cmd.tenant,
                ssd: cmd.ssd,
                lines_lost: lost,
                at: now,
            });
            self.trace.record(
                now,
                self.ssd,
                Some(cmd.tenant),
                EventKind::CacheStagedLoss {
                    cmd: cmd.id.0,
                    lines: lost,
                },
            );
        }
    }

    /// A device read completed: feed the congestion classifier and, if the
    /// admission law allows, fill the missing lines.
    pub fn on_read_completion(
        &mut self,
        cmd: &NvmeCmd,
        device_latency: SimDuration,
        failed: bool,
        now: SimTime,
    ) {
        if failed {
            return;
        }
        self.observe_device_latency(device_latency, cmd.tenant, now);
        let ghost_only = match self.cfg.policy {
            AdmissionPolicy::Never => {
                self.stats.bypassed += 1;
                return;
            }
            AdmissionPolicy::Always => false,
            AdmissionPolicy::CongestionAware => match self.state {
                // Device under pressure: shed load onto DRAM aggressively.
                CongState::Congested | CongState::Overloaded => false,
                // Middle band: only lines with proven reuse (ghost hits).
                CongState::CongestionAvoidance => true,
                // Clean device: the hit path would only add overhead.
                CongState::Underutilized => {
                    self.stats.bypassed += 1;
                    return;
                }
            },
        };
        let (s, e) = self.line_range(cmd);
        let mut filled = 0u32;
        let mut ghost_hits = 0u32;
        for l in s..e {
            if self.lines.contains_key(&l) {
                continue;
            }
            let ghost_hit = self
                .tenants
                .get_mut(&cmd.tenant)
                .is_some_and(|p| p.ghost_set.remove(&l));
            if ghost_only && !ghost_hit {
                continue;
            }
            self.insert_line(cmd.tenant, l, ghost_hit, now);
            filled += 1;
            if ghost_hit {
                ghost_hits += 1;
            }
        }
        if filled > 0 {
            self.stats.fills += u64::from(filled);
            self.stats.ghost_hits += u64::from(ghost_hits);
            self.trace.record(
                now,
                self.ssd,
                Some(cmd.tenant),
                EventKind::CacheFill {
                    lines: filled,
                    ghost_hits,
                },
            );
        } else {
            self.stats.bypassed += 1;
        }
    }

    /// Fold the EWMA and reclassify. The dynamic threshold drifts toward
    /// the observed latency while the device is clean, springs toward the
    /// ceiling midpoint while congested, and pins at the ceiling when
    /// overloaded — a simplified, deterministic cousin of Alg. 1 that keeps
    /// the admission law self-tuning without touching the policy's own
    /// monitors (which a hit never reaches).
    fn observe_device_latency(&mut self, lat: SimDuration, tenant: TenantId, now: SimTime) {
        let us = lat.as_micros_f64();
        if self.seen_sample {
            let a = self.cfg.ewma_alpha;
            self.ewma_us = a * us + (1.0 - a) * self.ewma_us;
        } else {
            self.ewma_us = us;
            self.seen_sample = true;
        }
        let min = self.cfg.thresh_min.as_micros_f64();
        let max = self.cfg.thresh_max.as_micros_f64();
        let next = if self.ewma_us >= max {
            CongState::Overloaded
        } else if self.ewma_us >= self.thresh_us {
            CongState::Congested
        } else if self.ewma_us >= min {
            CongState::CongestionAvoidance
        } else {
            CongState::Underutilized
        };
        self.thresh_us = match next {
            CongState::Overloaded => max,
            CongState::Congested => (self.thresh_us + max) / 2.0,
            _ => (7.0 * self.thresh_us + self.ewma_us.max(min)) / 8.0,
        }
        .clamp(min, max);
        if next != self.state {
            self.stats.admit_toggles += 1;
            self.trace.record(
                now,
                self.ssd,
                Some(tenant),
                EventKind::CacheAdmitToggle {
                    from: self.state,
                    to: next,
                },
            );
            self.state = next;
        }
    }

    /// Insert a line into the tenant's partition, evicting within that
    /// partition first if it is at budget. Ghost hits land in the main
    /// segment (proven reuse); everything else starts in probation.
    fn insert_line(&mut self, tenant: TenantId, l: u64, to_main: bool, now: SimTime) {
        loop {
            let at_budget = self
                .tenants
                .get(&tenant)
                .is_some_and(|p| p.resident() >= p.budget_lines);
            if !at_budget || !self.evict_one(tenant, now) {
                break;
            }
        }
        let inc = self.next_incarnation;
        self.next_incarnation += 1;
        self.lines.insert(
            l,
            Line {
                tenant,
                seg: if to_main {
                    Segment::Main
                } else {
                    Segment::Small
                },
                incarnation: inc,
                accessed: false,
                dirty: false,
            },
        );
        if let Some(p) = self.tenants.get_mut(&tenant) {
            if to_main {
                p.resident_main += 1;
                p.main.push_back((l, inc));
            } else {
                p.resident_small += 1;
                p.small.push_back((l, inc));
            }
        }
    }

    /// Evict one line from `tenant`'s partition. The small segment is
    /// drained while it exceeds its share; otherwise the main segment goes
    /// first. Returns false when nothing evictable remains.
    fn evict_one(&mut self, tenant: TenantId, now: SimTime) -> bool {
        let prefer_small = self.tenants.get(&tenant).is_some_and(|p| {
            let small_share = (p.budget_lines * u64::from(self.cfg.small_percent) / 100).max(1);
            p.resident_small >= small_share || p.resident_main == 0
        });
        // Order matters: eviction mutates the segments, so the fallback is a
        // real second attempt, not a commutative `||`.
        let order: [fn(&mut Self, TenantId, SimTime) -> bool; 2] = if prefer_small {
            [Self::evict_from_small, Self::evict_from_main]
        } else {
            [Self::evict_from_main, Self::evict_from_small]
        };
        order.into_iter().any(|seg| seg(self, tenant, now))
    }

    /// Pop the probation FIFO: a touched line is promoted to main, a cold
    /// line is evicted and remembered in the ghost queue.
    fn evict_from_small(&mut self, tenant: TenantId, now: SimTime) -> bool {
        let ghost_cap = self.tenants.get(&tenant).map_or(1, |p| {
            (p.budget_lines * u64::from(self.cfg.ghost_percent) / 100).max(1)
        });
        loop {
            let Some(p) = self.tenants.get_mut(&tenant) else {
                return false;
            };
            let Some((l, inc)) = p.small.pop_front() else {
                return false;
            };
            let Some(line) = self.lines.get_mut(&l) else {
                continue; // stale entry: the line was invalidated
            };
            if line.incarnation != inc {
                continue; // stale entry: the id was refilled later
            }
            if line.accessed {
                line.accessed = false;
                line.seg = Segment::Main;
                p.resident_small -= 1;
                p.resident_main += 1;
                p.main.push_back((l, inc));
                continue;
            }
            self.lines.remove(&l);
            p.resident_small -= 1;
            if p.ghost_set.insert(l) {
                p.ghost_fifo.push_back(l);
            }
            while p.ghost_set.len() as u64 > ghost_cap {
                match p.ghost_fifo.pop_front() {
                    Some(old) => {
                        p.ghost_set.remove(&old);
                    }
                    None => break,
                }
            }
            self.stats.evictions += 1;
            self.trace.record(
                now,
                self.ssd,
                Some(tenant),
                EventKind::CacheEvict {
                    line: l,
                    to_ghost: true,
                },
            );
            return true;
        }
    }

    /// Pop the main FIFO with second chance: a touched line goes back to
    /// the tail untouched-bit-cleared; chances are bounded by the queue
    /// length so the scan terminates even when everything is hot.
    fn evict_from_main(&mut self, tenant: TenantId, now: SimTime) -> bool {
        let mut chances = self.tenants.get(&tenant).map_or(0, |p| p.main.len());
        loop {
            let Some(p) = self.tenants.get_mut(&tenant) else {
                return false;
            };
            let Some((l, inc)) = p.main.pop_front() else {
                return false;
            };
            let Some(line) = self.lines.get_mut(&l) else {
                continue;
            };
            if line.incarnation != inc {
                continue;
            }
            if line.accessed && chances > 0 {
                chances -= 1;
                line.accessed = false;
                p.main.push_back((l, inc));
                continue;
            }
            self.lines.remove(&l);
            p.resident_main -= 1;
            self.stats.evictions += 1;
            self.trace.record(
                now,
                self.ssd,
                Some(tenant),
                EventKind::CacheEvict {
                    line: l,
                    to_ghost: false,
                },
            );
            return true;
        }
    }

    /// Drop a resident line (write invalidation / staged loss).
    fn invalidate_line(&mut self, l: u64, now: SimTime) {
        let Some(line) = self.lines.remove(&l) else {
            return;
        };
        if let Some(p) = self.tenants.get_mut(&line.tenant) {
            match line.seg {
                Segment::Small => p.resident_small -= 1,
                Segment::Main => p.resident_main -= 1,
            }
        }
        self.stats.invalidations += 1;
        self.trace.record(
            now,
            self.ssd,
            Some(line.tenant),
            EventKind::CacheEvict {
                line: l,
                to_ghost: false,
            },
        );
    }

    /// Fold the full cache state — line table, partitions, classifier,
    /// counters, losses — into `d`. Joins the double-run identity checks.
    pub fn fold_into(&self, d: &mut Digest) {
        d.update_u64(self.cfg.policy.rank());
        d.update_u64(self.cap_lines);
        d.update_u64(self.lines.len() as u64);
        for (l, line) in self.lines.iter() {
            d.update_u64(*l);
            d.update_u64(line.tenant.index() as u64);
            d.update_u64(match line.seg {
                Segment::Small => 0,
                Segment::Main => 1,
            });
            d.update_u64(line.incarnation);
            d.update_u64(u64::from(line.accessed));
            d.update_u64(u64::from(line.dirty));
        }
        d.update_u64(self.tenants.len() as u64);
        for (t, p) in self.tenants.iter() {
            d.update_u64(t.index() as u64);
            d.update_u64(u64::from(p.weight));
            d.update_u64(p.budget_lines);
            d.update_u64(p.resident_small);
            d.update_u64(p.resident_main);
            d.update_u64(p.ghost_fifo.len() as u64);
            for g in &p.ghost_fifo {
                d.update_u64(*g);
            }
        }
        d.update_f64(self.ewma_us);
        d.update_f64(self.thresh_us);
        d.update_u64(u64::from(self.state.rank()));
        self.stats().fold_into(d);
        d.update_u64(self.losses.len() as u64);
        for loss in &self.losses {
            loss.fold_into(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gimbal_fabric::{CmdId, IoType};

    fn cmd(id: u64, tenant: u32, op: IoType, lba: u64, len: u32) -> NvmeCmd {
        NvmeCmd {
            id: CmdId(id),
            tenant: TenantId(tenant),
            ssd: SsdId(0),
            opcode: op,
            lba,
            len,
            priority: Priority::NORMAL,
            issued_at: SimTime::ZERO,
        }
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn small_cache(lines: u64, policy: AdmissionPolicy) -> SsdCache {
        SsdCache::new(
            SsdId(0),
            CacheConfig {
                capacity_bytes: lines * 4096,
                policy,
                ..CacheConfig::default()
            },
        )
    }

    /// Read lba and let it fill unconditionally.
    fn read_and_fill(c: &mut SsdCache, id: u64, tenant: u32, lba: u64) -> bool {
        let r = cmd(id, tenant, IoType::Read, lba, 4096);
        let hit = c.try_read_hit(&r, t(id));
        if !hit {
            c.on_read_completion(&r, SimDuration::from_micros(80), false, t(id));
        }
        hit
    }

    #[test]
    fn eviction_is_fifo_over_cold_lines_and_promotes_hot_ones() {
        let mut c = small_cache(4, AdmissionPolicy::Always);
        for (i, lba) in [0u64, 1, 2, 3].into_iter().enumerate() {
            assert!(!read_and_fill(&mut c, i as u64, 0, lba));
        }
        // Touch line 0 so it is promoted instead of evicted.
        assert!(read_and_fill(&mut c, 10, 0, 0));
        // Two more distinct lines force two evictions: 1 then 2 (FIFO),
        // while 0 survives via promotion.
        assert!(!read_and_fill(&mut c, 11, 0, 4));
        assert!(!read_and_fill(&mut c, 12, 0, 5));
        assert!(read_and_fill(&mut c, 13, 0, 0), "hot line survived");
        let s = c.stats();
        assert!(s.evictions >= 2);
        // The evicted cold lines miss again.
        assert!(!read_and_fill(&mut c, 14, 0, 1));
    }

    #[test]
    fn ghost_hits_readmit_to_main() {
        let mut c = small_cache(2, AdmissionPolicy::Always);
        assert!(!read_and_fill(&mut c, 0, 0, 0));
        assert!(!read_and_fill(&mut c, 1, 0, 1));
        assert!(!read_and_fill(&mut c, 2, 0, 2)); // evicts 0 into the ghost queue
        assert!(!read_and_fill(&mut c, 3, 0, 0)); // ghost hit on refill
        assert!(c.stats().ghost_hits >= 1);
        assert!(read_and_fill(&mut c, 4, 0, 0), "ghost-hit line resident");
    }

    #[test]
    fn partitions_isolate_tenants() {
        // Equal priorities, 8 lines: each tenant owns 4. Tenant 1 flooding
        // must not evict tenant 0's resident lines.
        let mut c = small_cache(8, AdmissionPolicy::Always);
        for lba in 0..4u64 {
            read_and_fill(&mut c, lba, 0, lba);
        }
        for i in 0..64u64 {
            read_and_fill(&mut c, 100 + i, 1, 1000 + i);
        }
        for lba in 0..4u64 {
            assert!(
                read_and_fill(&mut c, 200 + lba, 0, lba),
                "tenant 0 line {lba} evicted by tenant 1's flood"
            );
        }
    }

    #[test]
    fn weighted_budgets_mirror_drr_weights() {
        let mut c = small_cache(70, AdmissionPolicy::Always);
        let mut hi = cmd(0, 0, IoType::Read, 0, 4096);
        hi.priority = Priority::HIGH;
        let mut lo = cmd(1, 1, IoType::Read, 10, 4096);
        lo.priority = Priority::LOW;
        c.try_read_hit(&hi, t(0));
        c.try_read_hit(&lo, t(1));
        let hi_budget = c.tenants.get(&TenantId(0)).unwrap().budget_lines;
        let lo_budget = c.tenants.get(&TenantId(1)).unwrap().budget_lines;
        assert_eq!(hi_budget, 70 * 4 / 5);
        assert_eq!(lo_budget, 70 / 5);
    }

    #[test]
    fn covering_write_stages_and_partial_write_invalidates() {
        let mut c = SsdCache::new(
            SsdId(0),
            CacheConfig {
                capacity_bytes: 16 * 8192,
                line_bytes: 8192,
                policy: AdmissionPolicy::Always,
                ..CacheConfig::default()
            },
        );
        // Fill line 0 (blocks 0..2) via a miss completion.
        let r = cmd(0, 0, IoType::Read, 0, 8192);
        assert!(!c.try_read_hit(&r, t(0)));
        c.on_read_completion(&r, SimDuration::from_micros(80), false, t(0));
        assert!(c.try_read_hit(&r, t(1)));

        // A fully covering write stages in place: still a hit, marked dirty.
        let w_full = cmd(1, 0, IoType::Write, 0, 8192);
        c.stage_write(&w_full, t(2));
        assert_eq!(c.stats().staged, 1);
        assert!(c.try_read_hit(&r, t(3)));
        c.on_write_completion(&w_full, false, t(4));
        assert!(c.losses().is_empty());

        // A half-line write invalidates: the DRAM copy would be stale.
        let w_half = cmd(2, 0, IoType::Write, 0, 4096);
        c.stage_write(&w_half, t(5));
        assert_eq!(c.stats().invalidations, 1);
        assert!(!c.try_read_hit(&r, t(6)));
    }

    #[test]
    fn failed_write_with_staged_lines_surfaces_typed_loss() {
        let mut c = small_cache(8, AdmissionPolicy::Always);
        read_and_fill(&mut c, 0, 0, 0);
        let w = cmd(1, 0, IoType::Write, 0, 4096);
        c.stage_write(&w, t(1));
        assert_eq!(c.stats().staged, 1);
        c.on_write_completion(&w, true, t(2));
        assert_eq!(c.losses().len(), 1);
        let loss = c.losses()[0];
        assert_eq!(loss.cmd, 1);
        assert_eq!(loss.tenant, TenantId(0));
        assert_eq!(loss.lines_lost, 1);
        assert_eq!(c.stats().staged_losses, 1);
        // The stale line is gone: the next read misses.
        assert!(!c.try_read_hit(&cmd(2, 0, IoType::Read, 0, 4096), t(3)));
    }

    #[test]
    fn congestion_aware_admission_follows_the_classifier() {
        let mut c = small_cache(64, AdmissionPolicy::CongestionAware);
        let r = cmd(0, 0, IoType::Read, 0, 4096);
        // Clean device (fast completions): bypass, no fill.
        assert!(!c.try_read_hit(&r, t(0)));
        c.on_read_completion(&r, SimDuration::from_micros(80), false, t(0));
        assert_eq!(c.congestion_state(), CongState::Underutilized);
        assert_eq!(c.stats().fills, 0);
        assert!(c.stats().bypassed >= 1);

        // Sustained slow completions push the classifier to Overloaded and
        // open admission.
        for i in 0..32u64 {
            let ri = cmd(10 + i, 0, IoType::Read, 100 + i, 4096);
            assert!(!c.try_read_hit(&ri, t(10 + i)));
            c.on_read_completion(&ri, SimDuration::from_micros(2000), false, t(10 + i));
        }
        assert_eq!(c.congestion_state(), CongState::Overloaded);
        assert!(c.stats().fills > 0, "congestion opened admission");
        assert!(c.stats().admit_toggles >= 1);
        // Admitted lines now hit.
        assert!(c.try_read_hit(&cmd(99, 0, IoType::Read, 131, 4096), t(99)));
    }

    #[test]
    fn double_run_digest_identity() {
        let run = || {
            let mut c = small_cache(8, AdmissionPolicy::CongestionAware);
            for i in 0..200u64 {
                let lba = (i * 7) % 16;
                let op = if i % 5 == 0 {
                    IoType::Write
                } else {
                    IoType::Read
                };
                let k = cmd(i, (i % 3) as u32, op, lba, 4096);
                match op {
                    IoType::Read => {
                        if !c.try_read_hit(&k, t(i)) {
                            let lat = SimDuration::from_micros(100 + (i % 9) * 300);
                            c.on_read_completion(&k, lat, false, t(i));
                        }
                    }
                    IoType::Write => {
                        c.stage_write(&k, t(i));
                        c.on_write_completion(&k, i % 17 == 0, t(i));
                    }
                }
            }
            let mut d = Digest::new();
            c.fold_into(&mut d);
            d.value()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "multiple of the 4 KiB block")]
    fn misaligned_line_size_is_rejected() {
        CacheConfig {
            line_bytes: 1000,
            ..CacheConfig::default()
        }
        .validate();
    }
}
