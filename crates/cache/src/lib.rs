//! # gimbal-cache
//!
//! A deterministic, multi-tenant DRAM cache tier for the SmartNIC.
//!
//! Gimbal (§3) arbitrates *SSD* bandwidth among tenants but leaves the
//! Stingray's on-NIC DRAM unused as a data tier. This crate adds a read
//! cache with write staging that sits in the per-SSD switch pipeline ahead
//! of the scheduling policy:
//!
//! * **Read hits** complete from NIC DRAM. The pipeline charges hit-path
//!   CPU cycles and a small DRAM-copy latency; the SSD — and therefore
//!   Alg. 1's latency/rate accounting — is bypassed entirely.
//! * **Read misses** go to the device as before and *fill on completion*,
//!   subject to an admission controller coupled to a congestion classifier
//!   over observed device latency (NetCAS-style): admit aggressively while
//!   `Congested`/`Overloaded` to shed SSD load, admit only re-referenced
//!   (ghost-hit) lines in the avoidance band, and bypass entirely when the
//!   device is clean so the hit path costs nothing.
//! * **Writes** follow the configured [`WritePolicy`]. Under
//!   `WritePolicy::Through` (the default, bit-identical to the original
//!   tier): covered lines are updated in place and marked dirty until the
//!   device write completes; partially covered lines are invalidated. A
//!   failed device write with staged lines surfaces a typed
//!   [`StagedWriteLoss`] — never silent loss. Under `WritePolicy::Back`:
//!   writes that fit the tenant's partition ack at DRAM cost, their lines
//!   stay dirty until a deterministic flusher writes them back through the
//!   switch pipeline — opportunistically while the congestion classifier
//!   says the device is clean, under watermark/age pressure otherwise, with
//!   WAL-tagged lines drained in log order ahead of data lines. Every
//!   dirty-line transition is recorded in a [`DurabilityEvent`] journal so
//!   the testbed's crash-consistency oracle can replay a shadow model and
//!   prove exact loss accounting on injected device death or power loss.
//!
//! Capacity is partitioned per tenant with cost-weighted shares mirroring
//! the §3.5 DRR weights, so one tenant's working set cannot evict everyone
//! else's. Eviction is a deterministic segmented FIFO (small probation
//! segment + main segment with second chance) plus a per-tenant ghost queue
//! remembering recently evicted line ids. All state lives in
//! [`DetMap`]/[`DetSet`]/`VecDeque` — iteration order is insertion order,
//! so a run is a pure function of the submitted command sequence and the
//! cache folds into [`Digest`] for the double-run determinism checks.

use std::collections::VecDeque;

use gimbal_fabric::{NvmeCmd, Priority, SsdId, TenantId, BLOCK_SIZE};
use gimbal_sim::collections::{DetMap, DetSet};
use gimbal_sim::{Digest, SimDuration, SimTime};
use gimbal_telemetry::{CongState, EventKind, TraceHandle};

/// Miss-fill admission policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Fill every read miss (classic cache).
    Always,
    /// Couple admission to the congestion classifier: fill everything while
    /// the device is `Congested`/`Overloaded`, fill only ghost-queue hits in
    /// the avoidance band, bypass when `Underutilized`.
    CongestionAware,
    /// Never fill (the cache only stages writes); hits can still occur on
    /// lines staged by writes of resident lines, i.e. effectively none.
    Never,
}

impl AdmissionPolicy {
    /// Interned label (CLI, exports).
    pub const fn name(self) -> &'static str {
        match self {
            AdmissionPolicy::Always => "always",
            AdmissionPolicy::CongestionAware => "congestion",
            AdmissionPolicy::Never => "never",
        }
    }

    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Option<AdmissionPolicy> {
        match s {
            "always" => Some(AdmissionPolicy::Always),
            "congestion" | "congestion-aware" => Some(AdmissionPolicy::CongestionAware),
            "never" | "bypass" => Some(AdmissionPolicy::Never),
            _ => None,
        }
    }

    /// Stable rank for digest folding.
    const fn rank(self) -> u64 {
        match self {
            AdmissionPolicy::Always => 0,
            AdmissionPolicy::CongestionAware => 1,
            AdmissionPolicy::Never => 2,
        }
    }
}

/// How writes interact with the cache tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePolicy {
    /// Write-through (the original tier, and the default): every write goes
    /// to the device; covered resident lines are updated in place and stay
    /// dirty only until the device write completes.
    Through,
    /// Write-back: writes that fit the tenant's partition acknowledge at
    /// DRAM cost; dirty lines are pinned until the deterministic flusher
    /// drains them to flash through the switch pipeline.
    Back,
}

impl WritePolicy {
    /// Interned label (CLI, exports).
    pub const fn name(self) -> &'static str {
        match self {
            WritePolicy::Through => "through",
            WritePolicy::Back => "back",
        }
    }

    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Option<WritePolicy> {
        match s {
            "through" | "write-through" => Some(WritePolicy::Through),
            "back" | "write-back" => Some(WritePolicy::Back),
            _ => None,
        }
    }

    /// Stable rank for digest folding.
    const fn rank(self) -> u64 {
        match self {
            WritePolicy::Through => 0,
            WritePolicy::Back => 1,
        }
    }
}

/// Flush command ids live in their own high-bit space so they can never
/// collide with initiator command ids; the pipeline intercepts completions
/// carrying this bit and never emits capsules for them.
pub const FLUSH_ID_BASE: u64 = 1 << 63;

/// Whether `id` names a cache-flusher write rather than an initiator command.
#[inline]
pub const fn is_flush_id(id: u64) -> bool {
    id & FLUSH_ID_BASE != 0
}

/// Cache configuration, carried by `PipelineConfig`/`TestbedConfig`.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Total NIC-DRAM capacity dedicated to this SSD's cache, in bytes.
    /// Zero means the pipeline constructs no cache at all, which is
    /// bit-identical to running without one.
    pub capacity_bytes: u64,
    /// Cache-line size in bytes; a positive multiple of [`BLOCK_SIZE`].
    pub line_bytes: u32,
    /// DRAM-copy latency charged on a hit before completion CPU cycles.
    pub hit_latency: SimDuration,
    /// Miss-fill admission policy.
    pub policy: AdmissionPolicy,
    /// Per-priority capacity weights, mirroring the §3.5 DRR weights:
    /// index 0 = `Priority::HIGH`. A tenant's share of lines is
    /// `weight / sum(weights of registered tenants)`.
    pub priority_weights: [u32; Priority::LEVELS],
    /// Target share of a tenant's partition held by the small (probation)
    /// segment, in percent.
    pub small_percent: u32,
    /// Ghost-queue capacity as a percentage of the tenant's line budget.
    pub ghost_percent: u32,
    /// EWMA smoothing factor for the congestion classifier.
    pub ewma_alpha: f64,
    /// Classifier floor: EWMA device read latency below this is
    /// `Underutilized`.
    pub thresh_min: SimDuration,
    /// Classifier ceiling: EWMA at or above this is `Overloaded`.
    pub thresh_max: SimDuration,
    /// Write handling mode. `Through` is bit-identical to the original tier.
    pub write_policy: WritePolicy,
    /// Write-back watermark: a tenant whose dirty lines reach this percent
    /// of its partition budget is flushed under pressure regardless of the
    /// congestion classifier.
    pub dirty_high_percent: u32,
    /// Write-back age bound: a dirty line older than this is flushed under
    /// pressure regardless of the congestion classifier.
    pub flush_max_age: SimDuration,
    /// Maximum flush writes in flight at the device per SSD cache.
    pub flush_batch: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 64 * 1024 * 1024,
            line_bytes: BLOCK_SIZE as u32,
            hit_latency: SimDuration::from_micros(2),
            policy: AdmissionPolicy::CongestionAware,
            priority_weights: [4, 2, 1],
            small_percent: 10,
            ghost_percent: 100,
            ewma_alpha: 0.125,
            thresh_min: SimDuration::from_micros(250),
            thresh_max: SimDuration::from_micros(1500),
            write_policy: WritePolicy::Through,
            dirty_high_percent: 50,
            flush_max_age: SimDuration::from_millis(2),
            flush_batch: 4,
        }
    }
}

impl CacheConfig {
    /// A default-policy cache of `mb` mebibytes (CLI convenience).
    pub fn for_mb(mb: u64) -> Self {
        CacheConfig {
            capacity_bytes: mb * 1024 * 1024,
            ..CacheConfig::default()
        }
    }

    /// Whether a pipeline should construct a cache at all.
    pub fn enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// Panic on a degenerate configuration.
    pub fn validate(&self) {
        assert!(
            self.line_bytes > 0 && u64::from(self.line_bytes) % BLOCK_SIZE == 0,
            "cache line must be a positive multiple of the 4 KiB block"
        );
        assert!(
            self.hit_latency > SimDuration::ZERO,
            "hit latency must be positive"
        );
        assert!(
            (1..=90).contains(&self.small_percent),
            "small segment share must be in 1..=90 percent"
        );
        assert!(
            self.ghost_percent <= 400,
            "ghost queue beyond 4x the partition is pointless"
        );
        assert!(
            self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0,
            "EWMA alpha must be in (0, 1]"
        );
        assert!(
            self.thresh_min < self.thresh_max,
            "classifier floor must sit below the ceiling"
        );
        assert!(
            (1..=100).contains(&self.dirty_high_percent),
            "dirty watermark must be in 1..=100 percent"
        );
        assert!(
            self.flush_max_age > SimDuration::ZERO,
            "flush age bound must be positive"
        );
        assert!(self.flush_batch >= 1, "flusher needs at least one slot");
    }

    /// Total line slots this configuration provides.
    pub fn capacity_lines(&self) -> u64 {
        self.capacity_bytes / u64::from(self.line_bytes)
    }
}

/// A failed device write that had lines staged in the cache: the staged
/// copies were dropped and the initiator must treat the write as failed.
/// Typed so chaos tests can assert that no staged data is lost silently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StagedWriteLoss {
    /// Raw id of the failed write command.
    pub cmd: u64,
    /// Tenant that issued the write.
    pub tenant: TenantId,
    /// SSD whose device write failed.
    pub ssd: SsdId,
    /// Dirty lines invalidated.
    pub lines_lost: u32,
    /// Virtual-time instant of the failed completion.
    pub at: SimTime,
    /// Whether the lines were write-back dirty — acknowledged to the
    /// initiator and awaiting flush — rather than write-through staged
    /// copies of an in-flight device write. Dirty losses are the enlarged
    /// blast radius the crash-consistency oracle accounts for exactly.
    pub dirty: bool,
}

/// Sentinel `cmd` id on [`StagedWriteLoss`] records produced by device death
/// or power loss, where no single initiator command failed.
pub const LOSS_EVENT_CMD: u64 = u64::MAX;

impl StagedWriteLoss {
    /// Fold into a digest, field order fixed.
    pub fn fold_into(&self, d: &mut Digest) {
        d.update_u64(self.cmd);
        d.update_u64(self.tenant.index() as u64);
        d.update_u64(self.ssd.index() as u64);
        d.update_u64(u64::from(self.lines_lost));
        d.update_u64(self.at.as_nanos());
        d.update_u64(u64::from(self.dirty));
    }
}

/// Write-back activity counters, kept apart from [`CacheStats`] so the
/// write-through digest stream is untouched; they fold into digests only
/// when the cache runs `WritePolicy::Back`.
///
/// Line conservation (the property the oracle also proves from the
/// journal): `acked_lines == flushed_lines + lost_lines + superseded_lines
/// + dirty_lines`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteBackStats {
    /// Write commands acknowledged at DRAM cost.
    pub acked: u64,
    /// Clean→dirty line transitions from acknowledged writes.
    pub acked_lines: u64,
    /// Flush writes submitted to the device.
    pub flush_ios: u64,
    /// Flush writes carrying WAL-tagged lines.
    pub wal_flush_ios: u64,
    /// Flush writes issued opportunistically (classifier `Underutilized`).
    pub opportunistic_flushes: u64,
    /// Flush writes issued under watermark or age pressure.
    pub pressure_flushes: u64,
    /// Dirty lines cleaned by a successful flush.
    pub flushed_lines: u64,
    /// Failed flushes whose lines were re-queued (transient device error).
    pub requeued_lines: u64,
    /// Dirty lines surfaced as [`StagedWriteLoss`] (device death, power
    /// loss).
    pub lost_lines: u64,
    /// Dirty lines whose data was superseded on flash by a later
    /// pass-through write from the initiator before the flusher got to them.
    pub superseded_lines: u64,
    /// Write commands that fell through to the device because the tenant's
    /// partition could not buffer them (the flusher's pressure valve).
    pub passthrough: u64,
    /// Power-loss events absorbed.
    pub power_losses: u64,
    /// Dirty lines resident at snapshot time.
    pub dirty_lines: u64,
}

impl WriteBackStats {
    /// Fold every counter into `d`, field order fixed.
    pub fn fold_into(&self, d: &mut Digest) {
        for v in [
            self.acked,
            self.acked_lines,
            self.flush_ios,
            self.wal_flush_ios,
            self.opportunistic_flushes,
            self.pressure_flushes,
            self.flushed_lines,
            self.requeued_lines,
            self.lost_lines,
            self.superseded_lines,
            self.passthrough,
            self.power_losses,
            self.dirty_lines,
        ] {
            d.update_u64(v);
        }
    }

    /// Exact line conservation: every acknowledged dirty transition is
    /// accounted for as flushed, lost, superseded, or still dirty.
    pub fn conservation_holds(&self) -> bool {
        self.acked_lines
            == self.flushed_lines + self.lost_lines + self.superseded_lines + self.dirty_lines
    }
}

/// One flush IO the pipeline submits to the device on the cache's behalf:
/// a whole dirty line written back to flash through the scheduling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlushIo {
    /// Command id from the disjoint [`FLUSH_ID_BASE`] space.
    pub id: u64,
    /// Tenant whose partition owns the line (DRR accounting).
    pub tenant: TenantId,
    /// Starting LBA (line-aligned).
    pub lba: u64,
    /// Length in bytes (one line).
    pub len: u32,
    /// WAL log-order tag when the line holds write-ahead-log data.
    pub wal: Option<u64>,
}

/// One entry of the write-back durability journal. The cache appends these
/// in virtual-time order; the testbed's crash-consistency oracle replays
/// them against a shadow dirty-set to prove no silent and no phantom loss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DurabilityEvent {
    /// A write command acknowledged at DRAM cost.
    Acked {
        /// Raw initiator command id.
        cmd: u64,
        /// Issuing tenant.
        tenant: TenantId,
        /// Lines the command spans.
        lines: u32,
        /// Acknowledgement instant.
        at: SimTime,
    },
    /// A line transitioned clean→dirty (acked data now only in DRAM).
    Dirtied {
        /// Line id.
        line: u64,
        /// Owning tenant.
        tenant: TenantId,
        /// WAL log-order tag, when the dirtying write carried one.
        wal: Option<u64>,
        /// Transition instant.
        at: SimTime,
    },
    /// The flusher submitted a write for this dirty line.
    FlushIssued {
        /// Flush command id ([`FLUSH_ID_BASE`] space).
        id: u64,
        /// Line id.
        line: u64,
        /// Owning tenant.
        tenant: TenantId,
        /// WAL log-order tag carried by the line.
        wal: Option<u64>,
        /// Submission instant.
        at: SimTime,
    },
    /// A flush completed successfully and the line is durable on flash.
    Cleaned {
        /// Line id.
        line: u64,
        /// Owning tenant.
        tenant: TenantId,
        /// Completion instant.
        at: SimTime,
    },
    /// A flush failed transiently (or raced a re-dirty); the line went back
    /// to the flush queue, still dirty.
    Requeued {
        /// Line id.
        line: u64,
        /// Owning tenant.
        tenant: TenantId,
        /// WAL log-order tag carried by the line.
        wal: Option<u64>,
        /// Re-queue instant.
        at: SimTime,
    },
    /// A later pass-through write from the initiator reached flash and
    /// superseded this dirty line's data; nothing left to flush.
    Superseded {
        /// Line id.
        line: u64,
        /// Owning tenant.
        tenant: TenantId,
        /// Completion instant of the superseding device write.
        at: SimTime,
    },
    /// A dirty line's acked-but-unflushed data was lost (device death or
    /// power loss) and surfaced in a [`StagedWriteLoss`].
    Lost {
        /// Line id.
        line: u64,
        /// Owning tenant.
        tenant: TenantId,
        /// WAL log-order tag carried by the line.
        wal: Option<u64>,
        /// Loss instant.
        at: SimTime,
    },
    /// A write command fell through to the device (partition full or device
    /// dead); it is durably ordered by the device, not the cache.
    PassThrough {
        /// Raw initiator command id.
        cmd: u64,
        /// Issuing tenant.
        tenant: TenantId,
        /// Submission instant.
        at: SimTime,
    },
    /// Simulated power loss: NIC DRAM cleared cold; every dirty line was
    /// surfaced as `Lost` immediately after this marker.
    PowerLoss {
        /// Loss instant.
        at: SimTime,
    },
    /// The device died; every dirty line was surfaced as `Lost` immediately
    /// after this marker and the flusher stopped.
    DeviceDeath {
        /// Observation instant.
        at: SimTime,
    },
}

impl DurabilityEvent {
    /// Fold into a digest, variant rank then fields, order fixed.
    pub fn fold_into(&self, d: &mut Digest) {
        let fold_wal = |d: &mut Digest, wal: Option<u64>| match wal {
            Some(w) => {
                d.update_u64(1);
                d.update_u64(w);
            }
            None => {
                d.update_u64(0);
            }
        };
        match *self {
            DurabilityEvent::Acked {
                cmd,
                tenant,
                lines,
                at,
            } => {
                d.update_u64(0);
                d.update_u64(cmd);
                d.update_u64(tenant.index() as u64);
                d.update_u64(u64::from(lines));
                d.update_u64(at.as_nanos());
            }
            DurabilityEvent::Dirtied {
                line,
                tenant,
                wal,
                at,
            } => {
                d.update_u64(1);
                d.update_u64(line);
                d.update_u64(tenant.index() as u64);
                fold_wal(d, wal);
                d.update_u64(at.as_nanos());
            }
            DurabilityEvent::FlushIssued {
                id,
                line,
                tenant,
                wal,
                at,
            } => {
                d.update_u64(2);
                d.update_u64(id);
                d.update_u64(line);
                d.update_u64(tenant.index() as u64);
                fold_wal(d, wal);
                d.update_u64(at.as_nanos());
            }
            DurabilityEvent::Cleaned { line, tenant, at } => {
                d.update_u64(3);
                d.update_u64(line);
                d.update_u64(tenant.index() as u64);
                d.update_u64(at.as_nanos());
            }
            DurabilityEvent::Requeued {
                line,
                tenant,
                wal,
                at,
            } => {
                d.update_u64(4);
                d.update_u64(line);
                d.update_u64(tenant.index() as u64);
                fold_wal(d, wal);
                d.update_u64(at.as_nanos());
            }
            DurabilityEvent::Superseded { line, tenant, at } => {
                d.update_u64(5);
                d.update_u64(line);
                d.update_u64(tenant.index() as u64);
                d.update_u64(at.as_nanos());
            }
            DurabilityEvent::Lost {
                line,
                tenant,
                wal,
                at,
            } => {
                d.update_u64(6);
                d.update_u64(line);
                d.update_u64(tenant.index() as u64);
                fold_wal(d, wal);
                d.update_u64(at.as_nanos());
            }
            DurabilityEvent::PassThrough { cmd, tenant, at } => {
                d.update_u64(7);
                d.update_u64(cmd);
                d.update_u64(tenant.index() as u64);
                d.update_u64(at.as_nanos());
            }
            DurabilityEvent::PowerLoss { at } => {
                d.update_u64(8);
                d.update_u64(at.as_nanos());
            }
            DurabilityEvent::DeviceDeath { at } => {
                d.update_u64(9);
                d.update_u64(at.as_nanos());
            }
        }
    }
}

/// Counters describing one SSD cache's activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads served entirely from DRAM.
    pub hits: u64,
    /// Reads sent to the device (at least one line missing).
    pub misses: u64,
    /// Lines filled on miss completions.
    pub fills: u64,
    /// Lines evicted for capacity (small-segment and main-segment).
    pub evictions: u64,
    /// Lines invalidated by partially covering writes.
    pub invalidations: u64,
    /// Lines updated in place by fully covering writes (write staging).
    pub staged: u64,
    /// Dirty lines dropped because the device write failed.
    pub staged_losses: u64,
    /// Fills whose line id was found in the ghost queue.
    pub ghost_hits: u64,
    /// Miss completions not admitted by the policy.
    pub bypassed: u64,
    /// Congestion-classifier regime changes (admission law toggles).
    pub admit_toggles: u64,
    /// Lines resident at snapshot time.
    pub resident_lines: u64,
}

impl CacheStats {
    /// Total read lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of read lookups served from DRAM (0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Fold every counter into `d`, field order fixed.
    pub fn fold_into(&self, d: &mut Digest) {
        for v in [
            self.hits,
            self.misses,
            self.fills,
            self.evictions,
            self.invalidations,
            self.staged,
            self.staged_losses,
            self.ghost_hits,
            self.bypassed,
            self.admit_toggles,
            self.resident_lines,
        ] {
            d.update_u64(v);
        }
    }
}

/// Which FIFO segment a resident line belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Segment {
    /// Probation: newly admitted lines; one touch promotes to main.
    Small,
    /// Protected: promoted or ghost-hit lines; evicted with second chance.
    Main,
}

/// One resident cache line.
#[derive(Clone, Copy, Debug)]
struct Line {
    tenant: TenantId,
    seg: Segment,
    /// Distinguishes this residency from stale FIFO entries left behind by
    /// an earlier life of the same line id (queues are cleaned lazily).
    incarnation: u64,
    accessed: bool,
    /// Write-through: staged by a write whose device copy has not completed
    /// yet. Write-back: acknowledged data not yet durable on flash.
    dirty: bool,
    /// Bumped on every dirtying; a flush (or pass-through write) only cleans
    /// the line if the epoch it snapshotted still matches, so a re-dirty
    /// racing an in-flight device write is never lost.
    dirty_epoch: u64,
    /// Instant of the clean→dirty transition (age-pressure flushing).
    dirtied_at: SimTime,
    /// A flush IO for this line is in flight (keeps it out of the queues).
    flushing: bool,
    /// WAL log-order tag of the dirtying write, when it carried one.
    wal: Option<u64>,
}

/// Per-tenant partition: budget, segment FIFOs, and the ghost queue.
#[derive(Debug)]
struct TenantPart {
    weight: u32,
    budget_lines: u64,
    resident_small: u64,
    resident_main: u64,
    /// (line id, incarnation); entries whose incarnation no longer matches
    /// the line table are stale and skipped on pop.
    small: VecDeque<(u64, u64)>,
    main: VecDeque<(u64, u64)>,
    ghost_set: DetSet<u64>,
    ghost_fifo: VecDeque<u64>,
    /// Dirty resident lines (write-back only; pinned against eviction).
    dirty: u64,
    /// Dirty WAL-tagged lines awaiting a flush slot, kept sorted by WAL tag
    /// so flush issue order is log order: `(line, enqueued_at, wal_tag)`.
    /// Entries are lazily invalidated (skipped when the line is no longer
    /// dirty, is already flushing, or changed identity).
    wal_q: VecDeque<(u64, SimTime, u64)>,
    /// Dirty data lines awaiting a flush slot, FIFO by first-dirty time:
    /// `(line, enqueued_at)`. Lazily invalidated like `wal_q`.
    data_q: VecDeque<(u64, SimTime)>,
}

impl TenantPart {
    fn resident(&self) -> u64 {
        self.resident_small + self.resident_main
    }

    /// Whether the dirty population crossed the pressure watermark.
    fn over_watermark(&self, dirty_high_percent: u32) -> bool {
        self.dirty * 100 >= self.budget_lines * u64::from(dirty_high_percent)
    }
}

/// A flush write in flight at the device.
#[derive(Clone, Copy, Debug)]
struct Flight {
    line: u64,
    tenant: TenantId,
    /// Dirty epoch snapshotted at issue; a mismatch on completion means the
    /// line was re-dirtied (or superseded) while the flush was in flight.
    epoch: u64,
    wal: Option<u64>,
}

/// The per-SSD cache: line table, per-tenant partitions, congestion
/// classifier, and counters. Owned by the switch pipeline.
#[derive(Debug)]
pub struct SsdCache {
    cfg: CacheConfig,
    ssd: SsdId,
    cap_lines: u64,
    line_blocks: u64,
    lines: DetMap<u64, Line>,
    tenants: DetMap<TenantId, TenantPart>,
    total_weight: u64,
    next_incarnation: u64,
    // Congestion classifier over device read latency (µs).
    ewma_us: f64,
    thresh_us: f64,
    state: CongState,
    seen_sample: bool,
    stats: CacheStats,
    losses: Vec<StagedWriteLoss>,
    // Write-back machinery; all of it stays empty under WritePolicy::Through.
    wb: WriteBackStats,
    flights: DetMap<u64, Flight>,
    next_flush: u64,
    journal: Vec<DurabilityEvent>,
    /// The device died: stop acking and flushing; pass every write through.
    dead: bool,
    trace: TraceHandle,
}

impl SsdCache {
    /// Build a cache for `ssd`. The configuration must be enabled
    /// (`capacity_bytes > 0`); the pipeline skips construction otherwise so
    /// a zero-capacity config is bit-identical to no cache at all.
    pub fn new(ssd: SsdId, cfg: CacheConfig) -> Self {
        cfg.validate();
        assert!(cfg.enabled(), "construct no cache for zero capacity");
        let cap_lines = cfg.capacity_lines().max(1);
        let line_blocks = u64::from(cfg.line_bytes) / BLOCK_SIZE;
        let thresh_us = cfg.thresh_max.as_micros_f64();
        SsdCache {
            cfg,
            ssd,
            cap_lines,
            line_blocks,
            lines: DetMap::new(),
            tenants: DetMap::new(),
            total_weight: 0,
            next_incarnation: 0,
            ewma_us: 0.0,
            thresh_us,
            state: CongState::Underutilized,
            seen_sample: false,
            stats: CacheStats::default(),
            losses: Vec::new(),
            wb: WriteBackStats::default(),
            flights: DetMap::new(),
            next_flush: 0,
            journal: Vec::new(),
            dead: false,
            trace: TraceHandle::disabled(),
        }
    }

    /// Attach a telemetry handle; cache events are stamped with the SSD id.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// The DRAM-copy latency the pipeline charges on a hit.
    pub fn hit_latency(&self) -> SimDuration {
        self.cfg.hit_latency
    }

    /// Current congestion regime of the admission classifier.
    pub fn congestion_state(&self) -> CongState {
        self.state
    }

    /// Snapshot of the counters, with `resident_lines` filled in.
    pub fn stats(&self) -> CacheStats {
        let mut s = self.stats;
        s.resident_lines = self.lines.len() as u64;
        s
    }

    /// Typed records of staged data dropped on failed device writes.
    pub fn losses(&self) -> &[StagedWriteLoss] {
        &self.losses
    }

    /// Write-back counters, with `dirty_lines` filled in. All-zero under
    /// `WritePolicy::Through`.
    pub fn write_back_stats(&self) -> WriteBackStats {
        let mut s = self.wb;
        s.dirty_lines = self.tenants.values().map(|p| p.dirty).sum();
        s
    }

    /// The write-back durability journal so far (empty under
    /// `WritePolicy::Through`). The crash-consistency oracle replays this.
    pub fn journal(&self) -> &[DurabilityEvent] {
        &self.journal
    }

    /// The configured write policy.
    pub fn write_policy(&self) -> WritePolicy {
        self.cfg.write_policy
    }

    /// Per-tenant `(tenant, dirty lines, partition budget in lines)` in
    /// registration order. Dirty lines are pinned (unevictable), so the
    /// partition-capacity invariant is `dirty <= budget` at every instant;
    /// the property suite asserts it after every operation.
    pub fn tenant_dirty(&self) -> Vec<(TenantId, u64, u64)> {
        self.tenants
            .iter()
            .map(|(t, p)| (*t, p.dirty, p.budget_lines))
            .collect()
    }

    /// The line-id range `[start, end)` a command touches.
    fn line_range(&self, cmd: &NvmeCmd) -> (u64, u64) {
        let start = cmd.lba / self.line_blocks;
        let end = cmd.lba_end().div_ceil(self.line_blocks);
        (start, end)
    }

    /// Lazily register a tenant and re-split capacity cost-weighted across
    /// all registered tenants (§3.5 weights). Shrinking an existing
    /// partition takes effect lazily at that tenant's next fill.
    fn register_tenant(&mut self, tenant: TenantId, prio: Priority) {
        if self.tenants.contains_key(&tenant) {
            return;
        }
        let idx = (prio.0 as usize).min(Priority::LEVELS - 1);
        let w = self.cfg.priority_weights[idx].max(1);
        self.total_weight += u64::from(w);
        self.tenants.insert(
            tenant,
            TenantPart {
                weight: w,
                budget_lines: 0,
                resident_small: 0,
                resident_main: 0,
                small: VecDeque::new(),
                main: VecDeque::new(),
                ghost_set: DetSet::new(),
                ghost_fifo: VecDeque::new(),
                dirty: 0,
                wal_q: VecDeque::new(),
                data_q: VecDeque::new(),
            },
        );
        let (cap, total) = (self.cap_lines, self.total_weight);
        for p in self.tenants.values_mut() {
            p.budget_lines = (cap * u64::from(p.weight) / total).max(1);
        }
    }

    /// Read lookup. On a full hit every touched line is marked accessed and
    /// the command can complete from DRAM; any missing line makes the whole
    /// read a miss (it goes to the device and may fill on completion).
    pub fn try_read_hit(&mut self, cmd: &NvmeCmd, now: SimTime) -> bool {
        self.register_tenant(cmd.tenant, cmd.priority);
        let (s, e) = self.line_range(cmd);
        let mut missing = 0u32;
        for l in s..e {
            match self.lines.get_mut(&l) {
                Some(line) => line.accessed = true,
                None => missing += 1,
            }
        }
        if missing == 0 {
            self.stats.hits += 1;
            self.trace.record(
                now,
                self.ssd,
                Some(cmd.tenant),
                EventKind::CacheHit {
                    lines: (e - s) as u32,
                },
            );
            true
        } else {
            self.stats.misses += 1;
            self.trace.record(
                now,
                self.ssd,
                Some(cmd.tenant),
                EventKind::CacheMiss {
                    lines_missing: missing,
                },
            );
            false
        }
    }

    /// A write is going to the device. Write-through: fully covered resident
    /// lines are updated in place and marked dirty until
    /// [`Self::on_write_completion`]; partially covered resident lines are
    /// invalidated (their DRAM copy would be stale). Writes never allocate
    /// lines. Write-back: this is the pass-through path (the write did not
    /// fit the partition, or the device is dead) — nothing is staged at
    /// submit time; resident lines are reconciled at completion.
    pub fn stage_write(&mut self, cmd: &NvmeCmd, now: SimTime) {
        self.register_tenant(cmd.tenant, cmd.priority);
        if self.cfg.write_policy == WritePolicy::Back {
            self.wb.passthrough += 1;
            self.journal.push(DurabilityEvent::PassThrough {
                cmd: cmd.id.0,
                tenant: cmd.tenant,
                at: now,
            });
            return;
        }
        let (s, e) = self.line_range(cmd);
        for l in s..e {
            let covered =
                l * self.line_blocks >= cmd.lba && (l + 1) * self.line_blocks <= cmd.lba_end();
            if covered {
                if let Some(line) = self.lines.get_mut(&l) {
                    line.dirty = true;
                    line.accessed = true;
                    self.stats.staged += 1;
                }
            } else if self.lines.contains_key(&l) {
                self.invalidate_line(l, now);
            }
        }
    }

    /// Try to absorb a write at DRAM cost (write-back only). Every touched
    /// line becomes dirty — a partially covering write is modeled as a
    /// read-modify-write merge into the line — and the command can complete
    /// at hit latency. Returns false (the caller must send the write to the
    /// device) when the policy is write-through, the device is dead, or the
    /// tenant's partition cannot pin the span: dirty lines are unevictable,
    /// so admission requires `dirty + newly_dirty <= budget`, where
    /// `newly_dirty` counts every span line that is not already dirty —
    /// absent lines allocate and pin, resident *clean* lines re-dirty and
    /// pin just the same.
    pub fn write_back_ack(&mut self, cmd: &NvmeCmd, now: SimTime) -> bool {
        if self.cfg.write_policy != WritePolicy::Back || self.dead {
            return false;
        }
        self.register_tenant(cmd.tenant, cmd.priority);
        let (s, e) = self.line_range(cmd);
        let newly_dirty = (s..e)
            .filter(|l| !self.lines.get(l).is_some_and(|line| line.dirty))
            .count() as u64;
        let p = self.tenants.get(&cmd.tenant).expect("registered");
        if p.dirty + newly_dirty > p.budget_lines {
            return false;
        }
        for l in s..e {
            if self.lines.contains_key(&l) {
                self.redirty_resident(l, cmd.wal, now);
            } else {
                self.alloc_dirty(cmd.tenant, l, cmd.wal, now);
            }
        }
        self.wb.acked += 1;
        self.trace.record(
            now,
            self.ssd,
            Some(cmd.tenant),
            EventKind::CacheWriteBackAck {
                cmd: cmd.id.0,
                lines: (e - s) as u32,
            },
        );
        self.journal.push(DurabilityEvent::Acked {
            cmd: cmd.id.0,
            tenant: cmd.tenant,
            lines: (e - s) as u32,
            at: now,
        });
        true
    }

    /// Dirty (or re-dirty) a resident line in place. The line keeps its
    /// current owner; cross-tenant writes to a shared region dirty the
    /// owner's partition, mirroring how residency is accounted.
    fn redirty_resident(&mut self, l: u64, wal: Option<u64>, now: SimTime) {
        let line = self.lines.get_mut(&l).expect("resident");
        line.accessed = true;
        line.dirty_epoch = line.dirty_epoch.saturating_add(1);
        let owner = line.tenant;
        let was_dirty = line.dirty;
        let was_queued = was_dirty && !line.flushing;
        let old_wal = line.wal;
        line.wal = wal;
        if !was_dirty {
            line.dirty = true;
            line.dirtied_at = now;
            self.wb.acked_lines += 1;
            let p = self.tenants.get_mut(&owner).expect("owner registered");
            p.dirty += 1;
            Self::enqueue_dirty(p, l, now, wal);
            self.journal.push(DurabilityEvent::Dirtied {
                line: l,
                tenant: owner,
                wal,
                at: now,
            });
            return;
        }
        // Already dirty: the DRAM copy absorbs the newer data; no new debt.
        // If the WAL tag changed while the line sits in a queue, the queue
        // entry's ordering key is stale — drop it and re-enqueue sorted.
        if was_queued && old_wal != wal {
            let p = self.tenants.get_mut(&owner).expect("owner registered");
            p.wal_q.retain(|&(ql, _, _)| ql != l);
            p.data_q.retain(|&(ql, _)| ql != l);
            Self::enqueue_dirty(p, l, now, wal);
        }
    }

    /// Allocate a fresh dirty line (write-allocate), evicting clean lines
    /// within the tenant's partition as needed. The caller verified the
    /// partition can pin it.
    fn alloc_dirty(&mut self, tenant: TenantId, l: u64, wal: Option<u64>, now: SimTime) {
        if !self.insert_line(tenant, l, false, now) {
            // Cannot happen: admission guaranteed a clean line is evictable.
            debug_assert!(false, "write-back allocation failed past admission");
            return;
        }
        let line = self.lines.get_mut(&l).expect("just inserted");
        line.dirty = true;
        line.dirty_epoch = line.dirty_epoch.saturating_add(1);
        line.dirtied_at = now;
        line.wal = wal;
        self.wb.acked_lines += 1;
        let p = self.tenants.get_mut(&tenant).expect("registered");
        p.dirty += 1;
        Self::enqueue_dirty(p, l, now, wal);
        self.journal.push(DurabilityEvent::Dirtied {
            line: l,
            tenant,
            wal,
            at: now,
        });
    }

    /// Put a dirty line into the owner's flush queue. WAL-tagged lines are
    /// inserted in tag order (scanning from the tail — re-dirties and retry
    /// re-queues carry tags near the maximum); data lines append FIFO.
    fn enqueue_dirty(p: &mut TenantPart, l: u64, at: SimTime, wal: Option<u64>) {
        match wal {
            Some(w) => {
                let mut idx = p.wal_q.len();
                while idx > 0 && p.wal_q[idx - 1].2 > w {
                    idx -= 1;
                }
                p.wal_q.insert(idx, (l, at, w));
            }
            None => p.data_q.push_back((l, at)),
        }
    }

    /// Whether a flush-queue entry still names the dirty residency it was
    /// enqueued for. Entries are lazily invalidated: a clean, flushing,
    /// re-owned, or re-tagged line makes the entry stale and it is skipped.
    fn queue_entry_valid(
        lines: &DetMap<u64, Line>,
        tenant: TenantId,
        l: u64,
        wal: Option<u64>,
    ) -> bool {
        lines.get(&l).is_some_and(|line| {
            line.tenant == tenant && line.dirty && !line.flushing && line.wal == wal
        })
    }

    /// Pop the next dirty line the flusher should write back, or `None`
    /// when nothing is eligible. WAL-tagged lines drain globally in log
    /// order ahead of data lines; data lines drain oldest-first. In
    /// `opportunistic` mode every queued line is eligible; otherwise a
    /// tenant's queues open only over the dirty watermark or once its
    /// oldest entry exceeds the age bound (the whole WAL queue opens with
    /// it — log order means the head must go first regardless of which
    /// entry aged out). Returns `(line, tenant, wal, under_pressure)`.
    fn pop_flushable(
        &mut self,
        now: SimTime,
        opportunistic: bool,
    ) -> Option<(u64, TenantId, Option<u64>, bool)> {
        // Purge stale heads so the candidate scan below sees live entries.
        let tenant_ids: Vec<TenantId> = self.tenants.keys().copied().collect();
        for t in &tenant_ids {
            let lines = &self.lines;
            let p = self.tenants.get_mut(t).expect("listed tenant");
            while let Some(&(l, _, w)) = p.wal_q.front() {
                if Self::queue_entry_valid(lines, *t, l, Some(w)) {
                    break;
                }
                p.wal_q.pop_front();
            }
            while let Some(&(l, _)) = p.data_q.front() {
                if Self::queue_entry_valid(lines, *t, l, None) {
                    break;
                }
                p.data_q.pop_front();
            }
        }
        let max_age = self.cfg.flush_max_age;
        let whp = self.cfg.dirty_high_percent;
        // (wal tag, tenant, pressure) / (enqueued_at, tenant, pressure);
        // strict < keeps ties on the earlier-registered tenant.
        let mut best_wal: Option<(u64, TenantId, bool)> = None;
        let mut best_data: Option<(SimTime, TenantId, bool)> = None;
        for (t, p) in self.tenants.iter() {
            if p.wal_q.is_empty() && p.data_q.is_empty() {
                continue;
            }
            let (eligible, pressure) = if opportunistic {
                (true, false)
            } else {
                let mut oldest: Option<SimTime> = None;
                for &(l, at, w) in &p.wal_q {
                    if Self::queue_entry_valid(&self.lines, *t, l, Some(w))
                        && oldest.is_none_or(|o| at < o)
                    {
                        oldest = Some(at);
                    }
                }
                if let Some(&(_, at)) = p.data_q.front() {
                    if oldest.is_none_or(|o| at < o) {
                        oldest = Some(at);
                    }
                }
                let due = p.over_watermark(whp) || oldest.is_some_and(|o| o + max_age <= now);
                (due, true)
            };
            if !eligible {
                continue;
            }
            if let Some(&(_, _, w)) = p.wal_q.front() {
                if best_wal.is_none_or(|(bw, _, _)| w < bw) {
                    best_wal = Some((w, *t, pressure));
                }
            } else if let Some(&(_, at)) = p.data_q.front() {
                if best_data.is_none_or(|(ba, _, _)| at < ba) {
                    best_data = Some((at, *t, pressure));
                }
            }
        }
        if let Some((w, t, pressure)) = best_wal {
            let p = self.tenants.get_mut(&t).expect("candidate tenant");
            let (l, _, _) = p.wal_q.pop_front().expect("candidate head");
            return Some((l, t, Some(w), pressure));
        }
        if let Some((_, t, pressure)) = best_data {
            let p = self.tenants.get_mut(&t).expect("candidate tenant");
            let (l, _) = p.data_q.pop_front().expect("candidate head");
            return Some((l, t, None, pressure));
        }
        None
    }

    /// Take the flush writes the pipeline should submit now, bounded by the
    /// in-flight cap. Empty under write-through, after device death, or when
    /// no dirty line is eligible (see [`Self::pop_flushable`]).
    pub fn take_flushes(&mut self, now: SimTime) -> Vec<FlushIo> {
        let mut out = Vec::new();
        if self.cfg.write_policy != WritePolicy::Back || self.dead {
            return out;
        }
        let opportunistic = self.state == CongState::Underutilized;
        while self.flights.len() < self.cfg.flush_batch as usize {
            let Some((l, tenant, wal, pressure)) = self.pop_flushable(now, opportunistic) else {
                break;
            };
            let line = self.lines.get_mut(&l).expect("validated resident");
            line.flushing = true;
            let epoch = line.dirty_epoch;
            let id = FLUSH_ID_BASE | self.next_flush;
            self.next_flush += 1;
            self.flights.insert(
                id,
                Flight {
                    line: l,
                    tenant,
                    epoch,
                    wal,
                },
            );
            self.wb.flush_ios += 1;
            if wal.is_some() {
                self.wb.wal_flush_ios += 1;
            }
            if pressure {
                self.wb.pressure_flushes += 1;
            } else {
                self.wb.opportunistic_flushes += 1;
            }
            self.journal.push(DurabilityEvent::FlushIssued {
                id,
                line: l,
                tenant,
                wal,
                at: now,
            });
            self.trace.record(
                now,
                self.ssd,
                Some(tenant),
                EventKind::CacheFlushIssued { id, line: l },
            );
            out.push(FlushIo {
                id,
                tenant,
                lba: l * self.line_blocks,
                len: self.cfg.line_bytes,
                wal,
            });
        }
        out
    }

    /// Earliest virtual time at which [`Self::take_flushes`] would produce
    /// work, given current classifier state — `None` when the flusher is
    /// idle, saturated, stopped, or write-through. A past instant means
    /// "due now"; the pipeline clamps to its current time. Pure: calling it
    /// never mutates the cache, so the pipeline can poll it when computing
    /// its next event time.
    pub fn next_flush_due(&self) -> Option<SimTime> {
        if self.cfg.write_policy != WritePolicy::Back || self.dead {
            return None;
        }
        if self.flights.len() >= self.cfg.flush_batch as usize {
            return None;
        }
        let opportunistic = self.state == CongState::Underutilized;
        let max_age = self.cfg.flush_max_age;
        let whp = self.cfg.dirty_high_percent;
        let mut due: Option<SimTime> = None;
        for (t, p) in self.tenants.iter() {
            let mut oldest: Option<SimTime> = None;
            for &(l, at, w) in &p.wal_q {
                if Self::queue_entry_valid(&self.lines, *t, l, Some(w))
                    && oldest.is_none_or(|o| at < o)
                {
                    oldest = Some(at);
                }
            }
            for &(l, at) in &p.data_q {
                if Self::queue_entry_valid(&self.lines, *t, l, None)
                    && oldest.is_none_or(|o| at < o)
                {
                    oldest = Some(at);
                }
            }
            let Some(oldest) = oldest else { continue };
            let t_due = if opportunistic || p.over_watermark(whp) {
                oldest
            } else {
                oldest + max_age
            };
            if due.is_none_or(|d| t_due < d) {
                due = Some(t_due);
            }
        }
        due
    }

    /// A flush write completed at the device. Success with an unchanged
    /// dirty epoch cleans the line (it is durable on flash); a transient
    /// failure or an epoch mismatch (the line was re-dirtied while the
    /// flush was in flight) re-queues it, still dirty. A line superseded or
    /// lost mid-flight just sheds its `flushing` pin.
    pub fn on_flush_completion(&mut self, id: u64, failed: bool, now: SimTime) {
        let Some(fl) = self.flights.remove(&id) else {
            // Power loss or device death already drained this flight.
            return;
        };
        let Some(line) = self.lines.get_mut(&fl.line) else {
            return;
        };
        line.flushing = false;
        if !line.dirty {
            return;
        }
        let owner = line.tenant;
        if !failed && line.dirty_epoch == fl.epoch {
            line.dirty = false;
            line.wal = None;
            self.tenants
                .get_mut(&owner)
                .expect("owner registered")
                .dirty -= 1;
            self.wb.flushed_lines += 1;
            self.journal.push(DurabilityEvent::Cleaned {
                line: fl.line,
                tenant: owner,
                at: now,
            });
            self.trace.record(
                now,
                self.ssd,
                Some(owner),
                EventKind::CacheFlushDone {
                    id,
                    line: fl.line,
                    requeued: false,
                },
            );
            return;
        }
        let wal = line.wal;
        let p = self.tenants.get_mut(&owner).expect("owner registered");
        Self::enqueue_dirty(p, fl.line, now, wal);
        self.wb.requeued_lines += 1;
        self.journal.push(DurabilityEvent::Requeued {
            line: fl.line,
            tenant: owner,
            wal,
            at: now,
        });
        self.trace.record(
            now,
            self.ssd,
            Some(owner),
            EventKind::CacheFlushDone {
                id,
                line: fl.line,
                requeued: true,
            },
        );
    }

    /// Surface every dirty line as a [`StagedWriteLoss`] (one aggregated
    /// record per tenant, `cmd` = [`LOSS_EVENT_CMD`], `dirty` = true) and
    /// journal a `Lost` entry per line. Lines become clean; flush queues
    /// drain. Returns the number of lines lost.
    fn surface_dirty_losses(&mut self, now: SimTime) -> u32 {
        let mut lost: Vec<(u64, TenantId, Option<u64>)> = Vec::new();
        for (l, line) in self.lines.iter_mut() {
            if line.dirty {
                lost.push((*l, line.tenant, line.wal));
                line.dirty = false;
                line.dirty_epoch = line.dirty_epoch.saturating_add(1);
                line.flushing = false;
                line.wal = None;
            }
        }
        for &(l, t, wal) in &lost {
            self.journal.push(DurabilityEvent::Lost {
                line: l,
                tenant: t,
                wal,
                at: now,
            });
        }
        let mut per_tenant: DetMap<TenantId, u32> = DetMap::new();
        for &(_, t, _) in &lost {
            match per_tenant.get_mut(&t) {
                Some(n) => *n += 1,
                None => {
                    per_tenant.insert(t, 1);
                }
            }
        }
        for (t, n) in per_tenant.iter() {
            self.wb.lost_lines += u64::from(*n);
            self.stats.staged_losses += u64::from(*n);
            self.losses.push(StagedWriteLoss {
                cmd: LOSS_EVENT_CMD,
                tenant: *t,
                ssd: self.ssd,
                lines_lost: *n,
                at: now,
                dirty: true,
            });
            self.trace.record(
                now,
                self.ssd,
                Some(*t),
                EventKind::CacheStagedLoss {
                    cmd: LOSS_EVENT_CMD,
                    lines: *n,
                },
            );
        }
        for p in self.tenants.values_mut() {
            p.dirty = 0;
            p.wal_q.clear();
            p.data_q.clear();
        }
        lost.len() as u32
    }

    /// The device died. Write-back only: every acked-but-unflushed line is
    /// surfaced as a dirty-tagged [`StagedWriteLoss`] (it can never reach
    /// flash), the flusher stops for good, and subsequent writes pass
    /// through (to fail at the device like every other command). The DRAM
    /// copies stay resident and clean — reads may still hit them.
    pub fn on_device_death(&mut self, now: SimTime) {
        if self.cfg.write_policy != WritePolicy::Back || self.dead {
            return;
        }
        self.dead = true;
        self.journal.push(DurabilityEvent::DeviceDeath { at: now });
        let lost = self.surface_dirty_losses(now);
        self.flights.clear();
        self.trace.record(
            now,
            self.ssd,
            None,
            EventKind::CacheDeviceDeath { lines_lost: lost },
        );
    }

    /// Simulated power loss: NIC DRAM goes cold. Under write-back every
    /// dirty line is first surfaced as a dirty-tagged [`StagedWriteLoss`]
    /// (marker-then-losses in the journal); under either policy the whole
    /// line table, segment FIFOs, and ghost queues clear. Counters are sim
    /// bookkeeping and survive. The device itself is unaffected.
    pub fn power_loss(&mut self, now: SimTime) {
        let mut lost = 0;
        if self.cfg.write_policy == WritePolicy::Back {
            self.wb.power_losses += 1;
            self.journal.push(DurabilityEvent::PowerLoss { at: now });
            lost = self.surface_dirty_losses(now);
            self.flights.clear();
        }
        self.lines.clear();
        for p in self.tenants.values_mut() {
            p.resident_small = 0;
            p.resident_main = 0;
            p.small.clear();
            p.main.clear();
            p.ghost_set.clear();
            p.ghost_fifo.clear();
            p.dirty = 0;
            p.wal_q.clear();
            p.data_q.clear();
        }
        self.trace.record(
            now,
            self.ssd,
            None,
            EventKind::CachePowerLoss { lines_lost: lost },
        );
    }

    /// A device write completed. Success commits staged lines (clears
    /// dirty); failure drops them and surfaces a typed [`StagedWriteLoss`].
    /// Under write-back this is a pass-through completion and reconciles
    /// resident lines instead: a successful fully-covering write supersedes
    /// a dirty line (flash now holds newer data — nothing left to flush), a
    /// partial write over a dirty line merges into DRAM and stays dirty, a
    /// partial write over a clean line invalidates the stale copy, and a
    /// failed write changes nothing.
    pub fn on_write_completion(&mut self, cmd: &NvmeCmd, failed: bool, now: SimTime) {
        if self.cfg.write_policy == WritePolicy::Back {
            self.reconcile_passthrough(cmd, failed, now);
            return;
        }
        let (s, e) = self.line_range(cmd);
        if !failed {
            for l in s..e {
                if let Some(line) = self.lines.get_mut(&l) {
                    line.dirty = false;
                }
            }
            return;
        }
        let mut lost = 0u32;
        for l in s..e {
            if self.lines.get(&l).is_some_and(|line| line.dirty) {
                self.invalidate_line(l, now);
                lost += 1;
            }
        }
        if lost > 0 {
            self.stats.staged_losses += u64::from(lost);
            self.losses.push(StagedWriteLoss {
                cmd: cmd.id.0,
                tenant: cmd.tenant,
                ssd: cmd.ssd,
                lines_lost: lost,
                at: now,
                dirty: false,
            });
            self.trace.record(
                now,
                self.ssd,
                Some(cmd.tenant),
                EventKind::CacheStagedLoss {
                    cmd: cmd.id.0,
                    lines: lost,
                },
            );
        }
    }

    /// Write-back reconciliation for a pass-through device write (see
    /// [`Self::on_write_completion`]).
    fn reconcile_passthrough(&mut self, cmd: &NvmeCmd, failed: bool, now: SimTime) {
        if failed {
            // The device rejected the write; resident copies (clean ones
            // match flash, dirty ones are still ahead of it) stay valid.
            return;
        }
        let (s, e) = self.line_range(cmd);
        for l in s..e {
            let covered =
                l * self.line_blocks >= cmd.lba && (l + 1) * self.line_blocks <= cmd.lba_end();
            let Some(line) = self.lines.get_mut(&l) else {
                continue;
            };
            line.accessed = true;
            if covered {
                if line.dirty {
                    // Flash now holds newer data than the acked DRAM copy:
                    // the dirty line is superseded, nothing left to flush.
                    line.dirty = false;
                    line.dirty_epoch = line.dirty_epoch.saturating_add(1);
                    line.wal = None;
                    let owner = line.tenant;
                    self.tenants
                        .get_mut(&owner)
                        .expect("owner registered")
                        .dirty -= 1;
                    self.wb.superseded_lines += 1;
                    self.journal.push(DurabilityEvent::Superseded {
                        line: l,
                        tenant: owner,
                        at: now,
                    });
                }
                // A clean covered line absorbs the write in place.
            } else if !line.dirty {
                // Partial write over a clean line: the DRAM copy is stale.
                self.invalidate_line(l, now);
            }
            // Partial write over a dirty line: the DRAM line merges the
            // written bytes (read-modify-write fiction) and stays dirty —
            // it is still ahead of flash and must flush.
        }
    }

    /// A device read completed: feed the congestion classifier and, if the
    /// admission law allows, fill the missing lines.
    pub fn on_read_completion(
        &mut self,
        cmd: &NvmeCmd,
        device_latency: SimDuration,
        failed: bool,
        now: SimTime,
    ) {
        if failed {
            return;
        }
        self.observe_device_latency(device_latency, cmd.tenant, now);
        let ghost_only = match self.cfg.policy {
            AdmissionPolicy::Never => {
                self.stats.bypassed += 1;
                return;
            }
            AdmissionPolicy::Always => false,
            AdmissionPolicy::CongestionAware => match self.state {
                // Device under pressure: shed load onto DRAM aggressively.
                CongState::Congested | CongState::Overloaded => false,
                // Middle band: only lines with proven reuse (ghost hits).
                CongState::CongestionAvoidance => true,
                // Clean device: the hit path would only add overhead.
                CongState::Underutilized => {
                    self.stats.bypassed += 1;
                    return;
                }
            },
        };
        let (s, e) = self.line_range(cmd);
        let mut filled = 0u32;
        let mut ghost_hits = 0u32;
        for l in s..e {
            if self.lines.contains_key(&l) {
                continue;
            }
            let ghost_hit = self
                .tenants
                .get_mut(&cmd.tenant)
                .is_some_and(|p| p.ghost_set.remove(&l));
            if ghost_only && !ghost_hit {
                continue;
            }
            if !self.insert_line(cmd.tenant, l, ghost_hit, now) {
                // Write-back: the partition is wall-to-wall dirty; a read
                // fill cannot displace pinned lines.
                continue;
            }
            filled += 1;
            if ghost_hit {
                ghost_hits += 1;
            }
        }
        if filled > 0 {
            self.stats.fills += u64::from(filled);
            self.stats.ghost_hits += u64::from(ghost_hits);
            self.trace.record(
                now,
                self.ssd,
                Some(cmd.tenant),
                EventKind::CacheFill {
                    lines: filled,
                    ghost_hits,
                },
            );
        } else {
            self.stats.bypassed += 1;
        }
    }

    /// Fold the EWMA and reclassify. The dynamic threshold drifts toward
    /// the observed latency while the device is clean, springs toward the
    /// ceiling midpoint while congested, and pins at the ceiling when
    /// overloaded — a simplified, deterministic cousin of Alg. 1 that keeps
    /// the admission law self-tuning without touching the policy's own
    /// monitors (which a hit never reaches).
    fn observe_device_latency(&mut self, lat: SimDuration, tenant: TenantId, now: SimTime) {
        let us = lat.as_micros_f64();
        if self.seen_sample {
            let a = self.cfg.ewma_alpha;
            self.ewma_us = a * us + (1.0 - a) * self.ewma_us;
        } else {
            self.ewma_us = us;
            self.seen_sample = true;
        }
        let min = self.cfg.thresh_min.as_micros_f64();
        let max = self.cfg.thresh_max.as_micros_f64();
        let next = if self.ewma_us >= max {
            CongState::Overloaded
        } else if self.ewma_us >= self.thresh_us {
            CongState::Congested
        } else if self.ewma_us >= min {
            CongState::CongestionAvoidance
        } else {
            CongState::Underutilized
        };
        self.thresh_us = match next {
            CongState::Overloaded => max,
            CongState::Congested => (self.thresh_us + max) / 2.0,
            _ => (7.0 * self.thresh_us + self.ewma_us.max(min)) / 8.0,
        }
        .clamp(min, max);
        if next != self.state {
            self.stats.admit_toggles += 1;
            self.trace.record(
                now,
                self.ssd,
                Some(tenant),
                EventKind::CacheAdmitToggle {
                    from: self.state,
                    to: next,
                },
            );
            self.state = next;
        }
    }

    /// Insert a line into the tenant's partition, evicting within that
    /// partition first if it is at budget. Ghost hits land in the main
    /// segment (proven reuse); everything else starts in probation. Returns
    /// false without inserting when eviction cannot make room — possible
    /// only under write-back, where dirty lines are pinned; write-through
    /// partitions always hold an evictable line at budget.
    fn insert_line(&mut self, tenant: TenantId, l: u64, to_main: bool, now: SimTime) -> bool {
        loop {
            let at_budget = self
                .tenants
                .get(&tenant)
                .is_some_and(|p| p.resident() >= p.budget_lines);
            if !at_budget {
                break;
            }
            if !self.evict_one(tenant, now) {
                return false;
            }
        }
        let inc = self.next_incarnation;
        self.next_incarnation += 1;
        self.lines.insert(
            l,
            Line {
                tenant,
                seg: if to_main {
                    Segment::Main
                } else {
                    Segment::Small
                },
                incarnation: inc,
                accessed: false,
                dirty: false,
                dirty_epoch: 0,
                dirtied_at: now,
                flushing: false,
                wal: None,
            },
        );
        if let Some(p) = self.tenants.get_mut(&tenant) {
            if to_main {
                p.resident_main += 1;
                p.main.push_back((l, inc));
            } else {
                p.resident_small += 1;
                p.small.push_back((l, inc));
            }
        }
        true
    }

    /// Evict one line from `tenant`'s partition. The small segment is
    /// drained while it exceeds its share; otherwise the main segment goes
    /// first. Returns false when nothing evictable remains.
    fn evict_one(&mut self, tenant: TenantId, now: SimTime) -> bool {
        let prefer_small = self.tenants.get(&tenant).is_some_and(|p| {
            let small_share = (p.budget_lines * u64::from(self.cfg.small_percent) / 100).max(1);
            p.resident_small >= small_share || p.resident_main == 0
        });
        // Order matters: eviction mutates the segments, so the fallback is a
        // real second attempt, not a commutative `||`.
        let order: [fn(&mut Self, TenantId, SimTime) -> bool; 2] = if prefer_small {
            [Self::evict_from_small, Self::evict_from_main]
        } else {
            [Self::evict_from_main, Self::evict_from_small]
        };
        if order.into_iter().any(|seg| seg(self, tenant, now)) {
            return true;
        }
        // A failed small scan may still have *promoted* accessed clean lines
        // into main. When main ran first those promotions were never
        // considered, which under write-back can strand the only evictable
        // line (everything else dirty-pinned); one more main pass closes the
        // gap, and an all-dirty main still terminates its bounded scan.
        !prefer_small && Self::evict_from_main(self, tenant, now)
    }

    /// Pop the probation FIFO: a touched line is promoted to main, a cold
    /// line is evicted and remembered in the ghost queue.
    fn evict_from_small(&mut self, tenant: TenantId, now: SimTime) -> bool {
        let pinned_dirty = self.cfg.write_policy == WritePolicy::Back;
        let ghost_cap = self.tenants.get(&tenant).map_or(1, |p| {
            (p.budget_lines * u64::from(self.cfg.ghost_percent) / 100).max(1)
        });
        // Dirty lines rotate to the tail rather than evict. A full lap of
        // *consecutive* dirty rotations means every live entry is pinned —
        // only then is giving up correct (a fixed rotation budget can be
        // exhausted re-visiting dirty lines that promotions or second
        // chances rotated back in front of an evictable one).
        let mut consec_dirty = 0usize;
        loop {
            let Some(p) = self.tenants.get_mut(&tenant) else {
                return false;
            };
            let Some((l, inc)) = p.small.pop_front() else {
                return false;
            };
            let Some(line) = self.lines.get_mut(&l) else {
                continue; // stale entry: the line was invalidated
            };
            if line.incarnation != inc {
                continue; // stale entry: the id was refilled later
            }
            if pinned_dirty && line.dirty {
                p.small.push_back((l, inc));
                consec_dirty += 1;
                if consec_dirty > p.small.len() {
                    return false;
                }
                continue;
            }
            consec_dirty = 0;
            if line.accessed {
                line.accessed = false;
                line.seg = Segment::Main;
                p.resident_small -= 1;
                p.resident_main += 1;
                p.main.push_back((l, inc));
                continue;
            }
            self.lines.remove(&l);
            p.resident_small -= 1;
            if p.ghost_set.insert(l) {
                p.ghost_fifo.push_back(l);
            }
            while p.ghost_set.len() as u64 > ghost_cap {
                match p.ghost_fifo.pop_front() {
                    Some(old) => {
                        p.ghost_set.remove(&old);
                    }
                    None => break,
                }
            }
            self.stats.evictions += 1;
            self.trace.record(
                now,
                self.ssd,
                Some(tenant),
                EventKind::CacheEvict {
                    line: l,
                    to_ghost: true,
                },
            );
            return true;
        }
    }

    /// Pop the main FIFO with second chance: a touched line goes back to
    /// the tail untouched-bit-cleared; chances are bounded by the queue
    /// length so the scan terminates even when everything is hot.
    fn evict_from_main(&mut self, tenant: TenantId, now: SimTime) -> bool {
        let pinned_dirty = self.cfg.write_policy == WritePolicy::Back;
        let mut chances = self.tenants.get(&tenant).map_or(0, |p| p.main.len());
        // See evict_from_small: only a full lap of consecutive dirty
        // rotations proves the queue holds nothing evictable.
        let mut consec_dirty = 0usize;
        loop {
            let Some(p) = self.tenants.get_mut(&tenant) else {
                return false;
            };
            let Some((l, inc)) = p.main.pop_front() else {
                return false;
            };
            let Some(line) = self.lines.get_mut(&l) else {
                continue;
            };
            if line.incarnation != inc {
                continue;
            }
            if pinned_dirty && line.dirty {
                p.main.push_back((l, inc));
                consec_dirty += 1;
                if consec_dirty > p.main.len() {
                    return false;
                }
                continue;
            }
            consec_dirty = 0;
            if line.accessed && chances > 0 {
                chances -= 1;
                line.accessed = false;
                p.main.push_back((l, inc));
                continue;
            }
            self.lines.remove(&l);
            p.resident_main -= 1;
            self.stats.evictions += 1;
            self.trace.record(
                now,
                self.ssd,
                Some(tenant),
                EventKind::CacheEvict {
                    line: l,
                    to_ghost: false,
                },
            );
            return true;
        }
    }

    /// Drop a resident line (write invalidation / staged loss). Never
    /// reached for a write-back dirty line: those are pinned and only leave
    /// via flush, supersede, or surfaced loss.
    fn invalidate_line(&mut self, l: u64, now: SimTime) {
        let Some(line) = self.lines.remove(&l) else {
            return;
        };
        debug_assert!(
            !(self.cfg.write_policy == WritePolicy::Back && line.dirty),
            "invalidated an acked write-back line: silent loss"
        );
        if let Some(p) = self.tenants.get_mut(&line.tenant) {
            match line.seg {
                Segment::Small => p.resident_small -= 1,
                Segment::Main => p.resident_main -= 1,
            }
        }
        self.stats.invalidations += 1;
        self.trace.record(
            now,
            self.ssd,
            Some(line.tenant),
            EventKind::CacheEvict {
                line: l,
                to_ghost: false,
            },
        );
    }

    /// Fold the full cache state — line table, partitions, classifier,
    /// counters, losses — into `d`. Joins the double-run identity checks.
    pub fn fold_into(&self, d: &mut Digest) {
        // Write-back state folds only when the policy is `Back`, keeping a
        // `Through` cache's digest stream bit-identical to the tier before
        // write-back existed ("off ≡ absent").
        let back = self.cfg.write_policy == WritePolicy::Back;
        d.update_u64(self.cfg.policy.rank());
        d.update_u64(self.cap_lines);
        d.update_u64(self.lines.len() as u64);
        for (l, line) in self.lines.iter() {
            d.update_u64(*l);
            d.update_u64(line.tenant.index() as u64);
            d.update_u64(match line.seg {
                Segment::Small => 0,
                Segment::Main => 1,
            });
            d.update_u64(line.incarnation);
            d.update_u64(u64::from(line.accessed));
            d.update_u64(u64::from(line.dirty));
            if back {
                d.update_u64(line.dirty_epoch);
                d.update_u64(line.dirtied_at.as_nanos());
                d.update_u64(u64::from(line.flushing));
                match line.wal {
                    Some(w) => {
                        d.update_u64(1);
                        d.update_u64(w);
                    }
                    None => {
                        d.update_u64(0);
                    }
                }
            }
        }
        d.update_u64(self.tenants.len() as u64);
        for (t, p) in self.tenants.iter() {
            d.update_u64(t.index() as u64);
            d.update_u64(u64::from(p.weight));
            d.update_u64(p.budget_lines);
            d.update_u64(p.resident_small);
            d.update_u64(p.resident_main);
            d.update_u64(p.ghost_fifo.len() as u64);
            for g in &p.ghost_fifo {
                d.update_u64(*g);
            }
            if back {
                d.update_u64(p.dirty);
                d.update_u64(p.wal_q.len() as u64);
                for &(l, at, w) in &p.wal_q {
                    d.update_u64(l);
                    d.update_u64(at.as_nanos());
                    d.update_u64(w);
                }
                d.update_u64(p.data_q.len() as u64);
                for &(l, at) in &p.data_q {
                    d.update_u64(l);
                    d.update_u64(at.as_nanos());
                }
            }
        }
        d.update_f64(self.ewma_us);
        d.update_f64(self.thresh_us);
        d.update_u64(u64::from(self.state.rank()));
        self.stats().fold_into(d);
        d.update_u64(self.losses.len() as u64);
        for loss in &self.losses {
            loss.fold_into(d);
        }
        if back {
            d.update_u64(WritePolicy::Back.rank());
            d.update_u64(u64::from(self.dead));
            d.update_u64(self.next_flush);
            self.write_back_stats().fold_into(d);
            d.update_u64(self.flights.len() as u64);
            for (id, f) in self.flights.iter() {
                d.update_u64(*id);
                d.update_u64(f.line);
                d.update_u64(f.tenant.index() as u64);
                d.update_u64(f.epoch);
                match f.wal {
                    Some(w) => {
                        d.update_u64(1);
                        d.update_u64(w);
                    }
                    None => {
                        d.update_u64(0);
                    }
                }
            }
            d.update_u64(self.journal.len() as u64);
            for e in &self.journal {
                e.fold_into(d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gimbal_fabric::{CmdId, IoType};

    fn cmd(id: u64, tenant: u32, op: IoType, lba: u64, len: u32) -> NvmeCmd {
        NvmeCmd {
            id: CmdId(id),
            tenant: TenantId(tenant),
            ssd: SsdId(0),
            opcode: op,
            lba,
            len,
            priority: Priority::NORMAL,
            issued_at: SimTime::ZERO,
            wal: None,
        }
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn small_cache(lines: u64, policy: AdmissionPolicy) -> SsdCache {
        SsdCache::new(
            SsdId(0),
            CacheConfig {
                capacity_bytes: lines * 4096,
                policy,
                ..CacheConfig::default()
            },
        )
    }

    /// Read lba and let it fill unconditionally.
    fn read_and_fill(c: &mut SsdCache, id: u64, tenant: u32, lba: u64) -> bool {
        let r = cmd(id, tenant, IoType::Read, lba, 4096);
        let hit = c.try_read_hit(&r, t(id));
        if !hit {
            c.on_read_completion(&r, SimDuration::from_micros(80), false, t(id));
        }
        hit
    }

    #[test]
    fn eviction_is_fifo_over_cold_lines_and_promotes_hot_ones() {
        let mut c = small_cache(4, AdmissionPolicy::Always);
        for (i, lba) in [0u64, 1, 2, 3].into_iter().enumerate() {
            assert!(!read_and_fill(&mut c, i as u64, 0, lba));
        }
        // Touch line 0 so it is promoted instead of evicted.
        assert!(read_and_fill(&mut c, 10, 0, 0));
        // Two more distinct lines force two evictions: 1 then 2 (FIFO),
        // while 0 survives via promotion.
        assert!(!read_and_fill(&mut c, 11, 0, 4));
        assert!(!read_and_fill(&mut c, 12, 0, 5));
        assert!(read_and_fill(&mut c, 13, 0, 0), "hot line survived");
        let s = c.stats();
        assert!(s.evictions >= 2);
        // The evicted cold lines miss again.
        assert!(!read_and_fill(&mut c, 14, 0, 1));
    }

    #[test]
    fn ghost_hits_readmit_to_main() {
        let mut c = small_cache(2, AdmissionPolicy::Always);
        assert!(!read_and_fill(&mut c, 0, 0, 0));
        assert!(!read_and_fill(&mut c, 1, 0, 1));
        assert!(!read_and_fill(&mut c, 2, 0, 2)); // evicts 0 into the ghost queue
        assert!(!read_and_fill(&mut c, 3, 0, 0)); // ghost hit on refill
        assert!(c.stats().ghost_hits >= 1);
        assert!(read_and_fill(&mut c, 4, 0, 0), "ghost-hit line resident");
    }

    #[test]
    fn partitions_isolate_tenants() {
        // Equal priorities, 8 lines: each tenant owns 4. Tenant 1 flooding
        // must not evict tenant 0's resident lines.
        let mut c = small_cache(8, AdmissionPolicy::Always);
        for lba in 0..4u64 {
            read_and_fill(&mut c, lba, 0, lba);
        }
        for i in 0..64u64 {
            read_and_fill(&mut c, 100 + i, 1, 1000 + i);
        }
        for lba in 0..4u64 {
            assert!(
                read_and_fill(&mut c, 200 + lba, 0, lba),
                "tenant 0 line {lba} evicted by tenant 1's flood"
            );
        }
    }

    #[test]
    fn weighted_budgets_mirror_drr_weights() {
        let mut c = small_cache(70, AdmissionPolicy::Always);
        let mut hi = cmd(0, 0, IoType::Read, 0, 4096);
        hi.priority = Priority::HIGH;
        let mut lo = cmd(1, 1, IoType::Read, 10, 4096);
        lo.priority = Priority::LOW;
        c.try_read_hit(&hi, t(0));
        c.try_read_hit(&lo, t(1));
        let hi_budget = c.tenants.get(&TenantId(0)).unwrap().budget_lines;
        let lo_budget = c.tenants.get(&TenantId(1)).unwrap().budget_lines;
        assert_eq!(hi_budget, 70 * 4 / 5);
        assert_eq!(lo_budget, 70 / 5);
    }

    #[test]
    fn covering_write_stages_and_partial_write_invalidates() {
        let mut c = SsdCache::new(
            SsdId(0),
            CacheConfig {
                capacity_bytes: 16 * 8192,
                line_bytes: 8192,
                policy: AdmissionPolicy::Always,
                ..CacheConfig::default()
            },
        );
        // Fill line 0 (blocks 0..2) via a miss completion.
        let r = cmd(0, 0, IoType::Read, 0, 8192);
        assert!(!c.try_read_hit(&r, t(0)));
        c.on_read_completion(&r, SimDuration::from_micros(80), false, t(0));
        assert!(c.try_read_hit(&r, t(1)));

        // A fully covering write stages in place: still a hit, marked dirty.
        let w_full = cmd(1, 0, IoType::Write, 0, 8192);
        c.stage_write(&w_full, t(2));
        assert_eq!(c.stats().staged, 1);
        assert!(c.try_read_hit(&r, t(3)));
        c.on_write_completion(&w_full, false, t(4));
        assert!(c.losses().is_empty());

        // A half-line write invalidates: the DRAM copy would be stale.
        let w_half = cmd(2, 0, IoType::Write, 0, 4096);
        c.stage_write(&w_half, t(5));
        assert_eq!(c.stats().invalidations, 1);
        assert!(!c.try_read_hit(&r, t(6)));
    }

    #[test]
    fn failed_write_with_staged_lines_surfaces_typed_loss() {
        let mut c = small_cache(8, AdmissionPolicy::Always);
        read_and_fill(&mut c, 0, 0, 0);
        let w = cmd(1, 0, IoType::Write, 0, 4096);
        c.stage_write(&w, t(1));
        assert_eq!(c.stats().staged, 1);
        c.on_write_completion(&w, true, t(2));
        assert_eq!(c.losses().len(), 1);
        let loss = c.losses()[0];
        assert_eq!(loss.cmd, 1);
        assert_eq!(loss.tenant, TenantId(0));
        assert_eq!(loss.lines_lost, 1);
        assert_eq!(c.stats().staged_losses, 1);
        // The stale line is gone: the next read misses.
        assert!(!c.try_read_hit(&cmd(2, 0, IoType::Read, 0, 4096), t(3)));
    }

    #[test]
    fn congestion_aware_admission_follows_the_classifier() {
        let mut c = small_cache(64, AdmissionPolicy::CongestionAware);
        let r = cmd(0, 0, IoType::Read, 0, 4096);
        // Clean device (fast completions): bypass, no fill.
        assert!(!c.try_read_hit(&r, t(0)));
        c.on_read_completion(&r, SimDuration::from_micros(80), false, t(0));
        assert_eq!(c.congestion_state(), CongState::Underutilized);
        assert_eq!(c.stats().fills, 0);
        assert!(c.stats().bypassed >= 1);

        // Sustained slow completions push the classifier to Overloaded and
        // open admission.
        for i in 0..32u64 {
            let ri = cmd(10 + i, 0, IoType::Read, 100 + i, 4096);
            assert!(!c.try_read_hit(&ri, t(10 + i)));
            c.on_read_completion(&ri, SimDuration::from_micros(2000), false, t(10 + i));
        }
        assert_eq!(c.congestion_state(), CongState::Overloaded);
        assert!(c.stats().fills > 0, "congestion opened admission");
        assert!(c.stats().admit_toggles >= 1);
        // Admitted lines now hit.
        assert!(c.try_read_hit(&cmd(99, 0, IoType::Read, 131, 4096), t(99)));
    }

    #[test]
    fn double_run_digest_identity() {
        let run = || {
            let mut c = small_cache(8, AdmissionPolicy::CongestionAware);
            for i in 0..200u64 {
                let lba = (i * 7) % 16;
                let op = if i % 5 == 0 {
                    IoType::Write
                } else {
                    IoType::Read
                };
                let k = cmd(i, (i % 3) as u32, op, lba, 4096);
                match op {
                    IoType::Read => {
                        if !c.try_read_hit(&k, t(i)) {
                            let lat = SimDuration::from_micros(100 + (i % 9) * 300);
                            c.on_read_completion(&k, lat, false, t(i));
                        }
                    }
                    IoType::Write => {
                        c.stage_write(&k, t(i));
                        c.on_write_completion(&k, i % 17 == 0, t(i));
                    }
                }
            }
            let mut d = Digest::new();
            c.fold_into(&mut d);
            d.value()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "multiple of the 4 KiB block")]
    fn misaligned_line_size_is_rejected() {
        CacheConfig {
            line_bytes: 1000,
            ..CacheConfig::default()
        }
        .validate();
    }

    fn wb_cache(lines: u64) -> SsdCache {
        SsdCache::new(
            SsdId(0),
            CacheConfig {
                capacity_bytes: lines * 4096,
                policy: AdmissionPolicy::Always,
                write_policy: WritePolicy::Back,
                ..CacheConfig::default()
            },
        )
    }

    fn wcmd(id: u64, tenant: u32, lba: u64, len: u32, wal: Option<u64>) -> NvmeCmd {
        let mut c = cmd(id, tenant, IoType::Write, lba, len);
        c.wal = wal;
        c
    }

    #[test]
    fn write_back_ack_then_flush_cleans_the_line() {
        let mut c = wb_cache(8);
        assert!(c.write_back_ack(&wcmd(0, 0, 0, 4096, None), t(0)));
        let wb = c.write_back_stats();
        assert_eq!((wb.acked, wb.acked_lines, wb.dirty_lines), (1, 1, 1));
        // Fresh classifier state is Underutilized ⇒ opportunistic flush.
        let out = c.take_flushes(t(1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, FLUSH_ID_BASE);
        assert!(is_flush_id(out[0].id));
        assert_eq!((out[0].lba, out[0].len, out[0].wal), (0, 4096, None));
        // Saturating the in-flight cap: nothing more to take.
        assert!(c.take_flushes(t(1)).is_empty());
        c.on_flush_completion(out[0].id, false, t(2));
        let wb = c.write_back_stats();
        assert_eq!((wb.flushed_lines, wb.dirty_lines, wb.lost_lines), (1, 0, 0));
        assert_eq!(wb.opportunistic_flushes, 1);
        assert!(wb.conservation_holds(), "{wb:?}");
        // The flushed line stays resident and clean: reads hit it.
        assert!(c.try_read_hit(&cmd(9, 0, IoType::Read, 0, 4096), t(3)));
    }

    #[test]
    fn write_back_admission_respects_partition_budget() {
        // One tenant owns all 4 lines; a 5-line span cannot be pinned.
        let mut c = wb_cache(4);
        assert!(!c.write_back_ack(&wcmd(0, 0, 0, 5 * 4096, None), t(0)));
        assert_eq!(c.write_back_stats().acked, 0);
        // The caller falls back to pass-through, which is journaled.
        c.stage_write(&wcmd(0, 0, 0, 5 * 4096, None), t(0));
        assert_eq!(c.write_back_stats().passthrough, 1);
        // A 4-line span fits exactly.
        assert!(c.write_back_ack(&wcmd(1, 0, 0, 4 * 4096, None), t(1)));
        assert_eq!(c.write_back_stats().dirty_lines, 4);
        // Dirty lines are unevictable: a fifth line is refused until a flush.
        assert!(!c.write_back_ack(&wcmd(2, 0, 100, 4096, None), t(2)));
        let out = c.take_flushes(t(3));
        for io in &out {
            c.on_flush_completion(io.id, false, t(4));
        }
        assert!(c.write_back_ack(&wcmd(3, 0, 100, 4096, None), t(5)));
        assert!(c.write_back_stats().conservation_holds());
    }

    #[test]
    fn wal_lines_flush_in_tag_order_before_data_lines() {
        let mut c = wb_cache(16);
        // Enqueue out of tag order, plus an earlier-staged data line.
        assert!(c.write_back_ack(&wcmd(0, 0, 40, 4096, None), t(0)));
        assert!(c.write_back_ack(&wcmd(1, 0, 20, 4096, Some(5)), t(1)));
        assert!(c.write_back_ack(&wcmd(2, 0, 30, 4096, Some(4)), t(2)));
        let out = c.take_flushes(t(3));
        let wals: Vec<Option<u64>> = out.iter().map(|f| f.wal).collect();
        assert_eq!(
            wals,
            vec![Some(4), Some(5), None],
            "WAL-tagged lines must drain in tag order ahead of data lines"
        );
        assert_eq!(c.write_back_stats().wal_flush_ios, 2);
    }

    #[test]
    fn flush_epoch_mismatch_requeues_and_reflushes() {
        let mut c = wb_cache(8);
        assert!(c.write_back_ack(&wcmd(0, 0, 0, 4096, None), t(0)));
        let out = c.take_flushes(t(1));
        assert_eq!(out.len(), 1);
        // Re-dirty while the flush is in flight: the completion must not
        // clean the line (DRAM holds newer data than what hit flash).
        assert!(c.write_back_ack(&wcmd(1, 0, 0, 4096, None), t(2)));
        c.on_flush_completion(out[0].id, false, t(3));
        let wb = c.write_back_stats();
        assert_eq!(
            (wb.requeued_lines, wb.flushed_lines, wb.dirty_lines),
            (1, 0, 1)
        );
        // The requeued line flushes again and cleans this time.
        let again = c.take_flushes(t(4));
        assert_eq!(again.len(), 1);
        c.on_flush_completion(again[0].id, false, t(5));
        let wb = c.write_back_stats();
        assert_eq!((wb.flushed_lines, wb.dirty_lines), (1, 0));
        assert!(wb.conservation_holds(), "{wb:?}");
    }

    #[test]
    fn device_death_surfaces_dirty_losses_and_stops_the_flusher() {
        let mut c = wb_cache(8);
        for i in 0..3u64 {
            assert!(c.write_back_ack(&wcmd(i, 0, i, 4096, None), t(i)));
        }
        c.on_device_death(t(10));
        assert_eq!(c.losses().len(), 1);
        let loss = c.losses()[0];
        assert_eq!(loss.cmd, LOSS_EVENT_CMD);
        assert_eq!(loss.tenant, TenantId(0));
        assert_eq!(loss.lines_lost, 3);
        assert!(loss.dirty, "staged-write losses must carry the dirty tag");
        let wb = c.write_back_stats();
        assert_eq!((wb.lost_lines, wb.dirty_lines), (3, 0));
        assert!(wb.conservation_holds(), "{wb:?}");
        // Journal order: marker, then the per-line losses.
        let death = c
            .journal()
            .iter()
            .position(|e| matches!(e, DurabilityEvent::DeviceDeath { .. }))
            .expect("death marker journaled");
        let lost: Vec<usize> = c
            .journal()
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, DurabilityEvent::Lost { .. }))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(lost.len(), 3);
        assert!(lost.iter().all(|&i| i > death));
        // Dead: no more flushes, no more DRAM acks; writes pass through.
        assert!(c.take_flushes(t(11)).is_empty());
        assert!(!c.write_back_ack(&wcmd(9, 0, 50, 4096, None), t(11)));
        // The DRAM copies stay resident and clean — reads may still hit.
        assert!(c.try_read_hit(&cmd(10, 0, IoType::Read, 0, 4096), t(12)));
    }

    #[test]
    fn power_loss_surfaces_losses_and_goes_cold() {
        let mut c = wb_cache(8);
        assert!(c.write_back_ack(&wcmd(0, 0, 0, 4096, None), t(0)));
        assert!(c.write_back_ack(&wcmd(1, 1, 100, 4096, None), t(1)));
        c.power_loss(t(5));
        // One aggregated record per tenant.
        assert_eq!(c.losses().len(), 2);
        assert!(c.losses().iter().all(|l| l.dirty && l.lines_lost == 1));
        let wb = c.write_back_stats();
        assert_eq!((wb.power_losses, wb.lost_lines, wb.dirty_lines), (1, 2, 0));
        assert!(wb.conservation_holds(), "{wb:?}");
        // DRAM is cold: everything misses.
        assert!(!c.try_read_hit(&cmd(9, 0, IoType::Read, 0, 4096), t(6)));
        // But the cache itself still works: acks resume post-restart.
        assert!(c.write_back_ack(&wcmd(10, 0, 0, 4096, None), t(7)));
    }

    #[test]
    fn power_loss_under_write_through_clears_without_losses() {
        let mut c = small_cache(8, AdmissionPolicy::Always);
        read_and_fill(&mut c, 0, 0, 0);
        c.power_loss(t(5));
        assert!(c.losses().is_empty());
        assert_eq!(c.write_back_stats().power_losses, 0);
        assert!(!c.try_read_hit(&cmd(9, 0, IoType::Read, 0, 4096), t(6)));
    }

    #[test]
    fn passthrough_success_supersedes_a_dirty_line() {
        let mut c = wb_cache(4);
        // Pin the whole partition dirty, then write one of those lbas again:
        // admission refuses (no headroom math changes — the span is resident
        // so new_lines = 0 and it would be accepted; use a fresh lba to force
        // pass-through instead).
        assert!(c.write_back_ack(&wcmd(0, 0, 0, 4 * 4096, None), t(0)));
        // Resident span re-ack is absorbed in DRAM (no new debt).
        assert!(c.write_back_ack(&wcmd(1, 0, 0, 4096, None), t(1)));
        assert_eq!(c.write_back_stats().acked_lines, 4);
        // A fully-covering pass-through write that succeeds at the device
        // supersedes the dirty DRAM copy: flash now holds newer data.
        let pw = wcmd(2, 0, 0, 4096, None);
        c.stage_write(&pw, t(2));
        c.on_write_completion(&pw, false, t(3));
        let wb = c.write_back_stats();
        assert_eq!(wb.superseded_lines, 1);
        assert_eq!(wb.dirty_lines, 3);
        assert!(wb.conservation_holds(), "{wb:?}");
    }

    #[test]
    fn write_back_double_run_digest_identity() {
        let run = || {
            let mut c = wb_cache(8);
            let mut inflight: Vec<u64> = Vec::new();
            for i in 0..300u64 {
                let lba = (i * 7) % 16;
                let wal = (i % 3 == 0).then_some(i);
                let w = wcmd(i, (i % 3) as u32, lba, 4096, wal);
                if !c.write_back_ack(&w, t(i)) {
                    c.stage_write(&w, t(i));
                    c.on_write_completion(&w, i % 17 == 0, t(i));
                }
                for io in c.take_flushes(t(i)) {
                    inflight.push(io.id);
                }
                if i % 4 == 0 {
                    for id in inflight.drain(..) {
                        c.on_flush_completion(id, i % 29 == 0, t(i));
                    }
                }
                if i == 233 {
                    c.power_loss(t(i));
                    inflight.clear();
                }
            }
            assert!(c.write_back_stats().conservation_holds());
            let mut d = Digest::new();
            c.fold_into(&mut d);
            d.value()
        };
        assert_eq!(run(), run());
    }
}
