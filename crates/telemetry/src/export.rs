//! Trace exporters: Chrome trace-event JSON (Perfetto-loadable) and JSONL.
//!
//! This is the one place in the crate allowed to format and allocate —
//! exporters run after the simulation, never on the record path. Both
//! formats are hand-rolled (the workspace is dependency-free): a small
//! escaping writer plus per-kind argument serializers.
//!
//! Chrome mapping: `pid` is the SSD, `tid` is the tenant (0 = no tenant,
//! otherwise tenant index + 1), `ts` is virtual time in microseconds.
//! Token levels and the target rate export as counter events (`ph: "C"`),
//! which Perfetto renders as counter tracks; everything else is a
//! thread-scoped instant (`ph: "i"`).

use std::io;
use std::path::Path;

use crate::event::{Event, EventKind};
use crate::tracer::RecordedTrace;

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str("\\u0000"),
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('"');
    push_escaped(out, key);
    out.push_str("\":\"");
    push_escaped(out, value);
    out.push('"');
}

fn push_f64_field(out: &mut String, key: &str, value: f64, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('"');
    push_escaped(out, key);
    out.push_str("\":");
    if value.is_finite() {
        let mut buf = String::new();
        std::fmt::Write::write_fmt(&mut buf, format_args!("{value}")).expect("fmt to String");
        // `{}` on an integral f64 prints no decimal point; that is still a
        // valid JSON number, so emit it as-is.
        out.push_str(&buf);
    } else {
        out.push_str("null");
    }
}

fn push_u64_field(out: &mut String, key: &str, value: u64, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('"');
    push_escaped(out, key);
    out.push_str("\":");
    let mut buf = String::new();
    std::fmt::Write::write_fmt(&mut buf, format_args!("{value}")).expect("fmt to String");
    out.push_str(&buf);
}

fn push_bool_field(out: &mut String, key: &str, value: bool, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('"');
    push_escaped(out, key);
    out.push_str("\":");
    out.push_str(if value { "true" } else { "false" });
}

/// Serialize the payload fields of `kind` as JSON object members into `out`.
fn push_args(out: &mut String, kind: &EventKind, first: &mut bool) {
    match *kind {
        EventKind::CongestionTransition {
            io,
            from,
            to,
            ewma_ns,
            thresh_before_ns,
            thresh_after_ns,
        } => {
            push_str_field(
                out,
                "io",
                if io.is_read() { "read" } else { "write" },
                first,
            );
            push_str_field(out, "from", from.name(), first);
            push_str_field(out, "to", to.name(), first);
            push_f64_field(out, "ewma_ns", ewma_ns, first);
            push_f64_field(out, "thresh_before_ns", thresh_before_ns, first);
            push_f64_field(out, "thresh_after_ns", thresh_after_ns, first);
        }
        EventKind::RateUpdate {
            io,
            state,
            old_bps,
            new_bps,
        } => {
            push_str_field(
                out,
                "io",
                if io.is_read() { "read" } else { "write" },
                first,
            );
            push_str_field(out, "state", state.name(), first);
            push_f64_field(out, "old_bps", old_bps, first);
            push_f64_field(out, "bps", new_bps, first);
        }
        EventKind::BucketRefill {
            read_tokens,
            write_tokens,
        } => {
            push_f64_field(out, "read", read_tokens, first);
            push_f64_field(out, "write", write_tokens, first);
        }
        EventKind::OverflowTransfer {
            direction,
            amount,
            src_tokens,
        } => {
            push_str_field(out, "direction", direction.name(), first);
            push_f64_field(out, "amount", amount, first);
            push_f64_field(out, "src_tokens", src_tokens, first);
        }
        EventKind::WriteCostStep {
            old_cost,
            new_cost,
            below_min,
        } => {
            push_f64_field(out, "old_cost", old_cost, first);
            push_f64_field(out, "new_cost", new_cost, first);
            push_bool_field(out, "below_min", below_min, first);
        }
        EventKind::SlotOpened { slot } => {
            push_u64_field(out, "slot", u64::from(slot), first);
        }
        EventKind::SlotClosed { slot, submits } => {
            push_u64_field(out, "slot", u64::from(slot), first);
            push_u64_field(out, "submits", u64::from(submits), first);
        }
        EventKind::SlotFreed { slot, credit_ios } => {
            push_u64_field(out, "slot", u64::from(slot), first);
            push_u64_field(out, "credit_ios", u64::from(credit_ios), first);
        }
        EventKind::TenantDeferred { queued } => {
            push_u64_field(out, "queued", u64::from(queued), first);
        }
        EventKind::TenantResumed => {}
        EventKind::CreditGranted { credit } => {
            push_u64_field(out, "credit", u64::from(credit), first);
        }
        EventKind::CreditHalved { before, after } => {
            push_u64_field(out, "before", u64::from(before), first);
            push_u64_field(out, "after", u64::from(after), first);
        }
        EventKind::SsdGc { die } => {
            push_u64_field(out, "die", u64::from(die), first);
        }
        EventKind::SsdStall { release_ns } => {
            push_u64_field(out, "release_ns", release_ns, first);
        }
        EventKind::FaultInjected { capsule } => {
            push_str_field(out, "capsule", capsule.name(), first);
        }
        EventKind::RetryScheduled {
            cmd,
            attempt,
            timeout_ns,
        } => {
            push_u64_field(out, "cmd", cmd, first);
            push_u64_field(out, "attempt", u64::from(attempt), first);
            push_u64_field(out, "timeout_ns", timeout_ns, first);
        }
        EventKind::TimedOut { cmd, attempts } => {
            push_u64_field(out, "cmd", cmd, first);
            push_u64_field(out, "attempts", u64::from(attempts), first);
        }
        EventKind::CacheHit { lines } => {
            push_u64_field(out, "lines", u64::from(lines), first);
        }
        EventKind::CacheMiss { lines_missing } => {
            push_u64_field(out, "lines_missing", u64::from(lines_missing), first);
        }
        EventKind::CacheFill { lines, ghost_hits } => {
            push_u64_field(out, "lines", u64::from(lines), first);
            push_u64_field(out, "ghost_hits", u64::from(ghost_hits), first);
        }
        EventKind::CacheEvict { line, to_ghost } => {
            push_u64_field(out, "line", line, first);
            push_bool_field(out, "to_ghost", to_ghost, first);
        }
        EventKind::CacheAdmitToggle { from, to } => {
            push_str_field(out, "from", from.name(), first);
            push_str_field(out, "to", to.name(), first);
        }
        EventKind::CacheStagedLoss { cmd, lines } => {
            push_u64_field(out, "cmd", cmd, first);
            push_u64_field(out, "lines", u64::from(lines), first);
        }
        EventKind::CacheWriteBackAck { cmd, lines } => {
            push_u64_field(out, "cmd", cmd, first);
            push_u64_field(out, "lines", u64::from(lines), first);
        }
        EventKind::CacheFlushIssued { id, line } => {
            push_u64_field(out, "id", id, first);
            push_u64_field(out, "line", line, first);
        }
        EventKind::CacheFlushDone { id, line, requeued } => {
            push_u64_field(out, "id", id, first);
            push_u64_field(out, "line", line, first);
            push_bool_field(out, "requeued", requeued, first);
        }
        EventKind::CachePowerLoss { lines_lost } => {
            push_u64_field(out, "lines_lost", u64::from(lines_lost), first);
        }
        EventKind::CacheDeviceDeath { lines_lost } => {
            push_u64_field(out, "lines_lost", u64::from(lines_lost), first);
        }
        EventKind::NodeSuspected { node } => {
            push_u64_field(out, "node", u64::from(node), first);
        }
        EventKind::Rerouted {
            cmd,
            from_node,
            to_node,
        } => {
            push_u64_field(out, "cmd", cmd, first);
            push_u64_field(out, "from_node", u64::from(from_node), first);
            push_u64_field(out, "to_node", u64::from(to_node), first);
        }
        EventKind::NodeDead { node } => {
            push_u64_field(out, "node", u64::from(node), first);
        }
        EventKind::LinkDegraded { node } => {
            push_u64_field(out, "node", u64::from(node), first);
        }
        EventKind::TokenBorrowed { lender, bytes } => {
            push_u64_field(out, "lender", u64::from(lender), first);
            push_u64_field(out, "bytes", bytes, first);
        }
        EventKind::DebtRepaid {
            lender,
            principal,
            interest,
        } => {
            push_u64_field(out, "lender", u64::from(lender), first);
            push_u64_field(out, "principal", principal, first);
            push_u64_field(out, "interest", interest, first);
        }
        EventKind::DebtForgiven { lender, bytes } => {
            push_u64_field(out, "lender", u64::from(lender), first);
            push_u64_field(out, "bytes", bytes, first);
        }
        EventKind::TenantMigrated { from_ssd, to_ssd } => {
            push_u64_field(out, "from_ssd", u64::from(from_ssd), first);
            push_u64_field(out, "to_ssd", u64::from(to_ssd), first);
        }
        EventKind::QuantumStolen { from_core, to_core }
        | EventKind::HomeRebalanced { from_core, to_core } => {
            push_u64_field(out, "from_core", u64::from(from_core), first);
            push_u64_field(out, "to_core", u64::from(to_core), first);
        }
    }
}

fn chrome_tid(e: &Event) -> u64 {
    match e.tenant {
        Some(t) => 1 + t.index() as u64,
        None => 0,
    }
}

/// Counter events carry a stable counter-track name; instants keep the
/// event name.
fn chrome_entry_name(e: &Event) -> &'static str {
    match e.kind {
        EventKind::RateUpdate { .. } => "target_rate",
        EventKind::BucketRefill { .. } => "tokens",
        _ => e.name(),
    }
}

fn is_counter(e: &Event) -> bool {
    matches!(
        e.kind,
        EventKind::RateUpdate { .. } | EventKind::BucketRefill { .. }
    )
}

/// Render the trace as a Chrome trace-event JSON document: one metadata
/// entry per SSD, then exactly one entry per retained event, in stream
/// order. Load the result in Perfetto (ui.perfetto.dev) or
/// `chrome://tracing`.
pub fn chrome_trace(trace: &RecordedTrace) -> String {
    let mut out = String::with_capacity(128 * trace.events.len() + 256);
    out.push_str("{\"traceEvents\":[");
    let mut wrote_any = false;

    // One process_name metadata entry per SSD, in order of first appearance.
    let mut seen: Vec<u32> = Vec::new();
    for e in &trace.events {
        let ssd = e.ssd.index() as u32;
        if !seen.contains(&ssd) {
            seen.push(ssd);
            if wrote_any {
                out.push(',');
            }
            wrote_any = true;
            out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
            let mut buf = String::new();
            std::fmt::Write::write_fmt(&mut buf, format_args!("{ssd}")).expect("fmt to String");
            out.push_str(&buf);
            out.push_str(",\"tid\":0,\"args\":{\"name\":\"ssd");
            out.push_str(&buf);
            out.push_str("\"}}");
        }
    }

    for e in &trace.events {
        if wrote_any {
            out.push(',');
        }
        wrote_any = true;
        out.push('{');
        let mut first = true;
        push_str_field(&mut out, "name", chrome_entry_name(e), &mut first);
        push_str_field(&mut out, "cat", e.component().name(), &mut first);
        if is_counter(e) {
            push_str_field(&mut out, "ph", "C", &mut first);
        } else {
            push_str_field(&mut out, "ph", "i", &mut first);
            push_str_field(&mut out, "s", "t", &mut first);
        }
        push_f64_field(&mut out, "ts", e.at.as_nanos() as f64 / 1000.0, &mut first);
        push_u64_field(&mut out, "pid", e.ssd.index() as u64, &mut first);
        push_u64_field(&mut out, "tid", chrome_tid(e), &mut first);
        out.push_str(",\"args\":{");
        let mut afirst = true;
        push_u64_field(&mut out, "seq", e.seq, &mut afirst);
        push_args(&mut out, &e.kind, &mut afirst);
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Render the trace as JSONL: one self-describing object per event, in
/// stream order, followed by one object per metric. Friendly to `grep` and
/// `jq`-style tooling.
pub fn jsonl(trace: &RecordedTrace) -> String {
    let mut out = String::with_capacity(160 * trace.events.len() + 256);
    for e in &trace.events {
        out.push('{');
        let mut first = true;
        push_u64_field(&mut out, "seq", e.seq, &mut first);
        push_u64_field(&mut out, "ns", e.at.as_nanos(), &mut first);
        push_u64_field(&mut out, "ssd", e.ssd.index() as u64, &mut first);
        match e.tenant {
            Some(t) => push_u64_field(&mut out, "tenant", t.index() as u64, &mut first),
            None => {
                out.push_str(",\"tenant\":null");
            }
        }
        push_str_field(&mut out, "component", e.component().name(), &mut first);
        push_str_field(&mut out, "kind", e.name(), &mut first);
        push_args(&mut out, &e.kind, &mut first);
        out.push_str("}\n");
    }
    for (name, v) in trace.metrics.counters() {
        out.push('{');
        let mut first = true;
        push_str_field(&mut out, "metric", "counter", &mut first);
        push_str_field(&mut out, "name", name, &mut first);
        push_u64_field(&mut out, "value", v, &mut first);
        out.push_str("}\n");
    }
    for (name, v) in trace.metrics.gauges() {
        out.push('{');
        let mut first = true;
        push_str_field(&mut out, "metric", "gauge", &mut first);
        push_str_field(&mut out, "name", name, &mut first);
        push_f64_field(&mut out, "value", v, &mut first);
        out.push_str("}\n");
    }
    for (name, tenant, h) in trace.metrics.tenant_histograms() {
        let s = h.summary();
        out.push('{');
        let mut first = true;
        push_str_field(&mut out, "metric", "histogram", &mut first);
        push_str_field(&mut out, "name", name, &mut first);
        push_u64_field(&mut out, "tenant", u64::from(tenant), &mut first);
        push_u64_field(&mut out, "count", s.count, &mut first);
        push_f64_field(&mut out, "mean_ns", s.mean_ns, &mut first);
        push_u64_field(&mut out, "p50_ns", s.p50_ns, &mut first);
        push_u64_field(&mut out, "p99_ns", s.p99_ns, &mut first);
        push_u64_field(&mut out, "p999_ns", s.p999_ns, &mut first);
        push_u64_field(&mut out, "max_ns", s.max_ns, &mut first);
        out.push_str("}\n");
    }
    out
}

/// Write the Chrome trace JSON to `path`.
pub fn write_chrome_trace<P: AsRef<Path>>(path: P, trace: &RecordedTrace) -> io::Result<()> {
    std::fs::write(path, chrome_trace(trace))
}

/// Write the JSONL rendering to `path`.
pub fn write_jsonl<P: AsRef<Path>>(path: P, trace: &RecordedTrace) -> io::Result<()> {
    std::fs::write(path, jsonl(trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Component, CongState, EventKind};
    use crate::tracer::{TraceConfig, Tracer};
    use gimbal_fabric::{IoType, SsdId, TenantId};
    use gimbal_sim::SimTime;

    fn sample() -> RecordedTrace {
        let mut tr = Tracer::new(TraceConfig::default());
        tr.record(
            SimTime::from_micros(5),
            SsdId(0),
            None,
            EventKind::RateUpdate {
                io: IoType::Read,
                state: CongState::Congested,
                old_bps: 2.0e9,
                new_bps: 1.9e9,
            },
        );
        tr.record(
            SimTime::from_micros(7),
            SsdId(1),
            Some(TenantId(2)),
            EventKind::SlotOpened { slot: 3 },
        );
        tr.metrics_mut().observe("lat", TenantId(2), 80_000);
        tr.metrics_mut().set_gauge("port_tx_bytes", 1.0e9);
        tr.finish()
    }

    #[test]
    fn chrome_trace_has_expected_shape() {
        let s = chrome_trace(&sample());
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.ends_with("]}"));
        assert!(s.contains("\"name\":\"target_rate\""), "counter track: {s}");
        assert!(s.contains("\"ph\":\"C\""));
        assert!(s.contains("\"name\":\"slot_opened\""));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"args\":{\"name\":\"ssd0\"}"), "metadata: {s}");
        assert!(s.contains("\"tid\":3"), "tenant 2 maps to tid 3");
        // ts is virtual µs.
        assert!(s.contains("\"ts\":5"));
        let opens = s.matches('{').count();
        let closes = s.matches('}').count();
        assert_eq!(opens, closes, "balanced braces");
    }

    #[test]
    fn jsonl_is_one_object_per_line_with_metrics_tail() {
        let s = jsonl(&sample());
        let lines: Vec<&str> = s.lines().collect();
        // 2 events + one counter per component + 1 gauge + 1 histogram.
        assert_eq!(lines.len(), 2 + Component::ALL.len() + 1 + 1, "{s}");
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "line: {l}");
        }
        assert!(lines[0].contains("\"kind\":\"rate_update\""));
        assert!(lines[1].contains("\"tenant\":2"));
        assert!(s.contains("\"metric\":\"histogram\""));
        assert!(s.contains("\"metric\":\"gauge\""));
    }
}
