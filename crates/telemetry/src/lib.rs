//! Deterministic structured tracing and metrics for the Gimbal stack.
//!
//! Gimbal's behaviour emerges from five interacting control loops — the
//! congestion state machine (§3.2), the dual token bucket (§3.3), ADMI
//! write-cost calibration (§3.4), DRR virtual-slot scheduling (§3.5) and
//! credit flow control (§3.6) — and end-of-run aggregates cannot show *why*
//! a run behaved as it did. This crate adds the missing layer:
//!
//! * [`Tracer`] — a bounded ring buffer of typed [`Event`]s, each stamped
//!   with the virtual-time instant and a monotone sequence number. Labels
//!   (component names, event names, state names) are interned `&'static str`,
//!   so recording never formats or allocates.
//! * [`TraceHandle`] — a cheap clonable handle components hold. Disabled
//!   (the default) it is a single `Option` branch per record call; the hot
//!   path costs nothing when tracing is off.
//! * [`MetricsRegistry`] — named counters/gauges plus per-tenant
//!   [`gimbal_sim::Histogram`] breakdowns, riding along in the tracer.
//! * [`TraceView`] — a query API (filter by tenant / SSD / component / time
//!   window, adjacent-pair assertions) that conformance tests use to verify
//!   the paper's algorithms *from the trace itself*.
//! * [`export`] — Chrome trace-event JSON (loadable in Perfetto) and JSONL.
//!
//! Determinism is a hard invariant: the same seed must produce the same
//! event stream byte for byte, so [`RecordedTrace::digest`] participates in
//! the double-run identity checks, and recording draws no randomness and
//! reads no ambient clocks — every event is stamped with a caller-supplied
//! [`gimbal_sim::SimTime`].

pub mod event;
pub mod export;
pub mod metrics;
pub mod tracer;
pub mod view;

pub use event::{CapsuleKind, Component, CongState, Event, EventKind, OverflowDirection};
pub use metrics::MetricsRegistry;
pub use tracer::{RecordedTrace, TraceConfig, TraceHandle, Tracer};
pub use view::TraceView;
