//! Named counters, gauges, and per-tenant histogram breakdowns.
//!
//! The registry reuses the deterministic containers and statistics from
//! `gimbal-sim`: insertion-ordered maps keyed by interned `&'static str`
//! names, and HDR-style [`Histogram`]s for per-tenant latency breakdowns.
//! Everything folds into a [`Digest`] in insertion order, so metrics join
//! the double-run identity checks alongside the event stream.

use gimbal_fabric::TenantId;
use gimbal_sim::{DetMap, Digest, Histogram};

use crate::event::Component;

/// A registry of named counters/gauges plus per-`(name, tenant)` histograms.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: DetMap<&'static str, u64>,
    gauges: DetMap<&'static str, f64>,
    per_tenant: DetMap<(&'static str, u32), Histogram>,
}

impl MetricsRegistry {
    /// An empty registry with one pre-registered event counter per
    /// [`Component`], so the tracer's record path never inserts (and thus
    /// never allocates) while counting events.
    pub fn new() -> Self {
        let mut r = MetricsRegistry::default();
        for c in Component::ALL {
            r.counters.insert(c.name(), 0);
        }
        r
    }

    /// Bump the event counter for `component` by one. Pre-registered in
    /// [`MetricsRegistry::new`]; allocation-free.
    #[inline]
    pub fn count_event(&mut self, component: Component) {
        if let Some(c) = self.counters.get_mut(&component.name()) {
            *c += 1;
        }
    }

    /// Add `delta` to the named counter, creating it at zero first.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.get_or_insert_with(name, || 0) += delta;
    }

    /// Add one to the named counter.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Read a counter (zero when never touched).
    pub fn counter(&self, name: &'static str) -> u64 {
        self.counters.get(&name).copied().unwrap_or(0)
    }

    /// Set a gauge to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        match self.gauges.get_mut(&name) {
            Some(g) => *g = value,
            None => {
                self.gauges.insert(name, value);
            }
        }
    }

    /// Read a gauge.
    pub fn gauge(&self, name: &'static str) -> Option<f64> {
        self.gauges.get(&name).copied()
    }

    /// Record `value` into the per-tenant histogram `name`.
    pub fn observe(&mut self, name: &'static str, tenant: TenantId, value: u64) {
        self.per_tenant
            .get_or_insert_with((name, tenant.index() as u32), Histogram::new)
            .record(value);
    }

    /// The per-tenant histogram for `name`, if any sample ever landed.
    pub fn tenant_histogram(&self, name: &'static str, tenant: TenantId) -> Option<&Histogram> {
        self.per_tenant.get(&(name, tenant.index() as u32))
    }

    /// Iterate counters in insertion order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterate gauges in insertion order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterate per-tenant histograms in insertion order.
    pub fn tenant_histograms(&self) -> impl Iterator<Item = (&'static str, u32, &Histogram)> + '_ {
        self.per_tenant.iter().map(|((n, t), h)| (*n, *t, h))
    }

    /// Fold every metric into `d` in insertion order.
    pub fn fold_into(&self, d: &mut Digest) {
        for (name, v) in self.counters.iter() {
            d.update(name.as_bytes());
            d.update_u64(*v);
        }
        for (name, v) in self.gauges.iter() {
            d.update(name.as_bytes());
            d.update_f64(*v);
        }
        for ((name, tenant), h) in self.per_tenant.iter() {
            d.update(name.as_bytes());
            d.update_u64(u64::from(*tenant));
            let s = h.summary();
            d.update_u64(s.count);
            d.update_f64(s.mean_ns);
            d.update_u64(s.p50_ns);
            d.update_u64(s.p99_ns);
            d.update_u64(s.max_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_round_trip() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.counter("rate"), 0, "pre-registered at zero");
        r.count_event(Component::Rate);
        r.count_event(Component::Rate);
        assert_eq!(r.counter("rate"), 2);
        r.inc("custom");
        r.add("custom", 4);
        assert_eq!(r.counter("custom"), 5);
        r.set_gauge("port_tx_bytes", 1.5e9);
        r.set_gauge("port_tx_bytes", 2.5e9);
        assert_eq!(r.gauge("port_tx_bytes"), Some(2.5e9));
        r.observe("device_latency_ns", TenantId(1), 80_000);
        r.observe("device_latency_ns", TenantId(1), 120_000);
        let h = r
            .tenant_histogram("device_latency_ns", TenantId(1))
            .unwrap();
        assert_eq!(h.count(), 2);
        assert!(r
            .tenant_histogram("device_latency_ns", TenantId(9))
            .is_none());
    }

    #[test]
    fn digest_reflects_metric_values() {
        let fold = |f: &dyn Fn(&mut MetricsRegistry)| {
            let mut r = MetricsRegistry::new();
            f(&mut r);
            let mut d = Digest::new();
            r.fold_into(&mut d);
            d.value()
        };
        let a = fold(&|r| r.add("x", 1));
        let b = fold(&|r| r.add("x", 1));
        let c = fold(&|r| r.add("x", 2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
