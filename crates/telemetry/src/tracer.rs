//! The bounded event ring, its configuration, and the shared handle.
//!
//! The [`Tracer`] owns a ring of [`Event`]s whose backing storage is
//! allocated once, up front: when the ring is full the oldest event is
//! evicted (and counted), so what survives is always the *latest contiguous
//! suffix* of the stream — adjacency and continuity checks over the retained
//! events stay valid. Components reach the tracer through a [`TraceHandle`],
//! a clonable `Option<Rc<RefCell<..>>>`: the disabled handle (the default)
//! reduces every record call to one branch on `None`, so instrumentation
//! left in place costs nothing when tracing is off.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use gimbal_fabric::{SsdId, TenantId};
use gimbal_sim::{Digest, SimTime};

use crate::event::{Event, EventKind};
use crate::metrics::MetricsRegistry;
use crate::view::TraceView;

/// Tracing configuration, carried by `TestbedConfig`.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Maximum events retained; older events are evicted (and counted) once
    /// the ring is full. The backing storage is allocated once, up front.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // Roughly enough for a few hundred milliseconds of a busy testbed
        // run; conformance suites that must see *every* event raise it.
        TraceConfig { capacity: 1 << 16 }
    }
}

impl TraceConfig {
    /// Panic on a degenerate configuration.
    pub fn validate(&self) {
        assert!(self.capacity > 0, "trace ring capacity must be non-zero");
    }
}

/// The bounded, deterministic event recorder.
#[derive(Debug)]
pub struct Tracer {
    capacity: usize,
    events: VecDeque<Event>,
    next_seq: u64,
    dropped_oldest: u64,
    metrics: MetricsRegistry,
}

impl Tracer {
    /// Build a tracer; the ring's storage is allocated here, once.
    pub fn new(cfg: TraceConfig) -> Self {
        cfg.validate();
        Tracer {
            capacity: cfg.capacity,
            events: VecDeque::with_capacity(cfg.capacity),
            next_seq: 0,
            dropped_oldest: 0,
            metrics: MetricsRegistry::new(),
        }
    }

    /// Record one event at virtual-time `at`. Allocation-free after
    /// construction: eviction recycles ring slots and the per-component
    /// counters are pre-registered.
    #[inline]
    pub fn record(&mut self, at: SimTime, ssd: SsdId, tenant: Option<TenantId>, kind: EventKind) {
        self.metrics.count_event(kind.component());
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped_oldest += 1;
        }
        self.events.push_back(Event {
            seq,
            at,
            ssd,
            tenant,
            kind,
        });
    }

    /// Mutable access to the metrics registry (counters, gauges, per-tenant
    /// histograms recorded alongside the event stream).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Events currently retained in the ring.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded (retained + evicted).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted from the ring so far.
    pub fn dropped_oldest(&self) -> u64 {
        self.dropped_oldest
    }

    /// Drain the tracer into an immutable, exportable snapshot. The tracer
    /// is left empty but keeps its sequence counter, so a later drain never
    /// reuses sequence numbers.
    pub fn finish(&mut self) -> RecordedTrace {
        RecordedTrace {
            events: self.events.drain(..).collect(),
            total_recorded: self.next_seq,
            dropped_oldest: self.dropped_oldest,
            metrics: std::mem::take(&mut self.metrics),
        }
    }
}

/// An immutable snapshot of a finished trace: the retained event suffix,
/// stream totals, and the metrics registry.
#[derive(Clone, Debug)]
pub struct RecordedTrace {
    /// Retained events, oldest first, sequence numbers strictly increasing.
    pub events: Vec<Event>,
    /// Total events ever recorded, including evicted ones.
    pub total_recorded: u64,
    /// Events evicted before the snapshot.
    pub dropped_oldest: u64,
    /// Counters, gauges, and per-tenant histograms.
    pub metrics: MetricsRegistry,
}

impl RecordedTrace {
    /// Retained event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events survived.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A query view over the retained events.
    pub fn view(&self) -> TraceView<'_> {
        TraceView::new(&self.events)
    }

    /// Deterministic fingerprint over the full snapshot: every retained
    /// event, the stream totals, and the metrics. Joins the double-run
    /// identity checks.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.update_u64(self.total_recorded);
        d.update_u64(self.dropped_oldest);
        for e in &self.events {
            e.fold_into(&mut d);
        }
        self.metrics.fold_into(&mut d);
        d.value()
    }
}

/// A cheap, clonable recording handle. `Default` is disabled: record calls
/// reduce to a single `None` branch and touch no memory.
#[derive(Clone, Default)]
pub struct TraceHandle {
    inner: Option<Rc<RefCell<Tracer>>>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "TraceHandle(enabled)"
        } else {
            "TraceHandle(disabled)"
        })
    }
}

impl TraceHandle {
    /// The disabled handle (same as `Default`).
    pub fn disabled() -> Self {
        TraceHandle::default()
    }

    /// A handle feeding the shared tracer.
    pub fn attached(tracer: &Rc<RefCell<Tracer>>) -> Self {
        TraceHandle {
            inner: Some(Rc::clone(tracer)),
        }
    }

    /// Whether records reach a tracer.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event at virtual-time `at`; no-op when disabled.
    #[inline]
    pub fn record(&self, at: SimTime, ssd: SsdId, tenant: Option<TenantId>, kind: EventKind) {
        if let Some(t) = &self.inner {
            t.borrow_mut().record(at, ssd, tenant, kind);
        }
    }

    /// Record `value` into the per-tenant histogram `name`; no-op when
    /// disabled.
    #[inline]
    pub fn observe(&self, name: &'static str, tenant: TenantId, value: u64) {
        if let Some(t) = &self.inner {
            t.borrow_mut().metrics_mut().observe(name, tenant, value);
        }
    }

    /// Batched [`Self::observe`]: record a poll's worth of samples into the
    /// per-tenant histograms of `name` under **one** tracer borrow instead of
    /// one per IO — the engines' per-batch telemetry flush. Samples land in
    /// slice order, so the digest is identical to per-sample `observe` calls
    /// in the same order; no-op when disabled.
    #[inline]
    pub fn observe_many(&self, name: &'static str, samples: &[(TenantId, u64)]) {
        if let Some(t) = &self.inner {
            let mut t = t.borrow_mut();
            let metrics = t.metrics_mut();
            for &(tenant, value) in samples {
                metrics.observe(name, tenant, value);
            }
        }
    }

    /// Set a gauge; no-op when disabled.
    #[inline]
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        if let Some(t) = &self.inner {
            t.borrow_mut().metrics_mut().set_gauge(name, value);
        }
    }

    /// Add `delta` to a named counter; no-op when disabled.
    #[inline]
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(t) = &self.inner {
            t.borrow_mut().metrics_mut().add(name, delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> EventKind {
        EventKind::SsdGc { die: i as u32 }
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn sequence_numbers_are_monotone_and_ring_keeps_latest_suffix() {
        let mut tr = Tracer::new(TraceConfig { capacity: 4 });
        for i in 0..10 {
            tr.record(t(i), SsdId(0), None, ev(i));
        }
        assert_eq!(tr.len(), 4);
        assert_eq!(tr.total_recorded(), 10);
        assert_eq!(tr.dropped_oldest(), 6);
        let snap = tr.finish();
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "latest contiguous suffix");
        assert_eq!(snap.dropped_oldest, 6);
        // The tracer drained but kept its counter.
        assert_eq!(tr.total_recorded(), 10);
        assert!(tr.is_empty());
    }

    #[test]
    fn digest_identical_for_identical_streams_and_sensitive_to_order() {
        let run = |order: &[u64]| {
            let mut tr = Tracer::new(TraceConfig::default());
            for &i in order {
                tr.record(t(i), SsdId(0), Some(TenantId(i as u32 % 2)), ev(i));
            }
            tr.finish().digest()
        };
        assert_eq!(run(&[1, 2, 3]), run(&[1, 2, 3]));
        assert_ne!(run(&[1, 2, 3]), run(&[1, 3, 2]));
    }

    #[test]
    fn disabled_handle_is_inert_and_enabled_handle_records() {
        let h = TraceHandle::disabled();
        assert!(!h.is_enabled());
        h.record(t(1), SsdId(0), None, ev(1)); // must not panic
        h.observe("lat", TenantId(0), 5);

        let tracer = Rc::new(RefCell::new(Tracer::new(TraceConfig::default())));
        let h = TraceHandle::attached(&tracer);
        let h2 = h.clone();
        assert!(h.is_enabled());
        h.record(t(1), SsdId(0), None, ev(1));
        h2.record(t(2), SsdId(0), None, ev(2));
        h.observe("lat", TenantId(3), 42);
        h.set_gauge("g", 1.0);
        h.add("c", 2);
        let snap = tracer.borrow_mut().finish();
        assert_eq!(snap.len(), 2);
        assert_eq!(
            snap.metrics.counter("ssd"),
            2,
            "component counter rode along"
        );
        assert_eq!(snap.metrics.counter("c"), 2);
        assert!(snap.metrics.tenant_histogram("lat", TenantId(3)).is_some());
    }

    #[test]
    fn observe_many_is_digest_identical_to_per_sample_observe() {
        let samples = [(TenantId(0), 10), (TenantId(1), 20), (TenantId(0), 30)];
        let batched = {
            let tracer = Rc::new(RefCell::new(Tracer::new(TraceConfig::default())));
            let h = TraceHandle::attached(&tracer);
            h.observe_many("lat", &samples);
            let snap = tracer.borrow_mut().finish();
            snap.digest()
        };
        let unbatched = {
            let tracer = Rc::new(RefCell::new(Tracer::new(TraceConfig::default())));
            let h = TraceHandle::attached(&tracer);
            for &(tenant, value) in &samples {
                h.observe("lat", tenant, value);
            }
            let snap = tracer.borrow_mut().finish();
            snap.digest()
        };
        assert_eq!(batched, unbatched);
        TraceHandle::disabled().observe_many("lat", &samples); // must not panic
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_is_rejected() {
        Tracer::new(TraceConfig { capacity: 0 });
    }
}
