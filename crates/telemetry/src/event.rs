//! The typed event taxonomy.
//!
//! Every variant corresponds to one observable decision of a control loop.
//! Events are `Copy`, carry only plain numbers and interned labels, and fold
//! into a [`Digest`] field by field so a trace has a deterministic fingerprint.

use gimbal_fabric::{IoType, SsdId, TenantId};
use gimbal_sim::{Digest, SimTime};

/// The subsystem an event originates from. Used for filtering and as the
/// interned category label in exports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Component {
    /// Per-IO congestion state machine (§3.2, Alg. 1).
    Congestion,
    /// Rate limiter and dual token bucket (§3.3).
    Rate,
    /// ADMI write-cost estimator (§3.4).
    WriteCost,
    /// DRR virtual-slot scheduler (§3.5).
    Scheduler,
    /// Credit-based flow control (§3.6).
    Credit,
    /// Flash device internals (GC, stalls).
    Ssd,
    /// Fabric-level failure handling (loss, retries, timeouts).
    Fabric,
    /// NIC-DRAM cache tier (hits, fills, eviction, admission).
    Cache,
    /// Rack-level routing and failover (node suspicion, rerouting, node
    /// death, ToR link degradation).
    Rack,
    /// Inter-tenant token broker (borrow ledger, repayment epochs,
    /// placement migrations).
    Broker,
    /// Reactor-core scheduler (quantum stealing across pipelines, home
    /// rebalance epochs).
    Cores,
}

impl Component {
    /// Every component, in a fixed order (counter registration, exports).
    pub const ALL: [Component; 11] = [
        Component::Congestion,
        Component::Rate,
        Component::WriteCost,
        Component::Scheduler,
        Component::Credit,
        Component::Ssd,
        Component::Fabric,
        Component::Cache,
        Component::Rack,
        Component::Broker,
        Component::Cores,
    ];

    /// Interned label.
    pub const fn name(self) -> &'static str {
        match self {
            Component::Congestion => "congestion",
            Component::Rate => "rate",
            Component::WriteCost => "write_cost",
            Component::Scheduler => "scheduler",
            Component::Credit => "credit",
            Component::Ssd => "ssd",
            Component::Fabric => "fabric",
            Component::Cache => "cache",
            Component::Rack => "rack",
            Component::Broker => "broker",
            Component::Cores => "cores",
        }
    }
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Mirror of the Alg. 1 congestion states.
///
/// Kept telemetry-local so `gimbal-telemetry` depends only on the simulation
/// substrate and the fabric types, not on `gimbal-core` (which depends on the
/// crates this one instruments).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CongState {
    /// Latency below the floor threshold: probe aggressively.
    Underutilized,
    /// Additive increase band.
    CongestionAvoidance,
    /// Latency at or above the dynamic threshold: additive decrease.
    Congested,
    /// Latency at or above the ceiling: multiplicative back-off.
    Overloaded,
}

impl CongState {
    /// Position on the pressure ladder (0 = idle, 3 = overloaded); adjacency
    /// checks compare ranks.
    pub const fn rank(self) -> u8 {
        match self {
            CongState::Underutilized => 0,
            CongState::CongestionAvoidance => 1,
            CongState::Congested => 2,
            CongState::Overloaded => 3,
        }
    }

    /// Interned label.
    pub const fn name(self) -> &'static str {
        match self {
            CongState::Underutilized => "underutilized",
            CongState::CongestionAvoidance => "congestion_avoidance",
            CongState::Congested => "congested",
            CongState::Overloaded => "overloaded",
        }
    }

    /// Whether `a → b` moves at most one rung on the pressure ladder.
    pub fn adjacent(a: CongState, b: CongState) -> bool {
        a.rank().abs_diff(b.rank()) <= 1
    }
}

impl std::fmt::Display for CongState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which capsule a fabric fault consumed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CapsuleKind {
    /// Initiator → target command capsule.
    Command,
    /// Target → initiator completion capsule.
    Completion,
}

impl CapsuleKind {
    /// Interned label.
    pub const fn name(self) -> &'static str {
        match self {
            CapsuleKind::Command => "command",
            CapsuleKind::Completion => "completion",
        }
    }
}

/// Direction of a token-bucket overflow transfer (§3.3's spill between the
/// read and write buckets when one side is idle).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OverflowDirection {
    /// Read bucket was full; surplus flowed to the write bucket.
    ReadToWrite,
    /// Write bucket was full; surplus flowed to the read bucket.
    WriteToRead,
}

impl OverflowDirection {
    /// Interned label.
    pub const fn name(self) -> &'static str {
        match self {
            OverflowDirection::ReadToWrite => "read_to_write",
            OverflowDirection::WriteToRead => "write_to_read",
        }
    }
}

/// One observable control-loop decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// The per-IO congestion state machine changed state; snapshots of the
    /// EWMA and the dynamic threshold before/after let conformance tests
    /// re-derive the classification.
    CongestionTransition {
        /// Which monitor (read or write).
        io: IoType,
        /// State before this sample.
        from: CongState,
        /// State after this sample.
        to: CongState,
        /// EWMA latency after folding in this sample, in ns.
        ewma_ns: f64,
        /// Dynamic threshold before the update, in ns.
        thresh_before_ns: f64,
        /// Dynamic threshold after the update, in ns.
        thresh_after_ns: f64,
    },
    /// The rate limiter adjusted the target rate on a completion.
    RateUpdate {
        /// The IO type of the completing command.
        io: IoType,
        /// Congestion state that drove the adjustment.
        state: CongState,
        /// Target rate before, bytes/second.
        old_bps: f64,
        /// Target rate after clamping, bytes/second.
        new_bps: f64,
    },
    /// The dual token bucket was replenished from the target rate.
    BucketRefill {
        /// Read-bucket level after the refill, bytes.
        read_tokens: f64,
        /// Write-bucket level after the refill, bytes.
        write_tokens: f64,
    },
    /// Surplus tokens spilled from a full bucket to its sibling.
    OverflowTransfer {
        /// Which way the surplus flowed.
        direction: OverflowDirection,
        /// Bytes transferred.
        amount: f64,
        /// Source-bucket level after the transfer, bytes — the overflow
        /// invariant says this equals the bucket capacity (the source was
        /// full, i.e. that side is idle).
        src_tokens: f64,
    },
    /// The ADMI estimator stepped the write cost at a period boundary.
    WriteCostStep {
        /// Cost before the step.
        old_cost: f64,
        /// Cost after the step.
        new_cost: f64,
        /// Whether the write monitor was below the floor threshold (fast
        /// additive recovery) or not (averaging back toward worst case).
        below_min: bool,
    },
    /// The DRR scheduler opened a virtual slot for a tenant.
    SlotOpened {
        /// Slot index in the tenant's slot table.
        slot: u32,
    },
    /// A virtual slot reached its byte budget and stopped accepting IOs.
    SlotClosed {
        /// Slot index.
        slot: u32,
        /// IOs submitted into the slot over its lifetime.
        submits: u32,
    },
    /// Every IO in a closed slot completed; the slot returned to the pool
    /// and refreshed the tenant's credit estimate.
    SlotFreed {
        /// Slot index.
        slot: u32,
        /// New smoothed IOs-per-slot estimate (feeds credit grants).
        credit_ios: u32,
    },
    /// A tenant could not open a slot and left the active round-robin.
    TenantDeferred {
        /// IOs still queued for the tenant at deferral.
        queued: u32,
    },
    /// A deferred tenant re-entered the active round-robin.
    TenantResumed,
    /// A completion carried a piggybacked credit grant to a tenant.
    CreditGranted {
        /// The granted outstanding-IO allowance.
        credit: u32,
    },
    /// A client halved its credit allowance after a timeout.
    CreditHalved {
        /// Allowance before the halving.
        before: u32,
        /// Allowance after (floored at 1).
        after: u32,
    },
    /// The flash device ran a garbage-collection cycle on a die.
    SsdGc {
        /// Die index.
        die: u32,
    },
    /// A command hit an injected GC-storm window and stalls.
    SsdStall {
        /// Virtual-time instant (ns) at which the storm clears.
        release_ns: u64,
    },
    /// The fault injector consumed a capsule in the fabric.
    FaultInjected {
        /// Which capsule was lost.
        capsule: CapsuleKind,
    },
    /// An initiator timer fired and the command was retransmitted.
    RetryScheduled {
        /// Raw command id.
        cmd: u64,
        /// Retransmission attempt number (1 = first retry).
        attempt: u32,
        /// Backoff timer armed for the new attempt, ns.
        timeout_ns: u64,
    },
    /// A command exhausted its retry budget and errored out client-side.
    TimedOut {
        /// Raw command id.
        cmd: u64,
        /// Attempts consumed, including the original transmission.
        attempts: u32,
    },
    /// A read was served entirely from the NIC-DRAM cache.
    CacheHit {
        /// Lines the command spans.
        lines: u32,
    },
    /// A read had missing lines and went to the device.
    CacheMiss {
        /// Lines absent from the cache.
        lines_missing: u32,
    },
    /// A miss completion was admitted and lines were filled.
    CacheFill {
        /// Lines filled.
        lines: u32,
        /// How many of them were ghost-queue hits (proven reuse).
        ghost_hits: u32,
    },
    /// A resident line left the cache (capacity eviction or write
    /// invalidation).
    CacheEvict {
        /// Line id.
        line: u64,
        /// Whether the id was remembered in the tenant's ghost queue.
        to_ghost: bool,
    },
    /// The cache's congestion classifier changed regime, toggling the
    /// admission law.
    CacheAdmitToggle {
        /// Regime before the sample.
        from: CongState,
        /// Regime after.
        to: CongState,
    },
    /// A failed device write dropped dirty staged lines (typed loss).
    CacheStagedLoss {
        /// Raw id of the failed write.
        cmd: u64,
        /// Dirty lines invalidated.
        lines: u32,
    },
    /// A write acknowledged at DRAM cost under write-back.
    CacheWriteBackAck {
        /// Raw id of the acknowledged write.
        cmd: u64,
        /// Lines the write spans (now dirty).
        lines: u32,
    },
    /// The write-back flusher submitted a device write for a dirty line.
    CacheFlushIssued {
        /// Flush command id (high-bit flush id space).
        id: u64,
        /// Line being written back.
        line: u64,
    },
    /// A flush write completed at the device.
    CacheFlushDone {
        /// Flush command id.
        id: u64,
        /// Line the flush carried.
        line: u64,
        /// Whether the line went back to the flush queue (transient failure
        /// or re-dirty race) instead of coming clean.
        requeued: bool,
    },
    /// Simulated NIC power loss cleared the cache cold.
    CachePowerLoss {
        /// Write-back dirty lines surfaced as losses.
        lines_lost: u32,
    },
    /// The device died; the write-back flusher stopped for good.
    CacheDeviceDeath {
        /// Write-back dirty lines surfaced as losses.
        lines_lost: u32,
    },
    /// The escalation ladder marked a rack node suspect after repeated
    /// silent timeouts; subsequent IOs reroute around it.
    NodeSuspected {
        /// The suspected node.
        node: u32,
    },
    /// An IO abandoned its target and was re-issued to a surviving replica.
    Rerouted {
        /// Raw id of the abandoned physical command.
        cmd: u64,
        /// The node given up on.
        from_node: u32,
        /// The surviving node now serving the IO.
        to_node: u32,
    },
    /// A node-death fault fired: the node falls silent for good.
    NodeDead {
        /// The dead node.
        node: u32,
    },
    /// A capsule crossed a fault-degraded ToR link and paid extra latency.
    LinkDegraded {
        /// The node whose link is degraded.
        node: u32,
    },
    /// The broker granted a borrow: the stamped tenant took tokens from
    /// `lender`'s entitlement account on the stamped SSD.
    TokenBorrowed {
        /// The tenant whose headroom was tapped.
        lender: u32,
        /// Bytes of principal transferred.
        bytes: u64,
    },
    /// An epoch settlement repaid a (borrower, lender) debt in full.
    DebtRepaid {
        /// The tenant being repaid.
        lender: u32,
        /// Principal returned, bytes.
        principal: u64,
        /// Deterministic interest paid on top, bytes.
        interest: u64,
    },
    /// A debt was forgiven because one endpoint left the SSD (worker
    /// stop, device death, node death, or a placement migration).
    DebtForgiven {
        /// The lender side of the forgiven pair.
        lender: u32,
        /// Outstanding principal written off, bytes.
        bytes: u64,
    },
    /// The placement layer moved the stamped tenant to a new SSD at an
    /// epoch boundary.
    TenantMigrated {
        /// SSD the tenant was charged on before the move.
        from_ssd: u32,
        /// SSD the tenant is assigned to after the move.
        to_ssd: u32,
    },
    /// The core scheduler executed the stamped pipeline's poll quantum on
    /// an idle neighbor instead of its busy home core.
    QuantumStolen {
        /// The pipeline's home core, busy at quantum start.
        from_core: u32,
        /// The idle core that ran the quantum.
        to_core: u32,
    },
    /// A rebalance epoch moved the stamped pipeline's home core.
    HomeRebalanced {
        /// Home core before the rebalance pass.
        from_core: u32,
        /// Home core afterwards.
        to_core: u32,
    },
}

impl EventKind {
    /// The subsystem this event belongs to.
    pub const fn component(&self) -> Component {
        match self {
            EventKind::CongestionTransition { .. } => Component::Congestion,
            EventKind::RateUpdate { .. }
            | EventKind::BucketRefill { .. }
            | EventKind::OverflowTransfer { .. } => Component::Rate,
            EventKind::WriteCostStep { .. } => Component::WriteCost,
            EventKind::SlotOpened { .. }
            | EventKind::SlotClosed { .. }
            | EventKind::SlotFreed { .. }
            | EventKind::TenantDeferred { .. }
            | EventKind::TenantResumed => Component::Scheduler,
            EventKind::CreditGranted { .. } | EventKind::CreditHalved { .. } => Component::Credit,
            EventKind::SsdGc { .. } | EventKind::SsdStall { .. } => Component::Ssd,
            EventKind::FaultInjected { .. }
            | EventKind::RetryScheduled { .. }
            | EventKind::TimedOut { .. } => Component::Fabric,
            EventKind::CacheHit { .. }
            | EventKind::CacheMiss { .. }
            | EventKind::CacheFill { .. }
            | EventKind::CacheEvict { .. }
            | EventKind::CacheAdmitToggle { .. }
            | EventKind::CacheStagedLoss { .. }
            | EventKind::CacheWriteBackAck { .. }
            | EventKind::CacheFlushIssued { .. }
            | EventKind::CacheFlushDone { .. }
            | EventKind::CachePowerLoss { .. }
            | EventKind::CacheDeviceDeath { .. } => Component::Cache,
            EventKind::NodeSuspected { .. }
            | EventKind::Rerouted { .. }
            | EventKind::NodeDead { .. }
            | EventKind::LinkDegraded { .. } => Component::Rack,
            EventKind::TokenBorrowed { .. }
            | EventKind::DebtRepaid { .. }
            | EventKind::DebtForgiven { .. }
            | EventKind::TenantMigrated { .. } => Component::Broker,
            EventKind::QuantumStolen { .. } | EventKind::HomeRebalanced { .. } => Component::Cores,
        }
    }

    /// Interned event name (snake_case, stable across runs).
    pub const fn name(&self) -> &'static str {
        match self {
            EventKind::CongestionTransition { .. } => "congestion_transition",
            EventKind::RateUpdate { .. } => "rate_update",
            EventKind::BucketRefill { .. } => "bucket_refill",
            EventKind::OverflowTransfer { .. } => "overflow_transfer",
            EventKind::WriteCostStep { .. } => "write_cost_step",
            EventKind::SlotOpened { .. } => "slot_opened",
            EventKind::SlotClosed { .. } => "slot_closed",
            EventKind::SlotFreed { .. } => "slot_freed",
            EventKind::TenantDeferred { .. } => "tenant_deferred",
            EventKind::TenantResumed => "tenant_resumed",
            EventKind::CreditGranted { .. } => "credit_granted",
            EventKind::CreditHalved { .. } => "credit_halved",
            EventKind::SsdGc { .. } => "ssd_gc",
            EventKind::SsdStall { .. } => "ssd_stall",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::RetryScheduled { .. } => "retry_scheduled",
            EventKind::TimedOut { .. } => "timed_out",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::CacheFill { .. } => "cache_fill",
            EventKind::CacheEvict { .. } => "cache_evict",
            EventKind::CacheAdmitToggle { .. } => "cache_admit_toggle",
            EventKind::CacheStagedLoss { .. } => "cache_staged_loss",
            EventKind::CacheWriteBackAck { .. } => "cache_wb_ack",
            EventKind::CacheFlushIssued { .. } => "cache_flush_issued",
            EventKind::CacheFlushDone { .. } => "cache_flush_done",
            EventKind::CachePowerLoss { .. } => "cache_power_loss",
            EventKind::CacheDeviceDeath { .. } => "cache_device_death",
            EventKind::NodeSuspected { .. } => "node_suspected",
            EventKind::Rerouted { .. } => "rerouted",
            EventKind::NodeDead { .. } => "node_dead",
            EventKind::LinkDegraded { .. } => "link_degraded",
            EventKind::TokenBorrowed { .. } => "token_borrowed",
            EventKind::DebtRepaid { .. } => "debt_repaid",
            EventKind::DebtForgiven { .. } => "debt_forgiven",
            EventKind::TenantMigrated { .. } => "tenant_migrated",
            EventKind::QuantumStolen { .. } => "quantum_stolen",
            EventKind::HomeRebalanced { .. } => "home_rebalanced",
        }
    }

    /// Fold every payload field into `d`, field order fixed.
    pub fn fold_into(&self, d: &mut Digest) {
        d.update(self.name().as_bytes());
        match *self {
            EventKind::CongestionTransition {
                io,
                from,
                to,
                ewma_ns,
                thresh_before_ns,
                thresh_after_ns,
            } => {
                d.update_u64(io.index() as u64);
                d.update_u64(u64::from(from.rank()));
                d.update_u64(u64::from(to.rank()));
                d.update_f64(ewma_ns);
                d.update_f64(thresh_before_ns);
                d.update_f64(thresh_after_ns);
            }
            EventKind::RateUpdate {
                io,
                state,
                old_bps,
                new_bps,
            } => {
                d.update_u64(io.index() as u64);
                d.update_u64(u64::from(state.rank()));
                d.update_f64(old_bps);
                d.update_f64(new_bps);
            }
            EventKind::BucketRefill {
                read_tokens,
                write_tokens,
            } => {
                d.update_f64(read_tokens);
                d.update_f64(write_tokens);
            }
            EventKind::OverflowTransfer {
                direction,
                amount,
                src_tokens,
            } => {
                d.update(direction.name().as_bytes());
                d.update_f64(amount);
                d.update_f64(src_tokens);
            }
            EventKind::WriteCostStep {
                old_cost,
                new_cost,
                below_min,
            } => {
                d.update_f64(old_cost);
                d.update_f64(new_cost);
                d.update_u64(u64::from(below_min));
            }
            EventKind::SlotOpened { slot } => {
                d.update_u64(u64::from(slot));
            }
            EventKind::SlotClosed { slot, submits } => {
                d.update_u64(u64::from(slot));
                d.update_u64(u64::from(submits));
            }
            EventKind::SlotFreed { slot, credit_ios } => {
                d.update_u64(u64::from(slot));
                d.update_u64(u64::from(credit_ios));
            }
            EventKind::TenantDeferred { queued } => {
                d.update_u64(u64::from(queued));
            }
            EventKind::TenantResumed => {}
            EventKind::CreditGranted { credit } => {
                d.update_u64(u64::from(credit));
            }
            EventKind::CreditHalved { before, after } => {
                d.update_u64(u64::from(before));
                d.update_u64(u64::from(after));
            }
            EventKind::SsdGc { die } => {
                d.update_u64(u64::from(die));
            }
            EventKind::SsdStall { release_ns } => {
                d.update_u64(release_ns);
            }
            EventKind::FaultInjected { capsule } => {
                d.update(capsule.name().as_bytes());
            }
            EventKind::RetryScheduled {
                cmd,
                attempt,
                timeout_ns,
            } => {
                d.update_u64(cmd);
                d.update_u64(u64::from(attempt));
                d.update_u64(timeout_ns);
            }
            EventKind::TimedOut { cmd, attempts } => {
                d.update_u64(cmd);
                d.update_u64(u64::from(attempts));
            }
            EventKind::CacheHit { lines } => {
                d.update_u64(u64::from(lines));
            }
            EventKind::CacheMiss { lines_missing } => {
                d.update_u64(u64::from(lines_missing));
            }
            EventKind::CacheFill { lines, ghost_hits } => {
                d.update_u64(u64::from(lines));
                d.update_u64(u64::from(ghost_hits));
            }
            EventKind::CacheEvict { line, to_ghost } => {
                d.update_u64(line);
                d.update_u64(u64::from(to_ghost));
            }
            EventKind::CacheAdmitToggle { from, to } => {
                d.update_u64(u64::from(from.rank()));
                d.update_u64(u64::from(to.rank()));
            }
            EventKind::CacheStagedLoss { cmd, lines } => {
                d.update_u64(cmd);
                d.update_u64(u64::from(lines));
            }
            EventKind::CacheWriteBackAck { cmd, lines } => {
                d.update_u64(cmd);
                d.update_u64(u64::from(lines));
            }
            EventKind::CacheFlushIssued { id, line } => {
                d.update_u64(id);
                d.update_u64(line);
            }
            EventKind::CacheFlushDone { id, line, requeued } => {
                d.update_u64(id);
                d.update_u64(line);
                d.update_u64(u64::from(requeued));
            }
            EventKind::CachePowerLoss { lines_lost } => {
                d.update_u64(u64::from(lines_lost));
            }
            EventKind::CacheDeviceDeath { lines_lost } => {
                d.update_u64(u64::from(lines_lost));
            }
            EventKind::NodeSuspected { node } => {
                d.update_u64(u64::from(node));
            }
            EventKind::Rerouted {
                cmd,
                from_node,
                to_node,
            } => {
                d.update_u64(cmd);
                d.update_u64(u64::from(from_node));
                d.update_u64(u64::from(to_node));
            }
            EventKind::NodeDead { node } => {
                d.update_u64(u64::from(node));
            }
            EventKind::LinkDegraded { node } => {
                d.update_u64(u64::from(node));
            }
            EventKind::TokenBorrowed { lender, bytes } => {
                d.update_u64(u64::from(lender));
                d.update_u64(bytes);
            }
            EventKind::DebtRepaid {
                lender,
                principal,
                interest,
            } => {
                d.update_u64(u64::from(lender));
                d.update_u64(principal);
                d.update_u64(interest);
            }
            EventKind::DebtForgiven { lender, bytes } => {
                d.update_u64(u64::from(lender));
                d.update_u64(bytes);
            }
            EventKind::TenantMigrated { from_ssd, to_ssd } => {
                d.update_u64(u64::from(from_ssd));
                d.update_u64(u64::from(to_ssd));
            }
            EventKind::QuantumStolen { from_core, to_core }
            | EventKind::HomeRebalanced { from_core, to_core } => {
                d.update_u64(u64::from(from_core));
                d.update_u64(u64::from(to_core));
            }
        }
    }
}

/// One recorded event: a payload stamped with where and when.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Monotone sequence number, global across the tracer.
    pub seq: u64,
    /// Virtual-time instant of the decision.
    pub at: SimTime,
    /// The SSD/pipeline the event belongs to.
    pub ssd: SsdId,
    /// The tenant involved, when the event is tenant-scoped.
    pub tenant: Option<TenantId>,
    /// The decision itself.
    pub kind: EventKind,
}

impl Event {
    /// The component label (delegates to the kind).
    pub const fn component(&self) -> Component {
        self.kind.component()
    }

    /// The event name label (delegates to the kind).
    pub const fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Fold the full event — stamp and payload — into `d`.
    pub fn fold_into(&self, d: &mut Digest) {
        d.update_u64(self.seq);
        d.update_u64(self.at.as_nanos());
        d.update_u64(u64::from(self.ssd.index() as u32));
        match self.tenant {
            Some(t) => {
                d.update_u64(1 + t.index() as u64);
            }
            None => {
                d.update_u64(0);
            }
        }
        self.kind.fold_into(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gimbal_fabric::IoType;

    #[test]
    fn ranks_order_the_pressure_ladder() {
        assert!(CongState::Underutilized.rank() < CongState::CongestionAvoidance.rank());
        assert!(CongState::CongestionAvoidance.rank() < CongState::Congested.rank());
        assert!(CongState::Congested.rank() < CongState::Overloaded.rank());
        assert!(CongState::adjacent(
            CongState::Congested,
            CongState::Overloaded
        ));
        assert!(CongState::adjacent(
            CongState::Congested,
            CongState::Congested
        ));
        assert!(!CongState::adjacent(
            CongState::Underutilized,
            CongState::Congested
        ));
    }

    #[test]
    fn every_component_has_a_distinct_label() {
        let mut names: Vec<&str> = Component::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Component::ALL.len());
    }

    #[test]
    fn digest_is_deterministic_and_field_sensitive() {
        let ev = Event {
            seq: 3,
            at: SimTime::from_micros(10),
            ssd: SsdId(1),
            tenant: Some(TenantId(2)),
            kind: EventKind::RateUpdate {
                io: IoType::Read,
                state: CongState::Congested,
                old_bps: 2.0e9,
                new_bps: 1.9e9,
            },
        };
        let fold = |e: &Event| {
            let mut d = Digest::new();
            e.fold_into(&mut d);
            d.value()
        };
        assert_eq!(fold(&ev), fold(&ev), "same event, same digest");
        let mut tweaked = ev;
        tweaked.kind = EventKind::RateUpdate {
            io: IoType::Read,
            state: CongState::Congested,
            old_bps: 2.0e9,
            new_bps: 1.8e9,
        };
        assert_ne!(fold(&ev), fold(&tweaked), "payload change must show");
        let mut anon = ev;
        anon.tenant = None;
        assert_ne!(fold(&ev), fold(&anon), "tenant stamp must show");
    }
}
